"""Task and result records crossing the worker-process boundary.

Everything here must pickle cleanly: a :class:`FrameTask` travels parent
-> worker, a :class:`FrameRecord` travels back. Failures are *data* — a
crashed or rejected frame comes back as a record with ``ok=False`` and
the error message, never as an exception that would wedge the pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.params import SlicParams
from ..core.result import SegmentationResult

__all__ = ["FrameTask", "FrameRecord", "BatchResult"]


@dataclass(frozen=True)
class FrameTask:
    """One frame's worth of work, shipped to a worker process.

    ``warm_centers`` / ``warm_labels`` carry the predecessor frame's
    state when the stream scheduler decided on a warm start (``None``
    for cold starts). ``collect_trace`` asks the worker to record its
    span tree in-memory and return the events with the record.

    ``attempt`` is the 0-based execution attempt (retries re-ship the
    same frame with ``attempt + 1``); ``fault`` is an optional
    :class:`repro.resilience.FaultSpec` the worker-side injection hook
    applies before running (chaos testing — ``None`` in production).

    ``trace_id`` / ``parent_span_id`` carry the parent's trace context
    across the process boundary (both transports ship them — they ride
    the pickled task, and the shm transport additionally stamps the
    trace tag into the slab header). The worker's collecting tracer
    joins ``trace_id``, prefixes its span ids with
    ``s<stream>f<frame>a<attempt>.`` (attempt-tagged, so watchdog
    resubmissions and retries never collide), and parents its root
    spans at ``parent_span_id`` — the parent-side ``frame`` span — so
    the merged trace is one stitched tree, not a pile of orphans.

    Under the zero-copy transport (``transport="shm"``), ``image`` and
    ``warm_labels`` are ``None`` and the ``shm_*`` fields carry
    :class:`~repro.parallel.shm.SlabRef` pointers instead: the worker
    attaches the slabs by name and reads the payloads in place
    (``shm_result`` names the pre-sized slab it writes labels into).
    """

    stream_id: int
    frame_index: int
    image: np.ndarray
    params: SlicParams
    warm_centers: np.ndarray | None = None
    warm_labels: np.ndarray | None = None
    collect_trace: bool = False
    attempt: int = 0
    fault: object = None
    trace_id: str | None = None
    parent_span_id: str | None = None
    shm_image: object = None
    shm_warm_labels: object = None
    shm_result: object = None


@dataclass
class FrameRecord:
    """The outcome of one frame — success or failure, never an exception.

    Attributes
    ----------
    stream_id, frame_index:
        Position of the frame in the batch (records are returned sorted
        by this pair, regardless of completion order).
    ok:
        True when ``result`` holds a :class:`SegmentationResult`.
    result:
        The segmentation result, or ``None`` on failure.
    error, error_type:
        Failure message and exception class name (``ok=False`` only).
        A worker process that died mid-frame yields
        ``error_type="WorkerCrash"``; a frame whose worker blew through
        the runner's deadline yields ``error_type="FrameTimeout"``.
    warm_started:
        Whether this frame warm-started from its predecessor.
    elapsed_s:
        Wall-clock seconds the frame spent inside the worker (compute
        only — queueing and transfer excluded). 0.0 for crashed frames.
    worker_pid:
        PID of the process that ran the frame (the parent's PID in
        serial mode).
    trace_events:
        The worker's span/metric events when tracing was requested.
    kernel_backend:
        Concrete kernel backend name the worker ran with (``None`` for
        frames that failed before backend resolution).
    n_threads:
        Effective kernel threads the frame ran with when
        ``kernel_backend`` is ``"native-mt"`` ("one process per stream,
        threads per frame"); ``None`` for the serial backends.
    attempts:
        How many executions this frame consumed (> 1 means the retry
        policy recovered — or exhausted itself on — transient failures).
    quarantined:
        True when the frame failed every allowed attempt under an
        active retry policy — a poison frame, excluded from further
        retrying.
    demoted_from:
        When the kernel backend supervisor demoted the requested
        backend (failed load or self-test), the backend that was
        demoted; ``kernel_backend`` then names the survivor.
    transport:
        How the frame's arrays crossed the process boundary:
        ``"shm"`` for the zero-copy slab transport, ``None`` for
        pickle/serial (the default path).
    shm_labels:
        In-flight only: the :class:`~repro.parallel.shm.SlabRef` of the
        labels the worker wrote into the result slab. The parent
        materializes ``result.labels`` from it at finalize time and
        clears this field — records handed to callers never carry refs.
    """

    stream_id: int
    frame_index: int
    ok: bool
    result: SegmentationResult = None
    error: str | None = None
    error_type: str | None = None
    warm_started: bool = False
    elapsed_s: float = 0.0
    worker_pid: int = 0
    trace_events: list = field(default_factory=list)
    kernel_backend: str | None = None
    n_threads: int | None = None
    attempts: int = 1
    quarantined: bool = False
    demoted_from: str | None = None
    transport: str | None = None
    shm_labels: object = None

    @property
    def key(self) -> tuple:
        return (self.stream_id, self.frame_index)


@dataclass
class BatchResult:
    """Everything a :class:`~repro.parallel.ParallelRunner` run produced.

    ``records`` is sorted by ``(stream_id, frame_index)`` — deterministic
    regardless of worker scheduling. ``elapsed_s`` is the parent's
    wall-clock for the whole batch; ``throughput_fps`` counts *completed*
    frames against it.
    """

    records: list
    n_workers: int
    elapsed_s: float
    max_in_flight: int = 0
    pool_restarts: int = 0
    retries_used: int = 0
    timeouts: int = 0
    resumed_frames: int = 0
    #: Concrete transport the run used ("pickle" or "shm"); a requested
    #: shm transport that fell back reports "pickle" here, with the
    #: fallback visible in telemetry (parallel.transport_fallbacks).
    transport: str = "pickle"

    @property
    def n_frames(self) -> int:
        return len(self.records)

    @property
    def n_ok(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def n_failed(self) -> int:
        return self.n_frames - self.n_ok

    @property
    def throughput_fps(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.n_ok / self.elapsed_s

    @property
    def results(self) -> list:
        """Successful :class:`SegmentationResult`s in deterministic order."""
        return [r.result for r in self.records if r.ok]

    @property
    def failures(self) -> list:
        """Failed records in deterministic order."""
        return [r for r in self.records if not r.ok]

    @property
    def n_quarantined(self) -> int:
        """Poison frames: failed every allowed attempt under retrying."""
        return sum(1 for r in self.records if r.quarantined)

    @property
    def n_recovered(self) -> int:
        """Frames that failed at least once but ended ``ok=True``."""
        return sum(1 for r in self.records if r.ok and r.attempts > 1)

    def stream(self, stream_id: int) -> list:
        """All records of one stream, in frame order."""
        return [r for r in self.records if r.stream_id == stream_id]

    def __repr__(self) -> str:
        return (
            f"BatchResult(frames={self.n_frames}, ok={self.n_ok}, "
            f"failed={self.n_failed}, workers={self.n_workers}, "
            f"fps={self.throughput_fps:.2f})"
        )
