"""Zero-copy shared-memory frame transport for the parallel runner.

The pickle transport ships every RGB frame into the pool and every label
map back out through the executor's pipes — at 1080p that is ~6 MB of
serialized bytes per frame each way, and it dominates end-to-end
throughput once the per-pixel kernels are fast (the same observation
that drives the paper's scratchpad design: once compute is tight, data
movement is the ceiling). This module removes that traffic:

* the parent writes each frame's RGB (and warm labels, when the stream
  planned a warm start) into a **slab** of
  ``multiprocessing.shared_memory``, and ships only a tiny picklable
  :class:`SlabRef` (name + generation + layout) in the
  :class:`~repro.parallel.records.FrameTask`;
* the worker attaches to the slab by name (attachments are cached per
  process), runs segmentation on a **read-only view** of the payload,
  writes the ``int32`` label map into a pre-sized **result slab**, and
  returns a record whose ``shm_labels`` ref replaces the array;
* the parent materializes the labels out of the result slab when the
  frame is *finalized* and returns both slabs to a free pool for reuse
  by later frames.

Slab lifecycle vs. the resilience layer (PR 4)
----------------------------------------------
Slabs are owned by the parent and keyed by ``(stream_id, frame_index)``
— **not** by attempt. A retried, resubmitted (watchdog victim), or
crashed-and-replayed frame re-ships the *same* refs; its slabs are
released only when the frame's final record is collected. Every slab
carries a **generation tag**: an 8-byte counter in the slab header,
bumped each time the pool hands the slab to a new frame and embedded in
every :class:`SlabRef`. A worker that somehow attaches a recycled slab
(a stale task after the parent moved on) sees the mismatch and fails the
frame with :class:`~repro.errors.TransportError` instead of silently
reading another frame's pixels.

Fallback
--------
``ParallelRunner(transport="shm")`` probes availability at run start and
falls back to pickle — recorded in telemetry
(``parallel.transport_fallbacks`` + a ``transport_fallback`` event),
exactly like a kernel-backend demotion — when shared memory is missing
(no ``/dev/shm``) or slab allocation fails mid-run.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

import numpy as np

from ..errors import TransportError

try:  # pragma: no cover - exercised only where shm is missing
    from multiprocessing import resource_tracker, shared_memory

    _IMPORT_ERROR = None
except ImportError as exc:  # pragma: no cover
    shared_memory = None
    resource_tracker = None
    _IMPORT_ERROR = exc

__all__ = [
    "SlabRef",
    "Slab",
    "SlabPool",
    "ShmTransport",
    "shm_available",
    "decode_task",
    "publish_result",
    "detach_all",
    "slab_trace_id",
]

#: Payload offset inside every slab. The first 8 bytes hold the
#: little-endian uint64 generation tag; bytes 8..16 hold the trace tag
#: (the owning run's 16-hex-char trace id as raw bytes, zero when the
#: run is untraced) so a slab on disk/in a core dump is attributable to
#: the trace that produced it; the rest of the header is reserved
#: padding so payloads start cache-line aligned.
HEADER_BYTES = 64

#: Byte offset of the trace tag inside the slab header.
TRACE_TAG_OFFSET = 8

#: Slab capacities are rounded up to this granularity so frames of
#: slightly different byte sizes can still reuse each other's slabs.
_CAPACITY_QUANTUM = 4096


@dataclass(frozen=True)
class SlabRef:
    """A picklable pointer into a shared-memory slab.

    ``generation`` must match the tag in the slab header at attach time;
    ``offset`` is relative to the payload start (header excluded).
    """

    name: str
    generation: int
    offset: int
    shape: tuple
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class Slab:
    """Parent-side handle of one shared-memory segment."""

    __slots__ = ("shm", "capacity", "generation")

    def __init__(self, shm, capacity: int):
        self.shm = shm
        self.capacity = capacity  # payload bytes (header excluded)
        self.generation = 0

    def stamp(self) -> None:
        """Bump the generation and write it into the slab header."""
        self.generation += 1
        struct.pack_into("<Q", self.shm.buf, 0, self.generation)

    def stamp_trace(self, trace_id) -> None:
        """Record the owning trace id (16 hex chars) in the header."""
        raw = bytes.fromhex(trace_id)[:8] if trace_id else b"\x00" * 8
        struct.pack_into("8s", self.shm.buf, TRACE_TAG_OFFSET, raw)

    def view(self, ref: SlabRef, writeable: bool = True):
        arr = np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=self.shm.buf,
            offset=HEADER_BYTES + ref.offset,
        )
        arr.flags.writeable = writeable
        return arr


class SlabPool:
    """Parent-side pool of reusable slabs (a free list, not a ring
    buffer: the watchdog/retry paths hold slabs for arbitrary spans, so
    strict ring order cannot be guaranteed — reuse order is whatever
    frames finalize first, which is equivalent and simpler)."""

    def __init__(self):
        if shared_memory is None:
            raise TransportError(
                f"multiprocessing.shared_memory unavailable: {_IMPORT_ERROR}"
            )
        self._free = []  # Slab, sorted by capacity (ascending)
        self._all = []
        self.created = 0
        self.reused = 0

    def acquire(self, nbytes: int) -> Slab:
        """A slab with >= ``nbytes`` payload capacity, generation bumped."""
        for i, slab in enumerate(self._free):
            if slab.capacity >= nbytes:  # best fit: list is size-sorted
                self._free.pop(i)
                self.reused += 1
                slab.stamp()
                return slab
        capacity = -(-max(nbytes, 1) // _CAPACITY_QUANTUM) * _CAPACITY_QUANTUM
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=HEADER_BYTES + capacity
            )
        except OSError as exc:
            raise TransportError(
                f"failed to allocate a {capacity}-byte shared-memory slab: {exc}"
            ) from exc
        slab = Slab(shm, capacity)
        self._all.append(slab)
        self.created += 1
        slab.stamp()
        return slab

    def release(self, slab: Slab) -> None:
        """Return a slab to the free list for reuse."""
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid].capacity < slab.capacity:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, slab)

    def close(self) -> None:
        """Close and unlink every slab this pool ever created."""
        for slab in self._all:
            try:
                slab.shm.close()
                slab.shm.unlink()
            except Exception:
                pass  # already gone (e.g. the OS cleaned up)
        self._free.clear()
        self._all.clear()


def shm_available() -> bool:
    """Can this process create (and attach) a shared-memory segment?"""
    if shared_memory is None:
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=HEADER_BYTES)
    except OSError:
        return False
    try:
        probe.close()
        probe.unlink()
    except Exception:
        pass
    return True


# ----------------------------------------------------------------------
# Worker side: attach, decode, publish
# ----------------------------------------------------------------------
_ATTACHED = {}  # name -> SharedMemory, cached per process


def _attach(name: str):
    shm = _ATTACHED.get(name)
    if shm is None:
        if shared_memory is None:
            raise TransportError(
                f"cannot attach slab {name}: shared_memory unavailable"
            )
        try:
            shm = shared_memory.SharedMemory(name=name)
        except (OSError, ValueError) as exc:
            raise TransportError(
                f"failed to attach shared-memory slab {name}: {exc}"
            ) from exc
        # The parent owns slab lifetime (it unlinks at transport close,
        # which also unregisters). Under fork, workers share the parent's
        # resource tracker, so a worker must NOT unregister — concurrent
        # unregisters of the same name race into tracker KeyErrors and
        # strip the parent's crash protection. Under spawn, each worker
        # has its *own* tracker which would unlink live slabs at worker
        # exit, so there the attachment must be unregistered.
        import multiprocessing

        if multiprocessing.get_start_method(allow_none=True) not in (
            None,
            "fork",
        ):  # pragma: no cover - spawn/forkserver platforms
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        _ATTACHED[name] = shm
    return shm


def detach_all() -> None:
    """Drop this process's cached slab attachments (close the handles)."""
    for shm in _ATTACHED.values():
        try:
            shm.close()
        except Exception:
            pass
    _ATTACHED.clear()


def slab_trace_id(name: str):
    """Read a slab's trace tag (worker side); hex string or ``None``.

    Zero bytes (an untraced run, or a pre-tag slab) read as ``None``.
    """
    shm = _attach(name)
    raw = bytes(shm.buf[TRACE_TAG_OFFSET:TRACE_TAG_OFFSET + 8])
    return raw.hex() if raw != b"\x00" * 8 else None


def ref_to_array(ref: SlabRef, writeable: bool = False):
    """Attach ``ref``'s slab and return a payload view, verifying the
    generation tag — a mismatch means the slab was recycled for another
    frame and the ref is stale."""
    shm = _attach(ref.name)
    gen = struct.unpack_from("<Q", shm.buf, 0)[0]
    if gen != ref.generation:
        raise TransportError(
            f"stale slab ref: {ref.name} is at generation {gen}, "
            f"ref expects {ref.generation} (slab recycled for another frame)"
        )
    if HEADER_BYTES + ref.offset + ref.nbytes > shm.size:
        raise TransportError(
            f"slab ref overruns {ref.name}: offset {ref.offset} + "
            f"{ref.nbytes} bytes exceeds slab size {shm.size}"
        )
    arr = np.ndarray(
        ref.shape,
        dtype=np.dtype(ref.dtype),
        buffer=shm.buf,
        offset=HEADER_BYTES + ref.offset,
    )
    arr.flags.writeable = writeable
    return arr


def decode_task(task):
    """Materialize a task's shm refs into arrays (worker side).

    The image comes back as a *read-only view* of the slab — zero-copy.
    Everything downstream that mutates (fault corruption, warm-label
    sanitation) copies first, so the slab payload is never dirtied.
    """
    if task.shm_image is None:
        return task
    image = ref_to_array(task.shm_image, writeable=False)
    warm_labels = task.warm_labels
    if task.shm_warm_labels is not None:
        warm_labels = ref_to_array(task.shm_warm_labels, writeable=False)
    return replace(task, image=image, warm_labels=warm_labels)


def publish_result(task, record):
    """Write a successful record's labels into the result slab and strip
    the array from the record (worker side). The parent re-materializes
    them at finalize time."""
    if task.shm_result is None or not record.ok or record.result is None:
        return record
    ref = task.shm_result
    labels = np.asarray(record.result.labels)
    if tuple(labels.shape) != tuple(ref.shape):
        raise TransportError(
            f"label shape {tuple(labels.shape)} does not match the result "
            f"slab layout {tuple(ref.shape)}"
        )
    out = ref_to_array(ref, writeable=True)
    out[...] = labels
    record.result.labels = None
    record.shm_labels = ref
    record.transport = "shm"
    return record


# ----------------------------------------------------------------------
# Parent side: the transport object the runner drives
# ----------------------------------------------------------------------
def _align(nbytes: int, granule: int = 64) -> int:
    return -(-nbytes // granule) * granule


class ShmTransport:
    """Parent-side transport: encode tasks into slabs, finalize records
    out of them. Single-threaded (driven by the runner's scheduling
    loop), one instance per run."""

    name = "shm"

    def __init__(self, tracer=None):
        self.pool = SlabPool()
        self.tracer = tracer
        self._outstanding = {}  # (stream_id, frame_index) -> (in_slab, out_slab)
        self.frames_encoded = 0

    def encode_task(self, task):
        """Move the task's arrays into slabs; returns the slim task.

        Idempotent: a task that already carries refs (a retry or a
        watchdog resubmission) passes through untouched — its slabs stay
        live under the same generation until the frame finalizes.
        """
        if task.shm_result is not None:
            return task
        image = np.ascontiguousarray(np.asarray(task.image))
        arrays = [image]
        if task.warm_labels is not None:
            arrays.append(np.ascontiguousarray(task.warm_labels))
        offsets = []
        total = 0
        for arr in arrays:
            offsets.append(total)
            total += _align(arr.nbytes)
        in_slab = self.pool.acquire(total)
        in_slab.stamp_trace(task.trace_id)
        try:
            refs = []
            for arr, off in zip(arrays, offsets):
                ref = SlabRef(
                    name=in_slab.shm.name,
                    generation=in_slab.generation,
                    offset=off,
                    shape=tuple(arr.shape),
                    dtype=str(arr.dtype),
                )
                in_slab.view(ref)[...] = arr
                refs.append(ref)
            h, w = image.shape[:2]
            out_slab = self.pool.acquire(h * w * np.dtype(np.int32).itemsize)
            out_slab.stamp_trace(task.trace_id)
        except Exception:
            self.pool.release(in_slab)
            raise
        out_ref = SlabRef(
            name=out_slab.shm.name,
            generation=out_slab.generation,
            offset=0,
            shape=(h, w),
            dtype="int32",
        )
        self._outstanding[(task.stream_id, task.frame_index)] = (
            in_slab,
            out_slab,
        )
        self.frames_encoded += 1
        return replace(
            task,
            image=None,
            warm_labels=None,
            shm_image=refs[0],
            shm_warm_labels=refs[1] if len(refs) > 1 else None,
            shm_result=out_ref,
        )

    def finalize(self, task, record):
        """Materialize the labels from the result slab and release the
        frame's slabs. Called exactly once per frame, on its *final*
        record (never on an attempt that is about to be retried)."""
        slabs = self._outstanding.pop((task.stream_id, task.frame_index), None)
        if slabs is None:
            return record  # frame was never shm-encoded (e.g. pre-fallback)
        in_slab, out_slab = slabs
        if record.shm_labels is not None:
            ref = record.shm_labels
            if ref.generation != out_slab.generation:
                raise TransportError(
                    f"result slab {ref.name} generation mismatch at finalize "
                    f"({out_slab.generation} vs ref {ref.generation})"
                )
            if record.result is not None and record.result.labels is None:
                record.result.labels = out_slab.view(ref).copy()
            record.shm_labels = None
        self.pool.release(in_slab)
        self.pool.release(out_slab)
        return record

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    def close(self) -> None:
        """Release everything and unlink every slab. In-process
        attachments (the parent may have attached its own slabs during a
        serial fallback) are dropped first so no stale handles survive."""
        detach_all()
        self._outstanding.clear()
        self.pool.close()
