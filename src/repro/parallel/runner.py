"""The parallel batch/video execution engine.

:class:`ParallelRunner` shards work across a ``concurrent.futures``
process pool under three rules that together give the package its
guarantees (see ``docs/parallel.md``):

1. **Per-stream ordering** — frames of one stream run strictly in order,
   each warm-starting from its committed predecessor via the same
   :meth:`~repro.core.streaming.StreamSegmenter.plan` /
   :meth:`~repro.core.streaming.StreamSegmenter.commit` pair the serial
   streaming driver uses. Parallelism comes from *independent* streams
   (a batch of still images is a batch of one-frame streams).
2. **Bounded in-flight work** — at most ``max_pending`` frames are
   submitted at a time, so a huge batch never materializes more than a
   pool's worth of images in the executor's queues (backpressure).
3. **Failure as data** — a frame that raises comes back as a
   ``FrameRecord(ok=False)``; a worker process that *dies* breaks the
   pool, which the runner detects, converts to ``WorkerCrash`` records
   for the in-flight frames, and recovers from by restarting the pool
   (falling back to in-process execution when restarts are exhausted).
   A failed frame breaks its stream's warm chain; the next frame of that
   stream cold-starts.

The hardened layer (``repro.resilience``, see ``docs/resilience.md``)
adds: a **per-frame deadline** with a watchdog (a hung worker becomes a
``FrameTimeout`` record and the pool is torn down instead of blocking
``wait()`` forever), **bounded retries** with exponential backoff and a
batch-wide budget (transient failures recover; exhausted frames are
quarantined as poison), a **JSONL checkpoint journal** with
:meth:`resume` (a killed batch restarts from completed frames with
bit-identical records), and **deterministic fault injection** through a
:class:`~repro.resilience.FaultPlan` so every one of those paths is a
reproducible test case.

Because a frame's output is a pure function of
``(image, params, warm state)`` and warm state follows the serial chain,
the collected records are **bit-identical** to a serial run of the same
batch — asserted by ``tests/test_parallel.py`` and the throughput bench.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace

import numpy as np

from ..core.params import SlicParams
from ..core.streaming import StreamSegmenter
from ..errors import CheckpointError, ConfigurationError, ImageError, StreamError
from ..obs.tracer import NULL_TRACER
from .records import BatchResult, FrameRecord, FrameTask
from .worker import run_frame

__all__ = ["ParallelRunner"]


class _StreamState:
    """Scheduler-side state of one stream."""

    __slots__ = ("stream_id", "frames", "cursor", "segmenter", "in_flight")

    def __init__(self, stream_id, frames, segmenter):
        self.stream_id = stream_id
        self.frames = iter(frames)
        self.cursor = 0  # index of the next frame to submit
        self.segmenter = segmenter
        self.in_flight = False

    def next_frame(self):
        """The next frame image, or ``None`` when the stream is drained."""
        try:
            return next(self.frames)
        except StopIteration:
            return None


class ParallelRunner:
    """Run batches of images / video streams across a worker pool.

    Parameters
    ----------
    params:
        :class:`SlicParams` applied to every frame. Defaults to the
        streaming default (S-SLIC(0.5), 0.3 px convergence threshold).
    n_workers:
        Worker process count. ``1`` (default) runs every frame in the
        parent process through the *same* scheduler — the serial
        reference the parallel path is bit-identical to.
    max_pending:
        In-flight frame cap (backpressure). Defaults to ``2 * n_workers``.
    drift_limit, strict_shape:
        Forwarded to each stream's :class:`StreamSegmenter`. Strict shape
        checking is ON by default here (a mid-stream resolution change
        produces a clear per-frame ``StreamError`` record).
    tracer:
        Optional :class:`repro.obs.Tracer`; the run emits a ``batch``
        span, ``parallel.*`` counters/gauges, one ``frame`` span per
        frame, and — with ``collect_worker_traces`` — each worker's own
        span tree remapped into the parent trace.
    collect_worker_traces:
        Ship every frame's in-worker span tree back with its record and
        merge it into the parent trace. Costs pickling bandwidth;
        defaults to off.
    max_pool_restarts:
        How many times a broken pool (crashed worker process) is rebuilt
        before the runner falls back to in-process execution for the
        remaining frames. Watchdog teardowns count as restarts.
    frame_timeout:
        Per-frame deadline in seconds (``None`` disables the watchdog —
        the seed behavior). A worker that blows through it is declared
        hung: the pool is torn down (its processes terminated), the
        frame becomes a ``FrameTimeout`` record, and innocent in-flight
        frames are resubmitted without an attempt penalty.
    retry:
        A :class:`repro.resilience.RetryPolicy`, or an int shorthand for
        ``RetryPolicy(retries=n)``. ``None`` / 0 disables retrying.
        Transient failures (worker crash, timeout, unexpected
        exceptions) are re-run with exponential backoff; deterministic
        failures (``ImageError``, ``StreamError``) are not. A frame that
        fails every allowed attempt is quarantined
        (``FrameRecord.quarantined``).
    checkpoint:
        Path of a JSONL checkpoint journal. Every finalized record is
        appended as it completes; :meth:`resume` restarts a killed batch
        from the journal's completed frames.
    faults:
        A :class:`repro.resilience.FaultPlan` (or compact spec string —
        see :meth:`FaultPlan.parse`) of deterministic faults to inject.
        Chaos testing only; ``None`` in production.
    transport:
        How frame arrays cross the process boundary. ``"pickle"``
        (default) serializes images/labels through the executor's pipes;
        ``"shm"`` moves them through ``multiprocessing.shared_memory``
        slabs (zero-copy — see :mod:`repro.parallel.shm`), falling back
        to pickle (with ``parallel.transport_fallbacks`` telemetry) when
        shared memory is unavailable or slab allocation fails;
        ``"auto"`` picks shm when available. Serial runs
        (``n_workers=1``) always use in-process arrays — no transport.
    n_threads:
        Kernel threads per frame for the ``native-mt`` backend — the
        "one process per stream, threads per frame" sweet spot: a
        single process (or one per stream) fans each frame out over
        in-process threads with zero serialization, instead of paying
        process-pool transport per frame. Merged into ``params``
        (``SlicParams.n_threads``); recorded per frame on
        ``FrameRecord.n_threads`` and in frame-span telemetry. Ignored
        by the serial backends.
    """

    def __init__(
        self,
        params: SlicParams = None,
        n_workers: int = 1,
        max_pending: int | None = None,
        drift_limit: float = 0.6,
        strict_shape: bool = True,
        tracer=None,
        collect_worker_traces: bool = False,
        max_pool_restarts: int = 2,
        frame_timeout: float | None = None,
        retry=None,
        checkpoint=None,
        faults=None,
        transport: str = "pickle",
        n_threads: int | None = None,
    ):
        if params is not None and not isinstance(params, SlicParams):
            raise ConfigurationError(
                f"params must be a SlicParams, got {type(params).__name__}"
            )
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_pool_restarts < 0:
            raise ConfigurationError(
                f"max_pool_restarts must be >= 0, got {max_pool_restarts}"
            )
        if frame_timeout is not None and frame_timeout <= 0:
            raise ConfigurationError(
                f"frame_timeout must be > 0 seconds, got {frame_timeout}"
            )
        if transport not in ("pickle", "shm", "auto"):
            raise ConfigurationError(
                f"transport must be 'pickle', 'shm', or 'auto', got {transport!r}"
            )
        self.transport = transport
        # Resolve the default once so serial and parallel runs, and every
        # stream, share the exact same params object.
        self.params = params if params is not None else SlicParams(
            subsample_ratio=0.5, architecture="ppa", convergence_threshold=0.3
        )
        # Pin the kernel backend to a concrete name up front: workers then
        # inherit the parent's choice instead of re-deciding per process,
        # and an explicitly requested but unavailable backend fails fast
        # here rather than once per frame inside the pool.
        from ..kernels import resolve_name

        self.params = self.params.with_(
            kernel_backend=resolve_name(self.params.kernel_backend)
        )
        if n_threads is not None:
            self.params = self.params.with_(n_threads=int(n_threads))
        self.n_workers = int(n_workers)
        self.max_pending = (
            int(max_pending) if max_pending is not None else 2 * self.n_workers
        )
        self.drift_limit = drift_limit
        self.strict_shape = bool(strict_shape)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.collect_worker_traces = bool(collect_worker_traces)
        self.max_pool_restarts = int(max_pool_restarts)
        self.frame_timeout = (
            float(frame_timeout) if frame_timeout is not None else None
        )

        from ..resilience.policy import RetryPolicy

        if retry is None:
            self.retry_policy = RetryPolicy()
        elif isinstance(retry, int):
            self.retry_policy = RetryPolicy(retries=retry)
        elif isinstance(retry, RetryPolicy):
            self.retry_policy = retry
        else:
            raise ConfigurationError(
                f"retry must be a RetryPolicy or int, got {type(retry).__name__}"
            )

        self.checkpoint = checkpoint
        if faults is not None:
            from ..resilience.faults import FaultInjector

            self.fault_injector = FaultInjector(faults, tracer=self.tracer)
        else:
            self.fault_injector = None

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run_batch(self, images) -> BatchResult:
        """Segment independent images (each its own one-frame stream)."""
        return self.run_streams([[image] for image in images])

    def run_streams(self, streams, _resume: bool = False) -> BatchResult:
        """Segment several frame streams with per-stream warm starting.

        ``streams`` is a sequence of frame iterables. Frames are pulled
        lazily — a stream generator is advanced only when its previous
        frame has been collected, so memory stays bounded by the
        in-flight cap, not the batch size.
        """
        states = [
            _StreamState(
                sid,
                frames,
                StreamSegmenter(
                    self.params,
                    drift_limit=self.drift_limit,
                    strict_shape=self.strict_shape,
                ),
            )
            for sid, frames in enumerate(streams)
        ]

        journal = None
        replayed = []
        if self.checkpoint is not None:
            from ..resilience.checkpoint import CheckpointJournal

            if _resume:
                replayed = self._replay_journal(states)
                journal = CheckpointJournal.open_append(
                    self.checkpoint, self.params
                )
            else:
                journal = CheckpointJournal.start(self.checkpoint, self.params)
        elif _resume:
            raise CheckpointError(
                "resume() requires the runner to be constructed with a "
                "checkpoint= journal path"
            )

        transport, transport_name = self._resolve_transport()
        try:
            with self.tracer.span(
                "batch",
                n_streams=len(states),
                n_workers=self.n_workers,
                max_pending=self.max_pending,
                resumed_frames=len(replayed),
                transport=transport_name,
            ) as batch_span:
                start = time.perf_counter()
                stats = self._drive(states, batch_span, journal, transport)
                elapsed = time.perf_counter() - start
        finally:
            if journal is not None:
                journal.close()
            if transport is not None:
                transport.close()
        records = replayed + stats["records"]
        records.sort(key=lambda r: r.key)
        result = BatchResult(
            records=records,
            n_workers=self.n_workers,
            elapsed_s=elapsed,
            max_in_flight=stats["max_in_flight"],
            pool_restarts=stats["restarts"],
            retries_used=stats["retries"],
            timeouts=stats["timeouts"],
            resumed_frames=len(replayed),
            transport=transport_name if not stats["transport_fallback"] else "pickle",
        )
        self.tracer.gauge("parallel.throughput_fps", result.throughput_fps)
        self.tracer.gauge("parallel.workers", self.n_workers)
        return result

    def _resolve_transport(self):
        """Pick the concrete transport for one run.

        Returns ``(ShmTransport | None, name)``. The shm path mirrors
        kernel-backend demotion: an explicit (or auto) shm request that
        cannot be honored falls back to pickle and leaves a trace —
        a ``transport_fallback`` event + ``parallel.transport_fallbacks``
        counter — rather than failing the batch.
        """
        if self.transport == "pickle" or self.n_workers == 1:
            return None, "pickle"
        from .shm import ShmTransport, shm_available

        if shm_available():
            try:
                return ShmTransport(tracer=self.tracer), "shm"
            except Exception as exc:
                reason = str(exc)
        else:
            reason = "shared memory unavailable (no usable /dev/shm)"
        self.tracer.count(
            "parallel.transport_fallbacks",
            labels={"requested": self.transport, "fallback": "pickle"},
        )
        self.tracer.event(
            "transport_fallback",
            requested=self.transport,
            fallback="pickle",
            reason=reason,
        )
        return None, "pickle"

    def resume(self, streams) -> BatchResult:
        """Restart a killed batch from its checkpoint journal.

        Re-supply the *same* streams the original run was given. Frames
        the journal shows completed (per-stream contiguous prefixes) are
        replayed — their records return bit-identical, and the warm
        chains they established are reconstructed through the same
        plan/commit protocol — then the remaining frames execute
        normally, appending to the same journal.
        """
        return self.run_streams(streams, _resume=True)

    def run(self, batch) -> BatchResult:
        """Dispatch on batch shape: images -> :meth:`run_batch`, frame
        streams -> :meth:`run_streams`."""
        batch = list(batch)
        if batch and isinstance(batch[0], np.ndarray):
            return self.run_batch(batch)
        return self.run_streams(batch)

    # ------------------------------------------------------------------
    # Resume replay
    # ------------------------------------------------------------------
    def _replay_journal(self, states) -> list:
        """Advance ``states`` past journaled frames; returns their records."""
        from ..resilience.checkpoint import completed_prefixes, load_journal

        prior = load_journal(self.checkpoint, self.params)
        prefixes = completed_prefixes(prior)
        replayed = []
        for state in states:
            for rec in prefixes.get(state.stream_id, []):
                if state.next_frame() is None:
                    break  # journal covers more frames than the stream has
                if rec.ok:
                    # plan() is a pure function of (segmenter state,
                    # shape), so replaying plan+commit reconstructs the
                    # exact warm chain the original run produced.
                    plan = state.segmenter.plan(rec.result.labels.shape)
                    state.segmenter.commit(plan, rec.result)
                else:
                    state.segmenter.reset()  # original chain broke here
                state.cursor += 1
                replayed.append(rec)
                self.tracer.count("resilience.frames_resumed")
        return replayed

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    @staticmethod
    def _frame_span_id(batch_span, stream_id: int, frame_index: int) -> str:
        """Stable parent-trace id of one frame's ``frame`` span.

        Scoped under the batch span's id so several batches through one
        tracer never collide; stable across attempts (the *worker* span
        ids carry the attempt tag, the frame span is the final record).
        """
        batch_id = getattr(batch_span, "span_id", None) or "b"
        return f"{batch_id}.s{stream_id}f{frame_index}"

    def _make_task(self, state: _StreamState, image, batch_span,
                   attempt: int = 0):
        """Plan the frame against the stream's warm state; returns
        ``(FrameTask, FramePlan)``."""
        plan = state.segmenter.plan(np.asarray(image).shape)
        tracer = self.tracer
        return FrameTask(
            stream_id=state.stream_id,
            frame_index=state.cursor,
            image=image,
            params=self.params,
            warm_centers=plan.warm_centers,
            warm_labels=plan.warm_labels,
            collect_trace=self.collect_worker_traces,
            attempt=attempt,
            trace_id=tracer.trace_id if tracer.enabled else None,
            parent_span_id=(
                self._frame_span_id(batch_span, state.stream_id, state.cursor)
                if tracer.enabled
                else None
            ),
        ), plan

    def _validate_frame(self, image):
        """Submission-time frame validation (satellite: fail in the
        parent with a clear ``ImageError`` instead of a worker traceback).
        Returns the error, or ``None`` when the frame is shippable."""
        from ..types import validate_rgb_image

        try:
            validate_rgb_image(np.asarray(image))
        except ImageError as exc:
            return exc
        return None

    @staticmethod
    def _teardown_executor(executor) -> None:
        """Hard-stop a pool: terminate its processes, abandon its futures.

        ``shutdown(wait=False)`` alone leaves hung workers running (and
        their sleep/loop holding resources); terminating the processes is
        what actually unsticks a hung frame. ``_processes`` is stdlib-
        private, so reach for it defensively.
        """
        for proc in list(
            (getattr(executor, "_processes", None) or {}).values()
        ):
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _drive(self, states, batch_span, journal, transport=None):
        """The scheduling loop shared by serial and parallel execution."""
        policy = self.retry_policy
        injector = self.fault_injector
        records = []
        max_in_flight = 0
        restarts = 0
        retries_used = 0
        timeouts = 0
        # Mid-run fallback: when slab allocation fails, stop encoding new
        # frames (already-encoded frames still finalize through the
        # transport, whose slabs stay valid until close()).
        transport_active = transport is not None
        transport_fell_back = False
        pending = {}  # future -> (state, plan, task, deadline)
        retry_queue = []  # (due_monotonic, state, plan, task)
        executor = None
        serial_fallback = self.n_workers == 1

        def now():
            return time.monotonic()

        def collect(state, plan, record):
            if record.ok:
                state.segmenter.commit(plan, record.result)
            else:
                # Broken warm chain: the next frame of this stream
                # cold-starts (identical policy in serial and parallel).
                state.segmenter.reset()
                self.tracer.count("parallel.frames_failed")
            self.tracer.count("parallel.frames_completed")
            self._emit_frame_telemetry(record, batch_span)
            if journal is not None:
                journal.append(record)
            records.append(record)
            state.cursor += 1
            state.in_flight = False

        def finish(state, plan, task, record):
            """Route one attempt's outcome: retry, quarantine, or collect."""
            nonlocal retries_used
            will_retry = not record.ok and policy.should_retry(
                record.error_type, task.attempt, retries_used
            )
            if not will_retry and transport is not None:
                # Final outcome for this frame: materialize labels out of
                # the result slab and recycle both slabs. (A retried
                # attempt keeps its slabs outstanding — the resubmission
                # re-ships the same refs under the same generation.)
                record = transport.finalize(task, record)
            if will_retry:
                retries_used += 1
                self.tracer.count(
                    "resilience.retries",
                    labels={"error_type": record.error_type or "unknown"},
                )
                next_attempt = task.attempt + 1
                next_task = replace(
                    task,
                    attempt=next_attempt,
                    fault=(
                        injector.fault_for(
                            task.stream_id, task.frame_index, next_attempt,
                            in_worker=not serial_fallback,
                        )
                        if injector is not None
                        else None
                    ),
                )
                due = now() + policy.delay(next_attempt)
                retry_queue.append((due, state, plan, next_task))
                # The stream stays blocked until the retry resolves —
                # without this, the scheduler would pull its next frame
                # while this one waits out its backoff (serial execution
                # never set the flag on the way in).
                state.in_flight = True
                return
            if (
                not record.ok
                and policy.retries > 0
                and policy.retryable(record.error_type)
                and task.attempt >= policy.retries
            ):
                record.quarantined = True
                self.tracer.count(
                    "resilience.quarantined",
                    labels={"error_type": record.error_type or "unknown"},
                )
            collect(state, plan, record)

        def failed_plan_record(state, exc):
            return FrameRecord(
                stream_id=state.stream_id,
                frame_index=state.cursor,
                ok=False,
                error=str(exc),
                error_type=type(exc).__name__,
                worker_pid=os.getpid(),
                warm_started=state.segmenter.has_state,
            )

        def crash_record(task, detail="worker process died"):
            return FrameRecord(
                stream_id=task.stream_id,
                frame_index=task.frame_index,
                ok=False,
                error=detail,
                error_type="WorkerCrash",
                warm_started=task.warm_centers is not None,
                attempts=task.attempt + 1,
            )

        def timeout_record(task):
            return FrameRecord(
                stream_id=task.stream_id,
                frame_index=task.frame_index,
                ok=False,
                error=(
                    f"frame exceeded the {self.frame_timeout:.3g} s deadline; "
                    "worker presumed hung, pool torn down"
                ),
                error_type="FrameTimeout",
                warm_started=task.warm_centers is not None,
                elapsed_s=self.frame_timeout,
                attempts=task.attempt + 1,
            )

        def run_local(task):
            """In-process execution; unexpected exceptions become data
            (in a pool they would surface via ``future.exception()``)."""
            try:
                return run_frame(task, in_worker=False)
            except Exception as exc:
                return FrameRecord(
                    stream_id=task.stream_id,
                    frame_index=task.frame_index,
                    ok=False,
                    error=str(exc),
                    error_type=type(exc).__name__,
                    warm_started=task.warm_centers is not None,
                    worker_pid=os.getpid(),
                    attempts=task.attempt + 1,
                )

        def break_pool():
            """Tear the current pool down and count the restart."""
            nonlocal executor, restarts, serial_fallback
            if executor is not None:
                self._teardown_executor(executor)
                executor = None
            restarts += 1
            self.tracer.count("parallel.pool_restarts")
            if restarts > self.max_pool_restarts:
                serial_fallback = True
                self.tracer.count("parallel.serial_fallbacks")

        def submit_one(state, plan, task):
            """Ship one task to the pool or run it in-process."""
            nonlocal executor, max_in_flight, transport_active, transport_fell_back
            if injector is not None and task.fault is None:
                task = replace(
                    task,
                    fault=injector.fault_for(
                        task.stream_id, task.frame_index, task.attempt,
                        in_worker=not serial_fallback,
                    ),
                )
            if transport_active:
                try:
                    task = transport.encode_task(task)
                    self.tracer.count("parallel.shm_frames")
                except Exception as exc:
                    # Slab allocation failed mid-run: this frame (and all
                    # later ones) ship by pickle; frames already in slabs
                    # are unaffected. Same telemetry shape as a kernel
                    # demotion.
                    transport_active = False
                    transport_fell_back = True
                    self.tracer.count(
                        "parallel.transport_fallbacks",
                        labels={
                            "requested": self.transport,
                            "fallback": "pickle",
                        },
                    )
                    self.tracer.event(
                        "transport_fallback",
                        requested=self.transport,
                        fallback="pickle",
                        reason=str(exc),
                    )
            if serial_fallback:
                max_in_flight = max(max_in_flight, 1)
                finish(state, plan, task, run_local(task))
                return
            if executor is None:
                executor = ProcessPoolExecutor(max_workers=self.n_workers)
            try:
                if injector is not None and injector.breaks_submit(
                    task.stream_id, task.frame_index, task.attempt
                ):
                    raise BrokenProcessPool(
                        "injected: pool broke before submit"
                    )
                future = executor.submit(run_frame, task)
            except BrokenProcessPool as exc:
                # The pool broke between detection points; this attempt
                # dies as a crash (retryable), the pool is rebuilt.
                break_pool()
                finish(state, plan, task, crash_record(task, str(exc)))
                return
            state.in_flight = True
            deadline = (
                now() + self.frame_timeout
                if self.frame_timeout is not None
                else None
            )
            pending[future] = (state, plan, task, deadline)
            max_in_flight = max(max_in_flight, len(pending))

        try:
            while True:
                # Submit due retries first — they hold their stream's slot.
                due_now = [
                    item for item in retry_queue if item[0] <= now()
                ]
                for item in due_now:
                    if len(pending) >= self.max_pending and not serial_fallback:
                        break
                    retry_queue.remove(item)
                    _, state, plan, task = item
                    submit_one(state, plan, task)

                # Then every stream that is ready, up to the cap.
                progressed = True
                while progressed and len(pending) < self.max_pending:
                    progressed = False
                    for state in states:
                        if state.in_flight or len(pending) >= self.max_pending:
                            continue
                        image = state.next_frame()
                        if image is None:
                            continue
                        invalid = self._validate_frame(image)
                        if invalid is not None:
                            # A bad image fails here in the parent with a
                            # clear ImageError record — the worker never
                            # sees it (deterministic, so never retried).
                            collect(state, None, failed_plan_record(state, invalid))
                            progressed = True
                            continue
                        try:
                            task, plan = self._make_task(state, image, batch_span)
                        except StreamError as exc:
                            collect(state, None, failed_plan_record(state, exc))
                            progressed = True
                            continue
                        self.tracer.count("parallel.frames_submitted")
                        submit_one(state, plan, task)
                        progressed = True

                if not pending:
                    if retry_queue:
                        # Nothing in flight; sleep out the earliest backoff.
                        due = min(item[0] for item in retry_queue)
                        delay = due - now()
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    break  # every stream drained and nothing in flight

                # Wake for the first completion, the next frame deadline,
                # or the next due retry — whichever comes first.
                wait_timeout = None
                deadlines = [
                    dl for (_, _, _, dl) in pending.values() if dl is not None
                ]
                if deadlines:
                    wait_timeout = max(0.0, min(deadlines) - now())
                if retry_queue:
                    next_due = max(
                        0.0, min(item[0] for item in retry_queue) - now()
                    )
                    wait_timeout = (
                        next_due
                        if wait_timeout is None
                        else min(wait_timeout, next_due)
                    )
                done, _ = wait(
                    pending, timeout=wait_timeout, return_when=FIRST_COMPLETED
                )

                pool_broken = False
                for future in done:
                    state, plan, task, _ = pending.pop(future)
                    exc = future.exception()
                    if exc is None:
                        finish(state, plan, task, future.result())
                    elif isinstance(exc, BrokenProcessPool):
                        pool_broken = True
                        finish(state, plan, task, crash_record(task, str(exc)))
                    else:
                        # e.g. the task failed to pickle on the way out,
                        # or an injected unexpected exception.
                        finish(
                            state,
                            plan,
                            task,
                            FrameRecord(
                                stream_id=task.stream_id,
                                frame_index=task.frame_index,
                                ok=False,
                                error=str(exc),
                                error_type=type(exc).__name__,
                                warm_started=task.warm_centers is not None,
                                attempts=task.attempt + 1,
                            ),
                        )

                # Watchdog: any frame past its deadline is presumed hung.
                hung = [
                    future
                    for future, (_, _, _, dl) in pending.items()
                    if dl is not None and now() > dl and not future.done()
                ]
                if hung:
                    # The hung frames get FrameTimeout records; innocent
                    # in-flight frames are resubmitted at the same attempt
                    # (their work was lost to the teardown, not failed).
                    victims = [f for f in pending if f not in hung]
                    hung_items = [pending[f] for f in hung]
                    victim_items = [pending[f] for f in victims]
                    pending.clear()
                    break_pool()
                    for state, plan, task, _ in hung_items:
                        timeouts += 1
                        self.tracer.count("resilience.timeouts")
                        finish(state, plan, task, timeout_record(task))
                    for state, plan, task, _ in victim_items:
                        retry_queue.append((now(), state, plan, task))
                    continue

                if pool_broken:
                    # Every remaining in-flight future is doomed; their
                    # attempts die as crashes (retryable) and the pool is
                    # rebuilt.
                    doomed = list(pending.values())
                    pending.clear()
                    break_pool()
                    for state, plan, task, _ in doomed:
                        finish(
                            state, plan, task,
                            crash_record(task, "worker process died (pool broken)"),
                        )
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
        return {
            "records": records,
            "max_in_flight": max_in_flight,
            "restarts": restarts,
            "retries": retries_used,
            "timeouts": timeouts,
            "transport_fallback": transport_fell_back,
        }

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _emit_frame_telemetry(self, record: FrameRecord, batch_span) -> None:
        """One ``frame`` span per record + the worker's stitched span tree.

        The frame span's id is the ``parent_span_id`` the task shipped
        to the worker, so worker span events — already carrying the
        parent's ``trace`` id, globally-unique attempt-tagged ids, and
        resolvable parents — merge into the trace **verbatim**. Span
        events without a ``trace`` field (pre-v2 producers) fall back to
        the old prefix remapping so mixed-version traces stay readable.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return
        frame_id = self._frame_span_id(
            batch_span, record.stream_id, record.frame_index
        )
        parent_id = getattr(batch_span, "span_id", None)
        tracer.sink.emit(
            {
                "ev": "span",
                "name": "frame",
                "id": frame_id,
                "parent": parent_id,
                "trace": tracer.trace_id,
                "ts": time.time() - record.elapsed_s,
                "dur": record.elapsed_s,
                "status": "ok" if record.ok else "error",
                "attrs": {
                    "stream": record.stream_id,
                    "frame": record.frame_index,
                    "worker_pid": record.worker_pid,
                    "warm_started": record.warm_started,
                    "attempts": record.attempts,
                    **(
                        {"transport": record.transport}
                        if record.transport
                        else {}
                    ),
                    **(
                        {"n_threads": record.n_threads}
                        if record.n_threads is not None
                        else {}
                    ),
                    **(
                        {"kernel_demoted_from": record.demoted_from}
                        if record.demoted_from
                        else {}
                    ),
                    **(
                        {
                            "error_type": record.error_type,
                            "error": record.error,
                            "quarantined": record.quarantined,
                        }
                        if not record.ok
                        else {}
                    ),
                },
            }
        )
        for event in record.trace_events:
            kind = event.get("ev")
            if kind == "span":
                if event.get("trace"):
                    # Stitched path: ids/parents/trace already final.
                    tracer.sink.emit(event)
                else:  # legacy producer — remap under the frame span
                    remapped = dict(event)
                    remapped["id"] = f"{frame_id}:{event['id']}"
                    remapped["parent"] = (
                        f"{frame_id}:{event['parent']}"
                        if event.get("parent")
                        else frame_id
                    )
                    tracer.sink.emit(remapped)
            elif kind == "counter":
                # Accumulate through the parent registry so per-frame
                # snapshots sum instead of clobbering each other.
                tracer.count(
                    f"worker.{event['name']}",
                    event.get("value", 0),
                    labels=event.get("labels"),
                )
            elif kind == "gauge":
                tracer.gauge(
                    f"worker.{event['name']}",
                    event.get("value"),
                    labels=event.get("labels"),
                )
            elif kind == "hist":
                # Worker histograms arrive as full snapshots; fold them
                # into the parent-side instrument bucket by bucket.
                tracer.metrics.histogram(
                    f"worker.{event['name']}",
                    event["buckets"],
                    labels=event.get("labels"),
                ).merge(event)
            # meta / point events from workers are dropped: the parent
            # emits its own meta.
