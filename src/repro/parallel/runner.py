"""The parallel batch/video execution engine.

:class:`ParallelRunner` shards work across a ``concurrent.futures``
process pool under three rules that together give the package its
guarantees (see ``docs/parallel.md``):

1. **Per-stream ordering** — frames of one stream run strictly in order,
   each warm-starting from its committed predecessor via the same
   :meth:`~repro.core.streaming.StreamSegmenter.plan` /
   :meth:`~repro.core.streaming.StreamSegmenter.commit` pair the serial
   streaming driver uses. Parallelism comes from *independent* streams
   (a batch of still images is a batch of one-frame streams).
2. **Bounded in-flight work** — at most ``max_pending`` frames are
   submitted at a time, so a huge batch never materializes more than a
   pool's worth of images in the executor's queues (backpressure).
3. **Failure as data** — a frame that raises comes back as a
   ``FrameRecord(ok=False)``; a worker process that *dies* breaks the
   pool, which the runner detects, converts to ``WorkerCrash`` records
   for the in-flight frames, and recovers from by restarting the pool
   (falling back to in-process execution when restarts are exhausted).
   A failed frame breaks its stream's warm chain; the next frame of that
   stream cold-starts.

Because a frame's output is a pure function of
``(image, params, warm state)`` and warm state follows the serial chain,
the collected records are **bit-identical** to a serial run of the same
batch — asserted by ``tests/test_parallel.py`` and the throughput bench.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from ..core.params import SlicParams
from ..core.streaming import StreamSegmenter
from ..errors import ConfigurationError, StreamError
from ..obs.tracer import NULL_TRACER
from .records import BatchResult, FrameRecord, FrameTask
from .worker import run_frame

__all__ = ["ParallelRunner"]


class _StreamState:
    """Scheduler-side state of one stream."""

    __slots__ = ("stream_id", "frames", "cursor", "segmenter", "in_flight")

    def __init__(self, stream_id, frames, segmenter):
        self.stream_id = stream_id
        self.frames = iter(frames)
        self.cursor = 0  # index of the next frame to submit
        self.segmenter = segmenter
        self.in_flight = False

    def next_frame(self):
        """The next frame image, or ``None`` when the stream is drained."""
        try:
            return next(self.frames)
        except StopIteration:
            return None


class ParallelRunner:
    """Run batches of images / video streams across a worker pool.

    Parameters
    ----------
    params:
        :class:`SlicParams` applied to every frame. Defaults to the
        streaming default (S-SLIC(0.5), 0.3 px convergence threshold).
    n_workers:
        Worker process count. ``1`` (default) runs every frame in the
        parent process through the *same* scheduler — the serial
        reference the parallel path is bit-identical to.
    max_pending:
        In-flight frame cap (backpressure). Defaults to ``2 * n_workers``.
    drift_limit, strict_shape:
        Forwarded to each stream's :class:`StreamSegmenter`. Strict shape
        checking is ON by default here (a mid-stream resolution change
        produces a clear per-frame ``StreamError`` record).
    tracer:
        Optional :class:`repro.obs.Tracer`; the run emits a ``batch``
        span, ``parallel.*`` counters/gauges, one ``frame`` span per
        frame, and — with ``collect_worker_traces`` — each worker's own
        span tree remapped into the parent trace.
    collect_worker_traces:
        Ship every frame's in-worker span tree back with its record and
        merge it into the parent trace. Costs pickling bandwidth;
        defaults to off.
    max_pool_restarts:
        How many times a broken pool (crashed worker process) is rebuilt
        before the runner falls back to in-process execution for the
        remaining frames.
    """

    def __init__(
        self,
        params: SlicParams = None,
        n_workers: int = 1,
        max_pending: int = None,
        drift_limit: float = 0.6,
        strict_shape: bool = True,
        tracer=None,
        collect_worker_traces: bool = False,
        max_pool_restarts: int = 2,
    ):
        if params is not None and not isinstance(params, SlicParams):
            raise ConfigurationError(
                f"params must be a SlicParams, got {type(params).__name__}"
            )
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_pool_restarts < 0:
            raise ConfigurationError(
                f"max_pool_restarts must be >= 0, got {max_pool_restarts}"
            )
        # Resolve the default once so serial and parallel runs, and every
        # stream, share the exact same params object.
        self.params = params if params is not None else SlicParams(
            subsample_ratio=0.5, architecture="ppa", convergence_threshold=0.3
        )
        # Pin the kernel backend to a concrete name up front: workers then
        # inherit the parent's choice instead of re-deciding per process,
        # and an explicitly requested but unavailable backend fails fast
        # here rather than once per frame inside the pool.
        from ..kernels import resolve_name

        self.params = self.params.with_(
            kernel_backend=resolve_name(self.params.kernel_backend)
        )
        self.n_workers = int(n_workers)
        self.max_pending = (
            int(max_pending) if max_pending is not None else 2 * self.n_workers
        )
        self.drift_limit = drift_limit
        self.strict_shape = bool(strict_shape)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.collect_worker_traces = bool(collect_worker_traces)
        self.max_pool_restarts = int(max_pool_restarts)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run_batch(self, images) -> BatchResult:
        """Segment independent images (each its own one-frame stream)."""
        return self.run_streams([[image] for image in images])

    def run_streams(self, streams) -> BatchResult:
        """Segment several frame streams with per-stream warm starting.

        ``streams`` is a sequence of frame iterables. Frames are pulled
        lazily — a stream generator is advanced only when its previous
        frame has been collected, so memory stays bounded by the
        in-flight cap, not the batch size.
        """
        states = [
            _StreamState(
                sid,
                frames,
                StreamSegmenter(
                    self.params,
                    drift_limit=self.drift_limit,
                    strict_shape=self.strict_shape,
                ),
            )
            for sid, frames in enumerate(streams)
        ]
        with self.tracer.span(
            "batch",
            n_streams=len(states),
            n_workers=self.n_workers,
            max_pending=self.max_pending,
        ) as batch_span:
            start = time.perf_counter()
            records, max_in_flight, restarts = self._drive(states, batch_span)
            elapsed = time.perf_counter() - start
        records.sort(key=lambda r: r.key)
        result = BatchResult(
            records=records,
            n_workers=self.n_workers,
            elapsed_s=elapsed,
            max_in_flight=max_in_flight,
            pool_restarts=restarts,
        )
        self.tracer.gauge("parallel.throughput_fps", result.throughput_fps)
        self.tracer.gauge("parallel.workers", self.n_workers)
        return result

    def run(self, batch) -> BatchResult:
        """Dispatch on batch shape: images -> :meth:`run_batch`, frame
        streams -> :meth:`run_streams`."""
        batch = list(batch)
        if batch and isinstance(batch[0], np.ndarray):
            return self.run_batch(batch)
        return self.run_streams(batch)

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _make_task(self, state: _StreamState, image):
        """Plan the frame against the stream's warm state; returns
        ``(FrameTask, FramePlan)``."""
        plan = state.segmenter.plan(np.asarray(image).shape)
        return FrameTask(
            stream_id=state.stream_id,
            frame_index=state.cursor,
            image=image,
            params=self.params,
            warm_centers=plan.warm_centers,
            warm_labels=plan.warm_labels,
            collect_trace=self.collect_worker_traces,
        ), plan

    def _drive(self, states, batch_span):
        """The scheduling loop shared by serial and parallel execution."""
        records = []
        max_in_flight = 0
        restarts = 0
        pending = {}  # future -> (state, plan, task)
        executor = None
        serial_fallback = self.n_workers == 1

        def collect(state, plan, record):
            if record.ok:
                state.segmenter.commit(plan, record.result)
            else:
                # Broken warm chain: the next frame of this stream
                # cold-starts (identical policy in serial and parallel).
                state.segmenter.reset()
                self.tracer.count("parallel.frames_failed")
            self.tracer.count("parallel.frames_completed")
            self._emit_frame_telemetry(record, batch_span)
            records.append(record)
            state.cursor += 1
            state.in_flight = False

        def failed_plan_record(state, exc):
            return FrameRecord(
                stream_id=state.stream_id,
                frame_index=state.cursor,
                ok=False,
                error=str(exc),
                error_type=type(exc).__name__,
                worker_pid=os.getpid(),
            )

        def crash_record(task, detail="worker process died"):
            return FrameRecord(
                stream_id=task.stream_id,
                frame_index=task.frame_index,
                ok=False,
                error=detail,
                error_type="WorkerCrash",
                warm_started=task.warm_centers is not None,
            )

        try:
            while True:
                # Submit every stream that is ready, up to the cap.
                progressed = True
                while progressed and len(pending) < self.max_pending:
                    progressed = False
                    for state in states:
                        if state.in_flight or len(pending) >= self.max_pending:
                            continue
                        image = state.next_frame()
                        if image is None:
                            continue
                        try:
                            task, plan = self._make_task(state, image)
                        except StreamError as exc:
                            record = failed_plan_record(state, exc)
                            state.segmenter.reset()
                            self.tracer.count("parallel.frames_failed")
                            self.tracer.count("parallel.frames_completed")
                            self._emit_frame_telemetry(record, batch_span)
                            records.append(record)
                            state.cursor += 1
                            progressed = True
                            continue
                        self.tracer.count("parallel.frames_submitted")
                        if serial_fallback:
                            max_in_flight = max(max_in_flight, 1)
                            collect(state, plan, run_frame(task))
                            progressed = True
                            continue
                        if executor is None:
                            executor = ProcessPoolExecutor(
                                max_workers=self.n_workers
                            )
                        try:
                            future = executor.submit(run_frame, task)
                        except BrokenProcessPool:
                            # The pool broke between detection points;
                            # this frame dies, the drain below handles
                            # the rest.
                            collect(state, plan, crash_record(task))
                            executor.shutdown(wait=False)
                            executor = None
                            restarts += 1
                            self.tracer.count("parallel.pool_restarts")
                            if restarts > self.max_pool_restarts:
                                serial_fallback = True
                            progressed = True
                            continue
                        state.in_flight = True
                        pending[future] = (state, plan, task)
                        max_in_flight = max(max_in_flight, len(pending))
                        progressed = True
                if not pending:
                    break  # every stream drained and nothing in flight

                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                pool_broken = False
                for future in done:
                    state, plan, task = pending.pop(future)
                    exc = future.exception()
                    if exc is None:
                        collect(state, plan, future.result())
                    elif isinstance(exc, BrokenProcessPool):
                        pool_broken = True
                        collect(state, plan, crash_record(task, str(exc)))
                    else:
                        # e.g. the task failed to pickle on the way out.
                        collect(
                            state,
                            plan,
                            FrameRecord(
                                stream_id=task.stream_id,
                                frame_index=task.frame_index,
                                ok=False,
                                error=str(exc),
                                error_type=type(exc).__name__,
                                warm_started=task.warm_centers is not None,
                            ),
                        )
                if pool_broken:
                    # Every remaining in-flight future is doomed; drain
                    # them as crash records and rebuild the pool.
                    for future, (state, plan, task) in list(pending.items()):
                        collect(
                            state, plan,
                            crash_record(task, "worker process died (pool broken)"),
                        )
                    pending.clear()
                    executor.shutdown(wait=False)
                    executor = None
                    restarts += 1
                    self.tracer.count("parallel.pool_restarts")
                    if restarts > self.max_pool_restarts:
                        serial_fallback = True
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
        return records, max_in_flight, restarts

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _emit_frame_telemetry(self, record: FrameRecord, batch_span) -> None:
        """One ``frame`` span per record + remapped worker span trees."""
        tracer = self.tracer
        if not tracer.enabled:
            return
        frame_id = f"s{record.stream_id}f{record.frame_index}"
        parent_id = getattr(batch_span, "span_id", None)
        tracer.sink.emit(
            {
                "ev": "span",
                "name": "frame",
                "id": frame_id,
                "parent": parent_id,
                "ts": time.time() - record.elapsed_s,
                "dur": record.elapsed_s,
                "status": "ok" if record.ok else "error",
                "attrs": {
                    "stream": record.stream_id,
                    "frame": record.frame_index,
                    "worker_pid": record.worker_pid,
                    "warm_started": record.warm_started,
                    **(
                        {"error_type": record.error_type, "error": record.error}
                        if not record.ok
                        else {}
                    ),
                },
            }
        )
        for event in record.trace_events:
            kind = event.get("ev")
            if kind == "span":
                remapped = dict(event)
                remapped["id"] = f"{frame_id}:{event['id']}"
                remapped["parent"] = (
                    f"{frame_id}:{event['parent']}"
                    if event.get("parent")
                    else frame_id
                )
                tracer.sink.emit(remapped)
            elif kind == "counter":
                # Accumulate through the parent registry so per-frame
                # snapshots sum instead of clobbering each other.
                tracer.count(f"worker.{event['name']}", event.get("value", 0))
            elif kind == "gauge":
                tracer.gauge(f"worker.{event['name']}", event.get("value"))
            # meta / hist / point events from workers are dropped: the
            # parent emits its own meta, and no worker path uses those.
