"""repro.parallel — the batch/video parallel execution engine.

The paper's point is throughput (30 fps at 1080p); this package is the
software execution story: a :class:`ParallelRunner` that shards a batch
of stills or the frames of multiple video streams across a
``multiprocessing`` worker pool with

* per-stream ordering (video frames warm-start from their committed
  predecessor, exactly as :class:`repro.core.StreamSegmenter` would),
* bounded in-flight work (backpressure),
* deterministic, bit-identical-to-serial result collection, and
* worker failures returned as per-frame error records, never a hung pool.

The hardened layer (``repro.resilience``) rides on the same runner:
per-frame deadlines with a hung-worker watchdog, bounded retries with
exponential backoff and quarantine, JSONL checkpoint journals with
bit-identical :meth:`ParallelRunner.resume`, kernel-backend supervision,
and deterministic fault injection to drive every recovery path in tests
(``docs/resilience.md``).

Quick start::

    from repro.parallel import ParallelRunner, synthetic_batch

    runner = ParallelRunner(n_workers=4)
    batch = runner.run_batch(synthetic_batch(16))
    print(batch.throughput_fps, batch.n_failed)

See ``docs/parallel.md`` for the architecture and guarantees.
"""

from .batch import load_image_batch, synthetic_batch, synthetic_streams
from .records import BatchResult, FrameRecord, FrameTask
from .runner import ParallelRunner
from .shm import ShmTransport, SlabPool, SlabRef, shm_available
from .worker import run_frame

__all__ = [
    "ParallelRunner",
    "BatchResult",
    "FrameRecord",
    "FrameTask",
    "run_frame",
    "load_image_batch",
    "synthetic_batch",
    "synthetic_streams",
    "ShmTransport",
    "SlabPool",
    "SlabRef",
    "shm_available",
]
