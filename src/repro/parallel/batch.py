"""Batch construction helpers for the CLI and benchmarks.

Three ways to build the input of a :class:`~repro.parallel.ParallelRunner`:

* :func:`load_image_batch` — a directory or glob of PPM stills;
* :func:`synthetic_batch` — ``count`` distinct seeded synthetic scenes;
* :func:`synthetic_streams` — ``n_streams`` synthetic video streams whose
  frames are generated lazily, so a long stream never materializes ahead
  of the runner's backpressure window.
"""

from __future__ import annotations

import glob as _glob
from pathlib import Path

from ..data import SceneConfig, VideoSequence, generate_scene, read_ppm
from ..errors import DatasetError

__all__ = ["load_image_batch", "synthetic_batch", "synthetic_streams"]


def load_image_batch(pattern) -> list:
    """Load a batch of RGB stills from a directory or glob pattern.

    A directory loads every ``*.ppm`` inside it (sorted by name, so the
    batch order — and therefore the record order — is stable across
    filesystems). Anything else is treated as a glob pattern.
    """
    path = Path(pattern)
    if path.is_dir():
        files = sorted(path.glob("*.ppm"))
    else:
        files = sorted(Path(p) for p in _glob.glob(str(pattern)))
    if not files:
        raise DatasetError(f"no PPM images match {pattern!r}")
    return [read_ppm(f) for f in files]


def synthetic_batch(
    count: int, height: int = 120, width: int = 160, seed: int = 0
) -> list:
    """``count`` independent synthetic scenes (seeds ``seed .. seed+count-1``)."""
    if count < 1:
        raise DatasetError(f"batch count must be >= 1, got {count}")
    config = SceneConfig(height=height, width=width)
    return [generate_scene(config, seed=seed + i).image for i in range(count)]


def synthetic_streams(
    n_streams: int,
    n_frames: int,
    height: int = 120,
    width: int = 160,
    motion: str = "shake",
    seed: int = 0,
):
    """``n_streams`` lazy synthetic video streams of ``n_frames`` each.

    Returns a list of generators; each yields its frames' images on
    demand (the :class:`~repro.data.VideoSequence` renders per access).
    """
    if n_streams < 1:
        raise DatasetError(f"n_streams must be >= 1, got {n_streams}")
    config = SceneConfig(height=height, width=width, noise=0.0)

    def frames(stream_seed):
        seq = VideoSequence(
            n_frames, config=config, motion=motion, seed=stream_seed
        )
        for frame in seq:
            yield frame.image

    return [frames(seed + i) for i in range(n_streams)]
