"""The function that runs inside each worker process.

:func:`run_frame` is the *only* code the pool executes. It is defensive
by design: any exception the segmentation raises — bad image, warm-state
mismatch, numerical failure — is converted into a ``FrameRecord`` with
``ok=False`` so the pool never sees a traceback. Only an interpreter
death (segfault, OOM kill, ``os._exit``) escapes it; the runner converts
that into a ``WorkerCrash`` record when the pool reports the break.

Workers are deliberately stateless: a frame's output is a pure function
of ``(image, params, warm_centers, warm_labels)``, which is what makes
parallel output bit-identical to serial (see ``docs/parallel.md``).
"""

from __future__ import annotations

import os
import time

from ..core.engine import run_segmentation
from ..errors import ReproError
from .records import FrameRecord, FrameTask

__all__ = ["run_frame"]

#: Test-only crash injection: set to ``"<stream_id>:<frame_index>"`` in the
#: environment to make the worker die mid-frame with ``os._exit`` —
#: exercising the runner's broken-pool recovery without a real segfault.
CRASH_ENV = "REPRO_PARALLEL_CRASH_FRAME"


def _collecting_tracer():
    from ..obs import MemorySink, Tracer

    return Tracer(MemorySink())


def run_frame(task: FrameTask) -> FrameRecord:
    """Execute one :class:`FrameTask`; never raises for frame errors."""
    if os.environ.get(CRASH_ENV) == f"{task.stream_id}:{task.frame_index}":
        os._exit(3)  # simulate a hard worker death (tests only)

    tracer = _collecting_tracer() if task.collect_trace else None
    start = time.perf_counter()
    try:
        result = run_segmentation(
            task.image,
            task.params,
            warm_centers=task.warm_centers,
            warm_labels=task.warm_labels,
            tracer=tracer,
        )
    except (ReproError, ValueError, TypeError) as exc:
        return FrameRecord(
            stream_id=task.stream_id,
            frame_index=task.frame_index,
            ok=False,
            error=str(exc),
            error_type=type(exc).__name__,
            warm_started=task.warm_centers is not None,
            elapsed_s=time.perf_counter() - start,
            worker_pid=os.getpid(),
        )
    elapsed = time.perf_counter() - start

    events = []
    if tracer is not None:
        tracer.flush()
        events = list(tracer.sink.events)
    from ..kernels import resolve_name

    return FrameRecord(
        stream_id=task.stream_id,
        frame_index=task.frame_index,
        ok=True,
        result=result,
        warm_started=task.warm_centers is not None,
        elapsed_s=elapsed,
        worker_pid=os.getpid(),
        trace_events=events,
        kernel_backend=resolve_name(task.params.kernel_backend),
    )
