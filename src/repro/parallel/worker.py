"""The function that runs inside each worker process.

:func:`run_frame` is the *only* code the pool executes. It is defensive
by design: any exception the segmentation raises — bad image, warm-state
mismatch, numerical failure — is converted into a ``FrameRecord`` with
``ok=False`` so the pool never sees a traceback. Only an interpreter
death (segfault, OOM kill, ``os._exit``) escapes it; the runner converts
that into a ``WorkerCrash`` record when the pool reports the break.

Two resilience hooks live here:

* **fault injection** — when the task carries a
  :class:`repro.resilience.FaultSpec`, it is applied first
  (crash/hang/slow/corrupt/raise; see ``repro.resilience.faults``).
  ``in_worker`` gates the process-level faults: the runner sets it
  False when executing frames in-process, where killing the interpreter
  would end the experiment rather than exercise recovery.
* **backend supervision** — the kernel backend is resolved through the
  supervisor (first-dispatch known-answer self-test, memoized per
  process); a failing backend is demoted native-mt -> native ->
  vectorized -> reference and the demotion is recorded on the
  ``FrameRecord``.

Workers are deliberately stateless: a frame's output is a pure function
of ``(image, params, warm_centers, warm_labels)``, which is what makes
parallel output bit-identical to serial (see ``docs/parallel.md``).
The one exception is a per-process *cache*: each worker keeps a
:class:`~repro.core.connectivity.ConnectivityState` per stream so
warm-started frames re-resolve only the connectivity tiles whose labels
changed. A continuity guard (the cached state must expect exactly this
frame index) makes retries, rescheduling across workers, and pool
rebuilds fall back to a cold resolve — and because the state is a pure
cache, a hit and a miss produce bit-identical labels, preserving the
stateless contract.
"""

from __future__ import annotations

import os
import time

from ..core.engine import run_segmentation
from ..errors import ReproError
from .records import FrameRecord, FrameTask

__all__ = ["run_frame"]

#: Test-only crash injection: set to ``"<stream_id>:<frame_index>"`` in the
#: environment to make the worker die mid-frame with ``os._exit`` —
#: exercising the runner's broken-pool recovery without a real segfault.
#: (Superseded by ``repro.resilience.FaultPlan`` crash faults, kept for
#: env-only contexts.)
CRASH_ENV = "REPRO_PARALLEL_CRASH_FRAME"

#: Per-process incremental-connectivity caches:
#: ``stream_id -> (expected_frame_index, ConnectivityState)``. Pure
#: caches — an eviction or a continuity miss costs one cold resolve,
#: never a different result. Bounded so long many-stream batches cannot
#: accumulate per-stream frame buffers without limit.
_CONN_STATES: dict = {}
_CONN_STATES_MAX = 16


def _connectivity_state(task):
    """The stream's cached state, or a fresh one on a continuity miss.

    A cold start (no warm state on the task) always begins a fresh
    cache; a warm frame reuses the cached state only when it expects
    exactly this frame index — otherwise the frame was rescheduled,
    retried after a mid-frame failure, or landed on a different worker,
    and a fresh cold-resolving state keeps the output bit-identical.
    """
    from ..core.connectivity import ConnectivityState

    cold = task.warm_centers is None and task.warm_labels is None
    if not cold:
        entry = _CONN_STATES.get(task.stream_id)
        if entry is not None and entry[0] == task.frame_index:
            return entry[1]
    return ConnectivityState()


def _store_connectivity_state(task, state) -> None:
    _CONN_STATES[task.stream_id] = (task.frame_index + 1, state)
    while len(_CONN_STATES) > _CONN_STATES_MAX:
        _CONN_STATES.pop(next(iter(_CONN_STATES)))


def _collecting_tracer(task):
    """An in-memory tracer that joins the parent's trace.

    Span ids get the ``s<stream>f<frame>a<attempt>.`` prefix (globally
    unique inside the trace, attempt-tagged so retried executions stay
    distinguishable) and root spans hang from the parent-side ``frame``
    span, so the parent can merge the events verbatim — no remapping.
    """
    from ..obs import MemorySink, Tracer

    return Tracer(
        MemorySink(),
        trace_id=task.trace_id,
        span_prefix=f"s{task.stream_id}f{task.frame_index}a{task.attempt}.",
        root_parent=task.parent_span_id,
    )


def run_frame(task: FrameTask, in_worker: bool = True) -> FrameRecord:
    """Execute one :class:`FrameTask`; never raises for frame errors.

    ``in_worker`` is True in pool processes (the default — it is what
    the executor calls); the runner passes False for in-process
    execution so process-level injected faults are skipped.
    """
    if os.environ.get(CRASH_ENV) == f"{task.stream_id}:{task.frame_index}":
        os._exit(3)  # simulate a hard worker death (tests only)

    from ..kernels.supervisor import supervised_resolve

    tracer = _collecting_tracer(task) if task.collect_trace else None
    start = time.perf_counter()
    try:
        if task.shm_result is not None or task.shm_image is not None:
            # Zero-copy transport: attach the parent's slabs and run on
            # read-only views (elapsed_s honestly includes the attach).
            from .shm import decode_task

            task = decode_task(task)

        image = task.image
        forced_backend_failures = None
        if task.fault is not None:
            from ..resilience.faults import apply_fault

            if task.fault.kind == "kernel_fail":
                forced_backend_failures = {
                    _requested_backend_name(task.params.kernel_backend)
                }
            else:
                # crash/hang never return; error kinds raise out of
                # run_frame only if they are not part of the
                # expected-error contract.
                image = apply_fault(task.fault, image, in_worker=in_worker)

        backend = supervised_resolve(
            task.params.kernel_backend,
            tracer=tracer,
            forced_failures=forced_backend_failures,
        )
        params = task.params
        if backend.name != params.kernel_backend:
            params = params.with_(kernel_backend=backend.name)
        n_threads = None
        if backend.name == "native-mt":
            from ..kernels.native_mt import resolve_threads

            n_threads = resolve_threads(params.n_threads)
        conn_state = _connectivity_state(task)
        result = run_segmentation(
            image,
            params,
            warm_centers=task.warm_centers,
            warm_labels=task.warm_labels,
            tracer=tracer,
            connectivity_state=conn_state,
        )
        _store_connectivity_state(task, conn_state)
    except (ReproError, ValueError, TypeError) as exc:
        return FrameRecord(
            stream_id=task.stream_id,
            frame_index=task.frame_index,
            ok=False,
            error=str(exc),
            error_type=type(exc).__name__,
            warm_started=task.warm_centers is not None,
            elapsed_s=time.perf_counter() - start,
            worker_pid=os.getpid(),
            attempts=task.attempt + 1,
        )
    elapsed = time.perf_counter() - start

    events = []
    if tracer is not None:
        tracer.flush()
        events = list(tracer.sink.events)

    record = FrameRecord(
        stream_id=task.stream_id,
        frame_index=task.frame_index,
        ok=True,
        result=result,
        warm_started=task.warm_centers is not None,
        elapsed_s=elapsed,
        worker_pid=os.getpid(),
        trace_events=events,
        kernel_backend=backend.name,
        n_threads=n_threads,
        attempts=task.attempt + 1,
        demoted_from=backend.demoted_from,
    )
    if task.shm_result is not None:
        # Return the labels through the result slab instead of pickling
        # them; a slab violation fails the frame like any other error.
        from .shm import publish_result

        try:
            record = publish_result(task, record)
        except ReproError as exc:
            return FrameRecord(
                stream_id=task.stream_id,
                frame_index=task.frame_index,
                ok=False,
                error=str(exc),
                error_type=type(exc).__name__,
                warm_started=task.warm_centers is not None,
                elapsed_s=time.perf_counter() - start,
                worker_pid=os.getpid(),
                kernel_backend=backend.name,
                attempts=task.attempt + 1,
            )
    return record


def _requested_backend_name(name):
    """The concrete backend a ``kernel_fail`` fault should break."""
    from ..kernels import resolve_name

    try:
        return resolve_name(name)
    except Exception:
        return "vectorized"
