"""The ``vectorized`` backend: batched pure-numpy kernels.

Portable optimized backend — no compiler required. The kernels:

* :func:`cpa_assign` — processes a whole center subset per call. Window
  pixels for a chunk of centers are gathered with clipped index arrays,
  distances computed in one batch, and the per-pixel winner selected with
  a two-pass ``np.minimum.at`` scatter-argmin that reproduces the
  reference's sequential tie rule exactly (first center in scan order to
  reach the minimum keeps the pixel). Scratch buffers are preallocated
  per process and reused across sweeps.
* :func:`ppa_assign` — the 9-candidate evaluation fused over candidate
  slots: per-slot ``(M,)`` temporaries and a running minimum instead of
  the reference's ``(M, 9, 3)`` intermediates.
* :func:`connected_components` — union-find replaced by iterative
  min-label propagation with pointer jumping; no Python edge loop.
* :func:`lab_codes` — the fixed-point RGB->Lab pipeline run once per
  *unique* 24-bit color and gathered back, exploiting that real frames
  use a small fraction of the color cube.
* :func:`merge_small` — the greedy small-component merge walk with the
  per-component neighbor scan batched (vectorized root resolution and
  ``np.lexsort`` best-neighbor selection).
* ``contingency_table`` / ``chamfer_distance`` — the numpy reference
  implementations are already batched; aliased as-is.

Every arithmetic expression mirrors the reference implementations
operation for operation (same dtypes, same reduction order), so labels
*and* distance buffers come out bit-identical — the property tests in
``tests/test_kernels.py`` and ``benchmarks/bench_kernels.py`` enforce it.
"""

from __future__ import annotations

import numpy as np

from ..color.hw_convert import convert_codes_reference
from ..core.assignment import _PPA_CHUNK, PixelArrays
from ..core.connectivity import (
    _min_propagate,
    _resolve_roots,
    _run_ids,
    _UnionFind,
)
from ..core.distance import WEIGHT_FRAC_BITS, FixedDatapath
from ..metrics.boundaries import (  # noqa: F401 — numpy-bound, reference is optimal
    chamfer_distance_reference as chamfer_distance,
)
from ..metrics.boundaries import (  # noqa: F401
    contingency_table_reference as contingency_table,
)
from ..types import validate_label_map

__all__ = [
    "cpa_assign",
    "ppa_assign",
    "connected_components",
    "lab_codes",
    "lab_from_codes",
    "sigma_accumulate",
    "merge_small",
    "contingency_table",
    "chamfer_distance",
    "is_available",
]

#: Cap on window entries materialized per CPA chunk (entry = one
#: center/pixel pair); bounds peak memory at ~160 MB of temporaries.
_MAX_ENTRIES = 1 << 22

#: Scan-position sentinel, larger than any entry index.
_POS_SENTINEL = np.int64(1) << 62


def is_available() -> bool:
    return True


#: Per-process reusable CPA scratch, keyed by ``(n_pixels, fixed)``.
#: Checkout/checkin protocol: buffers are popped at sweep start and only
#: stored back after a clean finish, so an exception mid-sweep can never
#: leave a dirty buffer for the next sweep to trust. The chunk loop
#: restores ``gmin``/``first`` to their sentinel state as it goes, so
#: checkin needs no re-initialization; only ``touched`` is cleared on
#: checkout.
_CPA_SCRATCH: dict = {}


def _cpa_scratch_checkout(n: int, fixed: bool, sentinel):
    bufs = _CPA_SCRATCH.pop((n, fixed), None)
    if bufs is None:
        gmin = np.full(n, sentinel, dtype=np.int64 if fixed else np.float64)
        first = np.full(n, _POS_SENTINEL, dtype=np.int64)
        touched = np.zeros(n, dtype=bool)
        return gmin, first, touched
    bufs[2].fill(False)
    return bufs


def _cpa_scratch_checkin(n: int, fixed: bool, bufs) -> None:
    if len(_CPA_SCRATCH) >= 4:  # bound growth across geometries
        _CPA_SCRATCH.clear()
    _CPA_SCRATCH[(n, fixed)] = bufs


def cpa_assign(
    lab: np.ndarray,
    centers: np.ndarray,
    weight: float,
    grid_s: float,
    dist_buf: np.ndarray,
    labels_buf: np.ndarray,
    cluster_indices: np.ndarray | None = None,
    datapath: FixedDatapath = None,
    compactness: float | None = None,
    codes: np.ndarray | None = None,
) -> int:
    """Batched CPA window scan; same contract as ``assign_cpa``.

    Returns the number of distinct pixels scanned at least once.
    """
    h, w = lab.shape[:2]
    half = int(np.ceil(grid_s))
    if cluster_indices is None:
        cluster_indices = np.arange(len(centers))
    ks = np.asarray(cluster_indices, dtype=np.int64)
    if len(ks) == 0:
        return 0
    if datapath is not None:
        c_all = datapath.encode_centers(centers)
        weight_raw = datapath.weight_raw(compactness, grid_s)
        sf = datapath.spatial_frac_bits
        codes_flat = np.asarray(codes, dtype=np.int64).reshape(-1, 3)
        sentinel = np.iinfo(np.int64).max
    else:
        lab_flat = lab.reshape(-1, 3)
        sentinel = np.inf
    gmin, first, touched = _cpa_scratch_checkout(
        h * w, datapath is not None, sentinel
    )
    dist_flat = dist_buf.reshape(-1)
    labels_flat = labels_buf.reshape(-1)
    offsets = np.arange(-half, half + 1, dtype=np.int64)
    win = 2 * half + 1
    chunk = max(1, _MAX_ENTRIES // (win * win))
    for c0 in range(0, len(ks), chunk):
        kk = ks[c0 : c0 + chunk]
        cx = centers[kk, 3]
        cy = centers[kk, 4]
        fx = np.floor(cx).astype(np.int64)
        fy = np.floor(cy).astype(np.int64)
        xs = fx[:, None] + offsets[None, :]  # (C, win)
        ys = fy[:, None] + offsets[None, :]
        vx = (xs >= 0) & (xs < w)
        vy = (ys >= 0) & (ys < h)
        xc = np.clip(xs, 0, w - 1)
        yc = np.clip(ys, 0, h - 1)
        flat = yc[:, :, None] * w + xc[:, None, :]  # (C, win, win)
        valid = (vy[:, :, None] & vx[:, None, :]).ravel()
        if datapath is None:
            window = lab_flat[flat]  # (C, win, win, 3)
            dc2 = ((window - centers[kk, 0:3][:, None, None, :]) ** 2).sum(
                axis=-1
            )
            dx2 = (xs - cx[:, None]) ** 2
            dy2 = (ys - cy[:, None]) ** 2
            d2 = dc2 + weight * (dy2[:, :, None] + dx2[:, None, :])
        else:
            window = codes_flat[flat]
            dlab = window - c_all[kk, 0:3][:, None, None, :]
            dc2 = (dlab * dlab).sum(axis=-1)
            dxy_x = (xs << sf) - c_all[kk, 3][:, None]
            dxy_y = (ys << sf) - c_all[kk, 4][:, None]
            ds2 = (
                dxy_x[:, None, :] * dxy_x[:, None, :]
                + dxy_y[:, :, None] * dxy_y[:, :, None]
            ) >> (2 * sf)
            d2 = dc2 + ((weight_raw * ds2) >> WEIGHT_FRAC_BITS)
            if datapath.quantize_distance:
                d2 = np.minimum(
                    d2 >> datapath.effective_distance_shift,
                    datapath.distance_max_code,
                )
        flatv = flat.ravel()
        d2v = d2.ravel()
        kv = np.broadcast_to(kk[:, None, None], flat.shape).ravel()
        if not valid.all():
            flatv = flatv[valid]
            d2v = d2v[valid]
            kv = kv[valid]
        # Two-pass scatter-argmin. Entries are in center scan order, so
        # the minimal entry position among the per-pixel minima is the
        # first center to reach that minimum — the reference tie rule.
        np.minimum.at(gmin, flatv, d2v)
        pos = np.where(
            d2v == gmin[flatv],
            np.arange(len(d2v), dtype=np.int64),
            _POS_SENTINEL,
        )
        np.minimum.at(first, flatv, pos)
        pix = np.nonzero(first != _POS_SENTINEL)[0]
        wsel = first[pix]
        bd = d2v[wsel]
        bk = kv[wsel]
        improve = bd < dist_flat[pix]
        upix = pix[improve]
        dist_flat[upix] = bd[improve]
        labels_flat[upix] = bk[improve]
        touched[pix] = True
        # Reset only the entries this chunk dirtied.
        gmin[pix] = sentinel
        first[pix] = _POS_SENTINEL
    n_touched = int(np.count_nonzero(touched))
    _cpa_scratch_checkin(h * w, datapath is not None, (gmin, first, touched))
    return n_touched


def ppa_assign(
    pixels: PixelArrays,
    subset_idx: np.ndarray,
    candidates: np.ndarray,
    centers: np.ndarray,
    weight: float,
    compactness: float | None = None,
    grid_s: float | None = None,
) -> np.ndarray:
    """Fused PPA evaluation; same contract as ``assign_ppa``."""
    dp = pixels.datapath
    if dp is not None:
        c_codes_all = dp.encode_centers(centers)
        weight_raw = dp.weight_raw(compactness, grid_s)
        sf = dp.spatial_frac_bits
    out = np.empty(len(subset_idx), dtype=np.int32)
    for start in range(0, len(subset_idx), _PPA_CHUNK):
        idx = subset_idx[start : start + _PPA_CHUNK]
        cand = candidates[pixels.tile_flat[idx]]  # (M, 9)
        if dp is None:
            px_lab = pixels.lab_flat[idx]
            px_x = pixels.x_flat[idx].astype(np.float64)
            px_y = pixels.y_flat[idx].astype(np.float64)
        else:
            px_codes = pixels.codes_flat[idx]
            px_xr = pixels.x_flat[idx] << sf
            px_yr = pixels.y_flat[idx] << sf
        best_d = None
        best_k = None
        for s in range(9):
            ck = cand[:, s]
            if dp is None:
                c = centers[ck]
                dl = px_lab[:, 0] - c[:, 0]
                da = px_lab[:, 1] - c[:, 1]
                db = px_lab[:, 2] - c[:, 2]
                dc2 = (dl * dl + da * da) + db * db
                dx = px_x - c[:, 3]
                dy = px_y - c[:, 4]
                d2 = dc2 + weight * (dx * dx + dy * dy)
            else:
                c = c_codes_all[ck]
                dl = px_codes[:, 0] - c[:, 0]
                da = px_codes[:, 1] - c[:, 1]
                db = px_codes[:, 2] - c[:, 2]
                dc2 = (dl * dl + da * da) + db * db
                dxv = px_xr - c[:, 3]
                dyv = px_yr - c[:, 4]
                ds2 = (dxv * dxv + dyv * dyv) >> (2 * sf)
                d2 = dc2 + ((weight_raw * ds2) >> WEIGHT_FRAC_BITS)
                if dp.quantize_distance:
                    d2 = np.minimum(
                        d2 >> dp.effective_distance_shift, dp.distance_max_code
                    )
            if best_d is None:
                best_d = d2
                best_k = ck.astype(np.int32)
            else:
                # Strict < keeps the lowest winning slot, like np.argmin.
                better = d2 < best_d
                best_d[better] = d2[better]
                best_k[better] = ck[better]
        out[start : start + len(idx)] = best_k
    return out


def connected_components(labels: np.ndarray):
    """4-connected components via iterative min-label propagation.

    Same run decomposition and dense first-appearance renumbering as the
    reference; the union-find edge loop is replaced by repeated
    minimum-scatter plus pointer jumping, which converges in
    O(log n_runs) rounds.
    """
    labels = validate_label_map(labels)
    run_id, n_runs = _run_ids(labels)
    parent = np.arange(n_runs, dtype=np.int64)
    same_up = labels[1:, :] == labels[:-1, :]
    if same_up.any():
        a = run_id[1:, :][same_up].astype(np.int64)
        b = run_id[:-1, :][same_up].astype(np.int64)
        parent = _min_propagate(parent, a, b)
    # parent[i] is now each run's minimal component run id — the same
    # canonical representative the reference renumbers by.
    uniq, dense = np.unique(parent, return_inverse=True)
    components = dense[run_id]
    return components.astype(np.int32), int(len(uniq))


def _unique_codes(converter, rgb: np.ndarray):
    """Unique-color pipeline: codes per distinct 24-bit RGB triple.

    The conversion is a pure per-pixel function of the RGB triple, so it
    is run once per *unique* color (typically a few thousand for a
    frame, vs. hundreds of thousands of pixels) and gathered back.
    Returns ``(codes_u, inverse, h, w)``.
    """
    rgb = np.asarray(rgb)
    h, w = rgb.shape[:2]
    packed = (
        (rgb[..., 0].astype(np.int64) << 16)
        | (rgb[..., 1].astype(np.int64) << 8)
        | rgb[..., 2].astype(np.int64)
    ).ravel()
    uniq, inverse = np.unique(packed, return_inverse=True)
    uc = np.empty((1, len(uniq), 3), dtype=np.uint8)
    uc[0, :, 0] = (uniq >> 16) & 0xFF
    uc[0, :, 1] = (uniq >> 8) & 0xFF
    uc[0, :, 2] = uniq & 0xFF
    codes_u = convert_codes_reference(converter, uc)[0]  # (U, 3) int64
    return codes_u, inverse, h, w


def lab_codes(converter, rgb: np.ndarray) -> np.ndarray:
    """Fixed-point RGB->Lab codes via the unique-color gather trick —
    bit-identical to the reference by construction."""
    codes_u, inverse, h, w = _unique_codes(converter, rgb)
    return codes_u[inverse].reshape(h, w, 3)


def lab_from_codes(converter, rgb: np.ndarray):
    """Fused RGB->Lab ``(lab, codes)`` via the unique-color gather.

    Decoding is elementwise, so decoding the unique codes and gathering
    is bit-identical to decoding the gathered full-frame codes.
    """
    codes_u, inverse, h, w = _unique_codes(converter, rgb)
    lab_u = converter.encoding.decode(codes_u)
    return (
        lab_u[inverse].reshape(h, w, 3),
        codes_u[inverse].reshape(h, w, 3),
    )


def sigma_accumulate(
    labels,
    n_clusters,
    width,
    lab_flat=None,
    codes_flat=None,
    encoding=None,
    idx=None,
):
    """Sigma partials via per-column bincounts.

    Same contract and results as ``sigma_accumulate_reference``, but the
    (M, 5) values matrix is never materialized: each field's weights go
    straight into its own ``np.bincount`` (the same fold the reference
    performs column by column), and x/y weights come directly from the
    flat indices.
    """
    labels = np.asarray(labels)
    counts = np.bincount(labels, minlength=n_clusters).astype(
        np.int64, copy=False
    )
    if idx is None:
        # Full-frame batch: read the source rows in place (no gather
        # copy — identical values, so identical bincount folds).
        flat = np.arange(len(labels), dtype=np.int64)
        if codes_flat is not None:
            c = np.asarray(codes_flat)[: len(labels)].astype(np.float64)
        else:
            lf = np.asarray(lab_flat, dtype=np.float64)[: len(labels)]
    else:
        flat = np.asarray(idx, dtype=np.int64)
        if codes_flat is not None:
            c = np.asarray(codes_flat)[flat].astype(np.float64)
        else:
            lf = np.asarray(lab_flat, dtype=np.float64)[flat]
    if codes_flat is not None:
        cols = (
            c[:, 0] / encoding.l_scale,
            (c[:, 1] - encoding.ab_offset) / encoding.ab_scale,
            (c[:, 2] - encoding.ab_offset) / encoding.ab_scale,
        )
    else:
        cols = (lf[:, 0], lf[:, 1], lf[:, 2])
    cols = cols + (
        (flat % width).astype(np.float64),
        (flat // width).astype(np.float64),
    )
    sums = np.empty((n_clusters, 5), dtype=np.float64)
    for f, col in enumerate(cols):
        sums[:, f] = np.bincount(labels, weights=col, minlength=n_clusters)
    return sums, counts


def merge_small(
    sizes: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    dst: np.ndarray,
    border_len: np.ndarray,
    min_size: int,
    order: np.ndarray,
) -> np.ndarray:
    """Greedy small-component merge walk; same contract as the reference.

    The per-component neighbor scan is batched: root resolution via
    vectorized pointer jumping and best-neighbor selection via
    ``np.lexsort`` (longest border, ties to lowest component id — the
    reference tie rule exactly).
    """
    n_comps = len(sizes)
    uf = _UnionFind(n_comps)
    merged_size = sizes.astype(np.int64).copy()
    for c in order:
        c = int(c)
        root_c = uf.find(c)
        if merged_size[root_c] >= min_size:
            continue
        lo, hi = int(starts[c]), int(ends[c])
        if lo == hi:
            continue  # isolated (whole image is one label)
        neigh = dst[lo:hi]
        weights = border_len[lo:hi]
        # Exclude neighbors already merged into the same root.
        roots = _resolve_roots(uf.parent, neigh)
        valid = roots != root_c
        if not valid.any():
            continue
        vneigh = neigh[valid]
        vweights = weights[valid]
        vroots = roots[valid]
        best = np.lexsort((vneigh, -vweights))[0]
        target_root = int(vroots[best])
        uf.union_into(root_c, target_root)
        new_root = uf.find(target_root)
        merged_size[new_root] = merged_size[root_c] + merged_size[target_root]
    return _resolve_roots(uf.parent, np.arange(n_comps, dtype=np.int64))
