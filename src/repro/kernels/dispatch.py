"""Backend selection for the kernel layer.

Four backends implement the same kernel contract (``cpa_assign``,
``ppa_assign``, ``connected_components``, ``lab_codes``,
``lab_from_codes``, ``sigma_accumulate``, ``merge_small``,
``contingency_table``, ``chamfer_distance``; see ``docs/kernels.md``):

* ``reference`` — the original loops in :mod:`repro.core`;
* ``vectorized`` — batched pure numpy, always available;
* ``native`` — compiled C hot loops, available when a C compiler is;
* ``native-mt`` — the same C hot loops fanned out over an in-process
  pthread pool (same compiled library as ``native``).

Selection order: an explicit name (``SlicParams.kernel_backend`` or a
``backend=`` argument) wins; otherwise the ``REPRO_KERNEL_BACKEND``
environment variable; otherwise ``auto``, which picks ``native-mt``
when the C library compiles and more than one core is visible,
``native`` with a single core, and ``vectorized`` when there is no
compiler. All backends produce bit-identical labels, so selection only
affects speed.
"""

from __future__ import annotations

import os

from ..errors import ConfigurationError

__all__ = [
    "BACKEND_NAMES",
    "ENV_VAR",
    "available_backends",
    "get_backend",
    "resolve_name",
    "validate_name",
]

ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Accepted backend names (``auto`` resolves to a concrete one).
BACKEND_NAMES = ("auto", "reference", "vectorized", "native", "native-mt")


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _module(name: str):
    if name == "reference":
        from . import reference as mod
    elif name == "vectorized":
        from . import vectorized as mod
    elif name == "native-mt":
        from . import native_mt as mod
    else:
        from . import native as mod
    return mod


def validate_name(name: str) -> str:
    """Check ``name`` is a known backend name without loading anything."""
    lowered = str(name).lower()
    if lowered not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)}"
        )
    return lowered


def resolve_name(name: str | None = None) -> str:
    """Resolve a requested backend name to a concrete backend name.

    ``None`` falls back to ``$REPRO_KERNEL_BACKEND``, then ``auto``.
    ``auto`` probes the native library (compiling it on first use) and
    prefers ``native-mt`` when more than one core is available, serial
    ``native`` otherwise, falling back to ``vectorized`` without a
    compiler. An explicitly requested ``native``/``native-mt`` that
    cannot load raises :class:`ConfigurationError` instead of silently
    degrading.
    """
    if name is None:
        name = os.environ.get(ENV_VAR) or "auto"
    name = validate_name(name)
    if name == "auto":
        from . import native

        if not native.is_available():
            return "vectorized"
        return "native-mt" if _cores() > 1 else "native"
    if name in ("native", "native-mt"):
        from . import native

        native.load()  # raises ConfigurationError with the compile detail
    return name


def get_backend(name: str | None = None):
    """Return the kernel module for ``name`` (resolved per above)."""
    return _module(resolve_name(name))


def available_backends() -> tuple:
    """Concrete backend names usable in this environment."""
    names = ["reference", "vectorized"]
    from . import native

    if native.is_available():
        names += ["native", "native-mt"]
    return tuple(names)
