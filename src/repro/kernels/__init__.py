"""Dispatchable kernels for the assignment/connectivity hot paths.

The engine's inner loops — the CPA window scan, the PPA 9-candidate
evaluation, and connected-component labeling — are implemented three
times behind one contract:

* ``reference`` — the readable loops in :mod:`repro.core` (semantics
  ground truth);
* ``vectorized`` — batched pure numpy;
* ``native`` — C loops compiled on demand via ctypes.

All backends return bit-identical labels; pick one with
``SlicParams(kernel_backend=...)``, the ``--kernel-backend`` CLI flag, or
the ``REPRO_KERNEL_BACKEND`` environment variable. See ``docs/kernels.md``.
"""

from .dispatch import (
    BACKEND_NAMES,
    ENV_VAR,
    available_backends,
    get_backend,
    resolve_name,
    validate_name,
)

__all__ = [
    "BACKEND_NAMES",
    "ENV_VAR",
    "available_backends",
    "get_backend",
    "resolve_name",
    "validate_name",
]
