"""Dispatchable kernels for the assignment/connectivity hot paths.

The engine's inner loops — the CPA window scan, the PPA 9-candidate
evaluation, connected-component labeling, the fixed-point RGB->Lab
conversion, the small-component merge walk, and the BR/USE metric
histograms/distance transform — are implemented four times behind one
contract:

* ``reference`` — the readable loops in :mod:`repro.core` (semantics
  ground truth);
* ``vectorized`` — batched pure numpy;
* ``native`` — C loops compiled on demand via ctypes;
* ``native-mt`` — the same C loops fanned out over an in-process
  pthread pool (``SlicParams(n_threads=...)``, ``REPRO_KERNEL_THREADS``).

All backends return bit-identical labels; pick one with
``SlicParams(kernel_backend=...)``, the ``--kernel-backend`` CLI flag, or
the ``REPRO_KERNEL_BACKEND`` environment variable. See ``docs/kernels.md``.

Backends are *supervised*: before a process trusts one it must pass a
known-answer self-test, and failures demote down the chain
native-mt -> native -> vectorized -> reference (see
:mod:`repro.kernels.supervisor` and ``docs/resilience.md``).
"""

from .dispatch import (
    BACKEND_NAMES,
    ENV_VAR,
    available_backends,
    get_backend,
    resolve_name,
    validate_name,
)
from .supervisor import (
    DEMOTION_CHAIN,
    SupervisedBackend,
    self_test,
    supervised_resolve,
)

__all__ = [
    "BACKEND_NAMES",
    "DEMOTION_CHAIN",
    "ENV_VAR",
    "SupervisedBackend",
    "available_backends",
    "get_backend",
    "resolve_name",
    "self_test",
    "supervised_resolve",
    "validate_name",
]
