"""Kernel backend supervision: first-dispatch self-test + demotion.

PR 3 introduced swappable kernel backends whose only correctness check
was "the native library compiled". This module adds the missing trust
boundary: before a process uses a backend for real work it must pass a
tiny **known-answer self-test** — a fixed CPA window scan whose output
is compared against the reference loops. A backend that fails to load
*or* fails the self-test is **demoted** down the chain

    native-mt -> native -> vectorized -> reference

and the demotion is recorded (tracer counter ``kernels.demotions``, an
event naming both backends, and the frame's
:class:`~repro.parallel.FrameRecord` via ``demoted_from``). The
reference loops are the semantics definition and cannot be demoted —
if *they* are forced to fail (fault injection), supervision raises.

Results are memoized per process and per forced-failure set, so the
self-test runs once per worker, not once per frame. Fault injection
forces failures via :data:`FAULT_ENV` (a comma-separated backend list)
or the ``forced_failures`` argument; this is how the resilience suite
drives the demotion chain deterministically.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from ..errors import ConfigurationError
from .dispatch import resolve_name, validate_name

__all__ = [
    "DEMOTION_CHAIN",
    "FAULT_ENV",
    "SupervisedBackend",
    "self_test",
    "supervised_resolve",
    "reset_supervision",
]

#: Demotion order: each name falls back to the next on failure.
DEMOTION_CHAIN = ("native-mt", "native", "vectorized", "reference")

#: Env var forcing self-test failures (comma-separated backend names) —
#: the fault-injection hook for the supervisor.
FAULT_ENV = "REPRO_FAULT_KERNEL_BACKENDS"

#: Per-process memo: (requested, forced) -> SupervisedBackend. The lock
#: makes first dispatch race-free: concurrent engines resolving the same
#: backend run the self-test once and share one verdict (and demotion
#: telemetry is emitted once, not per caller).
_memo = {}
_memo_lock = threading.Lock()


class SupervisedBackend:
    """The outcome of supervising one requested backend."""

    __slots__ = ("requested", "name", "demoted_from")

    def __init__(self, requested, name, demoted_from):
        self.requested = requested
        self.name = name
        self.demoted_from = demoted_from

    @property
    def demoted(self) -> bool:
        return self.demoted_from is not None


def reset_supervision() -> None:
    """Drop memoized verdicts (tests re-probe with different forcing)."""
    _memo.clear()


def _known_answer_inputs():
    """A tiny deterministic CPA problem with full window coverage."""
    h, w = 6, 9
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
    lab = np.stack(
        [10.0 + 7.0 * xx + yy, 3.0 * yy - xx, 0.5 * xx * yy - 4.0], axis=-1
    )
    centers = np.array(
        [
            [20.0, 1.0, -2.0, 2.0, 2.5],
            [60.0, 8.0, 3.0, 6.5, 3.0],
        ]
    )
    return lab, centers, 0.8, 3.0  # lab, centers, weight, grid_s


def self_test(name: str) -> None:
    """Run the known-answer kernel checks for backend ``name``.

    Exercises every kernel in the contract (CPA scan, Lab conversion —
    two-step and fused — sigma accumulation, merge walk, metric
    histogram/chamfer) on tiny fixed inputs and
    compares against the reference loops, raising
    :class:`ConfigurationError` with the mismatch detail on any
    difference. Cheap (a 6 x 9 image and a handful of components) —
    intended to run once per process. The ``native-mt`` vector runs the
    whole battery pinned to 2 threads (so the pool and the stitch are
    genuinely exercised) plus an odd 3-thread CPA pass that would catch
    remainder-band partition bugs.
    """
    import contextlib

    from . import reference
    from .dispatch import _module

    name = validate_name(name)
    backend = _module(name)
    lab, centers, weight, grid_s = _known_answer_inputs()
    h, w = lab.shape[:2]

    def pinned():
        if name == "native-mt":
            from . import native_mt

            return native_mt.thread_context(2)
        return contextlib.nullcontext()

    def run(mod, **kwargs):
        dist = np.full((h, w), np.inf)
        labels = np.full((h, w), -1, dtype=np.int32)
        touched = mod.cpa_assign(
            lab, centers, weight, grid_s, dist, labels, **kwargs
        )
        return touched, dist, labels

    with pinned():
        got_touched, got_dist, got_labels = run(backend)
    want_touched, want_dist, want_labels = run(reference)
    if name == "native-mt":
        odd = run(backend, n_threads=3)
        if not (
            odd[0] == want_touched
            and np.array_equal(odd[2], want_labels)
            and np.array_equal(odd[1], want_dist)
        ):
            raise ConfigurationError(
                "kernel backend 'native-mt' failed its known-answer "
                "self-test at 3 threads (remainder-band partition bug?)"
            )
    if (
        got_touched != want_touched
        or not np.array_equal(got_labels, want_labels)
        or not np.array_equal(got_dist, want_dist)
    ):
        raise ConfigurationError(
            f"kernel backend {name!r} failed its known-answer self-test "
            f"(labels match: {np.array_equal(got_labels, want_labels)}, "
            f"distances match: {np.array_equal(got_dist, want_dist)}, "
            f"touched: {got_touched} vs {want_touched})"
        )

    def check(kernel, got, want):
        if not np.array_equal(got, want):
            raise ConfigurationError(
                f"kernel backend {name!r} failed its known-answer "
                f"self-test on {kernel!r} (output differs from reference)"
            )

    # Fixed-point Lab conversion: a tiny RGB ramp covering all channels.
    from ..color.hw_convert import HwColorConverter

    rgb = (np.arange(4 * 5 * 3, dtype=np.int64) * 13 % 256).astype(
        np.uint8
    ).reshape(4, 5, 3)
    conv = HwColorConverter()
    with pinned():
        check(
            "lab_codes",
            backend.lab_codes(conv, rgb),
            reference.lab_codes(conv, rgb),
        )

    # Fused conversion: codes and their decode from one traversal.
    want_flab, want_fcodes = reference.lab_from_codes(conv, rgb)
    with pinned():
        got_flab, got_fcodes = backend.lab_from_codes(conv, rgb)
    check("lab_from_codes.lab", got_flab, want_flab)
    check("lab_from_codes.codes", got_fcodes, want_fcodes)
    if name == "native-mt":
        odd_flab, odd_fcodes = backend.lab_from_codes(conv, rgb, n_threads=3)
        check("lab_from_codes.lab@3t", odd_flab, want_flab)
        check("lab_from_codes.codes@3t", odd_fcodes, want_fcodes)

    # Sigma accumulation: float rows over the full CPA image (with an
    # empty cluster), plus a fixed-code subset gather. The labels hit
    # every cluster ownership band an odd thread split produces.
    lab_rows = np.ascontiguousarray(lab.reshape(-1, 3))
    sig_labels = (np.arange(h * w, dtype=np.int64) * 7 % 5).astype(np.int32)
    want_sums, want_counts = reference.sigma_accumulate(
        sig_labels, 6, w, lab_flat=lab_rows
    )
    with pinned():
        got_sums, got_counts = backend.sigma_accumulate(
            sig_labels, 6, w, lab_flat=lab_rows
        )
    check("sigma_accumulate.sums", got_sums, want_sums)
    check("sigma_accumulate.counts", got_counts, want_counts)
    codes_rows = conv.encoding.encode(lab_rows)
    subset = np.arange(0, h * w, 2, dtype=np.int64)
    sub_labels = (subset % 4).astype(np.int32)
    want_csums, want_ccounts = reference.sigma_accumulate(
        sub_labels, 4, w, codes_flat=codes_rows, encoding=conv.encoding,
        idx=subset,
    )
    with pinned():
        got_csums, got_ccounts = backend.sigma_accumulate(
            sub_labels, 4, w, codes_flat=codes_rows, encoding=conv.encoding,
            idx=subset,
        )
    check("sigma_accumulate.codes.sums", got_csums, want_csums)
    check("sigma_accumulate.codes.counts", got_ccounts, want_ccounts)
    if name == "native-mt":
        odd_sums, odd_counts = backend.sigma_accumulate(
            sig_labels, 6, w, lab_flat=lab_rows, n_threads=3
        )
        check("sigma_accumulate.sums@3t", odd_sums, want_sums)
        check("sigma_accumulate.counts@3t", odd_counts, want_counts)

    # Connected components: nested ring + stray pixels + a label that
    # recurs in disjoint pieces, so run unions chain across many rows
    # and the canonical first-appearance renumbering is load-bearing.
    ring = np.zeros((7, 8), dtype=np.int32)
    ring[1:6, 1:7] = 1
    ring[2:5, 2:6] = 0
    ring[3, 3] = 2
    ring[0, 7] = 2
    ring[6, 0] = 1
    want_comps, want_n = reference.connected_components(ring)
    with pinned():
        got_comps, got_n = backend.connected_components(ring)
    check("connected_components", got_comps, want_comps)
    check("connected_components.n", got_n, want_n)
    if name == "native-mt":
        # Odd thread count: band seams fall mid-ring.
        odd_comps, odd_n = backend.connected_components(ring, n_threads=3)
        check("connected_components@3t", odd_comps, want_comps)
        check("connected_components.n@3t", odd_n, want_n)

    # Merge walk: 4 components, CSR adjacency with a weight tie (1<->3).
    sizes = np.array([2, 9, 1, 8], dtype=np.int64)
    starts = np.array([0, 2, 5, 7], dtype=np.int64)
    ends = np.array([2, 5, 7, 9], dtype=np.int64)
    dst = np.array([1, 2, 0, 2, 3, 0, 1, 1, 2], dtype=np.int64)
    border = np.array([3, 1, 3, 2, 4, 1, 2, 4, 2], dtype=np.int64)
    order = np.array([2, 0], dtype=np.int64)
    args = (sizes, starts, ends, dst, border, 4, order)
    check("merge_small", backend.merge_small(*args), reference.merge_small(*args))

    # Metrics: joint histogram and chamfer transform on tiny maps.
    a_flat = np.array([0, 0, 1, 2, 1, 0], dtype=np.int64)
    b_flat = np.array([1, 0, 1, 1, 0, 1], dtype=np.int64)
    with pinned():
        check(
            "contingency_table",
            backend.contingency_table(a_flat, b_flat, 3, 2),
            reference.contingency_table(a_flat, b_flat, 3, 2),
        )
    mask = np.zeros((5, 7), dtype=bool)
    mask[1, 2] = mask[4, 6] = True
    check(
        "chamfer_distance",
        backend.chamfer_distance(mask),
        reference.chamfer_distance(mask),
    )


def _forced_failures(extra=None) -> frozenset:
    env = os.environ.get(FAULT_ENV, "")
    forced = {p.strip() for p in env.split(",") if p.strip()}
    if extra:
        forced |= set(extra)
    return frozenset(forced)


def supervised_resolve(
    name: str | None = None, tracer=None, forced_failures=None
) -> SupervisedBackend:
    """Resolve ``name`` to a backend that passed its self-test.

    Walks the demotion chain from the requested (resolved) backend until
    a candidate both loads and passes :func:`self_test`. Returns a
    :class:`SupervisedBackend` naming the survivor and, when demotion
    happened, the first backend that was trusted and failed. Raises
    :class:`ConfigurationError` only when even ``reference`` is forced
    to fail — there is nothing left to demote to.
    """
    forced = _forced_failures(forced_failures)
    key = (name, forced)
    cached = _memo.get(key)
    if cached is not None:
        return cached

    with _memo_lock:
        cached = _memo.get(key)  # lost the race: share the verdict
        if cached is not None:
            return cached
        return _resolve_uncached(name, forced, key, tracer)


def _resolve_uncached(name, forced, key, tracer) -> SupervisedBackend:
    try:
        start = resolve_name(name)
    except ConfigurationError:
        # An explicitly requested backend that cannot load: supervision
        # demotes to its successor in the chain instead of failing the
        # frame (an unknown name starts all the way down at reference).
        if name in DEMOTION_CHAIN:
            successor = DEMOTION_CHAIN.index(name) + 1
            start = DEMOTION_CHAIN[min(successor, len(DEMOTION_CHAIN) - 1)]
        else:
            start = "reference"
        demoted_from = name
    else:
        demoted_from = None

    chain = DEMOTION_CHAIN[DEMOTION_CHAIN.index(start):]
    failure = None
    for candidate in chain:
        try:
            if candidate in forced:
                raise ConfigurationError(
                    f"kernel backend {candidate!r} self-test failure forced "
                    f"by fault injection"
                )
            self_test(candidate)
        except ConfigurationError as exc:
            failure = exc
            if demoted_from is None:
                demoted_from = candidate
            if tracer is not None:
                tracer.count(
                    "kernels.selftest_failures",
                    labels={"backend": str(candidate)},
                )
            continue
        verdict = SupervisedBackend(
            requested=name,
            name=candidate,
            demoted_from=demoted_from if candidate != demoted_from else None,
        )
        if verdict.demoted and tracer is not None:
            tracer.count(
                "kernels.demotions",
                labels={
                    "demoted_from": str(verdict.demoted_from),
                    "demoted_to": str(candidate),
                },
            )
            tracer.event(
                "kernels.demoted",
                requested=str(name),
                demoted_from=verdict.demoted_from,
                demoted_to=candidate,
            )
        _memo[key] = verdict
        return verdict
    raise ConfigurationError(
        "every kernel backend failed supervision (reference included): "
        f"{failure}"
    )
