"""The ``native`` backend: the C hot loops in ``_native.c``.

The module compiles the C source on first use with the system C compiler
(``$CC``, else ``cc``/``gcc``/``clang``) and loads it through
:mod:`ctypes` — no third-party build dependency, and nothing happens at
import time. The shared object is cached under
``$REPRO_KERNEL_CACHE`` (default: the user cache dir, falling back to a
per-user temp dir), keyed by a hash of the source and compile flags, so
recompiles happen only when the kernels change and concurrent builds
(parallel workers) race harmlessly to an atomic rename.

Availability is probed lazily and memoized; :func:`is_available` never
raises. When no compiler exists the dispatch layer's ``auto`` selection
falls back to the pure-numpy ``vectorized`` backend.

Bit-identity with the reference implementations is a hard contract —
see the header comment in ``_native.c`` for the compile flags that
guarantee it (``-ffp-contract=off``, no ``-ffast-math``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from ..core.distance import WEIGHT_FRAC_BITS
from ..errors import ConfigurationError
from ..metrics.boundaries import chamfer_finalize, chamfer_init
from ..types import validate_label_map

__all__ = [
    "is_available",
    "load",
    "cpa_assign",
    "ppa_assign",
    "connected_components",
    "resolve_runs",
    "lab_codes",
    "lab_from_codes",
    "sigma_accumulate",
    "merge_small",
    "contingency_table",
    "chamfer_distance",
]

_SRC = Path(__file__).with_name("_native.c")
_CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off", "-pthread")

#: Memoized load state: None = unprobed, False = unavailable, else the
#: loaded ctypes library.
_lib = None
_load_error = None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    try:
        base.mkdir(parents=True, exist_ok=True)
        return base / "repro-kernels"
    except OSError:
        return Path(tempfile.gettempdir()) / f"repro-kernels-{os.getuid()}"


def _compiler() -> str:
    cc = os.environ.get("CC")
    candidates = [cc] if cc else []
    candidates += ["cc", "gcc", "clang"]
    for cand in candidates:
        path = shutil.which(cand)
        if path:
            return path
    raise ConfigurationError(
        "no C compiler found (checked $CC, cc, gcc, clang); the native "
        "kernel backend is unavailable — use backend 'vectorized' instead"
    )


def _build() -> Path:
    """Compile ``_native.c`` into the cache (atomic, race-safe).

    Concurrent builders (parallel workers, or two unrelated processes
    sharing the cache) each compile into their own ``mkstemp`` file and
    race to one atomic ``os.replace``; whoever loses simply discards its
    temp file. A compiler that *dies mid-build* (crash, OOM kill, the
    120 s timeout) surfaces as :class:`ConfigurationError`, which the
    ``auto``/supervised paths turn into a fall back to ``vectorized`` —
    but only after re-checking whether a concurrent builder finished the
    cache entry in the meantime, so one flaky compile cannot mask a
    healthy cache.
    """
    source = _SRC.read_bytes()
    key = hashlib.sha256(source + " ".join(_CFLAGS).encode()).hexdigest()[:16]
    cache = _cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    so_path = cache / f"repro_native_{key}.so"
    if so_path.exists():
        return so_path
    cc = _compiler()
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    try:
        try:
            proc = subprocess.run(
                [cc, *_CFLAGS, "-o", tmp, str(_SRC), "-lm"],
                capture_output=True,
                text=True,
                timeout=120,
            )
        except (subprocess.TimeoutExpired, OSError) as exc:
            # The compiler died or hung mid-build. A concurrent builder
            # may still have produced the artifact — prefer it.
            if so_path.exists():
                return so_path
            raise ConfigurationError(
                f"native kernel compiler died mid-build ({cc}): {exc}; "
                "falling back to the vectorized backend"
            ) from None
        if proc.returncode != 0:
            if so_path.exists():  # a concurrent builder won with a good .so
                return so_path
            raise ConfigurationError(
                f"native kernel compile failed ({cc}): {proc.stderr.strip()[:500]}"
            )
        os.replace(tmp, so_path)  # atomic: concurrent builders both win
    finally:
        try:
            if os.path.exists(tmp):
                os.unlink(tmp)
        except OSError:
            pass  # racing cleanup with another builder is harmless
    return so_path


def _declare(lib) -> None:
    f64 = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")
    i64 = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
    i32 = np.ctypeslib.ndpointer(np.int32, flags="C_CONTIGUOUS")
    u8 = np.ctypeslib.ndpointer(np.uint8, flags="C_CONTIGUOUS")
    ll = ctypes.c_int64

    lib.cpa_assign_f64.restype = None
    lib.cpa_assign_f64.argtypes = [
        f64, f64, i64, ll, ctypes.c_double, ll, ll, ll, f64, i32, u8,
    ]
    lib.cpa_assign_fixed.restype = None
    lib.cpa_assign_fixed.argtypes = [
        i64, i64, f64, i64, ll, ll, ll, ll, ll, ll, ll, ll, ll, ll,
        f64, i32, u8,
    ]
    lib.ppa_assign_f64.restype = None
    lib.ppa_assign_f64.argtypes = [
        f64, i64, i64, i64, i64, ll, i32, f64, ctypes.c_double, i32,
    ]
    lib.ppa_assign_fixed.restype = None
    lib.ppa_assign_fixed.argtypes = [
        i64, i64, i64, i64, i64, ll, i32, i64, ll, ll, ll, ll, ll, ll, i32,
    ]
    lib.lab_codes_u8.restype = None
    lib.lab_codes_u8.argtypes = [
        u8, ll, i64, i64, ll, ll, ll, i64, ll, i64, i64, ll, ll, ll, ll,
        ll, ll, ll, ll, ll, i64,
    ]
    dbl = ctypes.c_double
    lib.lab_from_codes_u8.restype = None
    lib.lab_from_codes_u8.argtypes = [
        *lib.lab_codes_u8.argtypes, dbl, dbl, dbl, f64,
    ]
    # The subset-index argument is nullable (NULL means "identity"), so
    # it is a raw pointer rather than an ndpointer.
    i64p = ctypes.POINTER(ctypes.c_int64)
    lib.sigma_acc_f64.restype = None
    lib.sigma_acc_f64.argtypes = [f64, i64p, i32, ll, ll, ll, f64, i64]
    lib.sigma_acc_codes.restype = None
    lib.sigma_acc_codes.argtypes = [
        i64, i64p, i32, ll, ll, dbl, dbl, dbl, ll, f64, i64,
    ]
    lib.merge_small.restype = None
    lib.merge_small.argtypes = [
        i64, i64, i64, i64, ll, i64, ll, ll, i64, i64, i64,
    ]
    lib.ccl_i32.restype = ll
    lib.ccl_i32.argtypes = [i32, ll, ll, i32, i64]
    lib.ccl_resolve.restype = ll
    lib.ccl_resolve.argtypes = [i64, i64, ll, ll, i64]
    lib.contingency_i64.restype = None
    lib.contingency_i64.argtypes = [i64, i64, ll, ll, i64]
    lib.chamfer_i64.restype = None
    lib.chamfer_i64.argtypes = [i64, ll, ll]

    # Threaded (native-mt) entry points: the serial signatures plus a
    # trailing n_threads. Same buffers, same results — see _native.c.
    lib.cpa_assign_f64_mt.restype = None
    lib.cpa_assign_f64_mt.argtypes = [*lib.cpa_assign_f64.argtypes, ll]
    lib.cpa_assign_fixed_mt.restype = None
    lib.cpa_assign_fixed_mt.argtypes = [*lib.cpa_assign_fixed.argtypes, ll]
    lib.ppa_assign_f64_mt.restype = None
    lib.ppa_assign_f64_mt.argtypes = [*lib.ppa_assign_f64.argtypes, ll]
    lib.ppa_assign_fixed_mt.restype = None
    lib.ppa_assign_fixed_mt.argtypes = [*lib.ppa_assign_fixed.argtypes, ll]
    lib.lab_codes_u8_mt.restype = None
    lib.lab_codes_u8_mt.argtypes = [*lib.lab_codes_u8.argtypes, ll]
    lib.lab_from_codes_u8_mt.restype = None
    lib.lab_from_codes_u8_mt.argtypes = [*lib.lab_from_codes_u8.argtypes, ll]
    lib.sigma_acc_f64_mt.restype = None
    lib.sigma_acc_f64_mt.argtypes = [*lib.sigma_acc_f64.argtypes, ll]
    lib.sigma_acc_codes_mt.restype = None
    lib.sigma_acc_codes_mt.argtypes = [*lib.sigma_acc_codes.argtypes, ll]
    lib.contingency_i64_mt.restype = None
    lib.contingency_i64_mt.argtypes = [i64, i64, ll, ll, ll, i64, ll, i64]
    lib.ccl_i32_mt.restype = ll
    lib.ccl_i32_mt.argtypes = [*lib.ccl_i32.argtypes, ll]


def load():
    """Compile (if needed) and load the native library; raises on failure."""
    global _lib, _load_error
    if _lib is not None:
        return _lib
    if _load_error is not None:
        raise _load_error
    try:
        lib = ctypes.CDLL(str(_build()))
        _declare(lib)
    except Exception as exc:  # memoize: probing must stay cheap
        _load_error = (
            exc
            if isinstance(exc, ConfigurationError)
            else ConfigurationError(f"native kernel backend unavailable: {exc}")
        )
        raise _load_error from None
    _lib = lib
    return lib


def is_available() -> bool:
    """True when the native library loads (compiling it on first call)."""
    try:
        load()
        return True
    except ConfigurationError:
        return False


# ----------------------------------------------------------------------
# Kernel entry points (KernelBackend interface)
# ----------------------------------------------------------------------

#: Per-process reusable ``touched`` masks for the CPA kernels, keyed by
#: pixel count — the same checkout/checkin protocol as the vectorized
#: backend's CPA scratch (buffers are popped while in use, so concurrent
#: engines race harmlessly to fresh allocations). Shared by the
#: ``native`` and ``native-mt`` call sites.
_TOUCHED_POOL: dict = {}


def _touched_checkout(n: int):
    buf = _TOUCHED_POOL.pop(n, None)
    if buf is None:
        return np.zeros(n, dtype=np.uint8)
    buf.fill(0)
    return buf


def _touched_checkin(n: int, buf) -> None:
    if len(_TOUCHED_POOL) >= 4:  # bound growth across geometries
        _TOUCHED_POOL.clear()
    _TOUCHED_POOL[n] = buf


def cpa_assign(
    lab,
    centers,
    weight,
    grid_s,
    dist_buf,
    labels_buf,
    cluster_indices=None,
    datapath=None,
    compactness=None,
    codes=None,
) -> int:
    """Batched CPA window scan; see ``repro.core.assignment.assign_cpa``.

    Returns the number of distinct pixels scanned. Falls back to the
    vectorized backend for non-float64 distance buffers (the engine
    always passes float64; only direct callers pass int64 buffers).
    """
    if dist_buf.dtype != np.float64 or not (
        dist_buf.flags.c_contiguous and labels_buf.flags.c_contiguous
    ):
        from . import vectorized

        return vectorized.cpa_assign(
            lab, centers, weight, grid_s, dist_buf, labels_buf,
            cluster_indices=cluster_indices, datapath=datapath,
            compactness=compactness, codes=codes,
        )
    lib = load()
    h, w = lab.shape[:2]
    half = int(np.ceil(grid_s))
    if cluster_indices is None:
        cluster_indices = np.arange(len(centers))
    ks = np.ascontiguousarray(cluster_indices, dtype=np.int64)
    if len(ks) == 0:
        return 0
    centers_c = np.ascontiguousarray(centers, dtype=np.float64)
    labels_v = labels_buf.reshape(-1)
    dist_v = dist_buf.reshape(-1)
    touched = _touched_checkout(h * w)
    if datapath is None:
        lab_c = np.ascontiguousarray(lab, dtype=np.float64)
        lib.cpa_assign_f64(
            lab_c.reshape(-1), centers_c.reshape(-1), ks, len(ks),
            float(weight), half, h, w, dist_v, labels_v, touched,
        )
    else:
        codes_c = np.ascontiguousarray(codes, dtype=np.int64)
        c_codes = np.ascontiguousarray(datapath.encode_centers(centers))
        weight_raw = datapath.weight_raw(compactness, grid_s)
        lib.cpa_assign_fixed(
            codes_c.reshape(-1), c_codes.reshape(-1), centers_c.reshape(-1),
            ks, len(ks), weight_raw, WEIGHT_FRAC_BITS,
            datapath.spatial_frac_bits, int(datapath.quantize_distance),
            datapath.effective_distance_shift, datapath.distance_max_code,
            half, h, w, dist_v, labels_v, touched,
        )
    n_touched = int(np.count_nonzero(touched))
    _touched_checkin(h * w, touched)
    return n_touched


def ppa_assign(
    pixels,
    subset_idx,
    candidates,
    centers,
    weight,
    compactness=None,
    grid_s=None,
):
    """Fused PPA 9-candidate argmin; see ``assign_ppa`` for semantics."""
    lib = load()
    subset = np.ascontiguousarray(subset_idx, dtype=np.int64)
    out = np.empty(len(subset), dtype=np.int32)
    if len(subset) == 0:
        return out
    cands = np.ascontiguousarray(candidates, dtype=np.int32)
    dp = pixels.datapath
    if dp is None:
        lib.ppa_assign_f64(
            np.ascontiguousarray(pixels.lab_flat).reshape(-1),
            pixels.x_flat, pixels.y_flat, pixels.tile_flat,
            subset, len(subset), cands.reshape(-1),
            np.ascontiguousarray(centers, dtype=np.float64).reshape(-1),
            float(weight), out,
        )
    else:
        c_codes = np.ascontiguousarray(dp.encode_centers(centers))
        lib.ppa_assign_fixed(
            np.ascontiguousarray(pixels.codes_flat).reshape(-1),
            pixels.x_flat, pixels.y_flat, pixels.tile_flat,
            subset, len(subset), cands.reshape(-1), c_codes.reshape(-1),
            dp.weight_raw(compactness, grid_s), WEIGHT_FRAC_BITS,
            dp.spatial_frac_bits, int(dp.quantize_distance),
            dp.effective_distance_shift, dp.distance_max_code, out,
        )
    return out


def lab_codes(converter, rgb):
    """Fixed-point RGB->Lab codes; see ``convert_codes_reference``.

    Ships the converter's LUTs/formats into the C pixel loop. Falls back
    to the vectorized backend for exotic PWL configurations whose
    rounding shifts are not strictly positive (the C loop assumes the
    default Q-format layout, where both are).
    """
    rgb = np.ascontiguousarray(rgb, dtype=np.uint8)
    pwl = converter.pwl
    mat_shift = (
        converter.gamma_frac_bits + converter._matrix_fmt.frac_bits
    ) - pwl.in_fmt.frac_bits
    out_shift = (
        pwl.coeff_fmt.frac_bits + pwl.in_fmt.frac_bits
    ) - pwl.out_fmt.frac_bits
    if mat_shift <= 0 or out_shift <= 0:
        from . import vectorized

        return vectorized.lab_codes(converter, rgb)
    lib = load()
    h, w = rgb.shape[:2]
    enc = converter.encoding
    codes = np.empty((h, w, 3), dtype=np.int64)
    lib.lab_codes_u8(
        rgb.reshape(-1),
        h * w,
        np.ascontiguousarray(converter.gamma_lut, dtype=np.int64),
        np.ascontiguousarray(converter.matrix_raw, dtype=np.int64).reshape(-1),
        mat_shift,
        pwl.in_fmt.raw_min, pwl.in_fmt.raw_max,
        np.ascontiguousarray(pwl.breaks_raw, dtype=np.int64),
        pwl.n_segments,
        np.ascontiguousarray(pwl.slopes_raw, dtype=np.int64),
        np.ascontiguousarray(pwl.intercepts_raw, dtype=np.int64),
        pwl.in_fmt.frac_bits,
        out_shift,
        pwl.out_fmt.raw_min, pwl.out_fmt.raw_max,
        pwl.out_fmt.frac_bits,
        int(round(enc.l_scale * (1 << 14))),
        int(round(enc.ab_scale * (1 << 14))),
        enc.ab_offset,
        enc.code_max,
        codes.reshape(-1),
    )
    return codes


def lab_from_codes(converter, rgb, _n_threads=None):
    """Fused RGB->Lab: ``(lab, codes)`` in one pixel pass.

    Produces both the channel codes and the decoded float64 Lab plane in
    a single frame traversal — bit-identical to ``lab_codes`` followed
    by ``LabEncoding.decode``. Same vectorized fallback as
    ``lab_codes`` for exotic PWL configurations.
    """
    rgb = np.ascontiguousarray(rgb, dtype=np.uint8)
    pwl = converter.pwl
    mat_shift = (
        converter.gamma_frac_bits + converter._matrix_fmt.frac_bits
    ) - pwl.in_fmt.frac_bits
    out_shift = (
        pwl.coeff_fmt.frac_bits + pwl.in_fmt.frac_bits
    ) - pwl.out_fmt.frac_bits
    if mat_shift <= 0 or out_shift <= 0:
        from . import vectorized

        return vectorized.lab_from_codes(converter, rgb)
    lib = load()
    h, w = rgb.shape[:2]
    enc = converter.encoding
    codes = np.empty((h, w, 3), dtype=np.int64)
    lab = np.empty((h, w, 3), dtype=np.float64)
    args = (
        rgb.reshape(-1),
        h * w,
        np.ascontiguousarray(converter.gamma_lut, dtype=np.int64),
        np.ascontiguousarray(converter.matrix_raw, dtype=np.int64).reshape(-1),
        mat_shift,
        pwl.in_fmt.raw_min, pwl.in_fmt.raw_max,
        np.ascontiguousarray(pwl.breaks_raw, dtype=np.int64),
        pwl.n_segments,
        np.ascontiguousarray(pwl.slopes_raw, dtype=np.int64),
        np.ascontiguousarray(pwl.intercepts_raw, dtype=np.int64),
        pwl.in_fmt.frac_bits,
        out_shift,
        pwl.out_fmt.raw_min, pwl.out_fmt.raw_max,
        pwl.out_fmt.frac_bits,
        int(round(enc.l_scale * (1 << 14))),
        int(round(enc.ab_scale * (1 << 14))),
        enc.ab_offset,
        enc.code_max,
        codes.reshape(-1),
        float(enc.l_scale),
        float(enc.ab_scale),
        float(enc.ab_offset),
        lab.reshape(-1),
    )
    if _n_threads is None:
        lib.lab_from_codes_u8(*args)
    else:
        lib.lab_from_codes_u8_mt(*args, int(_n_threads))
    return lab, codes


def sigma_accumulate(
    labels,
    n_clusters,
    width,
    lab_flat=None,
    codes_flat=None,
    encoding=None,
    idx=None,
    _n_threads=None,
):
    """One-pass sigma-register fill; see ``sigma_accumulate_reference``.

    Returns partial ``(sums, counts)`` accumulated from zero — the
    caller (``SigmaAccumulator.accumulate``) folds them into its
    registers. x/y come from the flat pixel index, so no (M, 5) values
    matrix is ever materialized.
    """
    lib = load()
    labels_c = np.ascontiguousarray(labels, dtype=np.int32)
    m = len(labels_c)
    sums = np.zeros((n_clusters, 5), dtype=np.float64)
    counts = np.zeros(n_clusters, dtype=np.int64)
    if m == 0 or n_clusters == 0:
        return sums, counts
    idx_ptr = None
    if idx is not None:
        idx_c = np.ascontiguousarray(idx, dtype=np.int64)
        idx_ptr = idx_c.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))
    if codes_flat is not None:
        codes_c = np.ascontiguousarray(codes_flat, dtype=np.int64)
        args = (
            codes_c.reshape(-1), idx_ptr, labels_c, m, width,
            float(encoding.l_scale), float(encoding.ab_scale),
            float(encoding.ab_offset), n_clusters,
            sums.reshape(-1), counts,
        )
        if _n_threads is None:
            lib.sigma_acc_codes(*args)
        else:
            lib.sigma_acc_codes_mt(*args, int(_n_threads))
    else:
        lab_c = np.ascontiguousarray(lab_flat, dtype=np.float64)
        args = (
            lab_c.reshape(-1), idx_ptr, labels_c, m, width,
            n_clusters, sums.reshape(-1), counts,
        )
        if _n_threads is None:
            lib.sigma_acc_f64(*args)
        else:
            lib.sigma_acc_f64_mt(*args, int(_n_threads))
    return sums, counts


def connected_components(labels, _n_threads=None):
    """Two-pass union-find CCL; see ``connected_components_reference``.

    Component ids come out in canonical first-appearance order (the C
    kernel unions by minimal root and renumbers roots ascending, which
    is exactly the reference's ``comp_min`` ordering). Maps too large
    for the int32 run-id scratch fall back to the vectorized backend.
    """
    labels = validate_label_map(labels)
    h, w = labels.shape
    if h * w >= 2**31:
        from . import vectorized

        return vectorized.connected_components(labels)
    lib = load()
    lab_c = np.ascontiguousarray(labels, dtype=np.int32)
    comps = np.empty((h, w), dtype=np.int32)
    parent = np.empty(h * w, dtype=np.int64)
    if _n_threads is None:
        n = lib.ccl_i32(lab_c.reshape(-1), h, w, comps.reshape(-1), parent)
    else:
        n = lib.ccl_i32_mt(
            lab_c.reshape(-1), h, w, comps.reshape(-1), parent,
            int(_n_threads),
        )
    return comps, int(n)


def resolve_runs(pair_a, pair_b, n_runs):
    """Union run-id pairs and renumber: ``dense_ids, n_comps``.

    The incremental-connectivity helper: run decomposition happens in
    numpy (only dirty row bands are rebuilt), the union-find resolve
    happens here. Dense ids are in first-appearance (minimal run id)
    order, identical to the full CCL kernels.
    """
    lib = load()
    pair_a = np.ascontiguousarray(pair_a, dtype=np.int64)
    pair_b = np.ascontiguousarray(pair_b, dtype=np.int64)
    parent = np.empty(int(n_runs), dtype=np.int64)
    n = lib.ccl_resolve(pair_a, pair_b, len(pair_a), int(n_runs), parent)
    return parent, int(n)


def merge_small(sizes, starts, ends, dst, border_len, min_size, order):
    """Greedy small-component merge walk; see ``merge_small_reference``."""
    lib = load()
    n_comps = len(sizes)
    parent = np.arange(n_comps, dtype=np.int64)
    merged_size = np.ascontiguousarray(sizes, dtype=np.int64).copy()
    final_root = np.empty(n_comps, dtype=np.int64)
    order = np.ascontiguousarray(order, dtype=np.int64)
    lib.merge_small(
        np.ascontiguousarray(starts, dtype=np.int64),
        np.ascontiguousarray(ends, dtype=np.int64),
        np.ascontiguousarray(dst, dtype=np.int64),
        np.ascontiguousarray(border_len, dtype=np.int64),
        int(min_size),
        order, len(order),
        n_comps, parent, merged_size, final_root,
    )
    return final_root


def contingency_table(a_flat, b_flat, n_a, n_b):
    """Joint label histogram; see ``contingency_table_reference``."""
    lib = load()
    a_flat = np.ascontiguousarray(a_flat, dtype=np.int64)
    b_flat = np.ascontiguousarray(b_flat, dtype=np.int64)
    table = np.zeros(n_a * n_b, dtype=np.int64)
    lib.contingency_i64(a_flat, b_flat, len(a_flat), n_b, table)
    return table.reshape(n_a, n_b)


def chamfer_distance(mask):
    """3-4 chamfer transform; see ``chamfer_distance_reference``.

    The C sweeps are the sequential raster form of the reference's
    prefix-min rows — exactly equal on the integer grid — and share the
    init/finalize helpers so the float conversion is identical too.
    """
    lib = load()
    dist = chamfer_init(mask)
    h, w = dist.shape
    lib.chamfer_i64(dist.reshape(-1), h, w)
    return chamfer_finalize(dist)
