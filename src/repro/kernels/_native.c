/* Native kernels: the CPA window scan, the PPA 9-candidate evaluation,
 * the fixed-point RGB->Lab conversion (optionally fused with the
 * code->Lab decode), the sigma-register accumulation, the two-pass
 * union-find connected-components pass, the small-component merge walk,
 * and the BR/USE metric inner loops (joint histogram, 3-4 chamfer) as
 * plain C loops.
 *
 * Compiled on demand by repro.kernels.native with
 *
 *     cc -O3 -fPIC -shared -ffp-contract=off -pthread
 *     (no -ffast-math, no -march)
 *
 * so every float64 operation rounds exactly like the numpy reference:
 * contraction into FMA is disabled and the summation orders below mirror
 * numpy's add.reduce over the last axis ((x0 + x1) + x2). That is what
 * makes the native labels bit-identical to repro.core.assignment — the
 * property tests and benchmarks/bench_kernels.py assert it.
 *
 * Integer (FixedDatapath) variants take the code-domain image/centers and
 * replicate the shift/saturate pipeline of FixedDatapath.pairwise_d2 and
 * the fixed branch of assign_cpa.
 *
 * Every data-parallel kernel also exists as a `_mt` variant taking an
 * `n_threads` argument (the `native-mt` backend). Parallelism is by
 * *ownership partitioning*: each thread owns a contiguous slice of the
 * output (row bands for CPA, index ranges for PPA / lab_codes, a private
 * histogram for contingency, cluster ranges for the sigma accumulation)
 * and visits its slice in exactly the serial order, so every output
 * element is written by exactly one thread with the serial operation
 * order — no boundary ties can ever arise and the results stay
 * bit-identical to the serial loops at any thread count.
 * The only cross-tile combines (the contingency histogram stitch and
 * the connected-components band seams + renumber) run sequentially, in
 * ascending tile id; union-by-minimal-root makes the component roots
 * independent of union order (see the CCL section).
 */

#include <math.h>
#include <pthread.h>
#include <stdint.h>

/* ------------------------------------------------------------------ */
/* A tiny persistent pthread pool. mt_run(fn, ctx, n) runs              */
/* fn(ctx, tid, width) on `width` participants: the calling thread is   */
/* tid 0, parked workers are tids 1..width-1. A dispatch mutex          */
/* serializes concurrent callers (two engines in one process simply     */
/* take turns), workers park on a condvar keyed by a job sequence       */
/* number, and pthread_atfork handlers keep fork()d children (the       */
/* multiprocessing pool) consistent: the child reinitializes the        */
/* primitives and respawns lazily. If pthread_create fails the job      */
/* degrades gracefully — fn sees the width that actually exists, and    */
/* mt_run returns that width so callers whose combine step depends on   */
/* the partitioning (the CCL seams) can use the real value.             */
/* ------------------------------------------------------------------ */

#define MT_MAX_THREADS 64

typedef void (*mt_fn)(void *ctx, int64_t tid, int64_t width);

static pthread_mutex_t mt_dispatch = PTHREAD_MUTEX_INITIALIZER;
static pthread_mutex_t mt_lock = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t mt_go = PTHREAD_COND_INITIALIZER;
static pthread_cond_t mt_done = PTHREAD_COND_INITIALIZER;
static int64_t mt_spawned = 0;   /* live workers (excluding the caller) */
static int64_t mt_ready = 0;     /* workers parked and seq-synchronized */
static uint64_t mt_job_seq = 0;
static mt_fn mt_job_fn = 0;
static void *mt_job_ctx = 0;
static int64_t mt_job_width = 0;
static int64_t mt_remaining = 0;

static void *mt_worker(void *arg)
{
    int64_t tid = (int64_t)(intptr_t)arg;
    pthread_mutex_lock(&mt_lock);
    uint64_t seen = mt_job_seq;  /* spawned pre-job, under mt_dispatch */
    mt_ready++;
    pthread_cond_broadcast(&mt_done);
    for (;;) {
        while (mt_job_seq == seen)
            pthread_cond_wait(&mt_go, &mt_lock);
        seen = mt_job_seq;
        if (tid < mt_job_width) {
            mt_fn fn = mt_job_fn;
            void *ctx = mt_job_ctx;
            int64_t width = mt_job_width;
            pthread_mutex_unlock(&mt_lock);
            fn(ctx, tid, width);
            pthread_mutex_lock(&mt_lock);
            if (--mt_remaining == 0)
                pthread_cond_broadcast(&mt_done);
        }
    }
    return 0;
}

static void mt_atfork_prepare(void)
{
    /* Block forks out of mid-job states: wait for any running job. */
    pthread_mutex_lock(&mt_dispatch);
    pthread_mutex_lock(&mt_lock);
}

static void mt_atfork_parent(void)
{
    pthread_mutex_unlock(&mt_lock);
    pthread_mutex_unlock(&mt_dispatch);
}

static void mt_atfork_child(void)
{
    /* Worker threads do not survive fork(); start from a clean pool. */
    pthread_mutex_init(&mt_dispatch, 0);
    pthread_mutex_init(&mt_lock, 0);
    pthread_cond_init(&mt_go, 0);
    pthread_cond_init(&mt_done, 0);
    mt_spawned = 0;
    mt_ready = 0;
    mt_job_seq = 0;
    mt_remaining = 0;
}

__attribute__((constructor)) static void mt_init(void)
{
    pthread_atfork(mt_atfork_prepare, mt_atfork_parent, mt_atfork_child);
}

static int64_t mt_run(mt_fn fn, void *ctx, int64_t n_threads)
{
    if (n_threads > MT_MAX_THREADS) n_threads = MT_MAX_THREADS;
    if (n_threads < 1) n_threads = 1;
    pthread_mutex_lock(&mt_dispatch);
    while (mt_spawned + 1 < n_threads) {
        pthread_t th;
        pthread_attr_t attr;
        pthread_attr_init(&attr);
        pthread_attr_setdetachstate(&attr, PTHREAD_CREATE_DETACHED);
        int rc = pthread_create(
            &th, &attr, mt_worker, (void *)(intptr_t)(mt_spawned + 1));
        pthread_attr_destroy(&attr);
        if (rc != 0) break;  /* degrade: run with the workers we have */
        mt_spawned++;
    }
    pthread_mutex_lock(&mt_lock);
    while (mt_ready < mt_spawned)  /* new workers must capture job_seq */
        pthread_cond_wait(&mt_done, &mt_lock);
    int64_t width =
        mt_spawned + 1 < n_threads ? mt_spawned + 1 : n_threads;
    if (width <= 1) {
        pthread_mutex_unlock(&mt_lock);
        fn(ctx, 0, 1);
        pthread_mutex_unlock(&mt_dispatch);
        return 1;
    }
    mt_job_fn = fn;
    mt_job_ctx = ctx;
    mt_job_width = width;
    mt_remaining = width - 1;
    mt_job_seq++;
    pthread_cond_broadcast(&mt_go);
    pthread_mutex_unlock(&mt_lock);
    fn(ctx, 0, width);
    pthread_mutex_lock(&mt_lock);
    while (mt_remaining > 0)
        pthread_cond_wait(&mt_done, &mt_lock);
    pthread_mutex_unlock(&mt_lock);
    pthread_mutex_unlock(&mt_dispatch);
    return width;
}

/* Contiguous [lo, hi) share for participant `tid` of `width`. */
static int64_t mt_slice_lo(int64_t n, int64_t tid, int64_t width)
{
    return n * tid / width;
}

static int64_t mt_slice_hi(int64_t n, int64_t tid, int64_t width)
{
    return n * (tid + 1) / width;
}

/* ------------------------------------------------------------------ */
/* CPA: for each listed center, scan the clipped (2*half+1)^2 window,
 * keeping running minima in the image-sized dist/labels buffers.
 * `touched` is an h*w byte mask marking every pixel scanned at least
 * once (the deduplicated pixels_assigned telemetry counter).
 *
 * The row-bounded helpers restrict every window to [row0, row1): the
 * _mt variants give each thread a row band, so each pixel is updated by
 * exactly one thread, which visits centers in the same ks order as the
 * serial scan — per-pixel update order, and therefore the strict-<
 * running-minimum result, is identical.                                */
/* ------------------------------------------------------------------ */

static void cpa_f64_rows(
    const double *lab,        /* h*w*3, row-major Lab image             */
    const double *centers,    /* k*5 rows [L, a, b, x, y]               */
    const int64_t *ks,        /* center indices to scan, in order       */
    int64_t n_ks,
    double weight,            /* m^2 / S^2                              */
    int64_t half,             /* window half-extent, ceil(S)            */
    int64_t h, int64_t w,
    int64_t row0, int64_t row1,
    double *dist,             /* h*w running minimum distances          */
    int32_t *labels,          /* h*w running argmin labels              */
    uint8_t *touched)         /* h*w scanned-pixel mask                 */
{
    (void)h;
    for (int64_t i = 0; i < n_ks; i++) {
        int64_t k = ks[i];
        const double *c = centers + 5 * k;
        double cl = c[0], ca = c[1], cb = c[2], cx = c[3], cy = c[4];
        int64_t fx = (int64_t)floor(cx);
        int64_t fy = (int64_t)floor(cy);
        int64_t x0 = fx - half < 0 ? 0 : fx - half;
        int64_t x1 = fx + half + 1 > w ? w : fx + half + 1;
        int64_t y0 = fy - half < row0 ? row0 : fy - half;
        int64_t y1 = fy + half + 1 > row1 ? row1 : fy + half + 1;
        for (int64_t y = y0; y < y1; y++) {
            double dy = (double)y - cy;
            double dy2 = dy * dy;
            const double *px = lab + (y * w + x0) * 3;
            double *drow = dist + y * w;
            int32_t *lrow = labels + y * w;
            uint8_t *trow = touched + y * w;
            for (int64_t x = x0; x < x1; x++, px += 3) {
                double dl = px[0] - cl;
                double da = px[1] - ca;
                double db = px[2] - cb;
                double dc2 = (dl * dl + da * da) + db * db;
                double dx = (double)x - cx;
                double d2 = dc2 + weight * (dx * dx + dy2);
                trow[x] = 1;
                if (d2 < drow[x]) {
                    drow[x] = d2;
                    lrow[x] = (int32_t)k;
                }
            }
        }
    }
}

void cpa_assign_f64(
    const double *lab, const double *centers, const int64_t *ks,
    int64_t n_ks, double weight, int64_t half, int64_t h, int64_t w,
    double *dist, int32_t *labels, uint8_t *touched)
{
    cpa_f64_rows(lab, centers, ks, n_ks, weight, half, h, w, 0, h,
                 dist, labels, touched);
}

typedef struct {
    const double *lab;
    const double *centers;
    const int64_t *ks;
    int64_t n_ks;
    double weight;
    int64_t half, h, w;
    double *dist;
    int32_t *labels;
    uint8_t *touched;
} cpa_f64_ctx;

static void cpa_f64_band(void *vctx, int64_t tid, int64_t width)
{
    cpa_f64_ctx *c = (cpa_f64_ctx *)vctx;
    cpa_f64_rows(c->lab, c->centers, c->ks, c->n_ks, c->weight, c->half,
                 c->h, c->w, mt_slice_lo(c->h, tid, width),
                 mt_slice_hi(c->h, tid, width), c->dist, c->labels,
                 c->touched);
}

void cpa_assign_f64_mt(
    const double *lab, const double *centers, const int64_t *ks,
    int64_t n_ks, double weight, int64_t half, int64_t h, int64_t w,
    double *dist, int32_t *labels, uint8_t *touched, int64_t n_threads)
{
    cpa_f64_ctx ctx = {lab, centers, ks, n_ks, weight, half, h, w,
                       dist, labels, touched};
    mt_run(cpa_f64_band, &ctx, n_threads < h ? n_threads : h);
}

static void cpa_fixed_rows(
    const int64_t *codes,     /* h*w*3 Lab channel codes                */
    const int64_t *c_codes,   /* k*5 encoded centers (codes + raw xy)   */
    const double *centers,    /* k*5 float centers (window placement)   */
    const int64_t *ks,
    int64_t n_ks,
    int64_t weight_raw,       /* fixed-point spatial weight             */
    int64_t wfrac,            /* WEIGHT_FRAC_BITS                       */
    int64_t sf,               /* spatial_frac_bits                      */
    int64_t quantize,         /* nonzero: shift + saturate the distance */
    int64_t dshift,           /* effective_distance_shift               */
    int64_t dmax,             /* distance_max_code                      */
    int64_t half,
    int64_t h, int64_t w,
    int64_t row0, int64_t row1,
    double *dist,             /* float64 running minima (engine buffer) */
    int32_t *labels,
    uint8_t *touched)
{
    (void)h;
    for (int64_t i = 0; i < n_ks; i++) {
        int64_t k = ks[i];
        const int64_t *cc = c_codes + 5 * k;
        int64_t cl = cc[0], ca = cc[1], cb = cc[2], cxr = cc[3], cyr = cc[4];
        double cx = centers[5 * k + 3];
        double cy = centers[5 * k + 4];
        int64_t fx = (int64_t)floor(cx);
        int64_t fy = (int64_t)floor(cy);
        int64_t x0 = fx - half < 0 ? 0 : fx - half;
        int64_t x1 = fx + half + 1 > w ? w : fx + half + 1;
        int64_t y0 = fy - half < row0 ? row0 : fy - half;
        int64_t y1 = fy + half + 1 > row1 ? row1 : fy + half + 1;
        for (int64_t y = y0; y < y1; y++) {
            int64_t dyv = (y << sf) - cyr;
            int64_t dy2 = dyv * dyv;
            const int64_t *px = codes + (y * w + x0) * 3;
            double *drow = dist + y * w;
            int32_t *lrow = labels + y * w;
            uint8_t *trow = touched + y * w;
            for (int64_t x = x0; x < x1; x++, px += 3) {
                int64_t dl = px[0] - cl;
                int64_t da = px[1] - ca;
                int64_t db = px[2] - cb;
                int64_t dc2 = (dl * dl + da * da) + db * db;
                int64_t dxv = (x << sf) - cxr;
                int64_t ds2 = (dxv * dxv + dy2) >> (2 * sf);
                int64_t d2 = dc2 + ((weight_raw * ds2) >> wfrac);
                if (quantize) {
                    d2 >>= dshift;
                    if (d2 > dmax) d2 = dmax;
                }
                trow[x] = 1;
                double d2f = (double)d2;
                if (d2f < drow[x]) {
                    drow[x] = d2f;
                    lrow[x] = (int32_t)k;
                }
            }
        }
    }
}

void cpa_assign_fixed(
    const int64_t *codes, const int64_t *c_codes, const double *centers,
    const int64_t *ks, int64_t n_ks, int64_t weight_raw, int64_t wfrac,
    int64_t sf, int64_t quantize, int64_t dshift, int64_t dmax,
    int64_t half, int64_t h, int64_t w,
    double *dist, int32_t *labels, uint8_t *touched)
{
    cpa_fixed_rows(codes, c_codes, centers, ks, n_ks, weight_raw, wfrac,
                   sf, quantize, dshift, dmax, half, h, w, 0, h,
                   dist, labels, touched);
}

typedef struct {
    const int64_t *codes;
    const int64_t *c_codes;
    const double *centers;
    const int64_t *ks;
    int64_t n_ks;
    int64_t weight_raw, wfrac, sf, quantize, dshift, dmax, half, h, w;
    double *dist;
    int32_t *labels;
    uint8_t *touched;
} cpa_fixed_ctx;

static void cpa_fixed_band(void *vctx, int64_t tid, int64_t width)
{
    cpa_fixed_ctx *c = (cpa_fixed_ctx *)vctx;
    cpa_fixed_rows(c->codes, c->c_codes, c->centers, c->ks, c->n_ks,
                   c->weight_raw, c->wfrac, c->sf, c->quantize, c->dshift,
                   c->dmax, c->half, c->h, c->w,
                   mt_slice_lo(c->h, tid, width),
                   mt_slice_hi(c->h, tid, width),
                   c->dist, c->labels, c->touched);
}

void cpa_assign_fixed_mt(
    const int64_t *codes, const int64_t *c_codes, const double *centers,
    const int64_t *ks, int64_t n_ks, int64_t weight_raw, int64_t wfrac,
    int64_t sf, int64_t quantize, int64_t dshift, int64_t dmax,
    int64_t half, int64_t h, int64_t w,
    double *dist, int32_t *labels, uint8_t *touched, int64_t n_threads)
{
    cpa_fixed_ctx ctx = {codes, c_codes, centers, ks, n_ks, weight_raw,
                         wfrac, sf, quantize, dshift, dmax, half, h, w,
                         dist, labels, touched};
    mt_run(cpa_fixed_band, &ctx, n_threads < h ? n_threads : h);
}

/* ------------------------------------------------------------------ */
/* PPA: 9-candidate argmin per subset pixel, fully fused — no (M, 9, 3)
 * temporaries, one running minimum per pixel. Ties resolve to the
 * lowest candidate slot via the strict <, like the hardware 9:1 tree.
 *
 * Each subset pixel is independent, so the _mt variants split the
 * subset into contiguous [j0, j1) ranges — single-writer per output
 * element, serial evaluation order within each element.                */
/* ------------------------------------------------------------------ */

static void ppa_f64_range(
    const double *lab_flat,   /* n*3 flat Lab                           */
    const int64_t *xs,        /* n flat pixel x                         */
    const int64_t *ys,        /* n flat pixel y                         */
    const int64_t *tiles,     /* n tile index per pixel                 */
    const int64_t *subset,    /* m flat indices to assign               */
    int64_t j0, int64_t j1,
    const int32_t *cands,     /* t*9 candidate clusters per tile        */
    const double *centers,    /* k*5                                    */
    double weight,
    int32_t *out)             /* m chosen clusters                      */
{
    for (int64_t j = j0; j < j1; j++) {
        int64_t i = subset[j];
        const int32_t *cnd = cands + 9 * tiles[i];
        const double *px = lab_flat + 3 * i;
        double x = (double)xs[i];
        double y = (double)ys[i];
        double best = INFINITY;
        int32_t bk = cnd[0];
        for (int s = 0; s < 9; s++) {
            const double *c = centers + 5 * cnd[s];
            double dl = px[0] - c[0];
            double da = px[1] - c[1];
            double db = px[2] - c[2];
            double dc2 = (dl * dl + da * da) + db * db;
            double dx = x - c[3];
            double dyv = y - c[4];
            double d2 = dc2 + weight * (dx * dx + dyv * dyv);
            if (d2 < best) {
                best = d2;
                bk = cnd[s];
            }
        }
        out[j] = bk;
    }
}

void ppa_assign_f64(
    const double *lab_flat, const int64_t *xs, const int64_t *ys,
    const int64_t *tiles, const int64_t *subset, int64_t m,
    const int32_t *cands, const double *centers, double weight,
    int32_t *out)
{
    ppa_f64_range(lab_flat, xs, ys, tiles, subset, 0, m, cands, centers,
                  weight, out);
}

typedef struct {
    const double *lab_flat;
    const int64_t *xs, *ys, *tiles, *subset;
    int64_t m;
    const int32_t *cands;
    const double *centers;
    double weight;
    int32_t *out;
} ppa_f64_ctx;

static void ppa_f64_chunk(void *vctx, int64_t tid, int64_t width)
{
    ppa_f64_ctx *c = (ppa_f64_ctx *)vctx;
    ppa_f64_range(c->lab_flat, c->xs, c->ys, c->tiles, c->subset,
                  mt_slice_lo(c->m, tid, width),
                  mt_slice_hi(c->m, tid, width),
                  c->cands, c->centers, c->weight, c->out);
}

void ppa_assign_f64_mt(
    const double *lab_flat, const int64_t *xs, const int64_t *ys,
    const int64_t *tiles, const int64_t *subset, int64_t m,
    const int32_t *cands, const double *centers, double weight,
    int32_t *out, int64_t n_threads)
{
    ppa_f64_ctx ctx = {lab_flat, xs, ys, tiles, subset, m, cands,
                       centers, weight, out};
    mt_run(ppa_f64_chunk, &ctx, n_threads < m ? n_threads : m);
}

/* ------------------------------------------------------------------ */
/* Fixed-point RGB -> Lab channel codes: gamma LUT, folded 3x3 integer
 * matrix, piecewise-linear cube root, scale-and-offset encode — one
 * pixel at a time, replicating HwColorConverter.convert_codes exactly.
 *
 * Bit-identity notes: rounding shifts on possibly-negative values use
 * the same arithmetic >> numpy does (gcc/clang on the targets we build
 * for); the intercept alignment multiplies by 1<<shift instead of
 * left-shifting, because shifting a negative signed value is UB in C
 * while numpy's << is well-defined; the final scale rounding is
 * sign-symmetric, mirroring _scale_round's np.where.                   */
/* ------------------------------------------------------------------ */

static int64_t scale_round_i64(int64_t raw, int64_t scale_raw,
                               int64_t shift, int64_t half)
{
    int64_t wide = raw * scale_raw;
    return wide >= 0 ? (wide + half) >> shift : -((-wide + half) >> shift);
}

static void lab_codes_u8_range(
    const uint8_t *rgb,        /* n*3 flat RGB                          */
    int64_t i0, int64_t i1,    /* pixel range                           */
    const int64_t *gamma_lut,  /* 256 entries, gamma_frac fraction bits */
    const int64_t *matrix_raw, /* 3*3 row-major folded matrix           */
    int64_t mat_shift,         /* (gamma_frac + mat_frac) - in_frac     */
    int64_t in_raw_min, int64_t in_raw_max,   /* PWL in_fmt raw range   */
    const int64_t *breaks_raw, /* n_seg + 1 breakpoints, in_fmt raw     */
    int64_t n_seg,
    const int64_t *slopes_raw, /* n_seg, coeff_fmt raw                  */
    const int64_t *intercepts_raw,
    int64_t in_frac,           /* in_fmt fraction bits (b alignment)    */
    int64_t out_shift,         /* (coeff_frac + in_frac) - out_frac, >0 */
    int64_t out_raw_min, int64_t out_raw_max, /* PWL out_fmt raw range  */
    int64_t f_frac,            /* out_fmt fraction bits                 */
    int64_t l_scale_raw,       /* round(l_scale * 2^14)                 */
    int64_t ab_scale_raw,      /* round(ab_scale * 2^14)                */
    int64_t ab_offset,
    int64_t code_max,
    int64_t *codes,            /* n*3 output channel codes              */
    double l_scale_d,          /* real decode scales (fused path only)  */
    double ab_scale_d,
    double ab_offset_d,
    double *lab_out)           /* n*3 decoded Lab, or NULL: codes only  */
{
    int64_t mat_half = (int64_t)1 << (mat_shift - 1);
    int64_t b_align = (int64_t)1 << in_frac;
    int64_t out_half = (int64_t)1 << (out_shift - 1);
    int64_t one = (int64_t)1 << f_frac;
    int64_t s_shift = f_frac + 14;
    int64_t s_half = (int64_t)1 << (s_shift - 1);
    for (int64_t i = i0; i < i1; i++) {
        const uint8_t *px = rgb + 3 * i;
        int64_t lin0 = gamma_lut[px[0]];
        int64_t lin1 = gamma_lut[px[1]];
        int64_t lin2 = gamma_lut[px[2]];
        int64_t f[3];
        for (int k = 0; k < 3; k++) {
            const int64_t *m = matrix_raw + 3 * k;
            int64_t t = lin0 * m[0] + lin1 * m[1] + lin2 * m[2];
            t = (t + mat_half) >> mat_shift;   /* arithmetic, like numpy */
            if (t < 0) t = 0;
            if (t < in_raw_min) t = in_raw_min;
            if (t > in_raw_max) t = in_raw_max;
            /* Segment select: count of interior breakpoints <= t.      */
            int64_t seg = 0;
            while (seg < n_seg - 1 && t >= breaks_raw[seg + 1]) seg++;
            int64_t y = slopes_raw[seg] * t + intercepts_raw[seg] * b_align;
            y = y >= 0 ? (y + out_half) >> out_shift
                       : -((-y + out_half) >> out_shift);
            if (y < out_raw_min) y = out_raw_min;
            if (y > out_raw_max) y = out_raw_max;
            f[k] = y;
        }
        int64_t l_raw = 116 * f[1] - 16 * one;
        int64_t a_raw = 500 * (f[0] - f[1]);
        int64_t b_raw = 200 * (f[1] - f[2]);
        int64_t cl = scale_round_i64(l_raw, l_scale_raw, s_shift, s_half);
        int64_t ca = scale_round_i64(a_raw, ab_scale_raw, s_shift, s_half)
                     + ab_offset;
        int64_t cb = scale_round_i64(b_raw, ab_scale_raw, s_shift, s_half)
                     + ab_offset;
        int64_t *out = codes + 3 * i;
        out[0] = cl < 0 ? 0 : (cl > code_max ? code_max : cl);
        out[1] = ca < 0 ? 0 : (ca > code_max ? code_max : ca);
        out[2] = cb < 0 ? 0 : (cb > code_max ? code_max : cb);
        if (lab_out) {
            /* Inline LabEncoding.decode: float64 cast, then the same
             * divide / subtract-divide expressions numpy evaluates —
             * identical IEEE operations, so the fused Lab plane is
             * bit-identical to decode(convert_codes(...)).             */
            double *lo = lab_out + 3 * i;
            lo[0] = (double)out[0] / l_scale_d;
            lo[1] = ((double)out[1] - ab_offset_d) / ab_scale_d;
            lo[2] = ((double)out[2] - ab_offset_d) / ab_scale_d;
        }
    }
}

void lab_codes_u8(
    const uint8_t *rgb, int64_t n, const int64_t *gamma_lut,
    const int64_t *matrix_raw, int64_t mat_shift,
    int64_t in_raw_min, int64_t in_raw_max, const int64_t *breaks_raw,
    int64_t n_seg, const int64_t *slopes_raw,
    const int64_t *intercepts_raw, int64_t in_frac, int64_t out_shift,
    int64_t out_raw_min, int64_t out_raw_max, int64_t f_frac,
    int64_t l_scale_raw, int64_t ab_scale_raw, int64_t ab_offset,
    int64_t code_max, int64_t *codes)
{
    lab_codes_u8_range(rgb, 0, n, gamma_lut, matrix_raw, mat_shift,
                       in_raw_min, in_raw_max, breaks_raw, n_seg,
                       slopes_raw, intercepts_raw, in_frac, out_shift,
                       out_raw_min, out_raw_max, f_frac, l_scale_raw,
                       ab_scale_raw, ab_offset, code_max, codes,
                       0.0, 1.0, 0.0, 0);
}

typedef struct {
    const uint8_t *rgb;
    int64_t n;
    const int64_t *gamma_lut;
    const int64_t *matrix_raw;
    int64_t mat_shift;
    int64_t in_raw_min, in_raw_max;
    const int64_t *breaks_raw;
    int64_t n_seg;
    const int64_t *slopes_raw;
    const int64_t *intercepts_raw;
    int64_t in_frac, out_shift;
    int64_t out_raw_min, out_raw_max, f_frac;
    int64_t l_scale_raw, ab_scale_raw, ab_offset, code_max;
    int64_t *codes;
    double l_scale_d, ab_scale_d, ab_offset_d;
    double *lab_out;
} lab_codes_ctx;

static void lab_codes_chunk(void *vctx, int64_t tid, int64_t width)
{
    lab_codes_ctx *c = (lab_codes_ctx *)vctx;
    lab_codes_u8_range(c->rgb, mt_slice_lo(c->n, tid, width),
                       mt_slice_hi(c->n, tid, width), c->gamma_lut,
                       c->matrix_raw, c->mat_shift, c->in_raw_min,
                       c->in_raw_max, c->breaks_raw, c->n_seg,
                       c->slopes_raw, c->intercepts_raw, c->in_frac,
                       c->out_shift, c->out_raw_min, c->out_raw_max,
                       c->f_frac, c->l_scale_raw, c->ab_scale_raw,
                       c->ab_offset, c->code_max, c->codes,
                       c->l_scale_d, c->ab_scale_d, c->ab_offset_d,
                       c->lab_out);
}

void lab_codes_u8_mt(
    const uint8_t *rgb, int64_t n, const int64_t *gamma_lut,
    const int64_t *matrix_raw, int64_t mat_shift,
    int64_t in_raw_min, int64_t in_raw_max, const int64_t *breaks_raw,
    int64_t n_seg, const int64_t *slopes_raw,
    const int64_t *intercepts_raw, int64_t in_frac, int64_t out_shift,
    int64_t out_raw_min, int64_t out_raw_max, int64_t f_frac,
    int64_t l_scale_raw, int64_t ab_scale_raw, int64_t ab_offset,
    int64_t code_max, int64_t *codes, int64_t n_threads)
{
    lab_codes_ctx ctx = {rgb, n, gamma_lut, matrix_raw, mat_shift,
                         in_raw_min, in_raw_max, breaks_raw, n_seg,
                         slopes_raw, intercepts_raw, in_frac, out_shift,
                         out_raw_min, out_raw_max, f_frac, l_scale_raw,
                         ab_scale_raw, ab_offset, code_max, codes,
                         0.0, 1.0, 0.0, 0};
    mt_run(lab_codes_chunk, &ctx, n_threads < n ? n_threads : n);
}

/* The fused conversion: one pixel pass producing both the channel codes
 * and the decoded float64 Lab plane — replacing the engine's
 * convert-then-decode double frame walk. Same datapath as lab_codes_u8;
 * the decode tail is bit-identical to LabEncoding.decode.               */
void lab_from_codes_u8(
    const uint8_t *rgb, int64_t n, const int64_t *gamma_lut,
    const int64_t *matrix_raw, int64_t mat_shift,
    int64_t in_raw_min, int64_t in_raw_max, const int64_t *breaks_raw,
    int64_t n_seg, const int64_t *slopes_raw,
    const int64_t *intercepts_raw, int64_t in_frac, int64_t out_shift,
    int64_t out_raw_min, int64_t out_raw_max, int64_t f_frac,
    int64_t l_scale_raw, int64_t ab_scale_raw, int64_t ab_offset,
    int64_t code_max, int64_t *codes,
    double l_scale_d, double ab_scale_d, double ab_offset_d,
    double *lab_out)
{
    lab_codes_u8_range(rgb, 0, n, gamma_lut, matrix_raw, mat_shift,
                       in_raw_min, in_raw_max, breaks_raw, n_seg,
                       slopes_raw, intercepts_raw, in_frac, out_shift,
                       out_raw_min, out_raw_max, f_frac, l_scale_raw,
                       ab_scale_raw, ab_offset, code_max, codes,
                       l_scale_d, ab_scale_d, ab_offset_d, lab_out);
}

void lab_from_codes_u8_mt(
    const uint8_t *rgb, int64_t n, const int64_t *gamma_lut,
    const int64_t *matrix_raw, int64_t mat_shift,
    int64_t in_raw_min, int64_t in_raw_max, const int64_t *breaks_raw,
    int64_t n_seg, const int64_t *slopes_raw,
    const int64_t *intercepts_raw, int64_t in_frac, int64_t out_shift,
    int64_t out_raw_min, int64_t out_raw_max, int64_t f_frac,
    int64_t l_scale_raw, int64_t ab_scale_raw, int64_t ab_offset,
    int64_t code_max, int64_t *codes,
    double l_scale_d, double ab_scale_d, double ab_offset_d,
    double *lab_out, int64_t n_threads)
{
    lab_codes_ctx ctx = {rgb, n, gamma_lut, matrix_raw, mat_shift,
                         in_raw_min, in_raw_max, breaks_raw, n_seg,
                         slopes_raw, intercepts_raw, in_frac, out_shift,
                         out_raw_min, out_raw_max, f_frac, l_scale_raw,
                         ab_scale_raw, ab_offset, code_max, codes,
                         l_scale_d, ab_scale_d, ab_offset_d, lab_out};
    mt_run(lab_codes_chunk, &ctx, n_threads < n ? n_threads : n);
}

/* ------------------------------------------------------------------ */
/* Connectivity: the greedy small-component merge walk over the CSR
 * adjacency graph. Semantics and tie rule match merge_small_reference
 * exactly: longest shared border wins, ties to the lowest neighbor
 * component id; chained merges follow union-find roots.                */
/* ------------------------------------------------------------------ */

static int64_t uf_find(int64_t *parent, int64_t i)
{
    while (parent[i] != i) {        /* path halving */
        parent[i] = parent[parent[i]];
        i = parent[i];
    }
    return i;
}

void merge_small(
    const int64_t *starts,     /* n_comps CSR slice starts              */
    const int64_t *ends,       /* n_comps CSR slice ends                */
    const int64_t *dst,        /* edge target component ids             */
    const int64_t *border_len, /* edge shared-border weights            */
    int64_t min_size,
    const int64_t *order,      /* small components, increasing size     */
    int64_t n_order,
    int64_t n_comps,
    int64_t *parent,           /* n_comps, pre-set to identity          */
    int64_t *merged_size,      /* n_comps, pre-set to sizes             */
    int64_t *final_root)       /* n_comps output roots                  */
{
    for (int64_t i = 0; i < n_order; i++) {
        int64_t c = order[i];
        int64_t root_c = uf_find(parent, c);
        if (merged_size[root_c] >= min_size) continue;
        int64_t lo = starts[c], hi = ends[c];
        if (lo == hi) continue;   /* isolated: whole image is one label */
        int64_t best_w = -1, best_nb = -1, best_root = -1;
        for (int64_t e = lo; e < hi; e++) {
            int64_t nb = dst[e];
            int64_t root_nb = uf_find(parent, nb);
            if (root_nb == root_c) continue;
            int64_t wgt = border_len[e];
            if (wgt > best_w || (wgt == best_w && nb < best_nb)) {
                best_w = wgt;
                best_nb = nb;
                best_root = root_nb;
            }
        }
        if (best_root < 0) continue;
        parent[root_c] = best_root;
        int64_t new_root = uf_find(parent, best_root);
        merged_size[new_root] = merged_size[root_c] + merged_size[best_root];
    }
    for (int64_t i = 0; i < n_comps; i++)
        final_root[i] = uf_find(parent, i);
}

/* ------------------------------------------------------------------ */
/* Connected components: two-pass union-find over row runs.
 *
 * Pass 1 decomposes the label map into maximal horizontal runs (runs
 * never cross a row boundary, matching _run_ids in core.connectivity);
 * pass 2 unions vertically adjacent same-label runs *by minimal root*:
 * the larger root is always attached under the smaller, so each
 * component's final root is its minimal run id — its first appearance
 * in raster order. An ascending renumber of the roots then reproduces
 * the reference's canonical first-appearance component ids exactly.
 *
 * The _mt variant gives each thread a contiguous row band. Runs are
 * counted per band, offset by a serial prefix sum (band-local run
 * decomposition + offsets equals the global decomposition because runs
 * break at row boundaries anyway), and intra-band unions touch only the
 * band's own disjoint parent range — race-free by ownership. The
 * cross-band seams and the final renumber run serially. Union-by-min
 * makes every component's root independent of union order, so the
 * result is bit-identical to the serial kernel at any thread count.    */
/* ------------------------------------------------------------------ */

/* Attach the larger of the two roots under the smaller. */
static void uf_union_min(int64_t *parent, int64_t a, int64_t b)
{
    int64_t ra = uf_find(parent, a);
    int64_t rb = uf_find(parent, b);
    if (ra < rb)
        parent[rb] = ra;
    else if (rb < ra)
        parent[ra] = rb;
}

/* Decompose rows [y0, y1) into runs. Run ids start at `base` and are
 * written into comps (int32: the caller guarantees h*w < 2^31). When
 * `parent` is non-null each new run is initialized to identity. Unions
 * start at row max(y0, union_y0) so the mt variant can defer seams.
 * Returns the number of runs emitted.                                  */
static int64_t ccl_rows(
    const int32_t *labels, int64_t w, int64_t y0, int64_t y1,
    int64_t union_y0, int64_t base, int32_t *comps, int64_t *parent)
{
    int64_t next = base;
    for (int64_t y = y0; y < y1; y++) {
        const int32_t *row = labels + y * w;
        int32_t *crow = comps + y * w;
        for (int64_t x = 0; x < w; x++) {
            if (x == 0 || row[x] != row[x - 1]) {
                if (parent) parent[next] = next;
                next++;
            }
            crow[x] = (int32_t)(next - 1);
            if (parent && y > union_y0 && row[x] == labels[(y - 1) * w + x])
                uf_union_min(parent, crow[x], comps[(y - 1) * w + x]);
        }
    }
    return next - base;
}

/* Compress every run to its root, then renumber roots in ascending run
 * id order — in place, valid because each root is the minimum of its
 * component, so parent[root] is rewritten before any child reads it.   */
static int64_t ccl_renumber(int64_t *parent, int64_t n_runs)
{
    for (int64_t r = 0; r < n_runs; r++)
        parent[r] = uf_find(parent, r);
    int64_t next = 0;
    for (int64_t r = 0; r < n_runs; r++) {
        int64_t root = parent[r];
        parent[r] = (root == r) ? next++ : parent[root];
    }
    return next;
}

int64_t ccl_i32(
    const int32_t *labels,     /* h*w label map                         */
    int64_t h, int64_t w,
    int32_t *comps,            /* h*w output component map              */
    int64_t *parent)           /* h*w scratch (>= n_runs)               */
{
    int64_t n_runs = ccl_rows(labels, w, 0, h, 0, 0, comps, parent);
    int64_t n_comps = ccl_renumber(parent, n_runs);
    for (int64_t i = 0; i < h * w; i++)
        comps[i] = (int32_t)parent[comps[i]];
    return n_comps;
}

typedef struct {
    const int32_t *labels;
    int64_t h, w;
    int32_t *comps;
    int64_t *parent;
    int64_t counts[MT_MAX_THREADS];   /* runs per band                  */
    int64_t offsets[MT_MAX_THREADS];  /* band run-id bases              */
    int64_t done;                     /* 0: count pass, 1: fill pass    */
} ccl_ctx;

static void ccl_band(void *vctx, int64_t tid, int64_t width)
{
    ccl_ctx *c = (ccl_ctx *)vctx;
    int64_t y0 = mt_slice_lo(c->h, tid, width);
    int64_t y1 = mt_slice_hi(c->h, tid, width);
    if (!c->done)
        c->counts[tid] = ccl_rows(c->labels, c->w, y0, y1, y0,
                                  0, c->comps, 0);
    else
        ccl_rows(c->labels, c->w, y0, y1, y0,
                 c->offsets[tid], c->comps, c->parent);
}

static void ccl_relabel_band(void *vctx, int64_t tid, int64_t width)
{
    ccl_ctx *c = (ccl_ctx *)vctx;
    int64_t lo = mt_slice_lo(c->h * c->w, tid, width);
    int64_t hi = mt_slice_hi(c->h * c->w, tid, width);
    for (int64_t i = lo; i < hi; i++)
        c->comps[i] = (int32_t)c->parent[c->comps[i]];
}

int64_t ccl_i32_mt(
    const int32_t *labels, int64_t h, int64_t w,
    int32_t *comps, int64_t *parent, int64_t n_threads)
{
    if (n_threads > h) n_threads = h;
    if (n_threads > MT_MAX_THREADS) n_threads = MT_MAX_THREADS;
    if (n_threads < 2)
        return ccl_i32(labels, h, w, comps, parent);
    ccl_ctx ctx;
    ctx.labels = labels;
    ctx.h = h;
    ctx.w = w;
    ctx.comps = comps;
    ctx.parent = parent;
    ctx.done = 0;
    for (int64_t t = 0; t < MT_MAX_THREADS; t++)
        ctx.counts[t] = ctx.offsets[t] = 0;
    /* The pool may degrade to fewer participants than requested (a
     * failed pthread_create). The band partition, the prefix sum, and
     * the seam loop must all use the width that actually ran, and both
     * passes must run at the *same* width — otherwise seams land on the
     * wrong rows and components silently split. mt_spawned never
     * shrinks in a process, so re-requesting `width` is guaranteed to
     * run at exactly `width`; the serial fallbacks cover width 1 and
     * the cannot-happen mismatch (a full recompute, so comps/parent
     * being partially written is harmless).                             */
    int64_t width = mt_run(ccl_band, &ctx, n_threads); /* count runs    */
    if (width < 2)
        return ccl_i32(labels, h, w, comps, parent);
    int64_t n_runs = 0;
    for (int64_t t = 0; t < width; t++) {
        ctx.offsets[t] = n_runs;
        n_runs += ctx.counts[t];
    }
    ctx.done = 1;
    if (mt_run(ccl_band, &ctx, width) != width)   /* fill + band unions */
        return ccl_i32(labels, h, w, comps, parent);
    for (int64_t t = 1; t < width; t++) {         /* serial seams       */
        int64_t y = mt_slice_lo(h, t, width);
        if (y == 0 || y >= h) continue;
        const int32_t *row = labels + y * w;
        const int32_t *up = row - w;
        for (int64_t x = 0; x < w; x++)
            if (row[x] == up[x])
                uf_union_min(parent, comps[y * w + x],
                             comps[(y - 1) * w + x]);
    }
    int64_t n_comps = ccl_renumber(parent, n_runs);
    mt_run(ccl_relabel_band, &ctx, width);
    return n_comps;
}

/* Resolve pre-decomposed runs against an explicit union pair list into
 * canonical dense component ids (the incremental-connectivity path:
 * Python rebuilds run structures only for dirty row bands and ships the
 * vertical adjacencies here). parent[r] holds run r's dense id on
 * return; the return value is the component count.                     */
int64_t ccl_resolve(
    const int64_t *pair_a,     /* n_pairs union endpoints               */
    const int64_t *pair_b,
    int64_t n_pairs,
    int64_t n_runs,
    int64_t *parent)           /* n_runs, overwritten                   */
{
    for (int64_t r = 0; r < n_runs; r++)
        parent[r] = r;
    for (int64_t i = 0; i < n_pairs; i++)
        uf_union_min(parent, pair_a[i], pair_b[i]);
    return ccl_renumber(parent, n_runs);
}

/* ------------------------------------------------------------------ */
/* Metrics: the USE/ASA joint histogram and the 3-4 chamfer transform.
 * The chamfer sweeps are the sequential raster form of the reference's
 * per-row prefix-min formulation; on the integer grid the two are
 * exactly equal (d[x] = min(pre[x], d[x-1]+3) unrolls to the same
 * prefix minimum), so results stay bit-identical.                      */
/* ------------------------------------------------------------------ */

void contingency_i64(
    const int64_t *a,          /* n flat labels                         */
    const int64_t *b,          /* n flat labels                         */
    int64_t n,
    int64_t n_b,               /* table width                           */
    int64_t *table)            /* n_a*n_b, zero-initialized             */
{
    for (int64_t i = 0; i < n; i++)
        table[a[i] * n_b + b[i]] += 1;
}

typedef struct {
    const int64_t *a, *b;
    int64_t n, n_b, n_cells;
    int64_t *scratch;          /* n_threads private tables, zeroed      */
} contingency_ctx;

static void contingency_chunk(void *vctx, int64_t tid, int64_t width)
{
    contingency_ctx *c = (contingency_ctx *)vctx;
    int64_t *table = c->scratch + tid * c->n_cells;
    int64_t hi = mt_slice_hi(c->n, tid, width);
    for (int64_t i = mt_slice_lo(c->n, tid, width); i < hi; i++)
        table[c->a[i] * c->n_b + c->b[i]] += 1;
}

void contingency_i64_mt(
    const int64_t *a, const int64_t *b, int64_t n, int64_t n_b,
    int64_t n_threads,
    int64_t *scratch,          /* n_threads * n_cells, zero-initialized */
    int64_t n_cells,           /* n_a * n_b                             */
    int64_t *table)            /* n_a * n_b, zero-initialized           */
{
    contingency_ctx ctx = {a, b, n, n_b, n_cells, scratch};
    mt_run(contingency_chunk, &ctx, n_threads < n ? n_threads : n);
    /* Deterministic stitch: private tables fold in ascending tile id.
     * Slices beyond the width that actually ran stayed all-zero.       */
    for (int64_t t = 0; t < n_threads; t++) {
        const int64_t *part = scratch + t * n_cells;
        for (int64_t i = 0; i < n_cells; i++)
            table[i] += part[i];
    }
}

void chamfer_i64(
    int64_t *dist,             /* h*w grid: 0 on mask, BIG elsewhere    */
    int64_t h, int64_t w)
{
    /* Forward pass: top-left to bottom-right. */
    for (int64_t y = 0; y < h; y++) {
        int64_t *row = dist + y * w;
        const int64_t *up = row - w;
        for (int64_t x = 0; x < w; x++) {
            int64_t d = row[x], v;
            if (y > 0) {
                v = up[x] + 3; if (v < d) d = v;
                if (x > 0)     { v = up[x - 1] + 4; if (v < d) d = v; }
                if (x < w - 1) { v = up[x + 1] + 4; if (v < d) d = v; }
            }
            if (x > 0) { v = row[x - 1] + 3; if (v < d) d = v; }
            row[x] = d;
        }
    }
    /* Backward pass: bottom-right to top-left. */
    for (int64_t y = h - 1; y >= 0; y--) {
        int64_t *row = dist + y * w;
        const int64_t *down = row + w;
        for (int64_t x = w - 1; x >= 0; x--) {
            int64_t d = row[x], v;
            if (y < h - 1) {
                v = down[x] + 3; if (v < d) d = v;
                if (x > 0)     { v = down[x - 1] + 4; if (v < d) d = v; }
                if (x < w - 1) { v = down[x + 1] + 4; if (v < d) d = v; }
            }
            if (x < w - 1) { v = row[x + 1] + 3; if (v < d) d = v; }
            row[x] = d;
        }
    }
}

static void ppa_fixed_range(
    const int64_t *codes_flat, /* n*3 flat channel codes                */
    const int64_t *xs,
    const int64_t *ys,
    const int64_t *tiles,
    const int64_t *subset,
    int64_t j0, int64_t j1,
    const int32_t *cands,
    const int64_t *c_codes,    /* k*5 encoded centers                   */
    int64_t weight_raw,
    int64_t wfrac,
    int64_t sf,
    int64_t quantize,
    int64_t dshift,
    int64_t dmax,
    int32_t *out)
{
    for (int64_t j = j0; j < j1; j++) {
        int64_t i = subset[j];
        const int32_t *cnd = cands + 9 * tiles[i];
        const int64_t *px = codes_flat + 3 * i;
        int64_t xr = xs[i] << sf;
        int64_t yr = ys[i] << sf;
        int64_t best = INT64_MAX;
        int32_t bk = cnd[0];
        for (int s = 0; s < 9; s++) {
            const int64_t *c = c_codes + 5 * cnd[s];
            int64_t dl = px[0] - c[0];
            int64_t da = px[1] - c[1];
            int64_t db = px[2] - c[2];
            int64_t dc2 = (dl * dl + da * da) + db * db;
            int64_t dxv = xr - c[3];
            int64_t dyv = yr - c[4];
            int64_t ds2 = (dxv * dxv + dyv * dyv) >> (2 * sf);
            int64_t d2 = dc2 + ((weight_raw * ds2) >> wfrac);
            if (quantize) {
                d2 >>= dshift;
                if (d2 > dmax) d2 = dmax;
            }
            if (d2 < best) {
                best = d2;
                bk = cnd[s];
            }
        }
        out[j] = bk;
    }
}

void ppa_assign_fixed(
    const int64_t *codes_flat, const int64_t *xs, const int64_t *ys,
    const int64_t *tiles, const int64_t *subset, int64_t m,
    const int32_t *cands, const int64_t *c_codes, int64_t weight_raw,
    int64_t wfrac, int64_t sf, int64_t quantize, int64_t dshift,
    int64_t dmax, int32_t *out)
{
    ppa_fixed_range(codes_flat, xs, ys, tiles, subset, 0, m, cands,
                    c_codes, weight_raw, wfrac, sf, quantize, dshift,
                    dmax, out);
}

typedef struct {
    const int64_t *codes_flat;
    const int64_t *xs, *ys, *tiles, *subset;
    int64_t m;
    const int32_t *cands;
    const int64_t *c_codes;
    int64_t weight_raw, wfrac, sf, quantize, dshift, dmax;
    int32_t *out;
} ppa_fixed_ctx;

static void ppa_fixed_chunk(void *vctx, int64_t tid, int64_t width)
{
    ppa_fixed_ctx *c = (ppa_fixed_ctx *)vctx;
    ppa_fixed_range(c->codes_flat, c->xs, c->ys, c->tiles, c->subset,
                    mt_slice_lo(c->m, tid, width),
                    mt_slice_hi(c->m, tid, width),
                    c->cands, c->c_codes, c->weight_raw, c->wfrac,
                    c->sf, c->quantize, c->dshift, c->dmax, c->out);
}

void ppa_assign_fixed_mt(
    const int64_t *codes_flat, const int64_t *xs, const int64_t *ys,
    const int64_t *tiles, const int64_t *subset, int64_t m,
    const int32_t *cands, const int64_t *c_codes, int64_t weight_raw,
    int64_t wfrac, int64_t sf, int64_t quantize, int64_t dshift,
    int64_t dmax, int32_t *out, int64_t n_threads)
{
    ppa_fixed_ctx ctx = {codes_flat, xs, ys, tiles, subset, m, cands,
                         c_codes, weight_raw, wfrac, sf, quantize,
                         dshift, dmax, out};
    mt_run(ppa_fixed_chunk, &ctx, n_threads < m ? n_threads : m);
}

/* ------------------------------------------------------------------ */
/* Sigma accumulation: per-cluster [L, a, b, x, y] sums plus member
 * counts in one pass over the assigned entries — the software model of
 * the Cluster Update Unit's sigma registers (Section 4.3), without
 * materializing the (M, 5) values matrix the numpy path builds. x and y
 * come from the flat pixel index (x = i % w, y = i / w, row-major).
 *
 * Bit-identity: every (cluster, field) accumulator receives its
 * contributions in ascending entry order j — exactly the order
 * np.bincount(labels, weights=...) folds them — so the partial sums
 * equal the reference's bincount outputs bit for bit. The five fields
 * are independent accumulators, so fusing them into one loop changes
 * nothing. The _mt variants partition by *cluster ownership*, not entry
 * ranges: thread t owns clusters [mt_slice_lo(K, t, width),
 * mt_slice_hi(K, t, width)), scans every entry, and accumulates only
 * labels it owns. Each accumulator is written by exactly one thread in
 * the full serial entry order, so float64 summation order is preserved
 * and results are bit-identical at any thread count. (A per-thread
 * entry-range fold — the contingency_table pattern — would reorder
 * float additions and is NOT exact for float weights; it is only valid
 * for integer histograms.) Labels outside [k_lo, k_hi) are skipped,
 * which also makes out-of-range labels harmless in the serial entries. */
/* ------------------------------------------------------------------ */

static void sigma_f64_rows(
    const double *lab_flat,   /* n*3 float Lab rows                     */
    const int64_t *idx,       /* m flat pixel indices, NULL: j itself   */
    const int32_t *labels,    /* m assigned clusters                    */
    int64_t m,
    int64_t k_lo, int64_t k_hi,
    int64_t w,
    double *sums,             /* n_clusters*5, zero-initialized         */
    int64_t *counts)          /* n_clusters, zero-initialized           */
{
    for (int64_t j = 0; j < m; j++) {
        int64_t k = labels[j];
        if (k < k_lo || k >= k_hi) continue;
        int64_t i = idx ? idx[j] : j;
        const double *px = lab_flat + 3 * i;
        double *s = sums + 5 * k;
        s[0] += px[0];
        s[1] += px[1];
        s[2] += px[2];
        s[3] += (double)(i % w);
        s[4] += (double)(i / w);
        counts[k]++;
    }
}

void sigma_acc_f64(
    const double *lab_flat, const int64_t *idx, const int32_t *labels,
    int64_t m, int64_t w, int64_t n_clusters, double *sums,
    int64_t *counts)
{
    sigma_f64_rows(lab_flat, idx, labels, m, 0, n_clusters, w,
                   sums, counts);
}

static void sigma_codes_rows(
    const int64_t *codes_flat, /* n*3 Lab channel codes                 */
    const int64_t *idx,
    const int32_t *labels,
    int64_t m,
    int64_t k_lo, int64_t k_hi,
    int64_t w,
    double l_scale,            /* real decode constants                 */
    double ab_scale,
    double ab_offset,
    double *sums,
    int64_t *counts)
{
    /* Decode inline per entry — the same float64 cast and
     * divide / subtract-divide expressions as LabEncoding.decode, so
     * the accumulated values match the reference's decoded rows.       */
    for (int64_t j = 0; j < m; j++) {
        int64_t k = labels[j];
        if (k < k_lo || k >= k_hi) continue;
        int64_t i = idx ? idx[j] : j;
        const int64_t *px = codes_flat + 3 * i;
        double *s = sums + 5 * k;
        s[0] += (double)px[0] / l_scale;
        s[1] += ((double)px[1] - ab_offset) / ab_scale;
        s[2] += ((double)px[2] - ab_offset) / ab_scale;
        s[3] += (double)(i % w);
        s[4] += (double)(i / w);
        counts[k]++;
    }
}

void sigma_acc_codes(
    const int64_t *codes_flat, const int64_t *idx, const int32_t *labels,
    int64_t m, int64_t w, double l_scale, double ab_scale,
    double ab_offset, int64_t n_clusters, double *sums, int64_t *counts)
{
    sigma_codes_rows(codes_flat, idx, labels, m, 0, n_clusters, w,
                     l_scale, ab_scale, ab_offset, sums, counts);
}

typedef struct {
    const double *lab_flat;
    const int64_t *codes_flat;
    const int64_t *idx;
    const int32_t *labels;
    int64_t m, n_clusters, w;
    double l_scale, ab_scale, ab_offset;
    double *sums;
    int64_t *counts;
} sigma_ctx;

static void sigma_f64_chunk(void *vctx, int64_t tid, int64_t width)
{
    sigma_ctx *c = (sigma_ctx *)vctx;
    sigma_f64_rows(c->lab_flat, c->idx, c->labels, c->m,
                   mt_slice_lo(c->n_clusters, tid, width),
                   mt_slice_hi(c->n_clusters, tid, width),
                   c->w, c->sums, c->counts);
}

static void sigma_codes_chunk(void *vctx, int64_t tid, int64_t width)
{
    sigma_ctx *c = (sigma_ctx *)vctx;
    sigma_codes_rows(c->codes_flat, c->idx, c->labels, c->m,
                     mt_slice_lo(c->n_clusters, tid, width),
                     mt_slice_hi(c->n_clusters, tid, width),
                     c->w, c->l_scale, c->ab_scale, c->ab_offset,
                     c->sums, c->counts);
}

void sigma_acc_f64_mt(
    const double *lab_flat, const int64_t *idx, const int32_t *labels,
    int64_t m, int64_t w, int64_t n_clusters, double *sums,
    int64_t *counts, int64_t n_threads)
{
    sigma_ctx ctx = {lab_flat, 0, idx, labels, m, n_clusters, w,
                     0.0, 1.0, 0.0, sums, counts};
    mt_run(sigma_f64_chunk, &ctx,
           n_threads < n_clusters ? n_threads : n_clusters);
}

void sigma_acc_codes_mt(
    const int64_t *codes_flat, const int64_t *idx, const int32_t *labels,
    int64_t m, int64_t w, double l_scale, double ab_scale,
    double ab_offset, int64_t n_clusters, double *sums, int64_t *counts,
    int64_t n_threads)
{
    sigma_ctx ctx = {0, codes_flat, idx, labels, m, n_clusters, w,
                     l_scale, ab_scale, ab_offset, sums, counts};
    mt_run(sigma_codes_chunk, &ctx,
           n_threads < n_clusters ? n_threads : n_clusters);
}
