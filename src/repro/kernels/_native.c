/* Native assignment kernels: the CPA window scan and the PPA 9-candidate
 * evaluation as plain C loops.
 *
 * Compiled on demand by repro.kernels.native with
 *
 *     cc -O3 -fPIC -shared -ffp-contract=off  (no -ffast-math, no -march)
 *
 * so every float64 operation rounds exactly like the numpy reference:
 * contraction into FMA is disabled and the summation orders below mirror
 * numpy's add.reduce over the last axis ((x0 + x1) + x2). That is what
 * makes the native labels bit-identical to repro.core.assignment — the
 * property tests and benchmarks/bench_kernels.py assert it.
 *
 * Integer (FixedDatapath) variants take the code-domain image/centers and
 * replicate the shift/saturate pipeline of FixedDatapath.pairwise_d2 and
 * the fixed branch of assign_cpa.
 */

#include <math.h>
#include <stdint.h>

/* ------------------------------------------------------------------ */
/* CPA: for each listed center, scan the clipped (2*half+1)^2 window,
 * keeping running minima in the image-sized dist/labels buffers.
 * `touched` is an h*w byte mask marking every pixel scanned at least
 * once (the deduplicated pixels_assigned telemetry counter).           */
/* ------------------------------------------------------------------ */

void cpa_assign_f64(
    const double *lab,        /* h*w*3, row-major Lab image             */
    const double *centers,    /* k*5 rows [L, a, b, x, y]               */
    const int64_t *ks,        /* center indices to scan, in order       */
    int64_t n_ks,
    double weight,            /* m^2 / S^2                              */
    int64_t half,             /* window half-extent, ceil(S)            */
    int64_t h, int64_t w,
    double *dist,             /* h*w running minimum distances          */
    int32_t *labels,          /* h*w running argmin labels              */
    uint8_t *touched)         /* h*w scanned-pixel mask                 */
{
    for (int64_t i = 0; i < n_ks; i++) {
        int64_t k = ks[i];
        const double *c = centers + 5 * k;
        double cl = c[0], ca = c[1], cb = c[2], cx = c[3], cy = c[4];
        int64_t fx = (int64_t)floor(cx);
        int64_t fy = (int64_t)floor(cy);
        int64_t x0 = fx - half < 0 ? 0 : fx - half;
        int64_t x1 = fx + half + 1 > w ? w : fx + half + 1;
        int64_t y0 = fy - half < 0 ? 0 : fy - half;
        int64_t y1 = fy + half + 1 > h ? h : fy + half + 1;
        for (int64_t y = y0; y < y1; y++) {
            double dy = (double)y - cy;
            double dy2 = dy * dy;
            const double *px = lab + (y * w + x0) * 3;
            double *drow = dist + y * w;
            int32_t *lrow = labels + y * w;
            uint8_t *trow = touched + y * w;
            for (int64_t x = x0; x < x1; x++, px += 3) {
                double dl = px[0] - cl;
                double da = px[1] - ca;
                double db = px[2] - cb;
                double dc2 = (dl * dl + da * da) + db * db;
                double dx = (double)x - cx;
                double d2 = dc2 + weight * (dx * dx + dy2);
                trow[x] = 1;
                if (d2 < drow[x]) {
                    drow[x] = d2;
                    lrow[x] = (int32_t)k;
                }
            }
        }
    }
}

void cpa_assign_fixed(
    const int64_t *codes,     /* h*w*3 Lab channel codes                */
    const int64_t *c_codes,   /* k*5 encoded centers (codes + raw xy)   */
    const double *centers,    /* k*5 float centers (window placement)   */
    const int64_t *ks,
    int64_t n_ks,
    int64_t weight_raw,       /* fixed-point spatial weight             */
    int64_t wfrac,            /* WEIGHT_FRAC_BITS                       */
    int64_t sf,               /* spatial_frac_bits                      */
    int64_t quantize,         /* nonzero: shift + saturate the distance */
    int64_t dshift,           /* effective_distance_shift               */
    int64_t dmax,             /* distance_max_code                      */
    int64_t half,
    int64_t h, int64_t w,
    double *dist,             /* float64 running minima (engine buffer) */
    int32_t *labels,
    uint8_t *touched)
{
    for (int64_t i = 0; i < n_ks; i++) {
        int64_t k = ks[i];
        const int64_t *cc = c_codes + 5 * k;
        int64_t cl = cc[0], ca = cc[1], cb = cc[2], cxr = cc[3], cyr = cc[4];
        double cx = centers[5 * k + 3];
        double cy = centers[5 * k + 4];
        int64_t fx = (int64_t)floor(cx);
        int64_t fy = (int64_t)floor(cy);
        int64_t x0 = fx - half < 0 ? 0 : fx - half;
        int64_t x1 = fx + half + 1 > w ? w : fx + half + 1;
        int64_t y0 = fy - half < 0 ? 0 : fy - half;
        int64_t y1 = fy + half + 1 > h ? h : fy + half + 1;
        for (int64_t y = y0; y < y1; y++) {
            int64_t dyv = (y << sf) - cyr;
            int64_t dy2 = dyv * dyv;
            const int64_t *px = codes + (y * w + x0) * 3;
            double *drow = dist + y * w;
            int32_t *lrow = labels + y * w;
            uint8_t *trow = touched + y * w;
            for (int64_t x = x0; x < x1; x++, px += 3) {
                int64_t dl = px[0] - cl;
                int64_t da = px[1] - ca;
                int64_t db = px[2] - cb;
                int64_t dc2 = (dl * dl + da * da) + db * db;
                int64_t dxv = (x << sf) - cxr;
                int64_t ds2 = (dxv * dxv + dy2) >> (2 * sf);
                int64_t d2 = dc2 + ((weight_raw * ds2) >> wfrac);
                if (quantize) {
                    d2 >>= dshift;
                    if (d2 > dmax) d2 = dmax;
                }
                trow[x] = 1;
                double d2f = (double)d2;
                if (d2f < drow[x]) {
                    drow[x] = d2f;
                    lrow[x] = (int32_t)k;
                }
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* PPA: 9-candidate argmin per subset pixel, fully fused — no (M, 9, 3)
 * temporaries, one running minimum per pixel. Ties resolve to the
 * lowest candidate slot via the strict <, like the hardware 9:1 tree. */
/* ------------------------------------------------------------------ */

void ppa_assign_f64(
    const double *lab_flat,   /* n*3 flat Lab                           */
    const int64_t *xs,        /* n flat pixel x                         */
    const int64_t *ys,        /* n flat pixel y                         */
    const int64_t *tiles,     /* n tile index per pixel                 */
    const int64_t *subset,    /* m flat indices to assign               */
    int64_t m,
    const int32_t *cands,     /* t*9 candidate clusters per tile        */
    const double *centers,    /* k*5                                    */
    double weight,
    int32_t *out)             /* m chosen clusters                      */
{
    for (int64_t j = 0; j < m; j++) {
        int64_t i = subset[j];
        const int32_t *cnd = cands + 9 * tiles[i];
        const double *px = lab_flat + 3 * i;
        double x = (double)xs[i];
        double y = (double)ys[i];
        double best = INFINITY;
        int32_t bk = cnd[0];
        for (int s = 0; s < 9; s++) {
            const double *c = centers + 5 * cnd[s];
            double dl = px[0] - c[0];
            double da = px[1] - c[1];
            double db = px[2] - c[2];
            double dc2 = (dl * dl + da * da) + db * db;
            double dx = x - c[3];
            double dyv = y - c[4];
            double d2 = dc2 + weight * (dx * dx + dyv * dyv);
            if (d2 < best) {
                best = d2;
                bk = cnd[s];
            }
        }
        out[j] = bk;
    }
}

void ppa_assign_fixed(
    const int64_t *codes_flat, /* n*3 flat channel codes                */
    const int64_t *xs,
    const int64_t *ys,
    const int64_t *tiles,
    const int64_t *subset,
    int64_t m,
    const int32_t *cands,
    const int64_t *c_codes,    /* k*5 encoded centers                   */
    int64_t weight_raw,
    int64_t wfrac,
    int64_t sf,
    int64_t quantize,
    int64_t dshift,
    int64_t dmax,
    int32_t *out)
{
    for (int64_t j = 0; j < m; j++) {
        int64_t i = subset[j];
        const int32_t *cnd = cands + 9 * tiles[i];
        const int64_t *px = codes_flat + 3 * i;
        int64_t xr = xs[i] << sf;
        int64_t yr = ys[i] << sf;
        int64_t best = INT64_MAX;
        int32_t bk = cnd[0];
        for (int s = 0; s < 9; s++) {
            const int64_t *c = c_codes + 5 * cnd[s];
            int64_t dl = px[0] - c[0];
            int64_t da = px[1] - c[1];
            int64_t db = px[2] - c[2];
            int64_t dc2 = (dl * dl + da * da) + db * db;
            int64_t dxv = xr - c[3];
            int64_t dyv = yr - c[4];
            int64_t ds2 = (dxv * dxv + dyv * dyv) >> (2 * sf);
            int64_t d2 = dc2 + ((weight_raw * ds2) >> wfrac);
            if (quantize) {
                d2 >>= dshift;
                if (d2 > dmax) d2 = dmax;
            }
            if (d2 < best) {
                best = d2;
                bk = cnd[s];
            }
        }
        out[j] = bk;
    }
}
