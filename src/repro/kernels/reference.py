"""The ``reference`` backend: the original per-center / per-edge loops.

Thin aliases onto the canonical implementations in :mod:`repro.core` —
these define the semantics every optimized backend must reproduce bit
for bit, and they remain selectable (``REPRO_KERNEL_BACKEND=reference``)
for debugging and for the identity checks in the benchmarks.
"""

from __future__ import annotations

from ..color.hw_convert import convert_codes_reference as lab_codes
from ..color.hw_convert import lab_from_codes_reference as lab_from_codes
from ..core.accumulators import (
    sigma_accumulate_reference as sigma_accumulate,
)
from ..core.assignment import assign_cpa as cpa_assign
from ..core.assignment import assign_ppa as ppa_assign
from ..core.connectivity import (
    connected_components_reference as connected_components,
)
from ..core.connectivity import merge_small_reference as merge_small
from ..metrics.boundaries import (
    chamfer_distance_reference as chamfer_distance,
)
from ..metrics.boundaries import (
    contingency_table_reference as contingency_table,
)

__all__ = [
    "cpa_assign",
    "ppa_assign",
    "connected_components",
    "lab_codes",
    "lab_from_codes",
    "sigma_accumulate",
    "merge_small",
    "contingency_table",
    "chamfer_distance",
    "is_available",
]


def is_available() -> bool:
    return True
