"""The ``native-mt`` backend: the C hot loops fanned out over threads.

Shares the compiled ``_native.c`` library with the ``native`` backend —
same source, same compile cache — but dispatches to the ``*_mt`` entry
points, which split each kernel over a small persistent pthread pool
inside the shared object. ctypes releases the GIL for the duration of
the call, so the threads genuinely run in parallel in one address
space: no pickling, no shared-memory slabs, no per-frame process
overhead.

Bit-identity at any thread count comes from *ownership partitioning*
(see the ``_native.c`` header): each thread owns a contiguous slice of
the output — row bands for CPA, index ranges for PPA and ``lab_codes``
/ ``lab_from_codes``, cluster ranges for ``sigma_accumulate``,
a private histogram for ``contingency_table`` — and visits its slice in
exactly the serial order. Every output element is written by exactly
one thread, so no boundary ties can arise; the cross-tile combines
(the contingency stitch, the connected-components band seams and
renumber) run sequentially. ``connected_components`` tiles row bands
with per-band run decomposition and union-by-minimal-root, so component
roots — and the canonical first-appearance renumbering — are
independent of thread count (see the CCL section in ``_native.c``).
The inherently sequential kernels (``merge_small``'s greedy walk, the
raster-ordered chamfer sweeps) delegate to their serial
implementations.

Thread-count resolution, per call site, first match wins:

1. an explicit ``n_threads=`` keyword (direct callers),
2. the ambient :func:`thread_context` (how ``SlicParams.n_threads``
   reaches kernels dispatched by backend *name* deep in the engine —
   a :class:`contextvars.ContextVar`, so concurrent engines in one
   process each see their own setting),
3. the ``REPRO_KERNEL_THREADS`` environment variable,
4. ``os.cpu_count()``.

The result is clamped to [1, MAX_THREADS]; the C pool degrades
gracefully if thread spawn fails (kernels see the width that exists).
"""

from __future__ import annotations

import contextlib
import contextvars
import os

import numpy as np

from ..core.distance import WEIGHT_FRAC_BITS
from . import native
from .native import chamfer_distance, is_available, load, merge_small  # noqa: F401

__all__ = [
    "is_available",
    "load",
    "resolve_threads",
    "thread_context",
    "cpa_assign",
    "ppa_assign",
    "connected_components",
    "lab_codes",
    "lab_from_codes",
    "sigma_accumulate",
    "merge_small",
    "contingency_table",
    "chamfer_distance",
]

#: Hard cap, mirroring MT_MAX_THREADS in ``_native.c``.
MAX_THREADS = 64

ENV_THREADS = "REPRO_KERNEL_THREADS"

#: Ambient per-context thread count (None = fall through to env/cpu).
_ambient: contextvars.ContextVar = contextvars.ContextVar(
    "repro_kernel_threads", default=None
)


def resolve_threads(n_threads=None) -> int:
    """Resolve the effective thread count for one kernel call."""
    if n_threads is None:
        n_threads = _ambient.get()
    if n_threads is None:
        env = os.environ.get(ENV_THREADS)
        if env:
            try:
                n_threads = int(env)
            except ValueError:
                n_threads = None
    if n_threads is None:
        n_threads = os.cpu_count() or 1
    return max(1, min(int(n_threads), MAX_THREADS))


@contextlib.contextmanager
def thread_context(n_threads):
    """Pin the ambient thread count for the calling context.

    Context-local, not process-global: two engines running concurrently
    in different threads (or asyncio tasks) each keep their own value.
    ``None`` simply defers to the env/cpu fallbacks.
    """
    token = _ambient.set(None if n_threads is None else int(n_threads))
    try:
        yield
    finally:
        _ambient.reset(token)


# ----------------------------------------------------------------------
# Kernel entry points (KernelBackend interface)
# ----------------------------------------------------------------------

def cpa_assign(
    lab,
    centers,
    weight,
    grid_s,
    dist_buf,
    labels_buf,
    cluster_indices=None,
    datapath=None,
    compactness=None,
    codes=None,
    n_threads=None,
) -> int:
    """Row-banded CPA window scan; see ``assign_cpa`` for semantics.

    Returns the number of distinct pixels scanned. Falls back to the
    vectorized backend for non-float64 distance buffers (the engine
    always passes float64; only direct callers pass int64 buffers).
    """
    if dist_buf.dtype != np.float64 or not (
        dist_buf.flags.c_contiguous and labels_buf.flags.c_contiguous
    ):
        from . import vectorized

        return vectorized.cpa_assign(
            lab, centers, weight, grid_s, dist_buf, labels_buf,
            cluster_indices=cluster_indices, datapath=datapath,
            compactness=compactness, codes=codes,
        )
    lib = load()
    nt = resolve_threads(n_threads)
    h, w = lab.shape[:2]
    half = int(np.ceil(grid_s))
    if cluster_indices is None:
        cluster_indices = np.arange(len(centers))
    ks = np.ascontiguousarray(cluster_indices, dtype=np.int64)
    if len(ks) == 0:
        return 0
    centers_c = np.ascontiguousarray(centers, dtype=np.float64)
    labels_v = labels_buf.reshape(-1)
    dist_v = dist_buf.reshape(-1)
    touched = native._touched_checkout(h * w)
    if datapath is None:
        lab_c = np.ascontiguousarray(lab, dtype=np.float64)
        lib.cpa_assign_f64_mt(
            lab_c.reshape(-1), centers_c.reshape(-1), ks, len(ks),
            float(weight), half, h, w, dist_v, labels_v, touched, nt,
        )
    else:
        codes_c = np.ascontiguousarray(codes, dtype=np.int64)
        c_codes = np.ascontiguousarray(datapath.encode_centers(centers))
        weight_raw = datapath.weight_raw(compactness, grid_s)
        lib.cpa_assign_fixed_mt(
            codes_c.reshape(-1), c_codes.reshape(-1), centers_c.reshape(-1),
            ks, len(ks), weight_raw, WEIGHT_FRAC_BITS,
            datapath.spatial_frac_bits, int(datapath.quantize_distance),
            datapath.effective_distance_shift, datapath.distance_max_code,
            half, h, w, dist_v, labels_v, touched, nt,
        )
    n_touched = int(np.count_nonzero(touched))
    native._touched_checkin(h * w, touched)
    return n_touched


def ppa_assign(
    pixels,
    subset_idx,
    candidates,
    centers,
    weight,
    compactness=None,
    grid_s=None,
    n_threads=None,
):
    """Range-partitioned PPA 9-candidate argmin; see ``assign_ppa``."""
    lib = load()
    nt = resolve_threads(n_threads)
    subset = np.ascontiguousarray(subset_idx, dtype=np.int64)
    out = np.empty(len(subset), dtype=np.int32)
    if len(subset) == 0:
        return out
    cands = np.ascontiguousarray(candidates, dtype=np.int32)
    dp = pixels.datapath
    if dp is None:
        lib.ppa_assign_f64_mt(
            np.ascontiguousarray(pixels.lab_flat).reshape(-1),
            pixels.x_flat, pixels.y_flat, pixels.tile_flat,
            subset, len(subset), cands.reshape(-1),
            np.ascontiguousarray(centers, dtype=np.float64).reshape(-1),
            float(weight), out, nt,
        )
    else:
        c_codes = np.ascontiguousarray(dp.encode_centers(centers))
        lib.ppa_assign_fixed_mt(
            np.ascontiguousarray(pixels.codes_flat).reshape(-1),
            pixels.x_flat, pixels.y_flat, pixels.tile_flat,
            subset, len(subset), cands.reshape(-1), c_codes.reshape(-1),
            dp.weight_raw(compactness, grid_s), WEIGHT_FRAC_BITS,
            dp.spatial_frac_bits, int(dp.quantize_distance),
            dp.effective_distance_shift, dp.distance_max_code, out, nt,
        )
    return out


def lab_codes(converter, rgb, n_threads=None):
    """Fixed-point RGB->Lab codes over pixel-range chunks.

    Ships the converter's LUTs/formats into the threaded C pixel loop.
    Falls back to the vectorized backend for exotic PWL configurations
    whose rounding shifts are not strictly positive (the C loop assumes
    the default Q-format layout, where both are).
    """
    rgb = np.ascontiguousarray(rgb, dtype=np.uint8)
    pwl = converter.pwl
    mat_shift = (
        converter.gamma_frac_bits + converter._matrix_fmt.frac_bits
    ) - pwl.in_fmt.frac_bits
    out_shift = (
        pwl.coeff_fmt.frac_bits + pwl.in_fmt.frac_bits
    ) - pwl.out_fmt.frac_bits
    if mat_shift <= 0 or out_shift <= 0:
        from . import vectorized

        return vectorized.lab_codes(converter, rgb)
    lib = load()
    nt = resolve_threads(n_threads)
    h, w = rgb.shape[:2]
    enc = converter.encoding
    codes = np.empty((h, w, 3), dtype=np.int64)
    lib.lab_codes_u8_mt(
        rgb.reshape(-1),
        h * w,
        np.ascontiguousarray(converter.gamma_lut, dtype=np.int64),
        np.ascontiguousarray(converter.matrix_raw, dtype=np.int64).reshape(-1),
        mat_shift,
        pwl.in_fmt.raw_min, pwl.in_fmt.raw_max,
        np.ascontiguousarray(pwl.breaks_raw, dtype=np.int64),
        pwl.n_segments,
        np.ascontiguousarray(pwl.slopes_raw, dtype=np.int64),
        np.ascontiguousarray(pwl.intercepts_raw, dtype=np.int64),
        pwl.in_fmt.frac_bits,
        out_shift,
        pwl.out_fmt.raw_min, pwl.out_fmt.raw_max,
        pwl.out_fmt.frac_bits,
        int(round(enc.l_scale * (1 << 14))),
        int(round(enc.ab_scale * (1 << 14))),
        enc.ab_offset,
        enc.code_max,
        codes.reshape(-1),
        nt,
    )
    return codes


def lab_from_codes(converter, rgb, n_threads=None):
    """Fused RGB->Lab ``(lab, codes)`` over pixel-range chunks.

    Delegates to the shared native wrapper with the resolved thread
    count, which dispatches the ``lab_from_codes_u8_mt`` entry (or the
    vectorized fallback for exotic PWL configurations).
    """
    return native.lab_from_codes(
        converter, rgb, _n_threads=resolve_threads(n_threads)
    )


def sigma_accumulate(
    labels,
    n_clusters,
    width,
    lab_flat=None,
    codes_flat=None,
    encoding=None,
    idx=None,
    n_threads=None,
):
    """Cluster-ownership-partitioned sigma accumulation.

    Each thread owns a contiguous cluster range and scans every entry,
    accumulating only the labels it owns — the full serial addition
    order per register, so sums are bit-identical at any thread count
    (see the sigma section in ``_native.c``).
    """
    return native.sigma_accumulate(
        labels, n_clusters, width,
        lab_flat=lab_flat, codes_flat=codes_flat, encoding=encoding,
        idx=idx, _n_threads=resolve_threads(n_threads),
    )


def connected_components(labels, n_threads=None):
    """Row-banded two-pass union-find CCL; see ``connected_components``.

    Each thread decomposes its own row band into runs (offset by a
    serial prefix sum) and unions within the band's disjoint parent
    range; the band seams and the ascending renumber run serially.
    Union-by-minimal-root makes the component roots independent of the
    union order, so labels are bit-identical at any thread count.
    """
    return native.connected_components(
        labels, _n_threads=resolve_threads(n_threads)
    )


def contingency_table(a_flat, b_flat, n_a, n_b, n_threads=None):
    """Joint label histogram via per-thread private tables.

    Each thread histograms a contiguous index range into its own table;
    the tables fold into the result sequentially in ascending tile id —
    int64 addition, so the stitch is exact at any thread count.
    """
    lib = load()
    nt = resolve_threads(n_threads)
    a_flat = np.ascontiguousarray(a_flat, dtype=np.int64)
    b_flat = np.ascontiguousarray(b_flat, dtype=np.int64)
    n_cells = n_a * n_b
    scratch = np.zeros(nt * n_cells, dtype=np.int64)
    table = np.zeros(n_cells, dtype=np.int64)
    lib.contingency_i64_mt(
        a_flat, b_flat, len(a_flat), n_b, nt, scratch, n_cells, table
    )
    return table.reshape(n_a, n_b)
