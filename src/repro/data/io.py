"""Minimal binary PPM/PGM image I/O (no imaging dependency needed).

Used by the examples to write visualizations to disk and by the optional
BSDS loader to read images. Supports the binary variants P6 (color) and P5
(grayscale) with maxval 255.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from ..errors import DatasetError

__all__ = ["write_ppm", "read_ppm", "write_pgm", "read_pgm"]

_HEADER_RE = re.compile(rb"^(P[56])\s+(?:#[^\n]*\n\s*)*(\d+)\s+(\d+)\s+(\d+)\s")


def write_ppm(path, image: np.ndarray) -> None:
    """Write a uint8 (H, W, 3) RGB image as binary PPM (P6)."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
        raise DatasetError(f"write_ppm expects uint8 (H, W, 3), got {image.dtype} {image.shape}")
    h, w = image.shape[:2]
    with open(path, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        fh.write(image.tobytes())


def write_pgm(path, image: np.ndarray) -> None:
    """Write a uint8 (H, W) grayscale image as binary PGM (P5)."""
    image = np.asarray(image)
    if image.ndim != 2 or image.dtype != np.uint8:
        raise DatasetError(f"write_pgm expects uint8 (H, W), got {image.dtype} {image.shape}")
    h, w = image.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode("ascii"))
        fh.write(image.tobytes())


def _read_netpbm(path, magic: bytes, channels: int) -> np.ndarray:
    data = Path(path).read_bytes()
    match = _HEADER_RE.match(data)
    if not match or match.group(1) != magic:
        raise DatasetError(f"{path}: not a binary {magic.decode()} file")
    w, h, maxval = (int(match.group(i)) for i in (2, 3, 4))
    if maxval != 255:
        raise DatasetError(f"{path}: only maxval 255 supported, got {maxval}")
    pixels = data[match.end():]
    expected = w * h * channels
    if len(pixels) < expected:
        raise DatasetError(f"{path}: truncated pixel data ({len(pixels)} < {expected})")
    arr = np.frombuffer(pixels[:expected], dtype=np.uint8)
    if channels == 1:
        return arr.reshape(h, w).copy()
    return arr.reshape(h, w, channels).copy()


def read_ppm(path) -> np.ndarray:
    """Read a binary PPM (P6) file into a uint8 (H, W, 3) array."""
    return _read_netpbm(path, b"P6", 3)


def read_pgm(path) -> np.ndarray:
    """Read a binary PGM (P5) file into a uint8 (H, W) array."""
    return _read_netpbm(path, b"P5", 1)
