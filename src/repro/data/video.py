"""Synthetic video sequences for streaming/temporal experiments.

The paper's target is a 30 fps camera pipeline; several experiments
(temporal warm starting, per-frame energy budgeting) need *sequences*, not
stills. :class:`VideoSequence` turns one synthetic scene into a
deterministic stream with global motion and per-frame sensor noise, the
ground truth moving rigidly with the content.

Motion models:

* ``"shake"`` — small zero-mean hand-held jitter (bounded displacement);
* ``"pan"`` — constant-velocity panning (content wraps toroidally, an
  accepted artifact of a synthetic stream);
* ``"static"`` — sensor noise only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from .synthetic import Scene, SceneConfig, generate_scene

__all__ = ["VideoFrame", "VideoSequence"]

_MOTIONS = ("shake", "pan", "static")


@dataclass(frozen=True)
class VideoFrame:
    """One frame: image, rigidly-moved ground truth, and the motion."""

    image: np.ndarray
    gt_labels: np.ndarray
    index: int
    offset: tuple  # (dx, dy) applied to the base scene


class VideoSequence:
    """A deterministic synthetic video stream.

    Parameters
    ----------
    n_frames:
        Stream length.
    config:
        Base :class:`SceneConfig`; the scene is generated once.
    motion:
        ``"shake"`` (default), ``"pan"``, or ``"static"``.
    amplitude:
        Shake amplitude or pan velocity, in pixels (per frame for pan).
    noise_sigma:
        Per-frame additive sensor noise (uint8 counts).
    seed:
        Drives the base scene, the shake trajectory, and the noise.
    """

    def __init__(
        self,
        n_frames: int = 8,
        config: SceneConfig = None,
        motion: str = "shake",
        amplitude: float = 3.0,
        noise_sigma: float = 4.0,
        seed: int = 0,
    ):
        if n_frames < 1:
            raise DatasetError(f"n_frames must be >= 1, got {n_frames}")
        if motion not in _MOTIONS:
            raise DatasetError(f"motion must be one of {_MOTIONS}, got {motion!r}")
        if amplitude < 0 or noise_sigma < 0:
            raise DatasetError("amplitude and noise_sigma must be >= 0")
        self.n_frames = n_frames
        self.motion = motion
        self.amplitude = amplitude
        self.noise_sigma = noise_sigma
        self.seed = seed
        base_config = config if config is not None else SceneConfig(noise=0.0)
        self.base: Scene = generate_scene(base_config, seed=seed)
        self._offsets = self._trajectory()

    def _trajectory(self):
        rng = np.random.default_rng(self.seed + 7919)
        offsets = []
        for t in range(self.n_frames):
            if self.motion == "static":
                offsets.append((0, 0))
            elif self.motion == "pan":
                offsets.append(
                    (int(round(self.amplitude * t)), int(round(0.6 * self.amplitude * t)))
                )
            else:  # shake: smooth bounded jitter
                dx = int(round(self.amplitude * np.sin(0.9 * t + rng.uniform(-0.2, 0.2))))
                dy = int(round(0.7 * self.amplitude * np.cos(1.3 * t + rng.uniform(-0.2, 0.2))))
                offsets.append((dx, dy))
        return offsets

    def __len__(self) -> int:
        return self.n_frames

    def __getitem__(self, index: int) -> VideoFrame:
        if not (0 <= index < self.n_frames):
            raise IndexError(f"frame {index} out of range [0, {self.n_frames})")
        dx, dy = self._offsets[index]
        image = np.roll(np.roll(self.base.image, dy, axis=0), dx, axis=1)
        gt = np.roll(np.roll(self.base.gt_labels, dy, axis=0), dx, axis=1)
        if self.noise_sigma > 0:
            rng = np.random.default_rng(self.seed * 65537 + index)
            image = np.clip(
                image.astype(np.int16)
                + rng.normal(0.0, self.noise_sigma, image.shape).astype(np.int16),
                0,
                255,
            ).astype(np.uint8)
        return VideoFrame(image=image, gt_labels=gt, index=index, offset=(dx, dy))

    def __iter__(self):
        for i in range(self.n_frames):
            yield self[i]
