"""Optional loader for a real Berkeley Segmentation Dataset tree.

The synthetic corpus (:mod:`repro.data.synthetic`) is the default ground
truth source, but if a BSDS300/BSDS500 checkout is available the metrics can
run on the real data. This module parses the BSDS ``.seg`` human
segmentation format and pairs segmentations with images.

The ``.seg`` format (BSDS300 ``seg-format.txt``): a text header terminated
by a line ``data``, with fields like ``width``, ``height``, ``segments``;
then one line per run: ``<label> <row> <col_start> <col_end>`` with
inclusive column ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import DatasetError
from .io import read_ppm

__all__ = ["parse_seg_file", "BsdsSample", "load_bsds_pairs"]


def parse_seg_file(path) -> np.ndarray:
    """Parse a BSDS ``.seg`` file into an (H, W) int32 label map."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise DatasetError(f"cannot read {path}: {exc}") from exc
    lines = text.splitlines()
    width = height = None
    data_start = None
    for i, line in enumerate(lines):
        stripped = line.strip().lower()
        if stripped.startswith("width"):
            width = int(stripped.split()[1])
        elif stripped.startswith("height"):
            height = int(stripped.split()[1])
        elif stripped == "data":
            data_start = i + 1
            break
    if width is None or height is None or data_start is None:
        raise DatasetError(f"{path}: missing width/height/data header")
    labels = np.full((height, width), -1, dtype=np.int32)
    for line in lines[data_start:]:
        parts = line.split()
        if not parts:
            continue
        if len(parts) != 4:
            raise DatasetError(f"{path}: malformed data line {line!r}")
        seg, row, col_a, col_b = (int(p) for p in parts)
        if not (0 <= row < height and 0 <= col_a <= col_b < width):
            raise DatasetError(f"{path}: run out of bounds: {line!r}")
        labels[row, col_a : col_b + 1] = seg
    if (labels < 0).any():
        raise DatasetError(f"{path}: segmentation does not cover the image")
    return labels


@dataclass(frozen=True)
class BsdsSample:
    """One BSDS image with one human segmentation."""

    image: np.ndarray
    gt_labels: np.ndarray
    image_id: str


def load_bsds_pairs(images_dir, seg_dir, limit: int | None = None):
    """Yield :class:`BsdsSample` for each image that has a ``.seg`` file.

    ``images_dir`` must contain binary PPM images named ``<id>.ppm`` (BSDS
    images are distributed as JPEG; convert offline, e.g. with
    ``djpeg -pnm``). ``seg_dir`` holds ``<id>.seg`` files. The pairing is by
    stem; images without a segmentation are skipped.
    """
    images_dir = Path(images_dir)
    seg_dir = Path(seg_dir)
    if not images_dir.is_dir():
        raise DatasetError(f"images dir not found: {images_dir}")
    if not seg_dir.is_dir():
        raise DatasetError(f"segmentations dir not found: {seg_dir}")
    count = 0
    for ppm_path in sorted(images_dir.glob("*.ppm")):
        seg_path = seg_dir / (ppm_path.stem + ".seg")
        if not seg_path.exists():
            continue
        image = read_ppm(ppm_path)
        gt = parse_seg_file(seg_path)
        if gt.shape != image.shape[:2]:
            raise DatasetError(
                f"{ppm_path.stem}: image {image.shape[:2]} vs seg {gt.shape} mismatch"
            )
        yield BsdsSample(image=image, gt_labels=gt, image_id=ppm_path.stem)
        count += 1
        if limit is not None and count >= limit:
            return
