"""Procedural noise/texture primitives for the synthetic dataset.

Natural images (the Berkeley corpus the paper evaluates on) have smooth
shading, texture, and sensor noise on top of object regions. These helpers
synthesize those components with plain numpy — multi-octave value noise and
linear shading fields — deterministically from a ``numpy.random.Generator``.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError

__all__ = ["value_noise", "multi_octave_noise", "linear_gradient", "gaussian_blur"]


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur (per channel) with a 3-sigma kernel.

    Models photographic edge softness: the synthetic scenes are rendered
    with hard region edges, and real camera images are not. ``sigma <= 0``
    returns the input unchanged. Borders are edge-replicated.
    """
    if sigma <= 0:
        return np.asarray(image, dtype=np.float64)
    img = np.asarray(image, dtype=np.float64)
    radius = max(1, int(np.ceil(3.0 * sigma)))
    xs = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (xs / sigma) ** 2)
    kernel /= kernel.sum()

    def blur_axis(arr: np.ndarray, axis: int) -> np.ndarray:
        moved = np.moveaxis(arr, axis, 0)
        padded = np.concatenate(
            [np.repeat(moved[:1], radius, axis=0), moved,
             np.repeat(moved[-1:], radius, axis=0)],
            axis=0,
        )
        out = np.zeros_like(moved)
        for i, kv in enumerate(kernel):
            out += kv * padded[i : i + moved.shape[0]]
        return np.moveaxis(out, 0, axis)

    return blur_axis(blur_axis(img, 0), 1)


def _bilinear_upsample(coarse: np.ndarray, shape) -> np.ndarray:
    """Bilinearly upsample a coarse grid to ``shape`` (H, W).

    Separable evaluation: the x-interpolation runs on the coarse rows
    (ch, w) and the full-size pass only blends two row-gathers. Output
    rows sharing a coarse row reuse the same interpolated row, and each
    element sees the exact multiply/add sequence of the direct 4-gather
    form, so the result is bit-identical to it.
    """
    h, w = shape
    ch, cw = coarse.shape
    # Sample positions in coarse-grid coordinates.
    ys = np.linspace(0, ch - 1, h)
    xs = np.linspace(0, cw - 1, w)
    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    y1 = np.minimum(y0 + 1, ch - 1)
    x1 = np.minimum(x0 + 1, cw - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    rows = coarse[:, x0] * (1 - wx) + coarse[:, x1] * wx
    return rows[y0] * (1 - wy) + rows[y1] * wy


def value_noise(shape, cells: int, rng: np.random.Generator) -> np.ndarray:
    """Single-octave value noise in [-1, 1].

    A ``cells x cells``-ish random grid is bilinearly upsampled to
    ``shape``; larger ``cells`` means higher spatial frequency.
    """
    h, w = shape
    if cells < 1:
        raise DatasetError(f"cells must be >= 1, got {cells}")
    ch = max(2, min(h, int(round(cells * h / max(h, w))) + 1))
    cw = max(2, min(w, int(round(cells * w / max(h, w))) + 1))
    coarse = rng.uniform(-1.0, 1.0, size=(ch, cw))
    return _bilinear_upsample(coarse, (h, w))


def multi_octave_noise(
    shape,
    rng: np.random.Generator,
    base_cells: int = 4,
    octaves: int = 3,
    persistence: float = 0.5,
) -> np.ndarray:
    """Fractal value noise in [-1, 1]: sum of octaves at doubling frequency."""
    if octaves < 1:
        raise DatasetError(f"octaves must be >= 1, got {octaves}")
    total = np.zeros(shape, dtype=np.float64)
    amplitude = 1.0
    norm = 0.0
    cells = base_cells
    for _ in range(octaves):
        total += amplitude * value_noise(shape, cells, rng)
        norm += amplitude
        amplitude *= persistence
        cells *= 2
    return total / norm


def linear_gradient(shape, rng: np.random.Generator, strength: float = 1.0) -> np.ndarray:
    """A random-direction linear shading field in [-strength, strength]."""
    h, w = shape
    theta = rng.uniform(0.0, 2.0 * np.pi)
    yy, xx = np.mgrid[0:h, 0:w]
    # Project onto the random direction and normalize to [-1, 1].
    proj = np.cos(theta) * (xx / max(w - 1, 1) - 0.5) + np.sin(theta) * (
        yy / max(h - 1, 1) - 0.5
    )
    peak = np.max(np.abs(proj))
    if peak <= 0:
        return np.zeros(shape, dtype=np.float64)
    return strength * proj / peak
