"""Synthetic BSDS-surrogate corpus with ground-truth segmentations.

The paper evaluates quality (undersegmentation error, boundary recall) on
100-200 images of the Berkeley Segmentation Dataset, which is not
redistributable here. This module generates a deterministic corpus of
natural-image-like scenes that carries its own ground truth:

* a region partition (warped Voronoi cells + disk objects, or stripes),
* a distinct base color per region sampled inside the sRGB gamut,
* low-frequency shading and texture, and per-pixel sensor noise,
* final conversion through the *reference* Lab -> RGB path, so the test
  images exercise the same gamut the Berkeley photographs occupy.

Every scene is reproducible from ``(config, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..color import lab_to_rgb, rgb_to_lab
from ..errors import DatasetError
from .shapes import (
    add_disk_regions,
    relabel_sequential,
    stripe_regions,
    voronoi_regions,
    warped_voronoi_regions,
)
from .texture import gaussian_blur, linear_gradient, multi_octave_noise

__all__ = ["SceneConfig", "Scene", "generate_scene", "SyntheticDataset"]


@dataclass(frozen=True)
class SceneConfig:
    """Parameters of one synthetic scene.

    Attributes
    ----------
    height, width:
        Image size in pixels.
    n_regions:
        Number of base regions (Voronoi sites or stripes).
    n_disks:
        Extra disk objects layered on top of the base partition.
    layout:
        ``"warped"`` (default, curved boundaries), ``"voronoi"`` (straight
        boundaries), or ``"stripes"``.
    shading, texture, noise:
        Amplitudes, in L* units, of the linear shading field, the
        multi-octave texture, and the white per-pixel noise. Chroma
        receives half the texture amplitude.
    min_color_separation:
        Minimum Euclidean Lab distance enforced between the base colors of
        any two regions (rejection sampling), so ground-truth boundaries
        are perceptually real.
    blur_sigma:
        Gaussian blur (in pixels) applied to the rendered base colors,
        softening region edges the way camera optics and demosaicing do.
        Soft edges are what makes superpixel boundary localization a
        multi-iteration process on real photographs.
    camouflage:
        Fraction of regions recolored to (almost) match a random adjacent
        region. The shared boundary then has no color contrast — the
        synthetic analogue of the Berkeley dataset's *semantic* boundaries
        (object contours without a local color edge), which is what keeps
        real-image boundary recall well below 1.
    """

    height: int = 120
    width: int = 180
    n_regions: int = 12
    n_disks: int = 3
    layout: str = "warped"
    shading: float = 6.0
    texture: float = 3.0
    noise: float = 1.5
    min_color_separation: float = 18.0
    camouflage: float = 0.0
    blur_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.height < 8 or self.width < 8:
            raise DatasetError(
                f"scene must be at least 8x8, got {self.height}x{self.width}"
            )
        if self.layout not in ("warped", "voronoi", "stripes"):
            raise DatasetError(f"unknown layout {self.layout!r}")
        if self.n_regions < 1:
            raise DatasetError(f"n_regions must be >= 1, got {self.n_regions}")
        for name in ("shading", "texture", "noise"):
            if getattr(self, name) < 0:
                raise DatasetError(f"{name} must be >= 0")
        if not (0.0 <= self.camouflage <= 1.0):
            raise DatasetError(f"camouflage must be in [0, 1], got {self.camouflage}")
        if self.blur_sigma < 0:
            raise DatasetError(f"blur_sigma must be >= 0, got {self.blur_sigma}")


@dataclass(frozen=True)
class Scene:
    """A generated scene: the RGB image plus its ground truth.

    Attributes
    ----------
    image:
        ``(H, W, 3)`` uint8 sRGB image.
    gt_labels:
        ``(H, W)`` int32 ground-truth region map (dense labels from 0).
    config, seed:
        The recipe that generated the scene.
    """

    image: np.ndarray
    gt_labels: np.ndarray
    config: SceneConfig
    seed: int

    @property
    def n_gt_regions(self) -> int:
        return int(self.gt_labels.max()) + 1

    @property
    def shape(self) -> tuple:
        return self.gt_labels.shape


def _sample_region_colors(
    n: int, rng: np.random.Generator, min_separation: float
) -> np.ndarray:
    """Sample ``n`` in-gamut Lab colors pairwise at least ``min_separation``
    apart (best effort: separation relaxes 10% per failed round so the
    sampler always terminates)."""
    colors = []
    sep = min_separation
    attempts = 0
    while len(colors) < n:
        lab = np.array(
            [rng.uniform(25.0, 85.0), rng.uniform(-55.0, 55.0), rng.uniform(-55.0, 55.0)]
        )
        # In-gamut check: round-trip through sRGB and compare.
        rgb = lab_to_rgb(lab[None, None, :])
        back = rgb_to_lab(rgb)[0, 0]
        if np.linalg.norm(back - lab) > 2.0:
            attempts += 1
            if attempts > 200:
                sep *= 0.9
                attempts = 0
            continue
        if colors and min(
            np.linalg.norm(lab - c) for c in colors
        ) < sep:
            attempts += 1
            if attempts > 200:
                sep *= 0.9
                attempts = 0
            continue
        colors.append(lab)
        attempts = 0
    return np.asarray(colors)


def _apply_camouflage(
    colors: np.ndarray, labels: np.ndarray, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Recolor ``fraction`` of the regions to nearly match a random
    adjacent region, erasing the color contrast of their shared boundary.

    The tiny jitter (1 Lab unit) keeps the regions distinguishable as
    ground truth without making the edge recoverable from color.
    """
    n = len(colors)
    # Region adjacency from 4-neighborhood label transitions.
    pairs = set()
    horiz = labels[:, 1:] != labels[:, :-1]
    vert = labels[1:, :] != labels[:-1, :]
    for a, b in zip(labels[:, 1:][horiz].ravel(), labels[:, :-1][horiz].ravel()):
        pairs.add((int(a), int(b)))
    for a, b in zip(labels[1:, :][vert].ravel(), labels[:-1, :][vert].ravel()):
        pairs.add((int(a), int(b)))
    neighbors = {i: [] for i in range(n)}
    for a, b in pairs:
        neighbors[a].append(b)
        neighbors[b].append(a)
    out = colors.copy()
    candidates = [i for i in range(n) if neighbors[i]]
    rng.shuffle(candidates)
    n_camo = int(round(fraction * n))
    donors = set()
    for i in candidates[:n_camo]:
        usable = [j for j in neighbors[i] if j not in donors]
        if not usable:
            continue
        donor = int(rng.choice(usable))
        out[i] = colors[donor] + rng.normal(0.0, 0.35, size=3)
        donors.add(i)
    return out


def generate_scene(config: SceneConfig = None, seed: int = 0) -> Scene:
    """Generate one deterministic scene from ``(config, seed)``."""
    if config is None:
        config = SceneConfig()
    rng = np.random.default_rng(seed)
    shape = (config.height, config.width)

    if config.layout == "voronoi":
        labels = voronoi_regions(shape, config.n_regions, rng)
    elif config.layout == "stripes":
        labels = stripe_regions(shape, config.n_regions, rng)
    else:
        labels = warped_voronoi_regions(shape, config.n_regions, rng)
    if config.n_disks > 0:
        labels = add_disk_regions(labels, config.n_disks, rng)
    labels = relabel_sequential(labels)
    n_regions = int(labels.max()) + 1

    colors = _sample_region_colors(n_regions, rng, config.min_color_separation)
    if config.camouflage > 0 and n_regions > 1:
        colors = _apply_camouflage(colors, labels, config.camouflage, rng)
    lab = colors[labels]  # (H, W, 3)

    if config.blur_sigma > 0:
        # Soften region edges the way camera optics do, *before* adding
        # shading/texture/noise (those are scene-level, not edge-level).
        lab = gaussian_blur(lab, config.blur_sigma)
    if config.shading > 0:
        lab[..., 0] += linear_gradient(shape, rng, strength=config.shading)
    if config.texture > 0:
        lab[..., 0] += config.texture * multi_octave_noise(shape, rng)
        lab[..., 1] += 0.5 * config.texture * multi_octave_noise(shape, rng)
        lab[..., 2] += 0.5 * config.texture * multi_octave_noise(shape, rng)
    if config.noise > 0:
        lab += rng.normal(0.0, config.noise, size=lab.shape)
    lab[..., 0] = np.clip(lab[..., 0], 0.0, 100.0)

    rgb = lab_to_rgb(lab)
    image = np.clip(np.rint(rgb * 255.0), 0, 255).astype(np.uint8)
    return Scene(image=image, gt_labels=labels.astype(np.int32), config=config, seed=seed)


class SyntheticDataset:
    """A deterministic corpus of scenes — the stand-in for "N images from
    the Berkeley segmentation dataset".

    Iterating yields :class:`Scene` objects; indexing is supported, and the
    corpus never materializes more than the scene being accessed.

    Parameters
    ----------
    n_scenes:
        Corpus size (the paper uses 100 for Fig 2 and 200 for the DSE).
    config:
        Base :class:`SceneConfig`; per-scene variation comes from the seed.
    seed:
        Corpus seed; scene ``i`` uses ``seed * 100003 + i``.
    vary_layout:
        If True (default), scenes cycle through warped / voronoi / stripes
        layouts to diversify boundary statistics.
    """

    _LAYOUT_CYCLE = ("warped", "warped", "voronoi", "warped", "stripes")

    def __init__(
        self,
        n_scenes: int = 20,
        config: SceneConfig = None,
        seed: int = 0,
        vary_layout: bool = True,
    ):
        if n_scenes < 1:
            raise DatasetError(f"n_scenes must be >= 1, got {n_scenes}")
        self.n_scenes = n_scenes
        self.config = config if config is not None else SceneConfig()
        self.seed = seed
        self.vary_layout = vary_layout

    def __len__(self) -> int:
        return self.n_scenes

    def scene_config(self, index: int) -> SceneConfig:
        """The effective config for scene ``index``."""
        if self.vary_layout:
            layout = self._LAYOUT_CYCLE[index % len(self._LAYOUT_CYCLE)]
            return replace(self.config, layout=layout)
        return self.config

    def __getitem__(self, index: int) -> Scene:
        if not (0 <= index < self.n_scenes):
            raise IndexError(f"scene index {index} out of range [0, {self.n_scenes})")
        return generate_scene(self.scene_config(index), seed=self.seed * 100003 + index)

    def __iter__(self):
        for i in range(self.n_scenes):
            yield self[i]
