"""Corpus statistics: is the synthetic surrogate natural-image-like?

DESIGN.md's dataset substitution rests on the synthetic scenes sharing the
image statistics the algorithms actually react to. This module measures
those statistics so the claim is checkable rather than asserted:

* **gradient heavy-tailedness** — natural images have sparse, kurtotic
  gradient distributions (most pixels flat, boundaries rare and strong);
  a white-noise image does not;
* **boundary sparsity** — the fraction of ground-truth boundary pixels,
  which sets the difficulty regime for boundary recall;
* **channel utilization** — Lab channel spreads, confirming the corpus
  exercises the full color pipeline rather than a gray sliver;
* **segment size distribution** — ground-truth regions must be much
  larger than superpixels (the BSDS regime the paper evaluates in).

The test suite asserts these against the evaluation corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..color import rgb_to_lab
from ..errors import DatasetError
from .synthetic import Scene

__all__ = ["SceneStats", "scene_statistics", "corpus_statistics"]


@dataclass(frozen=True)
class SceneStats:
    """Measured statistics of one scene."""

    gradient_kurtosis: float
    boundary_fraction: float
    lab_std: tuple  # (std_L, std_a, std_b)
    mean_segment_area: float
    n_segments: int


def _excess_kurtosis(x: np.ndarray) -> float:
    x = np.asarray(x, dtype=np.float64).ravel()
    mu = x.mean()
    var = x.var()
    if var <= 0:
        return 0.0
    return float(((x - mu) ** 4).mean() / var ** 2 - 3.0)


def scene_statistics(scene: Scene) -> SceneStats:
    """Measure one scene."""
    lab = rgb_to_lab(scene.image)
    luma = lab[..., 0]
    gx = np.diff(luma, axis=1).ravel()
    gy = np.diff(luma, axis=0).ravel()
    grads = np.concatenate([gx, gy])
    edges_h = scene.gt_labels[:, 1:] != scene.gt_labels[:, :-1]
    edges_v = scene.gt_labels[1:, :] != scene.gt_labels[:-1, :]
    n_boundary = int(edges_h.sum() + edges_v.sum())
    n_adjacent = edges_h.size + edges_v.size
    areas = np.bincount(scene.gt_labels.ravel())
    areas = areas[areas > 0]
    return SceneStats(
        gradient_kurtosis=_excess_kurtosis(grads),
        boundary_fraction=n_boundary / n_adjacent,
        lab_std=(
            float(lab[..., 0].std()),
            float(lab[..., 1].std()),
            float(lab[..., 2].std()),
        ),
        mean_segment_area=float(areas.mean()),
        n_segments=int(len(areas)),
    )


def corpus_statistics(scenes) -> dict:
    """Aggregate :func:`scene_statistics` over an iterable of scenes."""
    stats = [scene_statistics(s) for s in scenes]
    if not stats:
        raise DatasetError("empty corpus")
    return {
        "n_scenes": len(stats),
        "gradient_kurtosis_mean": float(np.mean([s.gradient_kurtosis for s in stats])),
        "boundary_fraction_mean": float(np.mean([s.boundary_fraction for s in stats])),
        "lab_std_mean": tuple(
            float(np.mean([s.lab_std[i] for s in stats])) for i in range(3)
        ),
        "mean_segment_area": float(np.mean([s.mean_segment_area for s in stats])),
    }
