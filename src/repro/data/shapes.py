"""Ground-truth region generators for the synthetic dataset.

Each generator returns an ``(H, W)`` int label map partitioning the image
into regions. The region maps play the role of the Berkeley dataset's human
segmentations: boundary recall and undersegmentation error are computed
against them.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from .texture import multi_octave_noise

__all__ = [
    "voronoi_regions",
    "warped_voronoi_regions",
    "stripe_regions",
    "add_disk_regions",
    "relabel_sequential",
]


def voronoi_regions(shape, n_regions: int, rng: np.random.Generator) -> np.ndarray:
    """Partition the image into ``n_regions`` Voronoi cells of random sites.

    Straight-edged convex regions: the easiest case for a superpixel
    algorithm and a good sanity workload.
    """
    h, w = shape
    if n_regions < 1:
        raise DatasetError(f"n_regions must be >= 1, got {n_regions}")
    if n_regions > h * w:
        raise DatasetError(f"n_regions {n_regions} exceeds pixel count {h * w}")
    sites_y = rng.uniform(0, h, size=n_regions)
    sites_x = rng.uniform(0, w, size=n_regions)
    return _nearest_site_labels(shape, sites_y, sites_x)


def warped_voronoi_regions(
    shape,
    n_regions: int,
    rng: np.random.Generator,
    warp_amplitude: float = 0.08,
) -> np.ndarray:
    """Voronoi cells with noise-warped (curved, natural-looking) boundaries.

    Pixel coordinates are displaced by low-frequency noise before the
    nearest-site assignment, bending every boundary. ``warp_amplitude`` is
    the displacement as a fraction of the image diagonal.
    """
    h, w = shape
    if warp_amplitude < 0:
        raise DatasetError(f"warp_amplitude must be >= 0, got {warp_amplitude}")
    labels_fn_sites_y = rng.uniform(0, h, size=n_regions)
    labels_fn_sites_x = rng.uniform(0, w, size=n_regions)
    amp = warp_amplitude * float(np.hypot(h, w))
    dy = amp * multi_octave_noise((h, w), rng, base_cells=3, octaves=2)
    dx = amp * multi_octave_noise((h, w), rng, base_cells=3, octaves=2)
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
    return _nearest_site_labels(
        shape, labels_fn_sites_y, labels_fn_sites_x, query_y=yy + dy, query_x=xx + dx
    )


def _nearest_site_labels(
    shape, sites_y, sites_x, query_y=None, query_x=None
) -> np.ndarray:
    """Label each (possibly warped) pixel with its nearest site index."""
    h, w = shape
    if query_y is None or query_x is None:
        query_y, query_x = np.mgrid[0:h, 0:w].astype(np.float64)
    qy = query_y.ravel()
    qx = query_x.ravel()
    n = len(sites_y)
    best = np.full(qy.shape, np.inf)
    labels = np.zeros(qy.shape, dtype=np.int32)
    # Chunk over sites to bound memory at (pixels,) per site.
    for i in range(n):
        d2 = (qy - sites_y[i]) ** 2 + (qx - sites_x[i]) ** 2
        closer = d2 < best
        best[closer] = d2[closer]
        labels[closer] = i
    return labels.reshape(h, w)


def stripe_regions(shape, n_stripes: int, rng: np.random.Generator) -> np.ndarray:
    """Parallel stripes at a random angle — a degenerate elongated-region
    case that stresses the spatial term of the SLIC distance."""
    h, w = shape
    if n_stripes < 1:
        raise DatasetError(f"n_stripes must be >= 1, got {n_stripes}")
    theta = rng.uniform(0.0, np.pi)
    yy, xx = np.mgrid[0:h, 0:w]
    proj = np.cos(theta) * xx + np.sin(theta) * yy
    lo, hi = proj.min(), proj.max()
    norm = (proj - lo) / max(hi - lo, 1e-12)
    labels = np.minimum((norm * n_stripes).astype(np.int32), n_stripes - 1)
    return labels


def add_disk_regions(
    labels: np.ndarray,
    n_disks: int,
    rng: np.random.Generator,
    radius_range=(0.04, 0.12),
) -> np.ndarray:
    """Overlay ``n_disks`` random disks as new foreground regions.

    Disks model compact objects sitting on the background partition; radii
    are fractions of min(H, W). Returns a new label map with disk labels
    appended after the existing ones.
    """
    h, w = labels.shape
    out = labels.copy()
    next_label = int(labels.max()) + 1
    yy, xx = np.mgrid[0:h, 0:w]
    rmin, rmax = radius_range
    if not (0 < rmin <= rmax):
        raise DatasetError(f"invalid radius_range {radius_range}")
    for i in range(n_disks):
        cy = rng.uniform(0, h)
        cx = rng.uniform(0, w)
        r = rng.uniform(rmin, rmax) * min(h, w)
        mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= r * r
        out[mask] = next_label + i
    return out


def relabel_sequential(labels: np.ndarray) -> np.ndarray:
    """Compress labels to 0..n-1 preserving order of first appearance.

    Region generators can orphan labels (a disk may fully cover a Voronoi
    cell); metrics assume dense label ranges, so generators finish with
    this pass.
    """
    flat = np.asarray(labels).ravel()
    uniq, inverse = np.unique(flat, return_inverse=True)
    return inverse.reshape(labels.shape).astype(np.int32)
