"""Dataset substrate: synthetic ground-truth corpus, image I/O, BSDS loader.

The synthetic corpus substitutes for the Berkeley Segmentation Dataset used
in the paper (see DESIGN.md for the substitution rationale); the BSDS loader
accepts a real checkout when one is available.
"""

from .synthetic import Scene, SceneConfig, SyntheticDataset, generate_scene
from .shapes import (
    add_disk_regions,
    relabel_sequential,
    stripe_regions,
    voronoi_regions,
    warped_voronoi_regions,
)
from .texture import linear_gradient, multi_octave_noise, value_noise
from .io import read_pgm, read_ppm, write_pgm, write_ppm
from .bsds import BsdsSample, load_bsds_pairs, parse_seg_file
from .video import VideoFrame, VideoSequence
from .stats import SceneStats, corpus_statistics, scene_statistics

__all__ = [
    "Scene",
    "SceneConfig",
    "SyntheticDataset",
    "generate_scene",
    "voronoi_regions",
    "warped_voronoi_regions",
    "stripe_regions",
    "add_disk_regions",
    "relabel_sequential",
    "value_noise",
    "multi_octave_noise",
    "linear_gradient",
    "write_ppm",
    "read_ppm",
    "write_pgm",
    "read_pgm",
    "BsdsSample",
    "parse_seg_file",
    "load_bsds_pairs",
    "VideoFrame",
    "VideoSequence",
    "SceneStats",
    "scene_statistics",
    "corpus_statistics",
]
