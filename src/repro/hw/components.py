"""Cost models of the remaining accelerator units.

Figure 4's blocks besides the Cluster Update Unit:

* :class:`ColorUnitModel` — the LUT-based color conversion unit
  (functional behaviour lives in :mod:`repro.color.hw_convert`; this is
  its area/energy/timing).
* :class:`CenterUnitModel` — the Center Update Unit: sigma registers plus
  an iterative divider that averages the six fields of every superpixel.
* :class:`ScratchpadModel` — the four channel/index scratchpad SRAMs.
* FSM/controller constants.

Area splits are calibrated so the full accelerator reproduces Table 4
(0.066 mm^2 with 4 kB buffers, 0.053 mm^2 with 1 kB) given the fitted SRAM
density and the Table 3 cluster-unit area.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareModelError
from .tech import TECH_16NM, TechnologyParams

__all__ = ["ColorUnitModel", "CenterUnitModel", "ScratchpadModel", "FSM_AREA_MM2"]

#: FSM host controller area (mm^2) — part of the fitted logic split.
FSM_AREA_MM2 = 0.0050


@dataclass(frozen=True)
class ColorUnitModel:
    """The fixed-point color conversion unit with its two LUTs.

    One pixel per cycle (three parallel channel pipelines: gamma LUT,
    matrix multiply, PWL cube root, Equation 3 combine); ``overhead``
    covers pipeline fill and scratchpad hand-off, calibrated to the
    paper's 1.4 ms for a 1080p frame.
    """

    tech: TechnologyParams = TECH_16NM
    area_mm2: float = 0.0080
    energy_per_pixel_pj: float = 10.0
    overhead: float = 0.08

    def cycles_for_pixels(self, n_pixels: int) -> float:
        if n_pixels < 0:
            raise HardwareModelError(f"n_pixels must be >= 0, got {n_pixels}")
        return n_pixels * (1.0 + self.overhead)

    def energy_uj(self, n_pixels: int) -> float:
        return self.energy_per_pixel_pj * n_pixels * 1e-6


@dataclass(frozen=True)
class CenterUnitModel:
    """The Center Update Unit: per-superpixel averaging via a divider.

    Six divisions per superpixel per iteration (L, a, b, x, y sums by the
    count — the count field itself needs no division but its slot is used
    for the movement check). ``div_latency_cycles`` models the iterative
    (bit-serial) divider; 52 cycles is the calibration that, combined with
    the DRAM model, reproduces Table 4's compute/memory split (Section 7:
    20.3 ms compute / 11.1 ms memory for 1080p cluster update).
    """

    tech: TechnologyParams = TECH_16NM
    area_mm2: float = 0.0200
    div_latency_cycles: int = 52
    divisions_per_sp: int = 6
    energy_per_division_pj: float = 5.0

    def cycles_for_update(self, n_superpixels: int) -> float:
        """Cycles to recompute all centers once."""
        if n_superpixels < 0:
            raise HardwareModelError("n_superpixels must be >= 0")
        return n_superpixels * self.divisions_per_sp * self.div_latency_cycles

    def energy_uj(self, n_superpixels: int, iterations: int) -> float:
        divs = n_superpixels * self.divisions_per_sp * iterations
        return divs * self.energy_per_division_pj * 1e-6


@dataclass(frozen=True)
class ScratchpadModel:
    """The four scratchpad SRAMs (channels 1-3 + index memory).

    "The scratchpad memories [...] were realized using synchronous RAMs
    with separate read-write ports" — so reads and writes do not contend.
    Area uses the Table 4-fitted density; access energy uses the
    technology's pJ/byte.
    """

    tech: TechnologyParams = TECH_16NM
    buffer_kb_per_channel: float = 4.0
    n_buffers: int = 4

    def __post_init__(self) -> None:
        if self.buffer_kb_per_channel <= 0:
            raise HardwareModelError(
                f"buffer size must be positive, got {self.buffer_kb_per_channel}"
            )
        if self.n_buffers < 1:
            raise HardwareModelError(f"n_buffers must be >= 1, got {self.n_buffers}")

    @property
    def total_kb(self) -> float:
        return self.buffer_kb_per_channel * self.n_buffers

    @property
    def buffer_bytes(self) -> int:
        return int(self.buffer_kb_per_channel * 1024)

    def area_mm2(self) -> float:
        return self.tech.sram_area_per_kb * self.total_kb

    def energy_uj(self, bytes_accessed: float) -> float:
        return bytes_accessed * self.tech.e_sram_byte * 1e-6
