"""Accelerator configuration — the knobs of the design space exploration.

"The design was highly parameterized to allow in-depth design space
exploration of the accelerator by varying the number of cores, number of
SIMD ways, memory size, and bit-widths of different operations"
(Section 5). :class:`AcceleratorConfig` exposes exactly those knobs plus
the workload (resolution, superpixel count, iteration count).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError
from ..types import Resolution
from .hls import ClusterWays

__all__ = ["AcceleratorConfig"]


@dataclass(frozen=True)
class AcceleratorConfig:
    """One point in the accelerator design space.

    Attributes
    ----------
    resolution:
        Input frame size (Table 4 evaluates 1920x1080, 1280x768, 640x480).
    n_superpixels:
        K (5000 throughout the paper's hardware evaluation).
    iterations:
        Cluster-update full-image iterations per frame (9, Section 7).
    ways:
        Cluster Update Unit unrolling (9-9-6 in the chosen design).
    buffer_kb_per_channel:
        Scratchpad size per channel buffer (Fig 6 sweeps 1-128 kB; 4 kB is
        the smallest real-time choice).
    bits:
        Datapath width (8 after the Section 6.1 exploration).
    n_cores:
        Parallel cluster-update cores (1 in every published configuration;
        >1 supported for the scaling extension — compute scales, the
        shared DRAM interface does not).
    subsample_ratio:
        S-SLIC pixel subsampling (affects per-iteration DRAM traffic and
        the iterations needed for a target quality; the published
        configurations run 9 full-image-equivalent iterations).
    """

    resolution: Resolution = field(default_factory=lambda: Resolution(1920, 1080))
    n_superpixels: int = 5000
    iterations: int = 9
    ways: ClusterWays = field(default_factory=ClusterWays)
    buffer_kb_per_channel: float = 4.0
    bits: int = 8
    n_cores: int = 1
    subsample_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.n_superpixels < 1:
            raise ConfigurationError("n_superpixels must be >= 1")
        if self.n_superpixels > self.resolution.pixels:
            raise ConfigurationError(
                f"n_superpixels {self.n_superpixels} exceeds pixel count "
                f"{self.resolution.pixels}"
            )
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if self.buffer_kb_per_channel <= 0:
            raise ConfigurationError("buffer_kb_per_channel must be > 0")
        if not (2 <= self.bits <= 16):
            raise ConfigurationError(f"bits must be in [2, 16], got {self.bits}")
        if self.n_cores < 1:
            raise ConfigurationError("n_cores must be >= 1")
        if not (0.0 < self.subsample_ratio <= 1.0):
            raise ConfigurationError("subsample_ratio must be in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def n_pixels(self) -> int:
        return self.resolution.pixels

    @property
    def n_tiles(self) -> int:
        """One tile per superpixel grid cell."""
        return self.n_superpixels

    @property
    def pixels_per_tile(self) -> float:
        return self.n_pixels / self.n_tiles

    def with_(self, **changes) -> "AcceleratorConfig":
        """Copy with ``changes`` applied."""
        return replace(self, **changes)
