"""Paper-published values and the corresponding model configurations.

Central registry used by the benchmarks and EXPERIMENTS.md: for every
table/figure, the configuration that regenerates it and the values the
paper printed, so "paper vs measured" is produced in one place and never
hand-copied into bench code.
"""

from __future__ import annotations

from ..types import HD_1080, HD_720, VGA, Resolution
from .config import AcceleratorConfig
from .hls import ClusterWays

__all__ = [
    "table4_configs",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_FIG6_BUFFERS_KB",
    "REAL_TIME_MS",
]

#: 30 fps frame budget.
REAL_TIME_MS = 1000.0 / 30.0


def table4_configs() -> dict:
    """The three best configurations of Table 4, keyed by resolution name."""
    return {
        "1920x1080": AcceleratorConfig(
            resolution=HD_1080, buffer_kb_per_channel=4.0
        ),
        "1280x768": AcceleratorConfig(resolution=HD_720, buffer_kb_per_channel=1.0),
        "640x480": AcceleratorConfig(resolution=VGA, buffer_kb_per_channel=1.0),
    }


#: Table 3 (paper): per-configuration area (mm^2), power (mW), latency
#: (cycles), throughput (pixels/cycle), time (ms) and energy (uJ) for one
#: 1080p iteration.
PAPER_TABLE3 = {
    "1-1-1 way": {
        "area_mm2": 0.0020,
        "power_mw": 3.3,
        "latency_cycles": 27,
        "throughput": 1 / 9,
        "time_ms": 11.8,
        "energy_uj": 38.9,
    },
    "9-1-1 way": {
        "area_mm2": 0.0149,
        "power_mw": 3.6,
        "latency_cycles": 19,
        "throughput": 1 / 9,
        "time_ms": 11.8,
        "energy_uj": 42.5,
    },
    "1-9-1 way": {
        "area_mm2": 0.0023,
        "power_mw": 3.2,
        "latency_cycles": 20,
        "throughput": 1 / 9,
        "time_ms": 11.8,
        "energy_uj": 37.5,
    },
    "1-1-6 way": {
        "area_mm2": 0.0025,
        "power_mw": 3.25,
        "latency_cycles": 22,
        "throughput": 1 / 9,
        "time_ms": 11.8,
        "energy_uj": 38.3,
    },
    "9-9-6 way": {
        "area_mm2": 0.0156,
        "power_mw": 30.9,
        "latency_cycles": 7,
        "throughput": 1.0,
        "time_ms": 1.3,
        "energy_uj": 40.6,
    },
}

#: Table 4 (paper): the best configuration per resolution.
PAPER_TABLE4 = {
    "1920x1080": {
        "buffer_kb": 4,
        "area_mm2": 0.066,
        "power_mw": 49,
        "latency_ms": 32.8,
        "fps": 30.5,
        "energy_mj": 1.6,
        "perf_per_area": 461,
    },
    # The paper prints perf/area 747 and 963 for these two rows, which is
    # inconsistent with its own fps and (rounded) 0.053 mm^2 area columns
    # (39.0 / 0.053 = 735.8, 50.3 / 0.053 = 949.1). The registry stores the
    # internally consistent derivation fps / area_mm2 so the "paper vs
    # measured" comparisons rest on arithmetic that closes.
    "1280x768": {
        "buffer_kb": 1,
        "area_mm2": 0.053,
        "power_mw": 46,
        "latency_ms": 25.4,
        "fps": 39.0,
        "energy_mj": 1.17,
        "perf_per_area": 735.8,
    },
    "640x480": {
        "buffer_kb": 1,
        "area_mm2": 0.053,
        "power_mw": 50,
        "latency_ms": 19.7,
        "fps": 50.3,
        "energy_mj": 0.98,
        "perf_per_area": 949.1,
    },
}

#: Table 5 (paper): platform comparison at 1080p, K=5000.
PAPER_TABLE5 = {
    "Tesla K20": {
        "technology": "28nm (0.81V)",
        "on_chip_kb": 6320,
        "cores": 2496,
        "avg_power_w": 86.0,
        "norm_power_w": 39.0,
        "latency_ms": 22.3,
        "energy_mj_norm": 867.0,
    },
    "TK1": {
        "technology": "28nm (0.81V)",
        "on_chip_kb": 368,
        "cores": 192,
        "avg_power_w": 0.332,
        "norm_power_w": 0.150,
        "latency_ms": 2713.0,
        "energy_mj_norm": 407.0,
    },
    "This Work": {
        "technology": "16nm (0.72V)",
        "on_chip_kb": 20,
        "cores": 1,
        "avg_power_w": 0.049,
        "norm_power_w": 0.050,
        "latency_ms": 32.8,
        "energy_mj_norm": 1.6,
    },
}

#: Table 1 (paper): CPU time-breakdown percentages.
PAPER_TABLE1 = {
    "SLIC": {
        "color_conversion": 23.4,
        "distance_min": 65.9,
        "center_update": 10.2,
        "other": 0.5,
    },
    "S-SLIC": {
        "color_conversion": 18.7,
        "distance_min": 59.7,
        "center_update": 17.9,
        "other": 3.7,
    },
}

#: Table 2 (paper): per-1080p-iteration costs.
PAPER_TABLE2 = {
    "CPA": {"memory_mb": 318.0, "ops_m": 58.0},
    "PPA": {"memory_mb": 100.0, "ops_m": 130.0},
}

#: Fig 6 x-axis: channel buffer sizes swept (kB).
PAPER_FIG6_BUFFERS_KB = (1, 2, 4, 8, 16, 32, 64, 128)
