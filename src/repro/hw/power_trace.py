"""Frame power trace: a time-resolved view of the accelerator's power.

The report of :class:`~repro.hw.accelerator.AcceleratorModel` gives one
average power number per frame; SoC integration questions (supply sizing,
thermal budgeting, scheduling the accelerator next to other IP) need the
*shape* — when the frame draws its peaks. This module expands the frame
into a piecewise-constant power timeline from the same unit models:

* color conversion phase: always-on floor + the color unit's active power;
* each cluster-update iteration: floor + cluster-unit active power
  (scaled by its duty cycle against the memory stalls it hides behind);
* each center update: floor + the divider's power.

The trace integrates back to the report's energy (cross-check built into
the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import HardwareModelError
from .accelerator import AcceleratorModel

__all__ = ["PowerSegment", "PowerTrace", "frame_power_trace"]


@dataclass(frozen=True)
class PowerSegment:
    """A constant-power interval of the frame."""

    start_ms: float
    end_ms: float
    power_mw: float
    label: str

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def energy_uj(self) -> float:
        return self.power_mw * self.duration_ms  # mW * ms = uJ


@dataclass
class PowerTrace:
    """A frame's power timeline."""

    segments: list

    @property
    def total_ms(self) -> float:
        return self.segments[-1].end_ms if self.segments else 0.0

    @property
    def energy_mj(self) -> float:
        return sum(s.energy_uj for s in self.segments) * 1e-3

    @property
    def average_mw(self) -> float:
        if self.total_ms == 0:
            return 0.0
        return self.energy_mj / self.total_ms * 1e3

    @property
    def peak_mw(self) -> float:
        return max((s.power_mw for s in self.segments), default=0.0)

    def sample(self, times_ms) -> np.ndarray:
        """Power (mW) at each requested time (0 outside the frame)."""
        times = np.asarray(times_ms, dtype=np.float64)
        out = np.zeros(times.shape)
        for seg in self.segments:
            mask = (times >= seg.start_ms) & (times < seg.end_ms)
            out[mask] = seg.power_mw
        return out


def frame_power_trace(model: AcceleratorModel) -> PowerTrace:
    """Expand one frame of ``model`` into a power timeline.

    Phase powers are derived from the model's energy components divided by
    the time each unit is active, over the always-on floor, so the trace's
    integral equals the report's frame energy by construction.
    """
    if not isinstance(model, AcceleratorModel):
        raise HardwareModelError("frame_power_trace expects an AcceleratorModel")
    lb = model.latency_breakdown()
    energy = model.energy_breakdown_uj(lb.total_ms)
    floor = model.always_on_power_mw

    segments = []
    t = 0.0

    def push(duration_ms: float, active_uj: float, label: str):
        nonlocal t
        if duration_ms <= 0:
            return
        power = floor + active_uj / duration_ms  # uJ / ms = mW
        segments.append(PowerSegment(t, t + duration_ms, power, label))
        t += duration_ms

    push(lb.color_conversion_ms, energy["color_conversion"], "color_conversion")

    # Cluster-update iterations: compute+memory interleave per tile; the
    # trace treats each iteration as one segment whose active energy is
    # the cluster + scratchpad share, followed by its center update.
    iters = model.config.iterations
    iter_active_ms = (
        lb.cluster_compute_ms + lb.memory_transfer_ms + lb.memory_stall_ms
    ) / iters
    iter_active_uj = (energy["cluster_update"] + energy["scratchpads"]) / iters
    center_ms = lb.center_update_ms / iters
    center_uj = energy["center_update"] / iters
    for i in range(iters):
        push(iter_active_ms, iter_active_uj, f"cluster_update[{i}]")
        push(center_ms, center_uj, f"center_update[{i}]")

    return PowerTrace(segments=segments)
