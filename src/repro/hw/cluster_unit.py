"""Cost model of the Cluster Update Unit — the Table 3 design space.

Combines the HLS schedule (:mod:`repro.hw.hls`) with area and energy
models calibrated against the paper's published numbers:

* **Area** is additive in instantiated ways. The per-way areas are fitted
  from Table 3's four corner configurations (a distance calculator is
  ~1.6e-3 mm^2 — it contains the multipliers — while a comparator or adder
  way is 20-40x smaller) and reproduce all five published areas within
  rounding.
* **Energy per pixel** is dynamic energy (op counts x per-op energies x a
  calibrated implementation overhead covering registers, muxing, and
  control) plus static energy (leakage/clock density x area x residency
  time). The dynamic component is nearly configuration-independent — the
  same arithmetic executes regardless of unrolling — which is exactly why
  Table 3's energies cluster around 40 uJ while power spans 3.3-30.9 mW.

Bit-width scaling for the extended DSE: adder/comparator cost scales
linearly with width, multiplier cost quadratically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareModelError
from .hls import ClusterWays, StageSchedule, schedule_cluster_unit
from .tech import TECH_16NM, TechnologyParams

__all__ = ["ClusterUnitModel", "ClusterUnitReport"]

# ---------------------------------------------------------------------------
# Area constants (mm^2, 16 nm, 8-bit datapath) — fitted from Table 3.
# ---------------------------------------------------------------------------
_AREA_BASE = 0.00025  # control, pixel/center registers
_AREA_PER_DISTANCE_WAY = 0.0016125
_AREA_PER_MIN_WAY = 0.0000375
_AREA_PER_ADDER_WAY = 0.0001

# ---------------------------------------------------------------------------
# Operation counts per pixel (all 9 candidate distances + 9:1 min + sigma).
# One Equation 5 evaluation = 5 differences, 5 squares, 4 accumulate adds,
# 1 weight multiply, 1 combine add.
# ---------------------------------------------------------------------------
_ADDS_PER_DISTANCE = 10
_MULS_PER_DISTANCE = 6
_N_DISTANCES = 9
_MIN_COMPARES = 8
_SIGMA_ADDS = 6

#: Implementation overhead over raw ALU energy (registers, muxes, clocking
#: of the synthesized unit). Calibrated so the 8-bit unit lands on Table
#: 3's ~19 pJ/pixel operating point.
_IMPL_OVERHEAD = 2.93


@dataclass(frozen=True)
class ClusterUnitReport:
    """One Table 3 row."""

    ways: ClusterWays
    area_mm2: float
    power_mw: float
    latency_cycles: int
    throughput_pixels_per_cycle: float
    time_ms: float
    energy_uj: float

    @property
    def label(self) -> str:
        return self.ways.label


class ClusterUnitModel:
    """Area / power / energy / timing of one Cluster Update Unit.

    Parameters
    ----------
    ways:
        Unroll configuration (see :class:`~repro.hw.hls.ClusterWays`).
    bits:
        Datapath width (8 in the final design).
    tech:
        Technology parameters; defaults to the paper's 16 nm point.
    """

    def __init__(
        self,
        ways: ClusterWays = None,
        bits: int = 8,
        tech: TechnologyParams = TECH_16NM,
    ):
        if ways is None:
            ways = ClusterWays()
        if not (2 <= bits <= 16):
            raise HardwareModelError(f"bits must be in [2, 16], got {bits}")
        self.ways = ways
        self.bits = bits
        self.tech = tech
        self.schedule: StageSchedule = schedule_cluster_unit(ways)

    # ------------------------------------------------------------------
    @property
    def _width_linear(self) -> float:
        return self.bits / 8.0

    @property
    def _width_quadratic(self) -> float:
        return (self.bits / 8.0) ** 2

    def area_mm2(self) -> float:
        """Synthesized area. Distance ways carry the multipliers, so they
        scale quadratically with width; comparators and adders linearly."""
        dist = _AREA_PER_DISTANCE_WAY * self.ways.distance * self._width_quadratic
        mins = _AREA_PER_MIN_WAY * self.ways.minimum * self._width_linear
        adds = _AREA_PER_ADDER_WAY * self.ways.adder * self._width_linear
        return _AREA_BASE + dist + mins + adds

    # ------------------------------------------------------------------
    def dynamic_energy_per_pixel_pj(self) -> float:
        """Dynamic energy to fully process one pixel (all 9 candidates)."""
        adds = (
            _N_DISTANCES * _ADDS_PER_DISTANCE + _MIN_COMPARES + _SIGMA_ADDS
        ) * self.tech.e_add8 * self._width_linear
        muls = _N_DISTANCES * _MULS_PER_DISTANCE * self.tech.e_mul8 * self._width_quadratic
        return _IMPL_OVERHEAD * (adds + muls)

    def static_energy_per_pixel_pj(self) -> float:
        """Leakage/clock energy over the pixel's residency (II cycles)."""
        power_w = self.tech.static_density * 1e-3 * self.area_mm2()
        seconds = self.schedule.initiation_interval * self.tech.cycle_seconds
        return power_w * seconds * 1e12

    def energy_per_pixel_pj(self) -> float:
        return self.dynamic_energy_per_pixel_pj() + self.static_energy_per_pixel_pj()

    # ------------------------------------------------------------------
    def cycles_for_pixels(self, n_pixels: int) -> int:
        """Cycles to stream ``n_pixels`` through the unit (II-bound, plus
        one pipeline drain)."""
        if n_pixels < 0:
            raise HardwareModelError(f"n_pixels must be >= 0, got {n_pixels}")
        if n_pixels == 0:
            return 0
        return self.schedule.initiation_interval * n_pixels + self.schedule.latency

    def report(self, n_pixels: int = 1920 * 1080) -> ClusterUnitReport:
        """One Table 3 row: cost of one full-image iteration."""
        cycles = self.cycles_for_pixels(n_pixels)
        time_ms = self.tech.cycles_to_ms(cycles)
        energy_uj = self.energy_per_pixel_pj() * n_pixels * 1e-6
        power_mw = energy_uj * 1e-6 / (time_ms * 1e-3) * 1e3 if time_ms > 0 else 0.0
        return ClusterUnitReport(
            ways=self.ways,
            area_mm2=self.area_mm2(),
            power_mw=power_mw,
            latency_cycles=self.schedule.latency,
            throughput_pixels_per_cycle=self.schedule.throughput_pixels_per_cycle,
            time_ms=time_ms,
            energy_uj=energy_uj,
        )
