"""Technology parameters: 16 nm FinFET operating point and energy/area scaling.

The paper prototypes in a 16 nm FinFET standard-cell library at 1.6 GHz and
0.72 V, and normalizes the 28 nm GPU baselines to 16 nm with "multiplicative
factors of 1.25 for voltage^2 and 1.75 for capacitance, for a total of 2.2"
(Section 7). The per-operation energies follow Horowitz's ISSCC'14 survey
scaled to 16 nm; the paper's own simple model assumes "the energy of an 8b
DRAM reference is 2500x larger [than] the energy of an 8b add".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareModelError

__all__ = ["TechnologyParams", "TECH_16NM", "TECH_28NM", "process_normalization_factor"]


@dataclass(frozen=True)
class TechnologyParams:
    """An operating point plus first-order energy/area constants.

    Energy values are in picojoules, at the node's nominal voltage.

    Attributes
    ----------
    name, voltage, frequency_hz:
        Node label, supply (V), and design clock (Hz).
    e_add8:
        Energy of an 8-bit integer add (pJ) — the paper's unit of account.
    e_mul8:
        Energy of an 8-bit multiply (pJ).
    e_sram_byte:
        Energy per byte of on-chip SRAM access (pJ/B).
    dram_ref_ratio:
        The paper's assumption: an 8-bit DRAM reference costs this many
        8-bit adds (2500).
    sram_area_per_kb:
        SRAM macro area (mm^2 per kB) — fitted from Table 4 (0.066 vs
        0.053 mm^2 for 16 kB vs 4 kB of scratchpad).
    static_density:
        Leakage + local clock power density of synthesized logic
        (mW per mm^2) — fitted from Table 3's parallel-vs-iterative power
        spread.
    """

    name: str
    voltage: float
    frequency_hz: float
    e_add8: float
    e_mul8: float
    e_sram_byte: float
    dram_ref_ratio: float = 2500.0
    sram_area_per_kb: float = 1.083e-3
    static_density: float = 24.0

    def __post_init__(self) -> None:
        if self.voltage <= 0 or self.frequency_hz <= 0:
            raise HardwareModelError(
                f"voltage/frequency must be positive: {self.voltage}, {self.frequency_hz}"
            )
        for field_name in ("e_add8", "e_mul8", "e_sram_byte"):
            if getattr(self, field_name) <= 0:
                raise HardwareModelError(f"{field_name} must be positive")

    @property
    def cycle_seconds(self) -> float:
        """Seconds per clock cycle."""
        return 1.0 / self.frequency_hz

    @property
    def e_dram_byte(self) -> float:
        """Paper's DRAM energy model: 2500 x an 8-bit add, per byte (pJ/B)."""
        return self.dram_ref_ratio * self.e_add8

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def cycles_to_ms(self, cycles: float) -> float:
        return 1e3 * cycles / self.frequency_hz


#: 16 nm FinFET at the paper's 1.6 GHz / 0.72 V operating point. Energies
#: are Horowitz 45 nm values scaled by the paper's 2.2x-per-generation-pair
#: factor (45->28->16 nm ~ 2.2^2 would overshoot; we scale 45 nm's 0.03 pJ
#: 8b add by ~2.2 to 16 nm-class 0.014 pJ, consistent with the paper's
#: relative model — only *ratios* enter the architecture decision).
TECH_16NM = TechnologyParams(
    name="16nm FinFET",
    voltage=0.72,
    frequency_hz=1.6e9,
    e_add8=0.014,
    e_mul8=0.09,
    e_sram_byte=0.35,
)

#: 28 nm (GPU baselines' node, 0.81 V).
TECH_28NM = TechnologyParams(
    name="28nm",
    voltage=0.81,
    frequency_hz=1.6e9,
    e_add8=0.014 * 2.2,
    e_mul8=0.09 * 2.2,
    e_sram_byte=0.35 * 2.2,
)


def process_normalization_factor(
    voltage_factor: float = 1.25, capacitance_factor: float = 1.75
) -> float:
    """The paper's 28 nm -> 16 nm power normalization: 1.25 x 1.75 ~= 2.2."""
    if voltage_factor <= 0 or capacitance_factor <= 0:
        raise HardwareModelError("normalization factors must be positive")
    return voltage_factor * capacitance_factor
