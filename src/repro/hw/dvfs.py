"""Voltage/frequency scaling — the paper's closing extension.

Section 6.3: "The accelerator architecture can scale gracefully down to
lower resolution image streams by reducing the buffer sizes and ultimately
reducing the clock rate." The paper never quantifies that; this module
does.

First-order DVFS model (documented assumptions):

* the maximum clock scales linearly with supply over the usable range
  (``f_max(V) = f0 * V / V0``), floored at ``MIN_VOLTAGE_RATIO`` of the
  nominal 0.72 V;
* dynamic energy per operation scales with ``V^2``;
* the always-on power (clock tree + scratchpad + interface) scales with
  ``f * V^2`` — it is dominated by switching at these geometries;
* cycle counts are frequency-independent (the DRAM interface is assumed
  to scale with the core clock — a synchronous design, consistent with
  the paper expressing memory latency in core cycles).

The headline result: a frame that finishes early at nominal frequency
burns always-on power for nothing; running each resolution at the slowest
clock that still meets 30 fps cuts frame energy substantially (about a
third at VGA).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import HardwareModelError
from .accelerator import AcceleratorModel
from .config import AcceleratorConfig
from .dram import DramModel
from .tech import TECH_16NM, TechnologyParams

__all__ = ["OperatingPoint", "scaled_tech", "report_at", "min_real_time_point"]

#: Lowest usable supply, as a fraction of nominal (near-threshold limit).
MIN_VOLTAGE_RATIO = 0.6

#: Frame budget for 30 fps.
_REAL_TIME_MS = 1000.0 / 30.0


@dataclass(frozen=True)
class OperatingPoint:
    """A (frequency, voltage) pair derived from the linear f-V rule."""

    frequency_hz: float
    voltage: float

    @classmethod
    def at_frequency(
        cls, frequency_hz: float, nominal: TechnologyParams = TECH_16NM
    ) -> "OperatingPoint":
        """The minimum-voltage point sustaining ``frequency_hz``."""
        if frequency_hz <= 0:
            raise HardwareModelError("frequency must be positive")
        ratio = frequency_hz / nominal.frequency_hz
        if ratio > 1.0 + 1e-9:
            raise HardwareModelError(
                f"frequency {frequency_hz / 1e9:.2f} GHz exceeds the nominal "
                f"{nominal.frequency_hz / 1e9:.2f} GHz design point"
            )
        voltage = nominal.voltage * max(ratio, MIN_VOLTAGE_RATIO)
        return cls(frequency_hz=frequency_hz, voltage=voltage)


def scaled_tech(
    point: OperatingPoint, nominal: TechnologyParams = TECH_16NM
) -> TechnologyParams:
    """Technology parameters at a scaled operating point."""
    v_ratio = point.voltage / nominal.voltage
    e_scale = v_ratio ** 2
    return replace(
        nominal,
        name=f"{nominal.name} @ {point.frequency_hz / 1e9:.2f} GHz, {point.voltage:.2f} V",
        voltage=point.voltage,
        frequency_hz=point.frequency_hz,
        e_add8=nominal.e_add8 * e_scale,
        e_mul8=nominal.e_mul8 * e_scale,
        e_sram_byte=nominal.e_sram_byte * e_scale,
        # Leakage density drops with voltage (first order: linear).
        static_density=nominal.static_density * v_ratio,
    )


def report_at(config: AcceleratorConfig, point: OperatingPoint):
    """Accelerator report at a scaled operating point.

    The always-on floor scales with f * V^2 relative to nominal.
    """
    nominal = TECH_16NM
    tech = scaled_tech(point, nominal)
    f_ratio = point.frequency_hz / nominal.frequency_hz
    v_ratio = point.voltage / nominal.voltage
    model = AcceleratorModel(
        config,
        tech=tech,
        dram=DramModel(),
        always_on_power_mw=AcceleratorModel(config).always_on_power_mw
        * f_ratio
        * v_ratio ** 2,
    )
    return model.report()


def min_real_time_point(
    config: AcceleratorConfig,
    budget_ms: float = _REAL_TIME_MS,
    guard_band: float = 0.01,
) -> OperatingPoint:
    """Slowest operating point whose frame time still fits ``budget_ms``.

    Cycle counts are frequency-independent in this model, so the answer is
    direct: f_min = nominal_f * latency(nominal) / budget (clamped to the
    nominal ceiling), with a ``guard_band`` frequency margin — no designer
    signs off a clock that meets the deadline with zero slack. Raises if
    even the nominal point misses the budget.
    """
    if budget_ms <= 0:
        raise HardwareModelError("budget_ms must be positive")
    if not (0.0 <= guard_band < 0.5):
        raise HardwareModelError(f"guard_band must be in [0, 0.5), got {guard_band}")
    nominal_latency = AcceleratorModel(config).report().latency_ms
    if nominal_latency > budget_ms:
        raise HardwareModelError(
            f"configuration misses the {budget_ms:.1f} ms budget even at "
            f"nominal frequency ({nominal_latency:.1f} ms)"
        )
    f_min = (
        TECH_16NM.frequency_hz * nominal_latency / budget_ms * (1.0 + guard_band)
    )
    return OperatingPoint.at_frequency(min(f_min, TECH_16NM.frequency_hz))
