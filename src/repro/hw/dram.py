"""External-memory model: traffic, transfer time, and exposed burst stalls.

Section 6.3 states the paper's assumptions verbatim: "We assumed that peak
external bandwidth is 256b/cycle and memory latency is 50 cycle latency for
this analysis." The accelerator streams, per cluster-update iteration and
per tile: the three Lab channel tiles in, the index tile in and back out,
and the per-tile center/sigma records.

Timing decomposes into

* **transfer cycles** — bytes / 32 B-per-cycle, the bandwidth-bound part;
* **stall cycles** — per-tile request latencies that double buffering
  cannot hide. Each tile costs a fixed number of request round-trips
  (``bursts_per_tile``: 3 channel loads + index load + index store +
  center/sigma exchange = 6) plus refills proportional to how many times
  the streamed tile data overflows a channel buffer
  (``streamed_bytes / buffer_bytes``). Shrinking the buffer therefore adds
  ~latency cycles per overflow — the Fig 6 curve.

With ``bursts_per_tile = 6`` and the 52-cycle divider of
:class:`~repro.hw.components.CenterUnitModel`, this model lands within 2%
of every latency in Table 4 and reproduces Fig 6's "4 kB is the smallest
real-time buffer" conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareModelError

__all__ = ["DramModel", "FrameTraffic"]


@dataclass(frozen=True)
class FrameTraffic:
    """DRAM byte counts for one processed frame."""

    input_bytes: float
    iteration_bytes: float
    output_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.input_bytes + self.iteration_bytes + self.output_bytes

    @property
    def total_mb(self) -> float:
        return self.total_bytes / 1e6


@dataclass(frozen=True)
class DramModel:
    """Peak-bandwidth + request-latency external memory.

    Attributes
    ----------
    bytes_per_cycle:
        Peak transfer width (256 bits = 32 B per cycle, the paper's
        assumption).
    latency_cycles:
        Request round-trip latency (50 cycles).
    bursts_per_tile:
        Fixed request count per tile per iteration (see module docstring).
    bytes_per_pixel_per_iteration:
        Streamed pixel data per cluster-update iteration: Lab in (3 B) +
        index in (1 B) + index out (1 B).
    """

    bytes_per_cycle: float = 32.0
    latency_cycles: float = 50.0
    bursts_per_tile: float = 6.0
    bytes_per_pixel_per_iteration: float = 5.0

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0 or self.latency_cycles < 0:
            raise HardwareModelError("invalid DRAM parameters")

    # ------------------------------------------------------------------
    def frame_traffic(
        self,
        n_pixels: int,
        iterations: int,
        input_bytes_per_pixel: float = 3.0,
        subsample_ratio: float = 1.0,
    ) -> FrameTraffic:
        """Byte counts for one frame: RGB in, per-iteration streaming,
        final label map out.

        ``subsample_ratio`` scales the per-iteration pixel streaming: an
        S-SLIC subset pass touches only ``ratio`` of the pixels — the
        source of the abstract's "reduce the memory bandwidth by 1.8x"
        when subset passes replace full sweeps at an equal pass count.
        """
        if n_pixels < 0 or iterations < 0:
            raise HardwareModelError("n_pixels and iterations must be >= 0")
        if not (0.0 < subsample_ratio <= 1.0):
            raise HardwareModelError(
                f"subsample_ratio must be in (0, 1], got {subsample_ratio}"
            )
        per_iter = (
            self.bytes_per_pixel_per_iteration * n_pixels * subsample_ratio
        )
        return FrameTraffic(
            input_bytes=input_bytes_per_pixel * n_pixels,
            iteration_bytes=per_iter * iterations,
            output_bytes=1.0 * n_pixels,
        )

    def transfer_cycles(self, n_bytes: float) -> float:
        """Bandwidth-bound cycles to move ``n_bytes``."""
        if n_bytes < 0:
            raise HardwareModelError(f"n_bytes must be >= 0, got {n_bytes}")
        return n_bytes / self.bytes_per_cycle

    def stall_cycles(
        self,
        n_tiles: int,
        iterations: int,
        streamed_bytes_per_tile: float,
        buffer_bytes: float,
    ) -> float:
        """Exposed request-latency cycles over a frame (see module doc)."""
        if n_tiles < 0 or iterations < 0:
            raise HardwareModelError("n_tiles and iterations must be >= 0")
        if buffer_bytes <= 0:
            raise HardwareModelError(f"buffer_bytes must be > 0, got {buffer_bytes}")
        refills = streamed_bytes_per_tile / buffer_bytes
        per_tile = self.latency_cycles * (self.bursts_per_tile + refills)
        return n_tiles * iterations * per_tile
