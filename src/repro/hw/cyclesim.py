"""Cycle-level simulation of the S-SLIC accelerator datapath.

The analytical model (:mod:`repro.hw.hls`, :mod:`repro.hw.accelerator`)
computes cycle counts from closed-form scheduling rules. This module
*simulates* the same microarchitecture cycle by cycle — pixels flowing
through the three-stage Cluster Update Unit pipeline, tiles streaming
through double-buffered scratchpads fed by a latency/bandwidth-limited DRAM
— so the closed forms can be validated against an independent mechanism
rather than against themselves. It also produces measurements the closed
forms cannot: per-unit utilization and stall attribution.

Two simulators:

* :class:`ClusterUnitSim` — pipeline-reservation simulation of one Cluster
  Update Unit for a given ways configuration. Reproduces Table 3's latency
  and throughput *by construction of the microarchitecture*, not by the
  scheduling formula.
* :class:`AcceleratorSim` — frame-level simulation: the FSM iterates over
  tiles; each tile's channel data is fetched by a DRAM engine (one request
  stream per buffer, 50-cycle latency, 32 B/cycle shared bus) into the idle
  half of a double buffer while the compute half drains through the
  cluster unit; sigma hand-off and the divider-serialized center update
  run at sweep boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import HardwareModelError
from ..obs.tracer import NULL_TRACER
from .components import CenterUnitModel, ColorUnitModel
from .config import AcceleratorConfig
from .dram import DramModel
from .hls import ClusterWays, schedule_cluster_unit
from .tech import TECH_16NM, TechnologyParams

__all__ = [
    "StageSim",
    "ClusterUnitSim",
    "ClusterUnitTrace",
    "AcceleratorSim",
    "FrameTrace",
    "SoftErrorModel",
    "SoftErrorReport",
]


@dataclass
class StageSim:
    """One pipeline stage with an issue interval and a result latency.

    ``issue_cycles``: cycles the stage's front-end is occupied per pixel
    (the time-multiplexing factor of its functional units).
    ``latency``: cycles from accepting a pixel to emitting its result.
    """

    name: str
    issue_cycles: int
    latency: int
    #: Next cycle at which the stage can accept a pixel.
    free_at: int = 0
    #: Total cycles the stage's units were busy (for utilization).
    busy_cycles: int = 0

    def accept(self, arrival: int) -> int:
        """Admit a pixel arriving at ``arrival``; returns result time."""
        start = max(arrival, self.free_at)
        self.free_at = start + self.issue_cycles
        self.busy_cycles += self.issue_cycles
        return start + self.latency


@dataclass
class ClusterUnitTrace:
    """Measurements from one ClusterUnitSim run."""

    n_pixels: int
    total_cycles: int
    first_result_cycle: int
    utilization: dict

    @property
    def pixels_per_cycle(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.n_pixels / self.total_cycles


class ClusterUnitSim:
    """Pipeline-reservation simulation of the Cluster Update Unit.

    The microarchitecture is built from the ways configuration exactly as
    Section 6.2 describes it:

    * distance: nine Equation 5 evaluations per pixel issued over
      ``ceil(9/d)`` cycles onto ``d`` calculators (each a 4-deep pipeline);
    * minimum: the 9:1 reduction — a single compare ALU iterating 9 cycles
      at 1-way, or ``ceil(9/m)`` partial rounds plus one tree-combine cycle
      when ``m`` comparators run in parallel;
    * adder: the six sigma-field additions over ``ceil(6/a)`` cycles.

    Back-pressure is modeled by stage occupancy: a pixel stalls at a stage
    whose front-end is still busy with its predecessor.
    """

    def __init__(self, ways: ClusterWays = None, tracer=None):
        if ways is None:
            ways = ClusterWays()
        self.ways = ways
        self.tracer = tracer if tracer is not None else NULL_TRACER
        d_issue = math.ceil(9 / ways.distance)
        m_issue = math.ceil(9 / ways.minimum)
        a_issue = math.ceil(6 / ways.adder)
        self._stage_specs = (
            ("distance", d_issue, d_issue + 3),
            ("minimum", m_issue, m_issue + (1 if ways.minimum > 1 else 0)),
            ("adder", a_issue, a_issue),
        )

    def run(self, n_pixels: int) -> ClusterUnitTrace:
        """Stream ``n_pixels`` through the pipeline; cycle-accurate."""
        if n_pixels < 0:
            raise HardwareModelError(f"n_pixels must be >= 0, got {n_pixels}")
        stages = [StageSim(n, i, l) for n, i, l in self._stage_specs]
        finish = 0
        first = None
        for _ in range(n_pixels):
            t = 0  # pixels enter as fast as stage 0 accepts them
            for stage in stages:
                t = stage.accept(t)
            if first is None:
                first = t
            finish = max(finish, t)
        total = finish
        util = {
            s.name: (s.busy_cycles / total if total else 0.0) for s in stages
        }
        trace = ClusterUnitTrace(
            n_pixels=n_pixels,
            total_cycles=total,
            first_result_cycle=first if first is not None else 0,
            utilization=util,
        )
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "cyclesim.cluster_unit",
                ways=self.ways.label,
                n_pixels=n_pixels,
                total_cycles=total,
                **{f"util_{k}": round(v, 4) for k, v in util.items()},
            )
            tracer.count("cyclesim.cluster_unit.pixels", n_pixels)
            tracer.count("cyclesim.cluster_unit.cycles", total)
        return trace


# ---------------------------------------------------------------------------
# Soft-error model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SoftErrorReport:
    """What seeded scratchpad-read upsets did to one simulated frame.

    ``detected_words`` counts corrupted words an odd number of flips hit
    — the ones per-word parity catches; ``silent_words`` are corrupted
    words parity misses (an even flip count preserves the parity bit),
    plus *every* corrupted word when parity is disabled. Silent words
    are the ones that reach the datapath; their quality cost is measured
    by :func:`repro.resilience.soft_error_quality_delta`.
    """

    bit_error_rate: float
    seed: int
    parity: bool
    bits_read: int
    n_flips: int
    corrupted_words: int
    detected_words: int
    silent_words: int

    @property
    def detection_coverage(self) -> float:
        """Fraction of corrupted words parity caught (1.0 when clean)."""
        if self.corrupted_words == 0:
            return 1.0
        return self.detected_words / self.corrupted_words


@dataclass(frozen=True)
class SoftErrorModel:
    """Seeded Bernoulli bit-flip field over scratchpad reads.

    Each bit read out of a channel scratchpad flips independently with
    probability ``bit_error_rate`` — the standard SEU abstraction. With
    ``parity=True`` every ``word_bits``-wide read carries a parity bit:
    an odd number of flips in a word is *detected*; an even number is a
    *silent* corruption. The model is purely statistical (the analytical
    simulator streams no real pixel data); the seeded sampling makes a
    frame's upset census reproducible, and the same Bernoulli field is
    injected into real pixel data by
    :func:`repro.resilience.flip_bits` to price the silent fraction in
    BR/USE (see ``docs/resilience.md``).
    """

    bit_error_rate: float = 1e-9
    seed: int = 0
    parity: bool = True
    word_bits: int = 32

    def __post_init__(self):
        if not (0.0 <= self.bit_error_rate <= 1.0):
            raise HardwareModelError(
                f"bit_error_rate must be in [0, 1], got {self.bit_error_rate}"
            )
        if self.word_bits < 1:
            raise HardwareModelError(
                f"word_bits must be >= 1, got {self.word_bits}"
            )

    def sample_frame(self, bits_read: int, frame_index: int = 0) -> SoftErrorReport:
        """Sample one frame's upsets over ``bits_read`` scratchpad bits.

        Deterministic in ``(model, bits_read, frame_index)`` — distinct
        frames draw from distinct seeded streams.
        """
        import numpy as np

        if bits_read < 0:
            raise HardwareModelError(f"bits_read must be >= 0, got {bits_read}")
        rng = np.random.default_rng([int(self.seed), int(frame_index)])
        n_flips = int(rng.binomial(int(bits_read), self.bit_error_rate))
        if n_flips > 5_000_000:
            raise HardwareModelError(
                f"{n_flips} sampled flips ({bits_read} bits at BER "
                f"{self.bit_error_rate:g}) is beyond the per-flip model; "
                "use a realistic bit_error_rate (< ~1e-4)"
            )
        if n_flips == 0:
            return SoftErrorReport(
                bit_error_rate=self.bit_error_rate,
                seed=self.seed,
                parity=self.parity,
                bits_read=int(bits_read),
                n_flips=0,
                corrupted_words=0,
                detected_words=0,
                silent_words=0,
            )
        n_words = max(1, int(bits_read) // self.word_bits)
        words = rng.integers(0, n_words, size=n_flips)
        _, per_word = np.unique(words, return_counts=True)
        corrupted = int(per_word.size)
        if self.parity:
            detected = int(np.count_nonzero(per_word % 2 == 1))
        else:
            detected = 0
        return SoftErrorReport(
            bit_error_rate=self.bit_error_rate,
            seed=self.seed,
            parity=self.parity,
            bits_read=int(bits_read),
            n_flips=n_flips,
            corrupted_words=corrupted,
            detected_words=detected,
            silent_words=corrupted - detected,
        )


# ---------------------------------------------------------------------------
# Frame-level simulation
# ---------------------------------------------------------------------------
@dataclass
class FrameTrace:
    """Measurements from one AcceleratorSim frame."""

    total_cycles: float
    color_cycles: float
    compute_cycles: float
    center_cycles: float
    dram_busy_cycles: float
    exposed_stall_cycles: float
    n_tiles: int
    iterations: int
    #: Upset census when the sim ran with a :class:`SoftErrorModel`.
    soft_errors: SoftErrorReport = None

    def total_ms(self, tech: TechnologyParams = TECH_16NM) -> float:
        return tech.cycles_to_ms(self.total_cycles)


class AcceleratorSim:
    """Frame-level discrete simulation of the accelerator.

    Mechanism (per cluster-update iteration):

    * tiles are processed in order. The paper's FSM is *serial*: "tile
      regions are loaded into scratch pad memories [...]. Once loaded, the
      FSM instructs the cluster update unit to begin processing" (Section
      4.3) — fetch, then compute, then the next tile. ``prefetch=True``
      simulates the double-buffered what-if instead (fetch of tile ``i+1``
      overlapping compute of tile ``i``), quantifying what the paper's
      design leaves on the table;
    * one tile fetch issues the fixed per-tile request streams (3 channel
      loads, index load/store, center/sigma exchange — the DRAM model's
      ``bursts_per_tile``) plus ``streamed_bytes / buffer`` refill rounds
      when the tile's streamed data exceeds a channel buffer; each request
      pays the 50-cycle latency, and data moves at 32 B/cycle on the
      shared bus;
    * after the last tile of an iteration the Center Update Unit runs its
      divider-serialized pass (6 divisions per superpixel).

    Color conversion runs once at frame start.
    """

    def __init__(
        self,
        config: AcceleratorConfig = None,
        dram: DramModel = None,
        tech: TechnologyParams = TECH_16NM,
        prefetch: bool = False,
        tracer=None,
        soft_errors: SoftErrorModel = None,
    ):
        self.config = config if config is not None else AcceleratorConfig()
        self.dram = dram if dram is not None else DramModel()
        self.tech = tech
        self.prefetch = prefetch
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cluster = ClusterUnitSim(self.config.ways, tracer=self.tracer)
        self.color = ColorUnitModel(tech=tech)
        self.center = CenterUnitModel(tech=tech)
        if soft_errors is not None and not isinstance(soft_errors, SoftErrorModel):
            raise HardwareModelError(
                f"soft_errors must be a SoftErrorModel, got "
                f"{type(soft_errors).__name__}"
            )
        self.soft_errors = soft_errors
        self._frame_counter = 0

    def _tile_fetch_cycles(self) -> float:
        """DRAM cycles to service one tile's request streams."""
        cfg = self.config
        streamed = self.dram.bytes_per_pixel_per_iteration * cfg.pixels_per_tile
        buffer_bytes = cfg.buffer_kb_per_channel * 1024
        requests = self.dram.bursts_per_tile + streamed / buffer_bytes
        return requests * self.dram.latency_cycles + self.dram.transfer_cycles(streamed)

    def _tile_compute_cycles(self) -> float:
        sched = schedule_cluster_unit(self.config.ways)
        return (
            sched.initiation_interval * self.config.pixels_per_tile
            + sched.latency
        ) / self.config.n_cores

    def run_frame(self) -> FrameTrace:
        cfg = self.config
        tracer = self.tracer
        with tracer.span(
            "cyclesim.frame",
            resolution=str(cfg.resolution),
            n_superpixels=cfg.n_superpixels,
            n_tiles=cfg.n_tiles,
            iterations=cfg.iterations,
            prefetch=self.prefetch,
        ) as frame_span:
            color_cycles = self.color.cycles_for_pixels(cfg.n_pixels) / cfg.n_cores
            # Input frame fetch overlaps color conversion (raster streaming);
            # the conversion rate (1 px/cycle) is below the DRAM rate
            # (32 B/cycle), so color conversion is compute-bound.
            clock = color_cycles

            fetch = self._tile_fetch_cycles()
            compute = self._tile_compute_cycles()
            center = self.center.cycles_for_update(cfg.n_superpixels)
            n_tiles = cfg.n_tiles
            streamed = self.dram.bytes_per_pixel_per_iteration * cfg.pixels_per_tile
            buffer_bytes = cfg.buffer_kb_per_channel * 1024
            # Scratchpad dynamics per tile: one double-buffer fill plus the
            # refill (spill + reload) rounds forced when the streamed tile
            # data exceeds one channel buffer.
            spills_per_tile = max(0, math.ceil(streamed / buffer_bytes) - 1)
            exposed = 0.0
            dram_busy = 0.0
            compute_busy = 0.0
            for it in range(cfg.iterations):
                iter_start = clock
                if self.prefetch:
                    # Double buffering what-if: fetch(i+1) overlaps compute(i).
                    # The first tile's fetch is fully exposed; afterwards each
                    # tile starts at max(its fetch done, previous compute done).
                    fetch_done = clock + fetch
                    dram_busy += fetch
                    compute_done = fetch_done  # tile 0 compute start
                    for _ in range(n_tiles):
                        start = compute_done  # previous tile's compute end
                        if fetch_done > start:
                            exposed += fetch_done - start
                            start = fetch_done
                        compute_done = start + compute
                        compute_busy += compute
                        # The next prefetch begins once this tile's compute
                        # frees the shadow buffer.
                        fetch_done = max(fetch_done, compute_done - compute) + fetch
                        dram_busy += fetch
                    clock = compute_done
                else:
                    # The paper's serial FSM: load, then process, every tile.
                    for _ in range(n_tiles):
                        clock += fetch
                        dram_busy += fetch
                        exposed += fetch
                        clock += compute
                        compute_busy += compute
                clock += center
                if tracer.enabled:
                    tracer.event(
                        "cyclesim.iteration", index=it, cycles=clock - iter_start
                    )
                    tracer.count("cyclesim.fsm.fetch_cycles", n_tiles * fetch)
                    tracer.count("cyclesim.fsm.compute_cycles", n_tiles * compute)
                    tracer.count("cyclesim.fsm.center_cycles", center)
                    tracer.count("cyclesim.scratchpad.fills", n_tiles)
                    tracer.count(
                        "cyclesim.scratchpad.spills", n_tiles * spills_per_tile
                    )
                    tracer.count(
                        "cyclesim.dram.bytes_streamed", n_tiles * streamed
                    )
            soft_report = None
            if self.soft_errors is not None:
                # Every streamed byte is read out of a scratchpad once per
                # iteration — that readout traffic is the upset surface.
                bits_read = int(cfg.iterations * n_tiles * streamed * 8)
                soft_report = self.soft_errors.sample_frame(
                    bits_read, frame_index=self._frame_counter
                )
                self._frame_counter += 1
                if tracer.enabled:
                    tracer.count("cyclesim.soft.bits_read", bits_read)
                    tracer.count("cyclesim.soft.flips", soft_report.n_flips)
                    tracer.count(
                        "cyclesim.soft.detected_words", soft_report.detected_words
                    )
                    tracer.count(
                        "cyclesim.soft.silent_words", soft_report.silent_words
                    )
                    tracer.event(
                        "cyclesim.soft_errors",
                        bit_error_rate=self.soft_errors.bit_error_rate,
                        parity=self.soft_errors.parity,
                        n_flips=soft_report.n_flips,
                        detected=soft_report.detected_words,
                        silent=soft_report.silent_words,
                    )
            trace = FrameTrace(
                total_cycles=clock,
                color_cycles=color_cycles,
                compute_cycles=compute_busy,
                center_cycles=cfg.iterations * center,
                dram_busy_cycles=dram_busy,
                exposed_stall_cycles=exposed,
                n_tiles=n_tiles,
                iterations=cfg.iterations,
                soft_errors=soft_report,
            )
            if tracer.enabled:
                frame_span.set(
                    total_cycles=clock, total_ms=trace.total_ms(self.tech)
                )
                tracer.count("cyclesim.fsm.color_cycles", color_cycles)
                tracer.gauge("cyclesim.dram.busy_cycles", dram_busy)
                tracer.gauge("cyclesim.dram.exposed_stall_cycles", exposed)
                tracer.gauge("cyclesim.scratchpad.buffer_bytes", buffer_bytes)
                tracer.gauge(
                    "cyclesim.dram.bytes_per_frame",
                    cfg.iterations * n_tiles * streamed,
                )
        return trace
