"""Cycle-level simulation of the S-SLIC accelerator datapath.

The analytical model (:mod:`repro.hw.hls`, :mod:`repro.hw.accelerator`)
computes cycle counts from closed-form scheduling rules. This module
*simulates* the same microarchitecture cycle by cycle — pixels flowing
through the three-stage Cluster Update Unit pipeline, tiles streaming
through double-buffered scratchpads fed by a latency/bandwidth-limited DRAM
— so the closed forms can be validated against an independent mechanism
rather than against themselves. It also produces measurements the closed
forms cannot: per-unit utilization and stall attribution.

Two simulators:

* :class:`ClusterUnitSim` — pipeline-reservation simulation of one Cluster
  Update Unit for a given ways configuration. Reproduces Table 3's latency
  and throughput *by construction of the microarchitecture*, not by the
  scheduling formula.
* :class:`AcceleratorSim` — frame-level simulation: the FSM iterates over
  tiles; each tile's channel data is fetched by a DRAM engine (one request
  stream per buffer, 50-cycle latency, 32 B/cycle shared bus) into the idle
  half of a double buffer while the compute half drains through the
  cluster unit; sigma hand-off and the divider-serialized center update
  run at sweep boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import HardwareModelError
from ..obs.tracer import NULL_TRACER
from .components import CenterUnitModel, ColorUnitModel
from .config import AcceleratorConfig
from .dram import DramModel
from .hls import ClusterWays, schedule_cluster_unit
from .tech import TECH_16NM, TechnologyParams

__all__ = ["StageSim", "ClusterUnitSim", "ClusterUnitTrace", "AcceleratorSim", "FrameTrace"]


@dataclass
class StageSim:
    """One pipeline stage with an issue interval and a result latency.

    ``issue_cycles``: cycles the stage's front-end is occupied per pixel
    (the time-multiplexing factor of its functional units).
    ``latency``: cycles from accepting a pixel to emitting its result.
    """

    name: str
    issue_cycles: int
    latency: int
    #: Next cycle at which the stage can accept a pixel.
    free_at: int = 0
    #: Total cycles the stage's units were busy (for utilization).
    busy_cycles: int = 0

    def accept(self, arrival: int) -> int:
        """Admit a pixel arriving at ``arrival``; returns result time."""
        start = max(arrival, self.free_at)
        self.free_at = start + self.issue_cycles
        self.busy_cycles += self.issue_cycles
        return start + self.latency


@dataclass
class ClusterUnitTrace:
    """Measurements from one ClusterUnitSim run."""

    n_pixels: int
    total_cycles: int
    first_result_cycle: int
    utilization: dict

    @property
    def pixels_per_cycle(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.n_pixels / self.total_cycles


class ClusterUnitSim:
    """Pipeline-reservation simulation of the Cluster Update Unit.

    The microarchitecture is built from the ways configuration exactly as
    Section 6.2 describes it:

    * distance: nine Equation 5 evaluations per pixel issued over
      ``ceil(9/d)`` cycles onto ``d`` calculators (each a 4-deep pipeline);
    * minimum: the 9:1 reduction — a single compare ALU iterating 9 cycles
      at 1-way, or ``ceil(9/m)`` partial rounds plus one tree-combine cycle
      when ``m`` comparators run in parallel;
    * adder: the six sigma-field additions over ``ceil(6/a)`` cycles.

    Back-pressure is modeled by stage occupancy: a pixel stalls at a stage
    whose front-end is still busy with its predecessor.
    """

    def __init__(self, ways: ClusterWays = None, tracer=None):
        if ways is None:
            ways = ClusterWays()
        self.ways = ways
        self.tracer = tracer if tracer is not None else NULL_TRACER
        d_issue = math.ceil(9 / ways.distance)
        m_issue = math.ceil(9 / ways.minimum)
        a_issue = math.ceil(6 / ways.adder)
        self._stage_specs = (
            ("distance", d_issue, d_issue + 3),
            ("minimum", m_issue, m_issue + (1 if ways.minimum > 1 else 0)),
            ("adder", a_issue, a_issue),
        )

    def run(self, n_pixels: int) -> ClusterUnitTrace:
        """Stream ``n_pixels`` through the pipeline; cycle-accurate."""
        if n_pixels < 0:
            raise HardwareModelError(f"n_pixels must be >= 0, got {n_pixels}")
        stages = [StageSim(n, i, l) for n, i, l in self._stage_specs]
        finish = 0
        first = None
        for _ in range(n_pixels):
            t = 0  # pixels enter as fast as stage 0 accepts them
            for stage in stages:
                t = stage.accept(t)
            if first is None:
                first = t
            finish = max(finish, t)
        total = finish
        util = {
            s.name: (s.busy_cycles / total if total else 0.0) for s in stages
        }
        trace = ClusterUnitTrace(
            n_pixels=n_pixels,
            total_cycles=total,
            first_result_cycle=first if first is not None else 0,
            utilization=util,
        )
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "cyclesim.cluster_unit",
                ways=self.ways.label,
                n_pixels=n_pixels,
                total_cycles=total,
                **{f"util_{k}": round(v, 4) for k, v in util.items()},
            )
            tracer.count("cyclesim.cluster_unit.pixels", n_pixels)
            tracer.count("cyclesim.cluster_unit.cycles", total)
        return trace


# ---------------------------------------------------------------------------
# Frame-level simulation
# ---------------------------------------------------------------------------
@dataclass
class FrameTrace:
    """Measurements from one AcceleratorSim frame."""

    total_cycles: float
    color_cycles: float
    compute_cycles: float
    center_cycles: float
    dram_busy_cycles: float
    exposed_stall_cycles: float
    n_tiles: int
    iterations: int

    def total_ms(self, tech: TechnologyParams = TECH_16NM) -> float:
        return tech.cycles_to_ms(self.total_cycles)


class AcceleratorSim:
    """Frame-level discrete simulation of the accelerator.

    Mechanism (per cluster-update iteration):

    * tiles are processed in order. The paper's FSM is *serial*: "tile
      regions are loaded into scratch pad memories [...]. Once loaded, the
      FSM instructs the cluster update unit to begin processing" (Section
      4.3) — fetch, then compute, then the next tile. ``prefetch=True``
      simulates the double-buffered what-if instead (fetch of tile ``i+1``
      overlapping compute of tile ``i``), quantifying what the paper's
      design leaves on the table;
    * one tile fetch issues the fixed per-tile request streams (3 channel
      loads, index load/store, center/sigma exchange — the DRAM model's
      ``bursts_per_tile``) plus ``streamed_bytes / buffer`` refill rounds
      when the tile's streamed data exceeds a channel buffer; each request
      pays the 50-cycle latency, and data moves at 32 B/cycle on the
      shared bus;
    * after the last tile of an iteration the Center Update Unit runs its
      divider-serialized pass (6 divisions per superpixel).

    Color conversion runs once at frame start.
    """

    def __init__(
        self,
        config: AcceleratorConfig = None,
        dram: DramModel = None,
        tech: TechnologyParams = TECH_16NM,
        prefetch: bool = False,
        tracer=None,
    ):
        self.config = config if config is not None else AcceleratorConfig()
        self.dram = dram if dram is not None else DramModel()
        self.tech = tech
        self.prefetch = prefetch
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cluster = ClusterUnitSim(self.config.ways, tracer=self.tracer)
        self.color = ColorUnitModel(tech=tech)
        self.center = CenterUnitModel(tech=tech)

    def _tile_fetch_cycles(self) -> float:
        """DRAM cycles to service one tile's request streams."""
        cfg = self.config
        streamed = self.dram.bytes_per_pixel_per_iteration * cfg.pixels_per_tile
        buffer_bytes = cfg.buffer_kb_per_channel * 1024
        requests = self.dram.bursts_per_tile + streamed / buffer_bytes
        return requests * self.dram.latency_cycles + self.dram.transfer_cycles(streamed)

    def _tile_compute_cycles(self) -> float:
        sched = schedule_cluster_unit(self.config.ways)
        return (
            sched.initiation_interval * self.config.pixels_per_tile
            + sched.latency
        ) / self.config.n_cores

    def run_frame(self) -> FrameTrace:
        cfg = self.config
        tracer = self.tracer
        with tracer.span(
            "cyclesim.frame",
            resolution=str(cfg.resolution),
            n_superpixels=cfg.n_superpixels,
            n_tiles=cfg.n_tiles,
            iterations=cfg.iterations,
            prefetch=self.prefetch,
        ) as frame_span:
            color_cycles = self.color.cycles_for_pixels(cfg.n_pixels) / cfg.n_cores
            # Input frame fetch overlaps color conversion (raster streaming);
            # the conversion rate (1 px/cycle) is below the DRAM rate
            # (32 B/cycle), so color conversion is compute-bound.
            clock = color_cycles

            fetch = self._tile_fetch_cycles()
            compute = self._tile_compute_cycles()
            center = self.center.cycles_for_update(cfg.n_superpixels)
            n_tiles = cfg.n_tiles
            streamed = self.dram.bytes_per_pixel_per_iteration * cfg.pixels_per_tile
            buffer_bytes = cfg.buffer_kb_per_channel * 1024
            # Scratchpad dynamics per tile: one double-buffer fill plus the
            # refill (spill + reload) rounds forced when the streamed tile
            # data exceeds one channel buffer.
            spills_per_tile = max(0, math.ceil(streamed / buffer_bytes) - 1)
            exposed = 0.0
            dram_busy = 0.0
            compute_busy = 0.0
            for it in range(cfg.iterations):
                iter_start = clock
                if self.prefetch:
                    # Double buffering what-if: fetch(i+1) overlaps compute(i).
                    # The first tile's fetch is fully exposed; afterwards each
                    # tile starts at max(its fetch done, previous compute done).
                    fetch_done = clock + fetch
                    dram_busy += fetch
                    compute_done = fetch_done  # tile 0 compute start
                    for _ in range(n_tiles):
                        start = compute_done  # previous tile's compute end
                        if fetch_done > start:
                            exposed += fetch_done - start
                            start = fetch_done
                        compute_done = start + compute
                        compute_busy += compute
                        # The next prefetch begins once this tile's compute
                        # frees the shadow buffer.
                        fetch_done = max(fetch_done, compute_done - compute) + fetch
                        dram_busy += fetch
                    clock = compute_done
                else:
                    # The paper's serial FSM: load, then process, every tile.
                    for _ in range(n_tiles):
                        clock += fetch
                        dram_busy += fetch
                        exposed += fetch
                        clock += compute
                        compute_busy += compute
                clock += center
                if tracer.enabled:
                    tracer.event(
                        "cyclesim.iteration", index=it, cycles=clock - iter_start
                    )
                    tracer.count("cyclesim.fsm.fetch_cycles", n_tiles * fetch)
                    tracer.count("cyclesim.fsm.compute_cycles", n_tiles * compute)
                    tracer.count("cyclesim.fsm.center_cycles", center)
                    tracer.count("cyclesim.scratchpad.fills", n_tiles)
                    tracer.count(
                        "cyclesim.scratchpad.spills", n_tiles * spills_per_tile
                    )
                    tracer.count(
                        "cyclesim.dram.bytes_streamed", n_tiles * streamed
                    )
            trace = FrameTrace(
                total_cycles=clock,
                color_cycles=color_cycles,
                compute_cycles=compute_busy,
                center_cycles=cfg.iterations * center,
                dram_busy_cycles=dram_busy,
                exposed_stall_cycles=exposed,
                n_tiles=n_tiles,
                iterations=cfg.iterations,
            )
            if tracer.enabled:
                frame_span.set(
                    total_cycles=clock, total_ms=trace.total_ms(self.tech)
                )
                tracer.count("cyclesim.fsm.color_cycles", color_cycles)
                tracer.gauge("cyclesim.dram.busy_cycles", dram_busy)
                tracer.gauge("cyclesim.dram.exposed_stall_cycles", exposed)
                tracer.gauge("cyclesim.scratchpad.buffer_bytes", buffer_bytes)
                tracer.gauge(
                    "cyclesim.dram.bytes_per_frame",
                    cfg.iterations * n_tiles * streamed,
                )
        return trace
