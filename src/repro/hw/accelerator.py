"""The full S-SLIC accelerator model: performance, power, area per config.

Composes the unit cost models (cluster update, color conversion, center
update, scratchpads, DRAM) into frame-level numbers:

* latency = color conversion + cluster-update compute + center updates +
  DRAM transfer + exposed DRAM stalls (Section 7's decomposition);
* energy = per-unit dynamic energies + an always-on baseline (FSM, clock
  tree, scratchpad and memory-interface idle power — the paper assumes
  "the external memory and scratch pads are at full utilization");
* area = logic units + SRAM macros (Table 4's rows).

The model also runs *functionally*: :meth:`AcceleratorModel.simulate`
executes the bit-accurate S-SLIC pipeline (LUT color conversion + quantized
distances) on a real image and returns the segmentation together with the
performance report for that frame size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import SlicParams, sslic
from ..core.distance import FixedDatapath
from ..errors import HardwareModelError
from ..obs.tracer import NULL_TRACER
from .cluster_unit import ClusterUnitModel
from .components import FSM_AREA_MM2, CenterUnitModel, ColorUnitModel, ScratchpadModel
from .config import AcceleratorConfig
from .dram import DramModel
from .tech import TECH_16NM, TechnologyParams

__all__ = ["LatencyBreakdown", "AcceleratorReport", "AcceleratorModel"]

#: Always-on power (mW): FSM + clock distribution + scratchpad and memory
#: interface at full utilization. Calibrated against Table 4's 1080p row.
ALWAYS_ON_POWER_MW = 36.3

#: Register files and LUT ROMs beyond the scratchpads (kB), for the
#: Table 5 "on-chip memory" row (paper: 20 kB total with 16 kB scratch).
EXTRA_ON_CHIP_KB = 4.0


@dataclass(frozen=True)
class LatencyBreakdown:
    """Frame latency components, in milliseconds."""

    color_conversion_ms: float
    cluster_compute_ms: float
    center_update_ms: float
    memory_transfer_ms: float
    memory_stall_ms: float

    @property
    def cluster_update_ms(self) -> float:
        """Everything after color conversion (the paper's "cluster update"
        bucket: compute + center updates + memory)."""
        return (
            self.cluster_compute_ms
            + self.center_update_ms
            + self.memory_transfer_ms
            + self.memory_stall_ms
        )

    @property
    def compute_ms(self) -> float:
        """Section 7's "computation" share of cluster update."""
        return self.cluster_compute_ms + self.center_update_ms

    @property
    def memory_ms(self) -> float:
        """Section 7's "memory accesses" share."""
        return self.memory_transfer_ms + self.memory_stall_ms

    @property
    def total_ms(self) -> float:
        return self.color_conversion_ms + self.cluster_update_ms


@dataclass(frozen=True)
class AcceleratorReport:
    """A Table 4 column for one configuration."""

    config: AcceleratorConfig
    latency: LatencyBreakdown
    area_mm2: float
    area_breakdown: dict
    power_mw: float
    energy_per_frame_mj: float
    on_chip_kb: float

    @property
    def latency_ms(self) -> float:
        return self.latency.total_ms

    @property
    def fps(self) -> float:
        return 1000.0 / self.latency.total_ms

    @property
    def real_time(self) -> bool:
        """Meets the 30 fps target."""
        return self.fps >= 30.0

    @property
    def perf_per_area_fps_mm2(self) -> float:
        return self.fps / self.area_mm2


class AcceleratorModel:
    """Analytical + functional model of the S-SLIC accelerator.

    Parameters
    ----------
    config:
        The design point.
    tech:
        Technology parameters (default: the paper's 16 nm / 1.6 GHz).
    dram:
        External memory model.
    always_on_power_mw:
        Baseline power consumed for the whole frame time.
    tracer:
        Optional :class:`repro.obs.Tracer`; :meth:`report` and
        :meth:`simulate` emit spans and design-point gauges into it.
    """

    def __init__(
        self,
        config: AcceleratorConfig = None,
        tech: TechnologyParams = TECH_16NM,
        dram: DramModel = None,
        always_on_power_mw: float = ALWAYS_ON_POWER_MW,
        tracer=None,
    ):
        self.config = config if config is not None else AcceleratorConfig()
        self.tech = tech
        self.dram = dram if dram is not None else DramModel()
        self.always_on_power_mw = always_on_power_mw
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cluster = ClusterUnitModel(self.config.ways, self.config.bits, tech)
        self.color_unit = ColorUnitModel(tech=tech)
        self.center_unit = CenterUnitModel(tech=tech)
        self.scratchpads = ScratchpadModel(
            tech=tech, buffer_kb_per_channel=self.config.buffer_kb_per_channel
        )

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------
    def latency_breakdown(self) -> LatencyBreakdown:
        cfg = self.config
        n = cfg.n_pixels
        cores = cfg.n_cores
        color_cycles = self.color_unit.cycles_for_pixels(n) / cores
        cluster_cycles = cfg.iterations * self.cluster.cycles_for_pixels(n) / cores
        center_cycles = cfg.iterations * self.center_unit.cycles_for_update(
            cfg.n_superpixels
        )
        traffic = self.dram.frame_traffic(n, cfg.iterations)
        transfer_cycles = self.dram.transfer_cycles(traffic.total_bytes)
        stall_cycles = self.dram.stall_cycles(
            n_tiles=cfg.n_tiles,
            iterations=cfg.iterations,
            streamed_bytes_per_tile=self.dram.bytes_per_pixel_per_iteration
            * cfg.pixels_per_tile,
            buffer_bytes=self.scratchpads.buffer_bytes,
        )
        to_ms = self.tech.cycles_to_ms
        return LatencyBreakdown(
            color_conversion_ms=to_ms(color_cycles),
            cluster_compute_ms=to_ms(cluster_cycles),
            center_update_ms=to_ms(center_cycles),
            memory_transfer_ms=to_ms(transfer_cycles),
            memory_stall_ms=to_ms(stall_cycles),
        )

    # ------------------------------------------------------------------
    # Area
    # ------------------------------------------------------------------
    def area_breakdown(self) -> dict:
        return {
            "cluster_update": self.cluster.area_mm2() * self.config.n_cores,
            "color_conversion": self.color_unit.area_mm2,
            "center_update": self.center_unit.area_mm2,
            "fsm": FSM_AREA_MM2,
            "scratchpads": self.scratchpads.area_mm2(),
        }

    def area_mm2(self) -> float:
        return float(sum(self.area_breakdown().values()))

    # ------------------------------------------------------------------
    # Energy / power
    # ------------------------------------------------------------------
    def energy_breakdown_uj(self, latency_ms: float | None = None) -> dict:
        cfg = self.config
        if latency_ms is None:
            latency_ms = self.latency_breakdown().total_ms
        n = cfg.n_pixels
        cluster_uj = n * cfg.iterations * self.cluster.energy_per_pixel_pj() * 1e-6
        color_uj = self.color_unit.energy_uj(n)
        center_uj = self.center_unit.energy_uj(cfg.n_superpixels, cfg.iterations)
        # Scratchpad traffic: Lab reads for every candidate evaluation are
        # register-fed; the pads see ~6 B per pixel per iteration (3 Lab
        # reads, index read/write, write-back of converted Lab amortized).
        sram_uj = self.scratchpads.energy_uj(6.0 * n * cfg.iterations)
        always_on_uj = self.always_on_power_mw * latency_ms  # mW * ms = uJ
        return {
            "cluster_update": cluster_uj,
            "color_conversion": color_uj,
            "center_update": center_uj,
            "scratchpads": sram_uj,
            "always_on": always_on_uj,
        }

    # ------------------------------------------------------------------
    def report(self) -> AcceleratorReport:
        """Produce the Table 4 column for this configuration."""
        tracer = self.tracer
        with tracer.span(
            "accelerator.report",
            resolution=str(self.config.resolution),
            n_superpixels=self.config.n_superpixels,
            ways=self.config.ways.label,
            buffer_kb=self.config.buffer_kb_per_channel,
            bits=self.config.bits,
        ):
            latency = self.latency_breakdown()
            energy_uj = sum(self.energy_breakdown_uj(latency.total_ms).values())
            energy_mj = energy_uj * 1e-3
            power_mw = energy_mj / latency.total_ms * 1e3  # mJ/ms = W; *1e3 -> mW
            report = AcceleratorReport(
                config=self.config,
                latency=latency,
                area_mm2=self.area_mm2(),
                area_breakdown=self.area_breakdown(),
                power_mw=power_mw,
                energy_per_frame_mj=energy_mj,
                on_chip_kb=self.scratchpads.total_kb + EXTRA_ON_CHIP_KB,
            )
            if tracer.enabled:
                tracer.gauge("accelerator.latency_ms", report.latency_ms)
                tracer.gauge("accelerator.fps", report.fps)
                tracer.gauge("accelerator.power_mw", report.power_mw)
                tracer.gauge("accelerator.area_mm2", report.area_mm2)
                tracer.gauge(
                    "accelerator.energy_per_frame_mj", report.energy_per_frame_mj
                )
                tracer.gauge(
                    "accelerator.memory_stall_ms", latency.memory_stall_ms
                )
        return report

    # ------------------------------------------------------------------
    # Functional simulation
    # ------------------------------------------------------------------
    def simulate(self, image, n_superpixels: int | None = None, **overrides):
        """Run the bit-accurate S-SLIC pipeline on ``image``.

        Uses the LUT color conversion and the quantized distance datapath
        at this configuration's bit width and subsample ratio. Returns
        ``(SegmentationResult, AcceleratorReport)`` where the report is
        computed for the *image's* resolution and the requested superpixel
        count (so small test frames get commensurate estimates).
        """
        h, w = image.shape[:2]
        if n_superpixels is None:
            # Keep the configured pixels-per-superpixel density.
            n_superpixels = max(1, round(h * w / self.config.pixels_per_tile))
        params = SlicParams(
            n_superpixels=n_superpixels,
            max_iterations=self.config.iterations,
            subsample_ratio=self.config.subsample_ratio,
            datapath=FixedDatapath(bits=self.config.bits),
            convergence_threshold=0.0,
        )
        if overrides:
            params = params.with_(**overrides)
        with self.tracer.span(
            "accelerator.simulate", height=h, width=w, n_superpixels=n_superpixels
        ):
            result = sslic(image, params, tracer=self.tracer)
            from ..types import Resolution  # local import avoids cycle at module load

            frame_cfg = self.config.with_(
                resolution=Resolution(w, h), n_superpixels=n_superpixels
            )
            report = AcceleratorModel(
                frame_cfg, self.tech, self.dram, self.always_on_power_mw,
                tracer=self.tracer,
            ).report()
        return result, report


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise HardwareModelError(f"{name} must be positive, got {value}")
