"""CPA-vs-PPA analysis — Table 2 and the Section 4.2 architecture decision.

The two candidate iteration orders differ in how much DRAM data and how
much arithmetic one cluster-update iteration needs:

* **CPA** reads a (2S)x(2S) patch per superpixel. Adjacent patches overlap
  by 2S x S, so every pixel is visited ``(2S)^2 / S^2 ~= 4`` times per
  iteration, and the software baseline keeps float32 state: the 5-D pixel
  record (20 B), a read-modify-write of the minimum-distance buffer (8 B)
  and of the index buffer (8 B) per visit, plus a per-iteration
  re-initialization of the distance buffer.
* **PPA** visits each pixel once but evaluates 9 candidate distances; a
  software PPA with uncached centers re-reads nine 5-byte center records
  per pixel on top of the 3-byte Lab pixel.

With a 1080p frame these assumptions give 318 vs 100 MB per iteration and
58 vs 130 M compound operations — Table 2's published values (one compound
operation = one fused difference-square-accumulate step; Equation 5 takes 7
of them: five for the 5-D accumulation, one weight multiply, one combine).

The Section 4.2 energy model then prices an operation as an 8-bit add and a
DRAM byte as 2500 adds, making total energy DRAM-dominated and selecting
the lower-bandwidth PPA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import HardwareModelError
from .tech import TECH_16NM, TechnologyParams

__all__ = [
    "ArchitectureProfile",
    "cpa_profile",
    "ppa_profile",
    "compare_architectures",
    "OPS_PER_DISTANCE",
]

#: Compound (fused multiply-accumulate class) operations per Equation 5
#: evaluation: 5 difference-square-accumulates + weight multiply + combine.
OPS_PER_DISTANCE = 7


@dataclass(frozen=True)
class ArchitectureProfile:
    """Per-iteration cost profile of one architecture (a Table 2 column)."""

    name: str
    memory_bytes_per_iteration: float
    ops_per_iteration: float

    @property
    def memory_mb_per_iteration(self) -> float:
        return self.memory_bytes_per_iteration / 1e6

    def energy_per_iteration_pj(self, tech: TechnologyParams = TECH_16NM) -> float:
        """Section 4.2's simple model: ops at 8-bit-add cost plus DRAM
        bytes at 2500x that cost."""
        return (
            self.ops_per_iteration * tech.e_add8
            + self.memory_bytes_per_iteration * tech.e_dram_byte
        )


def _grid_interval(n_pixels: int, n_superpixels: int) -> float:
    if n_pixels < 1 or n_superpixels < 1:
        raise HardwareModelError("n_pixels and n_superpixels must be >= 1")
    if n_superpixels > n_pixels:
        raise HardwareModelError("more superpixels than pixels")
    return float(np.sqrt(n_pixels / n_superpixels))


def cpa_profile(n_pixels: int = 1920 * 1080, n_superpixels: int = 5000) -> ArchitectureProfile:
    """CPA per-iteration traffic and op count (Table 2, left column)."""
    s = _grid_interval(n_pixels, n_superpixels)
    patch_side = int(2 * s) + 1
    visits = n_superpixels * patch_side ** 2
    # Float software state: 5-D float32 pixel record read per visit, plus
    # read-modify-write of the float32 min-distance and int32 index buffers.
    bytes_per_visit = 5 * 4 + (4 + 4) + (4 + 4)
    # Per-iteration distance-buffer re-initialization (one float32 store/px).
    init_bytes = 4.0 * n_pixels
    return ArchitectureProfile(
        name="CPA",
        memory_bytes_per_iteration=visits * bytes_per_visit + init_bytes,
        ops_per_iteration=visits * OPS_PER_DISTANCE,
    )


def ppa_profile(
    n_pixels: int = 1920 * 1080,
    n_superpixels: int = 5000,
    centers_cached: bool = False,
) -> ArchitectureProfile:
    """PPA per-iteration traffic and op count (Table 2, right column).

    ``centers_cached=False`` models the software PPA of Table 2 (nine
    5-byte center records fetched per pixel). The accelerator keeps the
    nine centers in registers for a whole tile (``centers_cached=True``),
    which is where its additional bandwidth saving over the software PPA
    comes from.
    """
    _grid_interval(n_pixels, n_superpixels)  # validates the pair
    center_bytes = 0.0 if centers_cached else 9 * 5
    # 3 B Lab pixel per visit, one visit per pixel; index write-back is
    # buffered in the label scratchpad (counted in the accelerator model).
    bytes_per_pixel = 3 + center_bytes
    return ArchitectureProfile(
        name="PPA",
        memory_bytes_per_iteration=bytes_per_pixel * n_pixels,
        ops_per_iteration=9 * OPS_PER_DISTANCE * n_pixels,
    )


def compare_architectures(
    n_pixels: int = 1920 * 1080,
    n_superpixels: int = 5000,
    tech: TechnologyParams = TECH_16NM,
) -> dict:
    """The full Section 4.2 comparison: Table 2 plus the energy verdict.

    Returns a dict with both profiles, the bandwidth and op-count ratios,
    per-iteration energies under the simple model, and the selected
    architecture (the paper picks PPA because DRAM energy dominates).
    """
    cpa = cpa_profile(n_pixels, n_superpixels)
    ppa = ppa_profile(n_pixels, n_superpixels)
    e_cpa = cpa.energy_per_iteration_pj(tech)
    e_ppa = ppa.energy_per_iteration_pj(tech)
    return {
        "cpa": cpa,
        "ppa": ppa,
        "bandwidth_ratio_cpa_over_ppa": cpa.memory_bytes_per_iteration
        / ppa.memory_bytes_per_iteration,
        "ops_ratio_ppa_over_cpa": ppa.ops_per_iteration / cpa.ops_per_iteration,
        "energy_cpa_pj": e_cpa,
        "energy_ppa_pj": e_ppa,
        "selected": "PPA" if e_ppa < e_cpa else "CPA",
    }
