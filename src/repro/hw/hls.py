"""The HLS scheduling model: loop-unrolling ways -> latency and throughput.

The paper's Cluster Update Unit has three function stages (Section 6.2):

* **distance** — nine Equation 5 evaluations per pixel. 1-way hardware
  time-multiplexes one calculator over the nine; 9-way instantiates nine.
* **minimum** — the 9:1 minimum. 1-way iterates a single compare ALU;
  9-way builds a comparison tree.
* **adder** — the six sigma-register additions (3 color + 2 location +
  1 count). 1-way serializes; 6-way is fully parallel.

"Loop unrolling directives are used to control the choice of mapping each
function to either iterative time-multiplexed or parallel fully-pipelined
hardware" — this module is the analytical stand-in for what Catapult's
scheduler produces from those directives. The stage-latency constants below
reproduce Table 3's five published configurations exactly:

=============  ==========  ==========
configuration  latency     throughput
=============  ==========  ==========
1-1-1          27 cycles   1/9 px/cyc
9-1-1          19          1/9
1-9-1          20          1/9
1-1-6          22          1/9
9-9-6           7          1
=============  ==========  ==========

Latency decomposes as distance + minimum + adder stage latencies:
iterative stages take (trip count + pipeline fill) cycles — 9+3 = 12 for
distance (a 4-deep calculator pipeline), 9 for minimum (single-cycle
compare), 6 for the adder — while the parallel implementations take 4
(one pipelined calculator traversal), 2 (two tree levels of wide
comparators), and 1 cycle. The initiation interval is the largest per-stage
trip count: any iterative stage forces one pixel per 9 (or 6) cycles, and
the fully parallel 9-9-6 sustains one pixel per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareModelError

__all__ = ["ClusterWays", "StageSchedule", "schedule_cluster_unit", "TABLE3_WAYS"]

#: Pipeline depth of one distance calculator (sub, square, accumulate, scale).
_DIST_PIPE_FILL = 3

#: Trip counts of the three function loops.
_DIST_TRIPS = 9
_MIN_TRIPS = 9
_ADD_TRIPS = 6


@dataclass(frozen=True)
class ClusterWays:
    """Unroll factors of the three Cluster Update Unit functions.

    The paper evaluates the corner cases (1 or full unroll per stage);
    intermediate divisors of the trip count are also legal and schedule
    proportionally — useful for the extended DSE.
    """

    distance: int = 9
    minimum: int = 9
    adder: int = 6

    def __post_init__(self) -> None:
        if self.distance not in (1, 3, 9):
            raise HardwareModelError(
                f"distance ways must divide 9 (1, 3, 9), got {self.distance}"
            )
        if self.minimum not in (1, 3, 9):
            raise HardwareModelError(
                f"minimum ways must divide 9 (1, 3, 9), got {self.minimum}"
            )
        if self.adder not in (1, 2, 3, 6):
            raise HardwareModelError(
                f"adder ways must divide 6 (1, 2, 3, 6), got {self.adder}"
            )

    @property
    def label(self) -> str:
        """Paper-style name, e.g. ``"9-9-6 way"``."""
        return f"{self.distance}-{self.minimum}-{self.adder} way"


@dataclass(frozen=True)
class StageSchedule:
    """The scheduler's verdict for one ways configuration."""

    ways: ClusterWays
    distance_latency: int
    minimum_latency: int
    adder_latency: int
    initiation_interval: int

    @property
    def latency(self) -> int:
        """Pixel latency through the unit, in cycles (Table 3's row)."""
        return self.distance_latency + self.minimum_latency + self.adder_latency

    @property
    def throughput_pixels_per_cycle(self) -> float:
        """Sustained pixels per cycle (1/II)."""
        return 1.0 / self.initiation_interval


def schedule_cluster_unit(ways: ClusterWays) -> StageSchedule:
    """Schedule the Cluster Update Unit for the given unroll factors.

    Stage latency model (matching Table 3 — see module docstring):

    * distance: ``ceil(9/d)`` issues plus the calculator pipeline fill;
    * minimum: ``ceil(9/m)`` iterations, plus one tree-reduce cycle when
      multiple comparators run in parallel;
    * adder: ``ceil(6/a)`` cycles.

    The initiation interval is the largest stage trip count — an iterative
    stage must finish all its trips before accepting the next pixel.
    """
    d_trips = -(-_DIST_TRIPS // ways.distance)  # ceil division
    m_trips = -(-_MIN_TRIPS // ways.minimum)
    a_trips = -(-_ADD_TRIPS // ways.adder)
    distance_latency = d_trips + _DIST_PIPE_FILL
    minimum_latency = m_trips + (1 if ways.minimum > 1 else 0)
    adder_latency = a_trips
    ii = max(d_trips, m_trips, a_trips)
    return StageSchedule(
        ways=ways,
        distance_latency=distance_latency,
        minimum_latency=minimum_latency,
        adder_latency=adder_latency,
        initiation_interval=ii,
    )


#: The five configurations of Table 3, in the paper's column order.
TABLE3_WAYS = (
    ClusterWays(1, 1, 1),
    ClusterWays(9, 1, 1),
    ClusterWays(1, 9, 1),
    ClusterWays(1, 1, 6),
    ClusterWays(9, 9, 6),
)
