"""Accelerator substrate: HLS scheduling, unit cost models, full-system
performance/power/area reports, and the CPA/PPA traffic analysis.

The headline entry point is :class:`AcceleratorModel`:

>>> from repro.hw import AcceleratorModel, AcceleratorConfig
>>> report = AcceleratorModel(AcceleratorConfig()).report()
>>> report.real_time
True
"""

from .tech import TECH_16NM, TECH_28NM, TechnologyParams, process_normalization_factor
from .hls import TABLE3_WAYS, ClusterWays, StageSchedule, schedule_cluster_unit
from .cluster_unit import ClusterUnitModel, ClusterUnitReport
from .components import CenterUnitModel, ColorUnitModel, FSM_AREA_MM2, ScratchpadModel
from .dram import DramModel, FrameTraffic
from .traffic import (
    OPS_PER_DISTANCE,
    ArchitectureProfile,
    compare_architectures,
    cpa_profile,
    ppa_profile,
)
from .config import AcceleratorConfig
from .accelerator import (
    ALWAYS_ON_POWER_MW,
    AcceleratorModel,
    AcceleratorReport,
    LatencyBreakdown,
)
from .cyclesim import (
    AcceleratorSim,
    ClusterUnitSim,
    ClusterUnitTrace,
    FrameTrace,
    SoftErrorModel,
    SoftErrorReport,
)
from .power_trace import PowerSegment, PowerTrace, frame_power_trace
from .dvfs import OperatingPoint, min_real_time_point, report_at, scaled_tech
from .presets import (
    PAPER_FIG6_BUFFERS_KB,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    REAL_TIME_MS,
    table4_configs,
)

__all__ = [
    "TechnologyParams",
    "TECH_16NM",
    "TECH_28NM",
    "process_normalization_factor",
    "ClusterWays",
    "StageSchedule",
    "schedule_cluster_unit",
    "TABLE3_WAYS",
    "ClusterUnitModel",
    "ClusterUnitReport",
    "ColorUnitModel",
    "CenterUnitModel",
    "ScratchpadModel",
    "FSM_AREA_MM2",
    "DramModel",
    "FrameTraffic",
    "ArchitectureProfile",
    "cpa_profile",
    "ppa_profile",
    "compare_architectures",
    "OPS_PER_DISTANCE",
    "AcceleratorConfig",
    "AcceleratorModel",
    "AcceleratorReport",
    "LatencyBreakdown",
    "ALWAYS_ON_POWER_MW",
    "AcceleratorSim",
    "ClusterUnitSim",
    "ClusterUnitTrace",
    "FrameTrace",
    "SoftErrorModel",
    "SoftErrorReport",
    "PowerSegment",
    "PowerTrace",
    "frame_power_trace",
    "OperatingPoint",
    "scaled_tech",
    "report_at",
    "min_real_time_point",
    "table4_configs",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_FIG6_BUFFERS_KB",
    "REAL_TIME_MS",
]
