"""Shared types and validation helpers used across the repro package.

The library passes images around as plain numpy arrays rather than a custom
image class; these helpers centralize the shape/dtype contracts so every
entry point validates inputs the same way.

Conventions
-----------
* RGB images are ``(H, W, 3)`` arrays, either ``uint8`` in [0, 255] or
  floating point in [0, 1].
* Lab images are ``(H, W, 3)`` float arrays in the CIELAB range
  (L in [0, 100], a/b roughly in [-128, 127]).
* Label maps are ``(H, W)`` integer arrays; labels are superpixel indices in
  ``[0, K)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ImageError

__all__ = [
    "Resolution",
    "HD_1080",
    "HD_720",
    "VGA",
    "as_float_rgb",
    "as_uint8_rgb",
    "validate_rgb_image",
    "validate_label_map",
]


@dataclass(frozen=True)
class Resolution:
    """An image resolution, ``width`` x ``height`` in pixels.

    The paper evaluates three: 1920x1080 (HD), 1280x768, and 640x480 (VGA).
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ImageError(
                f"resolution must be positive, got {self.width}x{self.height}"
            )

    @property
    def pixels(self) -> int:
        """Total number of pixels N = width * height."""
        return self.width * self.height

    @property
    def shape(self) -> tuple:
        """Numpy array shape ``(height, width)``."""
        return (self.height, self.width)

    def __str__(self) -> str:
        return f"{self.width}x{self.height}"


#: The three resolutions evaluated in Table 4 of the paper.
HD_1080 = Resolution(1920, 1080)
HD_720 = Resolution(1280, 768)
VGA = Resolution(640, 480)


def validate_rgb_image(image: np.ndarray) -> np.ndarray:
    """Check that ``image`` is a valid RGB image and return it unchanged.

    Raises :class:`ImageError` if the array is not ``(H, W, 3)`` with a
    supported dtype, or if float values fall outside [0, 1].
    """
    arr = np.asarray(image)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ImageError(f"expected (H, W, 3) RGB image, got shape {arr.shape}")
    if arr.shape[0] < 1 or arr.shape[1] < 1:
        raise ImageError(f"image has empty spatial dimensions: {arr.shape}")
    if arr.dtype == np.uint8:
        return arr
    if np.issubdtype(arr.dtype, np.floating):
        if arr.size and not np.isfinite(arr).all():
            # NaN/Inf sails through min/max range checks (comparisons
            # with NaN are False) and detonates deep in the engine;
            # reject it here with a clear message instead.
            raise ImageError(
                "float RGB image contains non-finite values (NaN/Inf)"
            )
        # Tolerate tiny numeric spill from prior processing.
        if arr.size and (arr.min() < -1e-6 or arr.max() > 1.0 + 1e-6):
            raise ImageError(
                "float RGB image must be in [0, 1]; got range "
                f"[{arr.min():.4f}, {arr.max():.4f}]"
            )
        return arr
    raise ImageError(f"unsupported RGB dtype {arr.dtype}; use uint8 or float")


def as_float_rgb(image: np.ndarray) -> np.ndarray:
    """Return ``image`` as float64 RGB in [0, 1], validating on the way."""
    arr = validate_rgb_image(image)
    if arr.dtype == np.uint8:
        return arr.astype(np.float64) / 255.0
    return np.clip(arr.astype(np.float64), 0.0, 1.0)


def as_uint8_rgb(image: np.ndarray) -> np.ndarray:
    """Return ``image`` as uint8 RGB in [0, 255], validating on the way."""
    arr = validate_rgb_image(image)
    if arr.dtype == np.uint8:
        return arr
    return np.clip(np.rint(arr * 255.0), 0, 255).astype(np.uint8)


def validate_label_map(labels: np.ndarray, n_labels: int | None = None) -> np.ndarray:
    """Check that ``labels`` is a valid (H, W) integer label map.

    If ``n_labels`` is given, also check every label is in ``[0, n_labels)``.
    Returns the array unchanged.
    """
    arr = np.asarray(labels)
    if arr.ndim != 2:
        raise ImageError(f"expected (H, W) label map, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise ImageError(f"label map must be integer typed, got {arr.dtype}")
    if arr.size == 0:
        raise ImageError("label map is empty")
    if arr.min() < 0:
        raise ImageError(f"label map contains negative label {arr.min()}")
    if n_labels is not None and arr.max() >= n_labels:
        raise ImageError(
            f"label map contains label {arr.max()} >= n_labels {n_labels}"
        )
    return arr
