"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base type. Each subclass corresponds to one subsystem and
carries a human-readable message describing what was violated and, where
useful, the offending value.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A parameter object (algorithm or hardware config) is invalid.

    Raised during validation, before any computation starts, so the caller
    sees the bad parameter rather than a downstream numpy failure.
    """


class ImageError(ReproError):
    """An input image has the wrong dtype, shape, or value range."""


class FixedPointError(ReproError):
    """A fixed-point format or operation is ill-specified."""


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class MetricError(ReproError):
    """A segmentation-quality metric received inconsistent inputs."""


class HardwareModelError(ReproError):
    """An accelerator model was configured or driven inconsistently."""


class StreamError(ReproError):
    """A video/stream driver was fed an inconsistent frame sequence.

    Raised by the streaming and parallel drivers when a warm-start chain
    is violated — e.g. a stream whose resolution changes mid-sequence
    under strict shape checking — so callers see the protocol violation
    rather than a downstream numpy broadcast error.
    """


class ResilienceError(ReproError):
    """The hardened execution layer was misconfigured or violated.

    Raised by :mod:`repro.resilience` for invalid fault specs, retry
    policies, or recovery protocol violations — never for the injected
    faults themselves, which always surface as ``FrameRecord`` data.
    """


class CheckpointError(ResilienceError):
    """A checkpoint journal could not be written, read, or resumed.

    Carries the mismatch detail when a resume is attempted against a
    journal produced with different parameters.
    """


class TransportError(ReproError):
    """The zero-copy shared-memory frame transport was violated.

    Raised by :mod:`repro.parallel.shm` when a slab cannot be allocated,
    an attached slab's generation tag does not match the reference (a
    stale or recycled slab), or a payload does not fit its slab. Frame
    execution treats it like any other frame error — a ``FrameRecord``
    with ``ok=False`` — and the transport layer itself falls back to
    pickle when shared memory is unavailable at run start.
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to make progress.

    SLIC itself never raises this (it is bounded by ``max_iterations``); it
    is reserved for analysis drivers that binary-search over parameters.
    """
