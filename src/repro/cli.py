"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``segment``
    Segment a PPM image (or a generated synthetic scene) with SLIC/S-SLIC
    and write boundary / mean-color visualizations.
``batch``
    Segment a batch of images (directory/glob of PPMs or a synthetic
    spec, optionally as multi-frame video streams) across a worker pool
    — the ``repro.parallel`` engine.
``serve``
    Serve segmentation over HTTP (``repro.serve``): bounded admission
    with 429 load shedding, per-request deadlines, a graceful-
    degradation quality ladder, a backend circuit breaker, and
    drain-on-SIGTERM. See ``docs/serving.md``.
``experiment``
    Run one of the registered paper experiments and print its table.
``report``
    Print the accelerator report for a configuration (the Table 4 numbers
    for arbitrary resolutions / buffer sizes / widths).
``report-md``
    Aggregate the benchmark artifacts into a single markdown report.
``stats``
    Summarize a JSONL telemetry trace written with ``--trace``.
``regress``
    Compare benchmark artifacts (``BENCH_*.json``) against a baseline
    and exit nonzero on performance regressions.

Observability: ``segment`` and ``experiment`` accept ``--trace PATH``
(JSONL span/metric telemetry, see ``docs/observability.md``) and
``--manifest PATH`` (a single JSON artifact pinning params, seed,
versions, and final metrics). ``segment`` and ``batch`` additionally
accept ``--telemetry-port N`` (serve live ``/metrics`` + ``/spans``
over HTTP while the run executes; 0 picks an ephemeral port),
``--telemetry-linger S`` (keep the exporter up after the run so
scrapers can collect final values), and ``--profile-spans`` (attach
CPU / peak-RSS / GC deltas to every span).

Examples
--------
::

    python -m repro segment --input frame.ppm --superpixels 400 --out seg.ppm
    python -m repro segment --synthetic --seed 3 --trace run.jsonl \
        --manifest run.json
    python -m repro batch --synthetic 16 --workers 4 --trace batch.jsonl
    python -m repro batch --synthetic 4 --frames 8 --motion shake --workers 2
    python -m repro batch --images 'frames/*.ppm' --workers 4
    python -m repro stats run.jsonl
    python -m repro experiment table3
    python -m repro experiment fig6 --scale quick
    python -m repro report --width 1280 --height 768 --buffer-kb 1
"""

from __future__ import annotations

import argparse
import sys

from . import __version__


def _make_tracer(trace_path, telemetry_port=None, profile=False):
    """Build the run's tracer and (optionally) its telemetry exporter.

    Returns ``(tracer, server)``. ``--trace`` alone gets a JSONL-backed
    tracer; ``--telemetry-port`` alone gets an in-memory tracer whose
    recent spans the server rings; both together tee the sink. With
    neither, the shared disabled tracer (zero overhead) and no server.
    """
    from .obs import JsonlSink, Tracer
    from .obs.tracer import NULL_TRACER

    if trace_path:
        tracer = Tracer(JsonlSink(trace_path))
    elif telemetry_port is not None:
        tracer = Tracer()  # NullSink; the server swaps in its span ring
    else:
        return NULL_TRACER, None

    if profile:
        tracer.enable_profiling()

    server = None
    if telemetry_port is not None:
        from .obs import TelemetryServer

        server = TelemetryServer(tracer, port=telemetry_port).start()
        print(f"telemetry: serving {server.url}/metrics (trace {server.trace_id})")
    return tracer, server


def _finish_telemetry(tracer, server, linger=0.0) -> None:
    """Linger (so scrapers catch final values), then tear down."""
    if server is not None:
        if linger and linger > 0:
            import time

            print(f"telemetry: lingering {linger:g}s at {server.url}/metrics")
            time.sleep(linger)
        server.close()
    tracer.close()


def _cmd_segment(args) -> int:
    import numpy as np

    from .core import slic, sslic
    from .data import SceneConfig, generate_scene, read_ppm, write_ppm
    from .metrics import boundary_recall, undersegmentation_error
    from .obs import RunManifest
    from .viz import draw_boundaries, mean_color_image

    if args.synthetic:
        scene = generate_scene(
            SceneConfig(height=args.height or 240, width=args.width or 360),
            seed=args.seed,
        )
        image, gt = scene.image, scene.gt_labels
    else:
        if not args.input:
            print("segment: provide --input image.ppm or --synthetic", file=sys.stderr)
            return 2
        image, gt = read_ppm(args.input), None

    run = slic if args.algorithm == "slic" else sslic
    kwargs = dict(
        n_superpixels=args.superpixels,
        compactness=args.compactness,
        max_iterations=args.iterations,
        kernel_backend=args.kernel_backend,
        n_threads=args.kernel_threads,
        fused_color=False if args.no_fused_color else None,
    )
    if args.algorithm == "sslic":
        kwargs["subsample_ratio"] = args.ratio

    manifest = RunManifest.start(
        "segment",
        params=dict(kwargs, algorithm=args.algorithm,
                    height=image.shape[0], width=image.shape[1],
                    synthetic=bool(args.synthetic), input=args.input),
        seed=args.seed,
    )
    tracer, server = _make_tracer(
        args.trace, telemetry_port=args.telemetry_port,
        profile=args.profile_spans,
    )
    try:
        result = run(image, tracer=tracer, **kwargs)
    except BaseException:
        _finish_telemetry(tracer, server)
        if args.manifest:
            manifest.finish(status="error").write(args.manifest)
        raise
    print(
        f"{args.algorithm}: {result.n_superpixels} superpixels, "
        f"{result.iterations} sweeps, converged={result.converged}, "
        f"{result.total_time * 1e3:.1f} ms"
    )
    final_metrics = dict(
        iterations=result.iterations,
        subiterations=result.subiterations,
        converged=result.converged,
        realized_superpixels=result.n_superpixels,
        total_time_s=result.total_time,
    )
    if gt is not None:
        use = undersegmentation_error(result.labels, gt)
        recall = boundary_recall(result.labels, gt)
        final_metrics["undersegmentation_error"] = use
        final_metrics["boundary_recall"] = recall
        print(f"USE {use:.4f}  boundary recall {recall:.4f}")
    _finish_telemetry(tracer, server, args.telemetry_linger)
    if args.trace:
        print(f"wrote trace telemetry to {args.trace}")
    if args.manifest:
        manifest.finish(**final_metrics).write(args.manifest)
        print(f"wrote run manifest to {args.manifest}")
    if args.out:
        write_ppm(args.out, draw_boundaries(image, result.labels))
        print(f"wrote boundary overlay to {args.out}")
    if args.mean_out:
        write_ppm(args.mean_out, mean_color_image(image, result.labels))
        print(f"wrote mean-color rendering to {args.mean_out}")
    return 0


def _cmd_batch(args) -> int:
    from .core import SlicParams
    from .errors import DatasetError
    from .obs import RunManifest
    from .parallel import (
        ParallelRunner,
        load_image_batch,
        synthetic_batch,
        synthetic_streams,
    )

    if not args.images and not args.synthetic:
        print("batch: provide --images DIR_OR_GLOB or --synthetic N",
              file=sys.stderr)
        return 2

    params = SlicParams(
        n_superpixels=args.superpixels,
        compactness=args.compactness,
        max_iterations=args.iterations,
        subsample_ratio=args.ratio,
        convergence_threshold=args.threshold,
        kernel_backend=args.kernel_backend,
        n_threads=args.kernel_threads,
        fused_color=False if args.no_fused_color else None,
    )
    manifest = RunManifest.start(
        "batch",
        params=dict(
            images=args.images, synthetic=args.synthetic, frames=args.frames,
            motion=args.motion, workers=args.workers,
            transport=args.transport,
            n_superpixels=args.superpixels, compactness=args.compactness,
            max_iterations=args.iterations, subsample_ratio=args.ratio,
        ),
        seed=args.seed,
    )
    if args.resume and not args.checkpoint:
        print("batch: --resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    faults = None
    if args.inject_faults:
        from .resilience import FaultPlan

        faults = FaultPlan.parse(
            args.inject_faults, seed=args.fault_seed, rate=args.fault_rate
        )
    retry = None
    if args.retries:
        from .resilience import RetryPolicy

        retry = RetryPolicy(retries=args.retries, retry_budget=args.retry_budget)
    tracer, server = _make_tracer(
        args.trace, telemetry_port=args.telemetry_port,
        profile=args.profile_spans,
    )
    runner = ParallelRunner(
        params,
        n_workers=args.workers,
        max_pending=args.max_pending,
        tracer=tracer,
        collect_worker_traces=bool(
            args.worker_traces and (args.trace or args.telemetry_port is not None)
        ),
        frame_timeout=args.frame_timeout,
        retry=retry,
        checkpoint=args.checkpoint,
        faults=faults,
        transport=args.transport,
    )
    try:
        if args.images:
            streams = [[image] for image in load_image_batch(args.images)]
        elif args.frames > 1:
            streams = synthetic_streams(
                args.synthetic, args.frames,
                height=args.height or 120, width=args.width or 160,
                motion=args.motion, seed=args.seed,
            )
        else:
            streams = [
                [image]
                for image in synthetic_batch(
                    args.synthetic,
                    height=args.height or 120, width=args.width or 160,
                    seed=args.seed,
                )
            ]
        if args.resume:
            batch = runner.resume(streams)
        else:
            batch = runner.run_streams(streams)
    except DatasetError as exc:
        _finish_telemetry(tracer, server)
        if args.manifest:
            manifest.finish(status="error").write(args.manifest)
        print(f"batch: {exc}", file=sys.stderr)
        return 2
    except BaseException:
        _finish_telemetry(tracer, server)
        if args.manifest:
            manifest.finish(status="error").write(args.manifest)
        raise

    n_streams = len({r.stream_id for r in batch.records})
    print(
        f"batch: {batch.n_frames} frames over {n_streams} stream(s), "
        f"{batch.n_workers} worker(s), {batch.transport} transport: "
        f"{batch.n_ok} ok, "
        f"{batch.n_failed} failed, {batch.elapsed_s:.2f} s "
        f"({batch.throughput_fps:.2f} fps)"
    )
    if (
        args.workers > 1
        and args.transport in ("shm", "auto")
        and batch.transport == "pickle"
    ):
        print("transport: shm unavailable, fell back to pickle")
    warm = sum(1 for r in batch.records if r.warm_started)
    if warm:
        print(f"warm-started frames: {warm}/{batch.n_frames}")
    if batch.resumed_frames:
        print(f"resumed from checkpoint: {batch.resumed_frames} frames replayed")
    if batch.retries_used or batch.timeouts or batch.n_quarantined:
        print(
            f"resilience: {batch.retries_used} retries "
            f"({batch.n_recovered} frames recovered), "
            f"{batch.timeouts} timeouts, {batch.n_quarantined} quarantined, "
            f"{batch.pool_restarts} pool restarts"
        )
    for rec in batch.failures:
        print(
            f"  FAILED stream {rec.stream_id} frame {rec.frame_index}: "
            f"[{rec.error_type}] {rec.error}",
            file=sys.stderr,
        )
    _finish_telemetry(tracer, server, args.telemetry_linger)
    if args.trace:
        print(f"wrote trace telemetry to {args.trace}")
    if args.manifest:
        manifest.finish(
            frames=batch.n_frames,
            ok=batch.n_ok,
            failed=batch.n_failed,
            elapsed_s=batch.elapsed_s,
            throughput_fps=batch.throughput_fps,
            pool_restarts=batch.pool_restarts,
            retries_used=batch.retries_used,
            timeouts=batch.timeouts,
            quarantined=batch.n_quarantined,
            resumed_frames=batch.resumed_frames,
            transport=batch.transport,
        ).write(args.manifest)
        print(f"wrote run manifest to {args.manifest}")
    return 1 if batch.n_failed else 0


def _cmd_experiment(args) -> int:
    from .analysis import render_table, run_experiment
    from .obs import RunManifest

    manifest = RunManifest.start(
        f"experiment:{args.name}", params={"scale": args.scale}
    )
    tracer, server = _make_tracer(args.trace)
    try:
        with tracer.span("experiment", experiment=args.name, scale=args.scale) as span:
            result = run_experiment(args.name, scale=args.scale)
            span.set(rows=len(result.rows))
    except BaseException:
        _finish_telemetry(tracer, server)
        if args.manifest:
            manifest.finish(status="error").write(args.manifest)
        raise
    print(render_table(result.headers, result.rows, title=result.title, precision=4))
    if result.notes:
        print(result.notes)
    _finish_telemetry(tracer, server)
    if args.trace:
        print(f"wrote trace telemetry to {args.trace}")
    if args.manifest:
        manifest.finish(rows=len(result.rows), title=result.title)
        manifest.write(args.manifest)
        print(f"wrote run manifest to {args.manifest}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from .core.params import SlicParams
    from .errors import ConfigurationError
    from .serve import ServeConfig, SuperpixelServer

    params = SlicParams(
        n_superpixels=args.superpixels,
        compactness=args.compactness,
        max_iterations=args.iterations,
        subsample_ratio=args.ratio,
        kernel_backend=args.kernel_backend,
        n_threads=args.kernel_threads,
        fused_color=False if args.no_fused_color else None,
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        params=params,
        exec_mode=args.exec_mode,
        n_workers=args.workers,
        max_queue=args.max_queue,
        default_deadline_ms=args.deadline_ms,
        degrade_enabled=not args.no_degrade,
        drain_timeout_s=args.drain_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
    )
    tracer = None
    if args.trace:
        from .obs import JsonlSink, Tracer

        tracer = Tracer(JsonlSink(args.trace))

    async def run() -> int:
        server = SuperpixelServer(config, tracer=tracer)
        await server.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        # The "listening" line is the readiness handshake for the CI
        # smoke job and the bench harness — keep it one line, flushed.
        print(
            f"serve: listening on http://{config.host}:{server.port} "
            f"(mode={config.exec_mode}, workers={config.n_workers}, "
            f"max_queue={config.max_queue})",
            flush=True,
        )
        serve_task = asyncio.create_task(server.serve_forever())
        await stop.wait()
        print("serve: draining (completing in-flight frames)", flush=True)
        clean = await server.drain()
        await serve_task
        print(
            "serve: drained clean" if clean
            else f"serve: drain timed out after {config.drain_timeout_s:g}s",
            flush=True,
        )
        return 0 if clean else 1

    try:
        rc = asyncio.run(run())
    except ConfigurationError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            tracer.close()
    return rc


def _cmd_stats(args) -> int:
    from .obs import format_summary, summarize_trace

    try:
        summary = summarize_trace(args.trace)
    except FileNotFoundError:
        print(f"stats: no such trace file: {args.trace}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    try:
        print(format_summary(summary, title=f"trace summary: {args.trace}"))
    except BrokenPipeError:  # e.g. `repro stats t.jsonl | head`
        sys.stderr.close()  # suppress the interpreter's epipe warning
    return 0


def _cmd_regress(args) -> int:
    import glob
    import json

    from .errors import ConfigurationError
    from .obs import check_regressions
    from .obs.regress import DEFAULT_TOLERANCE

    patterns = args.baseline or ["BENCH_*.json"]
    baselines = sorted(p for pattern in patterns for p in glob.glob(pattern))
    if not baselines:
        print(
            f"regress: no baseline artifacts match {patterns!r}",
            file=sys.stderr,
        )
        return 2
    currents = None
    if args.current:
        currents = sorted(
            p for pattern in args.current for p in glob.glob(pattern)
        )
        if not currents:
            print(
                f"regress: no current artifacts match {args.current!r}",
                file=sys.stderr,
            )
            return 2
    tolerance = (
        args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    )
    try:
        report = check_regressions(baselines, currents, tolerance=tolerance)
    except (ConfigurationError, ValueError, OSError) as exc:
        print(f"regress: {exc}", file=sys.stderr)
        return 2
    print(report.format_text())
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote regression report to {args.report}")
    return 0 if report.ok else 1


def _cmd_report_md(args) -> int:
    from .analysis.report import generate_report

    generate_report(output_path=args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_report(args) -> int:
    from .hw import AcceleratorConfig, AcceleratorModel, ClusterWays
    from .types import Resolution

    ways = {
        "1-1-1": ClusterWays(1, 1, 1),
        "9-9-6": ClusterWays(9, 9, 6),
    }.get(args.ways)
    if ways is None:
        d, m, a = (int(x) for x in args.ways.split("-"))
        ways = ClusterWays(d, m, a)
    config = AcceleratorConfig(
        resolution=Resolution(args.width, args.height),
        n_superpixels=args.superpixels,
        buffer_kb_per_channel=args.buffer_kb,
        bits=args.bits,
        n_cores=args.cores,
        ways=ways,
    )
    report = AcceleratorModel(config).report()
    lb = report.latency
    print(f"configuration: {config.resolution}, K={config.n_superpixels}, "
          f"{ways.label}, {args.bits}-bit, {args.buffer_kb} kB/channel, "
          f"{args.cores} core(s)")
    print(f"latency  : {report.latency_ms:.2f} ms  ({report.fps:.1f} fps, "
          f"real-time: {'yes' if report.real_time else 'no'})")
    print(f"           color {lb.color_conversion_ms:.2f} | compute "
          f"{lb.cluster_compute_ms:.2f} | centers {lb.center_update_ms:.2f} | "
          f"memory {lb.memory_ms:.2f}")
    print(f"power    : {report.power_mw:.1f} mW")
    print(f"energy   : {report.energy_per_frame_mj:.3f} mJ/frame")
    print(f"area     : {report.area_mm2:.4f} mm^2  "
          f"({report.perf_per_area_fps_mm2:.0f} fps/mm^2)")
    return 0


def _add_telemetry_args(cmd) -> None:
    cmd.add_argument("--telemetry-port", type=int, default=None, metavar="N",
                     help="serve live /metrics (Prometheus text), /healthz "
                          "and /spans on 127.0.0.1:N while the run executes "
                          "(0 = pick an ephemeral port)")
    cmd.add_argument("--telemetry-linger", type=float, default=0.0,
                     metavar="S",
                     help="keep the telemetry server up S seconds after the "
                          "run completes so scrapers catch final values")
    cmd.add_argument("--profile-spans", action="store_true",
                     help="attach per-span resource deltas (CPU user/sys, "
                          "peak RSS, GC collections) to the telemetry")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="S-SLIC superpixels and the DAC'16 accelerator model",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    seg = sub.add_parser("segment", help="segment an image")
    seg.add_argument("--input", help="input PPM (P6) image")
    seg.add_argument("--synthetic", action="store_true",
                     help="use a generated synthetic scene instead of --input")
    seg.add_argument("--seed", type=int, default=0)
    seg.add_argument("--width", type=int, default=None)
    seg.add_argument("--height", type=int, default=None)
    seg.add_argument("--algorithm", choices=("slic", "sslic"), default="sslic")
    seg.add_argument("--superpixels", type=int, default=200)
    seg.add_argument("--compactness", type=float, default=10.0)
    seg.add_argument("--iterations", type=int, default=10)
    seg.add_argument("--kernel-backend", default=None,
                     choices=("auto", "reference", "vectorized", "native",
                              "native-mt"),
                     help="kernel backend for the hot loops (default: "
                          "$REPRO_KERNEL_BACKEND, then auto)")
    seg.add_argument("--kernel-threads", type=int, default=None,
                     help="kernel threads per frame for native-mt "
                          "(default: $REPRO_KERNEL_THREADS, then cores)")
    seg.add_argument("--no-fused-color", action="store_true",
                     help="disable the fused color conversion "
                          "(convert then decode in two steps; "
                          "default: $REPRO_FUSED_COLOR, then fused)")
    seg.add_argument("--ratio", type=float, default=0.5,
                     help="S-SLIC subsample ratio (1/n)")
    seg.add_argument("--out", help="boundary-overlay PPM output path")
    seg.add_argument("--mean-out", help="mean-color PPM output path")
    seg.add_argument("--trace", metavar="PATH",
                     help="write JSONL span/metric telemetry to PATH")
    _add_telemetry_args(seg)
    seg.add_argument("--manifest", metavar="PATH",
                     help="write a JSON run manifest (params, seed, metrics)")
    seg.set_defaults(func=_cmd_segment)

    bat = sub.add_parser(
        "batch",
        help="segment a batch of images / video streams across a worker pool",
    )
    bat.add_argument("--images", metavar="DIR_OR_GLOB",
                     help="directory or glob of PPM stills")
    bat.add_argument("--synthetic", type=int, metavar="N", default=0,
                     help="generate N synthetic scenes (or streams with --frames)")
    bat.add_argument("--frames", type=int, default=1,
                     help="frames per synthetic stream (>1 enables warm starts)")
    bat.add_argument("--motion", choices=("shake", "pan", "static"),
                     default="shake", help="synthetic stream motion model")
    bat.add_argument("--seed", type=int, default=0)
    bat.add_argument("--width", type=int, default=None)
    bat.add_argument("--height", type=int, default=None)
    bat.add_argument("--superpixels", type=int, default=200)
    bat.add_argument("--compactness", type=float, default=10.0)
    bat.add_argument("--iterations", type=int, default=10)
    bat.add_argument("--kernel-backend", default=None,
                     choices=("auto", "reference", "vectorized", "native",
                              "native-mt"),
                     help="kernel backend for the hot loops (default: "
                          "$REPRO_KERNEL_BACKEND, then auto)")
    bat.add_argument("--kernel-threads", type=int, default=None,
                     help="kernel threads per frame for native-mt "
                          "(default: $REPRO_KERNEL_THREADS, then cores)")
    bat.add_argument("--no-fused-color", action="store_true",
                     help="disable the fused color conversion "
                          "(convert then decode in two steps; "
                          "default: $REPRO_FUSED_COLOR, then fused)")
    bat.add_argument("--ratio", type=float, default=0.5,
                     help="S-SLIC subsample ratio (1/n)")
    bat.add_argument("--threshold", type=float, default=0.25,
                     help="convergence threshold (px center movement)")
    bat.add_argument("--workers", type=int, default=1,
                     help="worker processes (1 = serial reference)")
    bat.add_argument("--max-pending", type=int, default=None,
                     help="in-flight frame cap (default 2x workers)")
    bat.add_argument("--transport", default="pickle",
                     choices=("pickle", "shm", "auto"),
                     help="frame transport to the pool: pickle (serialize "
                          "arrays), shm (zero-copy shared-memory slabs; "
                          "falls back to pickle if unavailable), or auto")
    bat.add_argument("--frame-timeout", type=float, default=None, metavar="S",
                     help="per-frame deadline in seconds; a hung worker "
                          "becomes a FrameTimeout record (default: no "
                          "deadline)")
    bat.add_argument("--retries", type=int, default=0,
                     help="retry transient frame failures up to N times "
                          "with exponential backoff (default 0 = off)")
    bat.add_argument("--retry-budget", type=int, default=None,
                     help="cap total retries across the whole batch")
    bat.add_argument("--checkpoint", metavar="PATH",
                     help="append per-frame records to a JSONL journal at "
                          "PATH as they complete")
    bat.add_argument("--resume", action="store_true",
                     help="resume from the --checkpoint journal: completed "
                          "frames replay bit-identically, the rest run")
    bat.add_argument("--inject-faults", metavar="SPEC",
                     help="deterministic chaos: comma list of "
                          "kind@stream:frame[:attempt][~dur] entries and/or "
                          "'random' (e.g. 'crash@0:1,random')")
    bat.add_argument("--fault-rate", type=float, default=0.05,
                     help="random-fault probability per frame when "
                          "--inject-faults includes 'random' (default 0.05)")
    bat.add_argument("--fault-seed", type=int, default=0,
                     help="seed of the random fault field (default 0)")
    bat.add_argument("--trace", metavar="PATH",
                     help="write JSONL span/metric telemetry to PATH")
    bat.add_argument("--worker-traces", action="store_true",
                     help="merge per-worker span trees into the trace")
    _add_telemetry_args(bat)
    bat.add_argument("--manifest", metavar="PATH",
                     help="write a JSON run manifest (params, throughput)")
    bat.set_defaults(func=_cmd_batch)

    exp = sub.add_parser("experiment", help="run a registered paper experiment")
    exp.add_argument("name", help="fig2 | table1 | table2 | table3 | sec61 | "
                                  "fig6 | table4 | table5")
    exp.add_argument("--scale", choices=("quick", "full"), default="quick")
    exp.add_argument("--trace", metavar="PATH",
                     help="write JSONL span/metric telemetry to PATH")
    exp.add_argument("--manifest", metavar="PATH",
                     help="write a JSON run manifest (params, metrics)")
    exp.set_defaults(func=_cmd_experiment)

    srv = sub.add_parser(
        "serve",
        help="serve segmentation over HTTP with overload protection",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8000,
                     help="listen port (0 picks an ephemeral port)")
    srv.add_argument("--superpixels", type=int, default=200)
    srv.add_argument("--compactness", type=float, default=10.0)
    srv.add_argument("--iterations", type=int, default=10)
    srv.add_argument("--ratio", type=float, default=0.5,
                     help="S-SLIC subsample ratio (1/n)")
    srv.add_argument("--kernel-backend", default=None,
                     choices=("auto", "reference", "vectorized", "native",
                              "native-mt"),
                     help="kernel backend for the hot loops (default: "
                          "$REPRO_KERNEL_BACKEND, then auto)")
    srv.add_argument("--kernel-threads", type=int, default=None,
                     help="kernel threads per frame for native-mt")
    srv.add_argument("--no-fused-color", action="store_true",
                     help="disable the fused color conversion "
                          "(convert then decode in two steps; "
                          "default: $REPRO_FUSED_COLOR, then fused)")
    srv.add_argument("--exec-mode", choices=("thread", "process"),
                     default="thread",
                     help="frame execution substrate (thread: in-process "
                          "pool + native-mt kernel threads; process: "
                          "ProcessPoolExecutor with watchdog teardown)")
    srv.add_argument("--workers", type=int, default=1,
                     help="concurrent frame executions")
    srv.add_argument("--max-queue", type=int, default=8,
                     help="max outstanding admitted requests before "
                          "shedding with 429")
    srv.add_argument("--deadline-ms", type=float, default=None,
                     help="default per-request deadline when the request "
                          "does not carry deadline_ms")
    srv.add_argument("--no-degrade", action="store_true",
                     help="disable the graceful-degradation quality "
                          "ladder (bit-identical output at any load)")
    srv.add_argument("--drain-timeout", type=float, default=10.0,
                     help="seconds to wait for in-flight frames on "
                          "SIGTERM before giving up")
    srv.add_argument("--breaker-threshold", type=int, default=5,
                     help="consecutive backend failures that open the "
                          "circuit breaker")
    srv.add_argument("--breaker-reset", type=float, default=5.0,
                     help="seconds an open breaker waits before its "
                          "half-open probe")
    srv.add_argument("--trace", metavar="PATH",
                     help="write JSONL span/metric telemetry to PATH")
    srv.set_defaults(func=_cmd_serve)

    sts = sub.add_parser("stats", help="summarize a JSONL telemetry trace")
    sts.add_argument("trace", help="trace file written with --trace")
    sts.set_defaults(func=_cmd_stats)

    rgr = sub.add_parser(
        "regress",
        help="compare benchmark artifacts against a baseline; exit 1 on "
             "performance regressions",
    )
    rgr.add_argument("--baseline", action="append", metavar="GLOB",
                     default=None,
                     help="baseline artifact glob(s) (default BENCH_*.json — "
                          "the committed history)")
    rgr.add_argument("--current", action="append", metavar="GLOB",
                     default=None,
                     help="current-run artifact glob(s); omitted = compare "
                          "the baseline against itself (sanity check)")
    rgr.add_argument("--tolerance", type=float, default=None,
                     help="allowed relative slack before a delta counts as "
                          "a regression (default 0.25)")
    rgr.add_argument("--report", metavar="PATH",
                     help="write the full delta report as JSON to PATH")
    rgr.set_defaults(func=_cmd_regress)

    rep = sub.add_parser("report", help="accelerator report for a configuration")
    rep.add_argument("--width", type=int, default=1920)
    rep.add_argument("--height", type=int, default=1080)
    rep.add_argument("--superpixels", type=int, default=5000)
    rep.add_argument("--buffer-kb", type=float, default=4.0)
    rep.add_argument("--bits", type=int, default=8)
    rep.add_argument("--cores", type=int, default=1)
    rep.add_argument("--ways", default="9-9-6",
                     help="cluster unit ways, e.g. 9-9-6 or 1-1-1")
    rep.set_defaults(func=_cmd_report)

    rmd = sub.add_parser(
        "report-md",
        help="aggregate benchmark artifacts into a markdown report",
    )
    rmd.add_argument("--output", default="REPORT.md")
    rmd.set_defaults(func=_cmd_report_md)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
