"""Retry and deadline policy for the hardened runner.

A :class:`RetryPolicy` is pure decision logic — no clocks, no state —
so the runner's behavior under failure is specified in one place and
testable without a pool. The policy distinguishes *transient* failures
(worker death, timeout, unexpected exceptions: retrying can help) from
*deterministic* ones (a bad image is bad on every attempt: retrying
burns budget for nothing).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ResilienceError

__all__ = ["RetryPolicy", "NON_RETRYABLE_ERRORS"]

#: Error types that are properties of the input, not of the execution —
#: a retry re-runs the same deterministic failure, so these fail fast.
NON_RETRYABLE_ERRORS = frozenset(
    {"ImageError", "StreamError", "ConfigurationError"}
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-frame retries with exponential backoff.

    Parameters
    ----------
    retries:
        Extra attempts allowed per frame after the first (0 disables
        retrying — the seed behavior).
    backoff_s:
        Delay before the first retry; attempt ``n`` waits
        ``backoff_s * backoff_factor**(n-1)``, capped at
        ``max_backoff_s``.
    retry_budget:
        Total retries allowed across the whole batch (``None`` =
        unbounded). A storm of transient failures degrades to
        fail-as-data instead of retrying forever.
    """

    retries: int = 0
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    retry_budget: int | None = None

    def __post_init__(self):
        if self.retries < 0:
            raise ResilienceError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ResilienceError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.backoff_factor < 1.0:
            raise ResilienceError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ResilienceError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )

    def retryable(self, error_type: str) -> bool:
        """Whether a failure of this type can succeed on a re-run."""
        return error_type not in NON_RETRYABLE_ERRORS

    def should_retry(self, error_type, attempt, budget_used) -> bool:
        """Decide for a failure on 0-based ``attempt``.

        ``budget_used`` is the batch-wide retry count so far.
        """
        if self.retries == 0 or not self.retryable(error_type):
            return False
        if attempt + 1 > self.retries:
            return False
        if self.retry_budget is not None and budget_used >= self.retry_budget:
            return False
        return True

    def delay(self, attempt: int) -> float:
        """Backoff before 1-based retry ``attempt`` (attempt 1 = first retry)."""
        if attempt <= 0:
            return 0.0
        return min(
            self.backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )
