"""Deterministic fault injection for the hardened execution paths.

The chaos layer has one job: make every recovery path in
:class:`repro.parallel.ParallelRunner` a *reproducible test case*. A
:class:`FaultPlan` decides — purely from ``(seed, stream, frame,
attempt)`` — whether a frame is faulted and how; a :class:`FaultSpec`
travels to the worker inside the :class:`~repro.parallel.FrameTask` and
is applied by a single hook at the top of ``run_frame``. Nothing here
uses wall-clock time or process-local randomness, so the same plan
produces the same faults on every run, serial or parallel, local or CI.

Fault kinds
-----------
``crash``
    The worker dies with ``os._exit`` — a hard process death (segfault /
    OOM-kill stand-in). Exercises ``BrokenProcessPool`` recovery.
``hang``
    The worker sleeps for ``duration_s`` (default 60 s) before working —
    long enough to trip any sane frame deadline. Exercises the watchdog.
``slow``
    The worker sleeps ``duration_s`` (default 0.05 s), then completes
    normally. Exercises deadlines that should *not* fire, and retry
    timing.
``corrupt_image``
    The frame's pixel data is overwritten with NaNs before segmentation
    — a scratchpad/transfer corruption stand-in. Surfaces as a clean
    ``ImageError`` record (the datapath rejects non-finite input).
``corrupt_result``
    The worker raises an exception carrying an unpicklable payload, so
    the result cannot cross the process boundary intact — the
    pickled-result corruption case. Exercises the runner's
    "anything-else" future-exception branch.
``error``
    The worker raises a plain ``RuntimeError`` that is *not* part of the
    frame-error contract (``run_frame`` only converts expected error
    types). Exercises the same branch deterministically and picklably.
``kernel_fail``
    The frame's kernel backend is forced to fail its first-dispatch
    self-test, driving the supervisor's demotion chain
    (native -> vectorized -> reference).
``submit_broken``
    Parent-side: the runner's submit call raises ``BrokenProcessPool``
    as if the pool broke between detection points. Exercises the
    submit-path recovery branch (unreachable deterministically without
    injection).

Process-level faults (``crash``, ``hang``) are only applied inside a
real worker process; when the runner executes frames in-process (serial
mode or post-fallback) they are skipped — killing or hanging the parent
is not a recovery path, it is the end of the experiment.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

import numpy as np

from ..errors import ResilienceError

__all__ = [
    "FAULT_KINDS",
    "WORKER_ONLY_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
]

#: Every fault kind a plan may contain.
FAULT_KINDS = (
    "crash",
    "hang",
    "slow",
    "corrupt_image",
    "corrupt_result",
    "error",
    "kernel_fail",
    "submit_broken",
)

#: Kinds that require a sacrificial worker process (skipped in-process).
WORKER_ONLY_KINDS = frozenset({"crash", "hang"})

#: Kinds applied by the parent scheduler, never shipped to a worker.
PARENT_SIDE_KINDS = frozenset({"submit_broken"})

#: Default sleep lengths, per kind, when the spec does not pin one.
_DEFAULT_DURATIONS = {"hang": 60.0, "slow": 0.05}


class InjectedFault(RuntimeError):
    """The exception raised by ``error`` faults (picklable)."""


class _Unpicklable:
    """Payload that defeats pickling on the way back from a worker."""

    def __reduce__(self):
        raise TypeError("injected unpicklable result payload")


class CorruptResultFault(RuntimeError):
    """Raised by ``corrupt_result`` faults; carries an unpicklable arg."""

    def __init__(self):
        super().__init__("injected result corruption", _Unpicklable())


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *what* happens to *which* attempt of a frame.

    ``attempt`` is the 0-based attempt index the fault fires on; ``-1``
    means every attempt (a persistent fault — the frame can never
    succeed and must be quarantined). ``duration_s`` parameterizes
    ``hang``/``slow``; ``None`` uses the kind's default.
    """

    kind: str
    stream_id: int
    frame_index: int
    attempt: int = 0
    duration_s: float | None = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ResilienceError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.attempt < -1:
            raise ResilienceError(
                f"fault attempt must be >= -1, got {self.attempt}"
            )

    def fires_on(self, attempt: int) -> bool:
        return self.attempt == -1 or self.attempt == attempt

    @property
    def duration(self) -> float:
        if self.duration_s is not None:
            return self.duration_s
        return _DEFAULT_DURATIONS.get(self.kind, 0.0)

    def describe(self) -> str:
        at = "*" if self.attempt == -1 else str(self.attempt)
        return f"{self.kind}@{self.stream_id}:{self.frame_index}:{at}"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic mapping ``(stream, frame, attempt) -> FaultSpec``.

    Two layers, combinable:

    * **explicit entries** — exact ``kind@stream:frame[:attempt]``
      placements (:meth:`parse`); the reproducible unit tests use these;
    * **a seeded random field** — every ``(stream, frame)`` key is
      hashed with the seed into a uniform draw; keys under ``rate`` get
      a fault whose kind is picked by the same hash. No enumeration of
      the key space is needed, so the plan works for streams of unknown
      length, and the *same seed always faults the same frames*.

    Random faults fire on attempt 0 only (transient), which is what
    makes ``retries`` recover them.
    """

    entries: tuple = ()
    rate: float = 0.0
    seed: int = 0
    random_kinds: tuple = ("crash", "slow", "corrupt_image", "error")

    def __post_init__(self):
        if not (0.0 <= self.rate <= 1.0):
            raise ResilienceError(f"fault rate must be in [0, 1], got {self.rate}")
        for kind in self.random_kinds:
            if kind not in FAULT_KINDS:
                raise ResilienceError(f"unknown fault kind {kind!r}")

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, seed: int = 0, rate: float = 0.0) -> "FaultPlan":
        """Build a plan from a compact spec string.

        ``spec`` is a comma-separated list of
        ``kind@stream:frame[:attempt][~duration_s]`` entries, e.g.
        ``"crash@1:0,hang@0:2,slow@2:1:-1~0.2"``. The special entry
        ``random`` enables the seeded random field at ``rate``.
        """
        entries = []
        use_random = False
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if part == "random":
                use_random = True
                continue
            try:
                kind, _, where = part.partition("@")
                duration = None
                if "~" in where:
                    where, _, dur = where.partition("~")
                    duration = float(dur)
                bits = where.split(":")
                stream, frame = int(bits[0]), int(bits[1])
                attempt = int(bits[2]) if len(bits) > 2 else 0
            except (ValueError, IndexError) as exc:
                raise ResilienceError(
                    f"bad fault entry {part!r}; expected "
                    "kind@stream:frame[:attempt][~duration_s]"
                ) from exc
            entries.append(
                FaultSpec(kind, stream, frame, attempt=attempt, duration_s=duration)
            )
        return cls(
            entries=tuple(entries),
            rate=rate if use_random else 0.0,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def _draw(self, stream_id: int, frame_index: int) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{stream_id}:{frame_index}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def lookup(self, stream_id: int, frame_index: int, attempt: int = 0):
        """The fault for this attempt of this frame, or ``None``."""
        for spec in self.entries:
            if (
                spec.stream_id == stream_id
                and spec.frame_index == frame_index
                and spec.fires_on(attempt)
            ):
                return spec
        if self.rate > 0.0 and attempt == 0:
            u = self._draw(stream_id, frame_index)
            if u < self.rate:
                kind = self.random_kinds[
                    int(u / self.rate * len(self.random_kinds))
                    % len(self.random_kinds)
                ]
                return FaultSpec(kind, stream_id, frame_index, attempt=0)
        return None

    @property
    def empty(self) -> bool:
        return not self.entries and self.rate == 0.0

    def describe(self) -> str:
        parts = [s.describe() for s in self.entries]
        if self.rate > 0.0:
            parts.append(f"random(rate={self.rate}, seed={self.seed})")
        return ",".join(parts) or "<empty>"


# ----------------------------------------------------------------------
# Worker-side application
# ----------------------------------------------------------------------
def apply_fault(spec: FaultSpec, image, in_worker: bool):
    """Apply ``spec`` at the top of a frame execution.

    Returns the (possibly corrupted) image to segment. Raises for the
    error-raising kinds; never returns for ``crash``. Process-level
    faults are skipped when not inside a sacrificial worker process.
    ``kernel_fail`` and ``submit_broken`` are handled elsewhere (backend
    supervisor / parent scheduler) and are no-ops here.
    """
    if spec is None:
        return image
    kind = spec.kind
    if kind in WORKER_ONLY_KINDS and not in_worker:
        return image  # never kill or hang the parent process
    if kind == "crash":
        os._exit(3)
    if kind == "hang":
        time.sleep(spec.duration)
        return image
    if kind == "slow":
        time.sleep(spec.duration)
        return image
    if kind == "corrupt_image":
        corrupted = np.asarray(image, dtype=np.float64) / (
            255.0 if np.asarray(image).dtype == np.uint8 else 1.0
        )
        corrupted = corrupted.copy()
        corrupted[..., :] = np.nan
        return corrupted
    if kind == "error":
        raise InjectedFault(f"injected worker error ({spec.describe()})")
    if kind == "corrupt_result":
        raise CorruptResultFault()
    return image


class FaultInjector:
    """The runner's handle on a plan: stamps tasks, counts injections.

    Lives in the parent process; the only thing that crosses to workers
    is the per-frame :class:`FaultSpec` riding on the task. ``tracer``
    receives one ``resilience.faults_injected`` count per stamped fault
    (and ``resilience.faults_skipped`` for process-level faults that
    in-process execution refuses to run).
    """

    def __init__(self, plan: FaultPlan, tracer=None):
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        if not isinstance(plan, FaultPlan):
            raise ResilienceError(
                f"plan must be a FaultPlan or spec string, got {type(plan).__name__}"
            )
        self.plan = plan
        self.tracer = tracer
        self.injected = 0
        self.skipped = 0

    def fault_for(self, stream_id, frame_index, attempt, in_worker=True):
        """The spec to stamp on this attempt's task, or ``None``."""
        spec = self.plan.lookup(stream_id, frame_index, attempt)
        if spec is None or spec.kind in PARENT_SIDE_KINDS:
            return None
        if spec.kind in WORKER_ONLY_KINDS and not in_worker:
            self.skipped += 1
            if self.tracer is not None:
                self.tracer.count("resilience.faults_skipped")
            return None
        self.injected += 1
        if self.tracer is not None:
            self.tracer.count("resilience.faults_injected")
        return spec

    def breaks_submit(self, stream_id, frame_index, attempt) -> bool:
        """True when a ``submit_broken`` fault targets this submission."""
        spec = self.plan.lookup(stream_id, frame_index, attempt)
        if spec is not None and spec.kind == "submit_broken":
            self.injected += 1
            if self.tracer is not None:
                self.tracer.count("resilience.faults_injected")
            return True
        return False
