"""repro.resilience — deterministic fault injection + hardened execution.

The paper's pitch is *real-time* segmentation; a real-time system is
defined by what it does when things go wrong — a worker dies, a frame
hangs, a result fails to cross the process boundary, a scratchpad bit
flips. This package supplies both halves of that story:

* **fault injection** (:mod:`~repro.resilience.faults`) — a seeded,
  deterministic :class:`FaultPlan` applied through a single worker-side
  hook, so every recovery path in
  :class:`repro.parallel.ParallelRunner` is a reproducible test case;
* **hardened execution** — the retry/deadline policy
  (:class:`RetryPolicy`), the JSONL checkpoint journal and resume
  protocol (:class:`CheckpointJournal`), and the soft-error quality
  harness (:func:`soft_error_quality_delta`) that pairs with the
  scratchpad bit-flip model in :mod:`repro.hw.cyclesim`.

See ``docs/resilience.md`` for the failure taxonomy and guarantees.
"""

from .checkpoint import (
    CheckpointJournal,
    completed_prefixes,
    load_journal,
    params_fingerprint,
    record_from_json,
    record_to_json,
)
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    apply_fault,
)
from .policy import NON_RETRYABLE_ERRORS, RetryPolicy
from .soft_error import SoftErrorQuality, flip_bits, soft_error_quality_delta

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "apply_fault",
    "RetryPolicy",
    "NON_RETRYABLE_ERRORS",
    "CheckpointJournal",
    "load_journal",
    "completed_prefixes",
    "params_fingerprint",
    "record_to_json",
    "record_from_json",
    "SoftErrorQuality",
    "flip_bits",
    "soft_error_quality_delta",
]
