"""JSONL checkpoint journal for batch runs, and the resume protocol.

Every finalized :class:`~repro.parallel.FrameRecord` is appended to the
journal as one self-contained JSON line (arrays shipped as base64 of
their exact bytes, with dtype and shape), so a killed batch loses at
most the in-flight frames. ``ParallelRunner.resume`` replays the
journal's per-stream *contiguous prefixes* through the same
plan/commit protocol a live run uses — the replayed records are the
original objects bit for bit (labels, centers, error text, timings),
and the warm chains the remaining frames see are exactly the chains
the original run would have produced.

Safety properties:

* the header line pins a fingerprint of the run's
  :class:`~repro.core.params.SlicParams`; resuming against a journal
  written with different parameters raises
  :class:`~repro.errors.CheckpointError` instead of silently producing
  a frankenstein batch;
* a truncated final line (the process died mid-write) is detected and
  dropped — the journal format is crash-consistent by construction;
* only contiguous per-stream prefixes are trusted: a gap means the
  journal and scheduler disagree, and everything after the gap is
  recomputed.
"""

from __future__ import annotations

import base64
import hashlib
import json
from pathlib import Path

import numpy as np

from ..errors import CheckpointError

__all__ = [
    "CheckpointJournal",
    "params_fingerprint",
    "load_journal",
    "completed_prefixes",
    "record_to_json",
    "record_from_json",
]

JOURNAL_VERSION = 1


def params_fingerprint(params) -> str:
    """A short stable fingerprint of a :class:`SlicParams`."""
    return hashlib.sha256(repr(params).encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Array / record (de)serialization
# ----------------------------------------------------------------------
def _pack_array(arr) -> dict:
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _unpack_array(obj):
    return np.frombuffer(
        base64.b64decode(obj["data"]), dtype=np.dtype(obj["dtype"])
    ).reshape(obj["shape"]).copy()


def record_to_json(record) -> dict:
    """A :class:`FrameRecord` as a JSON-safe dict (trace events dropped)."""
    payload = {
        "stream_id": record.stream_id,
        "frame_index": record.frame_index,
        "ok": record.ok,
        "error": record.error,
        "error_type": record.error_type,
        "warm_started": record.warm_started,
        "elapsed_s": record.elapsed_s,
        "worker_pid": record.worker_pid,
        "kernel_backend": record.kernel_backend,
        "n_threads": record.n_threads,
        "attempts": record.attempts,
        "quarantined": record.quarantined,
        "demoted_from": record.demoted_from,
        "transport": record.transport,
    }
    if record.ok and record.result is not None:
        res = record.result
        payload["result"] = {
            "labels": _pack_array(res.labels),
            "centers": _pack_array(res.centers),
            "n_superpixels": res.n_superpixels,
            "iterations": res.iterations,
            "subiterations": res.subiterations,
            "converged": bool(res.converged),
            "movement_history": [float(m) for m in res.movement_history],
            "timings": {k: float(v) for k, v in res.timings.items()},
            "tiles_resolved": res.tiles_resolved,
        }
    return payload


def record_from_json(payload: dict, params=None):
    """Rebuild a :class:`FrameRecord` (and its result) from a journal line."""
    from ..core.result import SegmentationResult
    from ..parallel.records import FrameRecord

    result = None
    if payload.get("result") is not None:
        res = payload["result"]
        result = SegmentationResult(
            labels=_unpack_array(res["labels"]),
            centers=_unpack_array(res["centers"]),
            n_superpixels=res["n_superpixels"],
            iterations=res["iterations"],
            subiterations=res["subiterations"],
            converged=res["converged"],
            movement_history=list(res["movement_history"]),
            timings=dict(res["timings"]),
            params=params,
            tiles_resolved=res.get("tiles_resolved"),
        )
    return FrameRecord(
        stream_id=payload["stream_id"],
        frame_index=payload["frame_index"],
        ok=payload["ok"],
        result=result,
        error=payload.get("error"),
        error_type=payload.get("error_type"),
        warm_started=payload.get("warm_started", False),
        elapsed_s=payload.get("elapsed_s", 0.0),
        worker_pid=payload.get("worker_pid", 0),
        kernel_backend=payload.get("kernel_backend"),
        n_threads=payload.get("n_threads"),
        attempts=payload.get("attempts", 1),
        quarantined=payload.get("quarantined", False),
        demoted_from=payload.get("demoted_from"),
        transport=payload.get("transport"),
    )


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------
class CheckpointJournal:
    """Append-only JSONL journal of finalized frame records.

    ``start`` truncates and writes the header; ``open_append`` continues
    an existing journal (the resume path). Each ``append`` is one
    ``write`` + ``flush`` + ``fsync``-free line — cheap, and a torn
    final line is tolerated by the loader.
    """

    def __init__(self, path, fh):
        self.path = Path(path)
        self._fh = fh
        self.frames_journaled = 0

    @classmethod
    def start(cls, path, params) -> "CheckpointJournal":
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(path, "w", encoding="utf-8")
        header = {
            "ev": "journal",
            "version": JOURNAL_VERSION,
            "fingerprint": params_fingerprint(params),
        }
        fh.write(json.dumps(header) + "\n")
        fh.flush()
        return cls(path, fh)

    @classmethod
    def open_append(cls, path, params) -> "CheckpointJournal":
        path = Path(path)
        load_journal(path, params)  # validates header + fingerprint
        return cls(path, open(path, "a", encoding="utf-8"))

    def append(self, record) -> None:
        self._fh.write(json.dumps(record_to_json(record)) + "\n")
        self._fh.flush()
        self.frames_journaled += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def load_journal(path, params=None) -> list:
    """Read a journal back into :class:`FrameRecord` objects.

    Verifies the header (and, when ``params`` is given, the params
    fingerprint). A truncated or corrupt trailing line is dropped with
    the records before it kept; corruption anywhere *else* raises — a
    mid-file hole means the journal cannot be trusted.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint journal at {path}")
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise CheckpointError(f"checkpoint journal {path} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint journal {path} has a corrupt header"
        ) from exc
    if header.get("ev") != "journal":
        raise CheckpointError(
            f"{path} is not a checkpoint journal (missing header)"
        )
    if header.get("version") != JOURNAL_VERSION:
        raise CheckpointError(
            f"checkpoint journal version {header.get('version')} is not "
            f"supported (expected {JOURNAL_VERSION})"
        )
    if params is not None:
        expected = params_fingerprint(params)
        if header.get("fingerprint") != expected:
            raise CheckpointError(
                "checkpoint journal was written with different parameters "
                f"(journal fingerprint {header.get('fingerprint')}, current "
                f"{expected}); resume requires identical SlicParams"
            )
    records = []
    for i, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            records.append(record_from_json(payload, params=params))
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            if i == len(lines):  # torn final write: drop it, keep the rest
                break
            raise CheckpointError(
                f"checkpoint journal {path} is corrupt at line {i}"
            ) from exc
    return records


def completed_prefixes(records) -> dict:
    """Per-stream contiguous completed prefixes of journaled records.

    Returns ``{stream_id: [record, ...]}`` where each list covers frame
    indices ``0..k-1`` with no gaps, in order. Records after a gap are
    ignored (they will be recomputed).
    """
    by_stream = {}
    for rec in records:
        by_stream.setdefault(rec.stream_id, []).append(rec)
    prefixes = {}
    for sid, recs in by_stream.items():
        recs.sort(key=lambda r: r.frame_index)
        prefix = []
        for expected, rec in enumerate(recs):
            if rec.frame_index != expected:
                break
            prefix.append(rec)
        prefixes[sid] = prefix
    return prefixes
