"""Soft-error quality impact: what a scratchpad bit-flip costs in BR/USE.

:mod:`repro.hw.cyclesim` models *how many* scratchpad reads a frame
performs and how many of the resulting bit flips parity would catch
(:class:`~repro.hw.cyclesim.SoftErrorModel`). This module answers the
complementary question — what a *silent* (undetected) flip does to
segmentation quality — by injecting the same seeded bit flips into the
8-bit pixel datapath of a real segmentation run and measuring the
boundary-recall / undersegmentation-error deltas against the clean run
on the same synthetic scene.

The injection site is the uint8 image the accelerator would hold in its
channel scratchpads: each sampled flip XORs one bit of one byte. This is
the faithful software analog of a scratchpad read upset — downstream
stages consume the corrupted value exactly as the hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ResilienceError

__all__ = ["SoftErrorQuality", "flip_bits", "soft_error_quality_delta"]


@dataclass(frozen=True)
class SoftErrorQuality:
    """BR/USE impact of seeded datapath bit flips on one scene."""

    bit_error_rate: float
    seed: int
    n_bits_flipped: int
    boundary_recall_clean: float
    boundary_recall_faulty: float
    undersegmentation_clean: float
    undersegmentation_faulty: float

    @property
    def boundary_recall_delta(self) -> float:
        return self.boundary_recall_faulty - self.boundary_recall_clean

    @property
    def undersegmentation_delta(self) -> float:
        return self.undersegmentation_faulty - self.undersegmentation_clean


def flip_bits(data: np.ndarray, bit_error_rate: float, seed: int):
    """Return a copy of uint8 ``data`` with seeded random bit flips.

    Each of the ``data.size * 8`` bits flips independently with
    probability ``bit_error_rate`` — the same Bernoulli field
    :class:`repro.hw.cyclesim.SoftErrorModel` integrates analytically.
    Returns ``(flipped, n_flips)``.
    """
    if data.dtype != np.uint8:
        raise ResilienceError(
            f"bit flips are injected into the uint8 datapath, got {data.dtype}"
        )
    if not (0.0 <= bit_error_rate <= 1.0):
        raise ResilienceError(
            f"bit_error_rate must be in [0, 1], got {bit_error_rate}"
        )
    rng = np.random.default_rng(seed)
    total_bits = data.size * 8
    n_flips = int(rng.binomial(total_bits, bit_error_rate))
    out = data.copy()
    if n_flips == 0:
        return out, 0
    positions = rng.choice(total_bits, size=n_flips, replace=False)
    flat = out.reshape(-1)
    np.bitwise_xor.at(
        flat, positions // 8, (1 << (positions % 8)).astype(np.uint8)
    )
    return out, n_flips


def soft_error_quality_delta(
    bit_error_rate: float,
    seed: int = 0,
    height: int = 80,
    width: int = 120,
    params=None,
):
    """Measure the BR/USE deltas silent bit flips cause on one scene.

    Segments a deterministic synthetic scene twice — clean, and with
    every scratchpad byte subjected to seeded bit flips at
    ``bit_error_rate`` — and scores both against the scene's ground
    truth. Deterministic in ``(bit_error_rate, seed, height, width,
    params)``.
    """
    from ..core.engine import run_segmentation
    from ..core.params import SlicParams
    from ..data import SceneConfig, generate_scene
    from ..metrics import boundary_recall, undersegmentation_error
    from ..types import as_uint8_rgb

    if params is None:
        params = SlicParams(
            n_superpixels=60, max_iterations=4, subsample_ratio=0.5,
            convergence_threshold=0.3,
        )
    scene = generate_scene(SceneConfig(height=height, width=width), seed=seed)
    clean_u8 = as_uint8_rgb(scene.image)
    faulty_u8, n_flips = flip_bits(clean_u8, bit_error_rate, seed)

    clean = run_segmentation(clean_u8, params)
    faulty = run_segmentation(faulty_u8, params)
    gt = scene.gt_labels
    return SoftErrorQuality(
        bit_error_rate=bit_error_rate,
        seed=seed,
        n_bits_flipped=n_flips,
        boundary_recall_clean=boundary_recall(clean.labels, gt),
        boundary_recall_faulty=boundary_recall(faulty.labels, gt),
        undersegmentation_clean=undersegmentation_error(clean.labels, gt),
        undersegmentation_faulty=undersegmentation_error(faulty.labels, gt),
    )
