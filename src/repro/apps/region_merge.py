"""Region segmentation on top of superpixels — a downstream consumer.

Section 1 motivates superpixels as a preprocessing step that "can be used
to reduce the complexity of image processing tasks later in the computer
vision pipeline", naming region segmentation among the consumers. This
module implements that consumer: a region adjacency graph (RAG) over the
superpixels, greedily merging the most color-similar neighboring regions
until a target region count (or a similarity threshold) is reached —
operating on ~K superpixel nodes instead of ~N pixels, which is exactly
the complexity reduction the paper sells.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..color import rgb_to_lab
from ..errors import ConfigurationError
from ..types import validate_label_map

__all__ = ["RegionAdjacencyGraph", "merge_regions", "RegionMergeResult"]


class RegionAdjacencyGraph:
    """Superpixel adjacency graph with mean-Lab node features.

    Nodes are superpixel labels; edges connect 4-adjacent superpixels and
    carry the Euclidean distance between mean Lab colors. Merging
    contracts an edge, area-weight-averaging the colors.
    """

    def __init__(self, labels: np.ndarray, image: np.ndarray):
        labels = validate_label_map(labels)
        if image.shape[:2] != labels.shape:
            raise ConfigurationError(
                f"image {image.shape[:2]} vs labels {labels.shape} mismatch"
            )
        lab = rgb_to_lab(image)
        n = int(labels.max()) + 1
        flat = labels.ravel()
        counts = np.maximum(np.bincount(flat, minlength=n), 1)
        means = np.stack(
            [
                np.bincount(flat, weights=lab[..., c].ravel(), minlength=n) / counts
                for c in range(3)
            ],
            axis=1,
        )
        self.n_nodes = n
        self.areas = np.bincount(flat, minlength=n).astype(np.float64)
        self.means = means
        self.adjacency = self._build_adjacency(labels)

    @staticmethod
    def _build_adjacency(labels: np.ndarray) -> dict:
        adjacency = {}
        horiz = labels[:, 1:] != labels[:, :-1]
        vert = labels[1:, :] != labels[:-1, :]
        pairs = np.concatenate(
            [
                np.stack([labels[:, 1:][horiz], labels[:, :-1][horiz]], axis=1),
                np.stack([labels[1:, :][vert], labels[:-1, :][vert]], axis=1),
            ]
        )
        for a, b in np.unique(np.sort(pairs, axis=1), axis=0):
            adjacency.setdefault(int(a), set()).add(int(b))
            adjacency.setdefault(int(b), set()).add(int(a))
        return adjacency

    def edge_weight(self, a: int, b: int) -> float:
        """Color dissimilarity between regions ``a`` and ``b``."""
        return float(np.linalg.norm(self.means[a] - self.means[b]))


@dataclass(frozen=True)
class RegionMergeResult:
    """Outcome of a RAG merge."""

    labels: np.ndarray
    n_regions: int
    merge_count: int


def merge_regions(
    labels: np.ndarray,
    image: np.ndarray,
    n_regions: int | None = None,
    max_color_distance: float | None = None,
) -> RegionMergeResult:
    """Greedily merge superpixels into larger regions.

    Repeatedly contracts the globally most color-similar RAG edge until
    either ``n_regions`` remain or the best edge exceeds
    ``max_color_distance`` (at least one stop criterion is required).

    Uses a lazy-deletion heap over edges; merged nodes forward to their
    survivor via union-find-style parents. Complexity O(E log E) on the
    superpixel graph — independent of the pixel count.
    """
    if n_regions is None and max_color_distance is None:
        raise ConfigurationError(
            "provide n_regions and/or max_color_distance as a stop criterion"
        )
    if n_regions is not None and n_regions < 1:
        raise ConfigurationError(f"n_regions must be >= 1, got {n_regions}")
    rag = RegionAdjacencyGraph(labels, image)
    n = rag.n_nodes
    parent = np.arange(n)

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return int(i)

    heap = []
    for a, neighbors in rag.adjacency.items():
        for b in neighbors:
            if a < b:
                heapq.heappush(heap, (rag.edge_weight(a, b), a, b))

    alive = n
    merges = 0
    target = n_regions if n_regions is not None else 1
    while heap and alive > target:
        weight, a, b = heapq.heappop(heap)
        ra, rb = find(a), find(b)
        if ra == rb:
            continue  # stale edge
        current = rag.edge_weight(ra, rb)
        if abs(current - weight) > 1e-9:
            # Node features changed since this edge was queued; re-queue
            # with the fresh weight (lazy update).
            heapq.heappush(heap, (current, ra, rb))
            continue
        if max_color_distance is not None and current > max_color_distance:
            break
        # Contract rb into ra: weighted mean color, union adjacency.
        wa, wb = rag.areas[ra], rag.areas[rb]
        rag.means[ra] = (rag.means[ra] * wa + rag.means[rb] * wb) / (wa + wb)
        rag.areas[ra] = wa + wb
        parent[rb] = ra
        neigh = (rag.adjacency.get(ra, set()) | rag.adjacency.get(rb, set())) - {ra, rb}
        fresh = set()
        for c in neigh:
            rc = find(c)
            if rc not in (ra,):
                fresh.add(rc)
                heapq.heappush(heap, (rag.edge_weight(ra, rc), ra, rc))
        rag.adjacency[ra] = fresh
        rag.adjacency.pop(rb, None)
        alive -= 1
        merges += 1

    roots = np.fromiter((find(i) for i in range(n)), dtype=np.int64, count=n)
    uniq, dense = np.unique(roots, return_inverse=True)
    merged = dense[validate_label_map(labels)]
    return RegionMergeResult(
        labels=merged.astype(np.int32),
        n_regions=int(len(uniq)),
        merge_count=merges,
    )
