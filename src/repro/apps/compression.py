"""Superpixel-based image abstraction / compression — a second consumer.

A superpixel decomposition is a compact image code: the label map plus one
color per superpixel reconstructs a piecewise-constant approximation. This
module implements that codec with an honest rate estimate (label map cost
from the boundary structure, palette cost per superpixel) and PSNR-based
distortion, providing the rate/distortion curve downstream systems would
evaluate preprocessing quality by.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..metrics import boundary_map
from ..types import as_uint8_rgb, validate_label_map
from ..viz import mean_color_image

__all__ = ["SuperpixelCodec", "CompressedImage", "psnr"]


def psnr(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """Peak signal-to-noise ratio (dB) between two uint8 RGB images."""
    a = as_uint8_rgb(original).astype(np.float64)
    b = as_uint8_rgb(reconstruction).astype(np.float64)
    if a.shape != b.shape:
        raise ConfigurationError(f"shape mismatch: {a.shape} vs {b.shape}")
    mse = float(((a - b) ** 2).mean())
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 ** 2 / mse)


@dataclass(frozen=True)
class CompressedImage:
    """A superpixel-coded image: labels + per-superpixel palette."""

    labels: np.ndarray
    palette: np.ndarray  # (K, 3) uint8
    shape: tuple

    @property
    def n_superpixels(self) -> int:
        return len(self.palette)

    def estimated_bits(self) -> float:
        """Rate estimate for the code.

        * palette: 24 bits per superpixel;
        * label map: coded as a boundary bitmap plus, at each boundary
          pixel, which neighbor's region continues (2 bits) — a standard
          contour-coding first-order estimate; interior pixels are free.
        """
        boundary_pixels = int(boundary_map(self.labels).sum())
        palette_bits = 24.0 * self.n_superpixels
        contour_bits = 3.0 * boundary_pixels
        header_bits = 64.0
        return palette_bits + contour_bits + header_bits

    def bits_per_pixel(self) -> float:
        h, w = self.shape
        return self.estimated_bits() / (h * w)


class SuperpixelCodec:
    """Encode an image as (labels, mean colors); decode by fill-in."""

    def encode(self, image: np.ndarray, labels: np.ndarray) -> CompressedImage:
        image = as_uint8_rgb(image)
        labels = validate_label_map(labels)
        if labels.shape != image.shape[:2]:
            raise ConfigurationError(
                f"labels {labels.shape} vs image {image.shape[:2]} mismatch"
            )
        filled = mean_color_image(image, labels)
        n = int(labels.max()) + 1
        palette = np.zeros((n, 3), dtype=np.uint8)
        # First-occurrence pixel of each superpixel carries its mean color.
        flat = labels.ravel()
        first_idx = np.zeros(n, dtype=np.int64)
        first_idx[flat[::-1]] = np.arange(flat.size - 1, -1, -1)
        palette[:] = filled.reshape(-1, 3)[first_idx]
        return CompressedImage(labels=labels.copy(), palette=palette,
                               shape=labels.shape)

    def decode(self, code: CompressedImage) -> np.ndarray:
        return code.palette[code.labels]

    def rate_distortion(self, image: np.ndarray, labels: np.ndarray) -> dict:
        """One rate/distortion point: bits-per-pixel and PSNR."""
        code = self.encode(image, labels)
        recon = self.decode(code)
        return {
            "bits_per_pixel": code.bits_per_pixel(),
            "psnr_db": psnr(image, recon),
            "n_superpixels": code.n_superpixels,
            "compression_ratio": 24.0 / code.bits_per_pixel(),
        }
