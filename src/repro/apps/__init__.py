"""Downstream applications built on the superpixel API.

The paper's introduction motivates superpixels as preprocessing for
"object classification, depth estimation, and region segmentation"; this
package implements representative consumers that exercise the public API
the way those pipelines would:

* :func:`merge_regions` — region segmentation by greedy RAG contraction
  over the superpixel graph;
* :class:`SuperpixelCodec` — superpixel-based image abstraction with a
  rate/distortion estimate.
"""

from .region_merge import RegionAdjacencyGraph, RegionMergeResult, merge_regions
from .compression import CompressedImage, SuperpixelCodec, psnr

__all__ = [
    "RegionAdjacencyGraph",
    "RegionMergeResult",
    "merge_regions",
    "SuperpixelCodec",
    "CompressedImage",
    "psnr",
]
