"""gSLIC-style SLIC — the GPU algorithm the PPA borrows its assignment from.

Section 8: "A parallel implementation for GPGPUs called gSLIC uses the
assignment of each pixel to one of the 9 closest superpixels during
initialization, then adopts the implementation of the original SLIC
algorithm. The pixel perspective (PPA) version of S-SLIC uses a similar
superpixel assignment algorithm while also applying pixel subsampling."

So gSLIC == the PPA iteration order with *no* subsampling. It exists as a
named baseline for the ablation benches (S-SLIC vs the closest prior art).
"""

from __future__ import annotations

import numpy as np

from ..core import SegmentationResult, SlicParams, sslic

__all__ = ["gslic"]


def gslic(
    image: np.ndarray, params: SlicParams = None, **overrides
) -> SegmentationResult:
    """Run gSLIC-style (pixel-perspective, full-image) SLIC.

    Accepts the same parameters as :func:`repro.core.sslic`; the
    architecture is forced to PPA and the subsample ratio to 1.
    """
    forced = dict(overrides)
    forced["architecture"] = "ppa"
    forced["subsample_ratio"] = 1.0
    return sslic(image, params, **forced)
