"""Device specification sheets for the paper's comparison platforms.

Table 5 compares the accelerator against SLIC running on a Tesla K20
(server GPU) and a Tegra K1 (mobile SoC GPU); the CPU context numbers come
from an Intel i7-4600M. We cannot measure that silicon, so each spec sheet
carries the published hardware parameters *and* the paper's measured
operating points; the roofline model in :mod:`repro.baselines.gpu_model`
is calibrated per device through a single ``efficiency`` factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["DeviceSpec", "TESLA_K20", "TEGRA_K1", "CORE_I7_4600M"]


@dataclass(frozen=True)
class DeviceSpec:
    """A compute platform: peak capabilities plus measured SLIC behaviour.

    Attributes
    ----------
    name, technology, voltage:
        Identity and process node (the GPUs are 28 nm at 0.81 V).
    cores, clock_hz:
        Execution resources ("CUDA cores" for the GPUs).
    peak_gflops, mem_bandwidth_gbs:
        Single-precision peak and DRAM bandwidth.
    on_chip_kb:
        Total on-chip storage (register files + scratchpads + caches) —
        Table 5's "On-chip memory" row.
    avg_power_w:
        Measured average power while running SLIC (Table 5).
    slic_efficiency:
        Fraction of the roofline bound the measured SLIC implementation
        achieves — the one calibrated constant per device
        (``predicted = bound / efficiency``).
    """

    name: str
    technology: str
    voltage: float
    cores: int
    clock_hz: float
    peak_gflops: float
    mem_bandwidth_gbs: float
    on_chip_kb: float
    avg_power_w: float
    slic_efficiency: float

    def __post_init__(self) -> None:
        if self.cores < 1 or self.clock_hz <= 0:
            raise ConfigurationError(f"{self.name}: invalid core/clock spec")
        if not (0.0 < self.slic_efficiency <= 1.0):
            raise ConfigurationError(
                f"{self.name}: efficiency must be in (0, 1], got {self.slic_efficiency}"
            )


#: NVIDIA Tesla K20: 13 SMX x 192 = 2496 cores @ 706 MHz, 208 GB/s GDDR5.
#: On-chip 6320 kB (Table 5). Efficiency calibrated to the measured 22.3 ms
#: per 1080p frame at K = 5000.
TESLA_K20 = DeviceSpec(
    name="Tesla K20",
    technology="28nm",
    voltage=0.81,
    cores=2496,
    clock_hz=706e6,
    peak_gflops=3520.0,
    mem_bandwidth_gbs=208.0,
    on_chip_kb=6320.0,
    avg_power_w=86.0,
    slic_efficiency=0.2146,
)

#: NVIDIA Tegra K1: 192 cores @ 852 MHz, ~14.9 GB/s shared LPDDR3.
#: The paper measured 2713 ms per frame — far below the roofline bound
#: (the mobile memory system is shared with the CPU and the kernel mix is
#: latency-bound), hence the small calibrated efficiency.
TEGRA_K1 = DeviceSpec(
    name="TK1",
    technology="28nm",
    voltage=0.81,
    cores=192,
    clock_hz=852e6,
    peak_gflops=327.0,
    mem_bandwidth_gbs=14.9,
    on_chip_kb=368.0,
    avg_power_w=0.332,
    slic_efficiency=0.02462,
)

#: Intel Core i7-4600M (the CPU of Fig 2 / Table 1): 2C/4T @ 2.9-3.6 GHz.
#: The paper quotes 5500 ms for SLIC on a 1080p frame.
CORE_I7_4600M = DeviceSpec(
    name="Core i7-4600M",
    technology="22nm",
    voltage=1.0,
    cores=2,
    clock_hz=2.9e9,
    peak_gflops=92.8,
    mem_bandwidth_gbs=25.6,
    on_chip_kb=4096.0,
    avg_power_w=37.0,
    slic_efficiency=0.0075,
)
