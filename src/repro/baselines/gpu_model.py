"""Roofline model of GPU SLIC plus the Table 5 platform comparison.

The paper measured SLIC on real K20/TK1 hardware; this module substitutes
an analytical model (see DESIGN.md):

1. per-frame work: ``iterations`` cluster updates, each moving the PPA
   traffic profile's bytes and executing its operations (in float32 —
   ~4 FLOPs per compound op once loads/stores are separate instructions);
2. the roofline bound is ``max(compute_time, memory_time)``;
3. the measured latency is ``bound / efficiency`` with one per-device
   calibrated efficiency (GPU SLIC is scatter-heavy and atomics-bound, so
   achieved efficiency is far below peak — especially on the TK1's shared
   LPDDR).

Energy and the process normalization then follow the paper's own
arithmetic: energy/frame = average power x latency; 28 nm power is scaled
to 16 nm by 1/2.2 (1.25 for voltage^2 x 1.75 for capacitance).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..hw.tech import process_normalization_factor
from ..hw.traffic import ppa_profile
from .devices import TEGRA_K1, TESLA_K20, DeviceSpec

__all__ = ["GpuSlicModel", "PlatformRow", "table5_comparison"]

#: float32 FLOPs per compound distance op on a load/store architecture.
_FLOPS_PER_OP = 4.0


@dataclass(frozen=True)
class PlatformRow:
    """One column of Table 5."""

    name: str
    algorithm: str
    technology: str
    on_chip_kb: float
    cores: int
    avg_power_w: float
    norm_power_w: float
    latency_ms: float
    energy_per_frame_mj_norm: float

    @property
    def fps(self) -> float:
        return 1000.0 / self.latency_ms

    @property
    def real_time(self) -> bool:
        return self.fps >= 30.0


class GpuSlicModel:
    """Predict SLIC latency/energy for one GPU device."""

    def __init__(self, device: DeviceSpec, iterations: int = 10):
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        self.device = device
        self.iterations = iterations

    def roofline_bound_ms(self, n_pixels: int, n_superpixels: int) -> float:
        """Best-case frame time from peak FLOPs and bandwidth."""
        profile = ppa_profile(n_pixels, n_superpixels)
        flops = profile.ops_per_iteration * _FLOPS_PER_OP * self.iterations
        compute_s = flops / (self.device.peak_gflops * 1e9)
        bytes_total = profile.memory_bytes_per_iteration * self.iterations
        memory_s = bytes_total / (self.device.mem_bandwidth_gbs * 1e9)
        return 1e3 * max(compute_s, memory_s)

    def predict_latency_ms(self, n_pixels: int, n_superpixels: int) -> float:
        """Roofline bound degraded by the calibrated efficiency."""
        return self.roofline_bound_ms(n_pixels, n_superpixels) / self.device.slic_efficiency

    def bound_type(self, n_pixels: int, n_superpixels: int) -> str:
        """Which roofline wall binds this device ("memory" or "compute")."""
        profile = ppa_profile(n_pixels, n_superpixels)
        flops = profile.ops_per_iteration * _FLOPS_PER_OP
        compute_s = flops / (self.device.peak_gflops * 1e9)
        memory_s = profile.memory_bytes_per_iteration / (
            self.device.mem_bandwidth_gbs * 1e9
        )
        return "memory" if memory_s >= compute_s else "compute"

    def platform_row(self, n_pixels: int, n_superpixels: int) -> PlatformRow:
        """This device's Table 5 column (28 nm -> 16 nm normalized)."""
        latency_ms = self.predict_latency_ms(n_pixels, n_superpixels)
        norm = process_normalization_factor()
        norm_power = self.device.avg_power_w / norm
        return PlatformRow(
            name=self.device.name,
            algorithm="SLIC",
            technology=f"{self.device.technology} ({self.device.voltage}V)",
            on_chip_kb=self.device.on_chip_kb,
            cores=self.device.cores,
            avg_power_w=self.device.avg_power_w,
            norm_power_w=norm_power,
            latency_ms=latency_ms,
            energy_per_frame_mj_norm=norm_power * latency_ms,  # W*ms = mJ
        )


def table5_comparison(accel_report, n_superpixels: int = 5000) -> dict:
    """Build Table 5: K20 and TK1 rows plus this work's accelerator row.

    ``accel_report`` is an :class:`~repro.hw.accelerator.AcceleratorReport`
    (typically the 1080p Table 4 configuration). Returns the rows plus the
    headline efficiency ratios the abstract quotes (>500x vs K20, >250x vs
    TK1).
    """
    n_pixels = accel_report.config.n_pixels
    k20 = GpuSlicModel(TESLA_K20).platform_row(n_pixels, n_superpixels)
    tk1 = GpuSlicModel(TEGRA_K1).platform_row(n_pixels, n_superpixels)
    accel_energy_mj = accel_report.energy_per_frame_mj
    this_work = PlatformRow(
        name="This Work",
        algorithm="S-SLIC",
        technology="16nm (0.72V)",
        on_chip_kb=accel_report.on_chip_kb,
        cores=accel_report.config.n_cores,
        avg_power_w=accel_report.power_mw * 1e-3,
        norm_power_w=accel_report.power_mw * 1e-3,  # already 16 nm
        latency_ms=accel_report.latency_ms,
        energy_per_frame_mj_norm=accel_energy_mj,
    )
    return {
        "rows": {"Tesla K20": k20, "TK1": tk1, "This Work": this_work},
        "efficiency_vs_k20": k20.energy_per_frame_mj_norm / accel_energy_mj,
        "efficiency_vs_tk1": tk1.energy_per_frame_mj_norm / accel_energy_mj,
    }
