"""Comparison baselines: GPU platform models, gSLIC, Preemptive SLIC."""

from .devices import CORE_I7_4600M, TEGRA_K1, TESLA_K20, DeviceSpec
from .gpu_model import GpuSlicModel, PlatformRow, table5_comparison
from .gslic import gslic
from .preemptive import preemptive_slic, preemptive_sslic

__all__ = [
    "DeviceSpec",
    "TESLA_K20",
    "TEGRA_K1",
    "CORE_I7_4600M",
    "GpuSlicModel",
    "PlatformRow",
    "table5_comparison",
    "gslic",
    "preemptive_slic",
    "preemptive_sslic",
]
