"""Preemptive SLIC (Neubert & Protzel, ICPR 2014) — related-work baseline.

Section 8: "Preemptive SLIC optimizes computation by halting the update of
individual clusters when there is little to no difference in the cluster
center location. [...] The optimization of Preemptive SLIC is orthogonal to
those performed by S-SLIC. While the two techniques could be combined, the
analysis of this combined algorithm is beyond the scope of this work."

This module implements both the baseline and that "beyond scope"
combination (the library's extension experiment):

* :func:`preemptive_slic` — CPA SLIC where a cluster whose center moved
  less than ``preemption_threshold`` pixels in the previous iteration is
  *frozen*: its window is not rescanned and its center not recomputed.
  A frozen cluster thaws if any neighbor-ish activity is irrelevant here —
  following the original paper we keep freezing monotone per iteration
  (a cluster may re-activate if its center is moved by losing pixels to an
  active neighbor's scan).
* :func:`preemptive_sslic` — the same preemption test applied per full
  sweep on top of S-SLIC's pixel subsampling.
"""

from __future__ import annotations

import numpy as np

from ..color import rgb_to_lab
from ..core import SegmentationResult, SlicParams, sslic
from ..core.accumulators import SigmaAccumulator, center_movement
from ..core.assignment import assign_cpa
from ..core.connectivity import enforce_connectivity
from ..core.distance import spatial_weight
from ..core.initialization import grid_geometry, initial_centers, perturb_centers
from ..core.neighbors import tile_map
from ..core.profiles import PhaseTimer
from ..errors import ConfigurationError
from ..types import validate_rgb_image

__all__ = ["preemptive_slic", "preemptive_sslic"]


def preemptive_slic(
    image: np.ndarray,
    params: SlicParams = None,
    preemption_threshold: float = 0.25,
    **overrides,
) -> SegmentationResult:
    """CPA SLIC with per-cluster preemption.

    Returns a normal :class:`SegmentationResult`; the number of
    window-scan operations actually performed is recorded in
    ``result.timings["scans_performed"]``-style bookkeeping via the
    ``movement_history`` (one entry per iteration) and the
    ``active_history`` attribute attached to the result.
    """
    if params is None:
        params = SlicParams()
    if overrides:
        params = params.with_(**overrides)
    if preemption_threshold < 0:
        raise ConfigurationError("preemption_threshold must be >= 0")
    validate_rgb_image(image)
    timer = PhaseTimer()

    with timer.phase("color_conversion"):
        lab = rgb_to_lab(image)
    h, w = lab.shape[:2]

    with timer.phase("initialization"):
        centers = initial_centers(lab, params.n_superpixels)
        if params.perturb_centers:
            centers = perturb_centers(centers, lab)
        n_clusters = len(centers)
        grid_h, grid_w, _, _ = grid_geometry((h, w), params.n_superpixels)
        s = float(np.sqrt(h * w / n_clusters))
        weight = spatial_weight(params.compactness, s)
        labels_buf = tile_map((h, w), grid_h, grid_w).astype(np.int32)
        dist_buf = np.full((h, w), np.inf, dtype=np.float64)
        yy, xx = np.mgrid[0:h, 0:w]
        lab5 = np.concatenate(
            [
                lab.reshape(-1, 3),
                xx.reshape(-1, 1).astype(np.float64),
                yy.reshape(-1, 1).astype(np.float64),
            ],
            axis=1,
        )

    acc = SigmaAccumulator(n_clusters)
    active = np.ones(n_clusters, dtype=bool)
    movement_history = []
    active_history = []
    converged = False
    iterations = 0
    for _ in range(params.max_iterations):
        active_idx = np.flatnonzero(active)
        if len(active_idx) == 0:
            converged = True
            break
        iterations += 1
        active_history.append(len(active_idx))
        with timer.phase("distance_min"):
            # The preemption invariant: a frozen cluster's center has not
            # moved, so the distances stored for its pixels are still
            # valid — only pixels owned by *active* clusters need their
            # running minima invalidated before the rescan. An active
            # cluster can still legitimately steal a frozen cluster's
            # pixel by beating its stored (valid) distance.
            owned_by_active = active[labels_buf]
            dist_buf[owned_by_active] = np.inf
            assign_cpa(
                lab,
                centers,
                weight,
                s,
                dist_buf,
                labels_buf,
                cluster_indices=active_idx,
            )
        with timer.phase("center_update"):
            acc.reset()
            acc.add(lab5, labels_buf.ravel())
            new_centers = acc.compute_centers(fallback=centers)
        per_cluster_move = np.sqrt(
            ((new_centers[:, 3:5] - centers[:, 3:5]) ** 2).sum(axis=1)
        )
        active_move = float(per_cluster_move[active].mean())
        movement_history.append(active_move)
        # Only active clusters update; freezing is monotone (the original
        # Preemptive SLIC never thaws a halted cluster).
        centers[active] = new_centers[active]
        newly_frozen = active & (per_cluster_move < preemption_threshold)
        active = active & ~newly_frozen
        if not active.any():
            converged = True
            break
        if (
            params.convergence_threshold > 0
            and active_move < params.convergence_threshold
        ):
            converged = True
            break

    labels = labels_buf
    if params.enforce_connectivity:
        with timer.phase("connectivity"):
            min_size = max(1, int(params.min_size_factor * s * s))
            labels = enforce_connectivity(labels, min_size)

    result = SegmentationResult(
        labels=labels.astype(np.int32),
        centers=centers,
        n_superpixels=n_clusters,
        iterations=iterations,
        subiterations=iterations,
        converged=converged,
        movement_history=movement_history,
        timings=timer.as_dict(),
        params=params,
    )
    # Extension bookkeeping: window scans per iteration (K for plain SLIC).
    result.active_history = active_history
    return result


def preemptive_sslic(
    image: np.ndarray,
    params: SlicParams = None,
    preemption_threshold: float = 0.25,
    **overrides,
) -> SegmentationResult:
    """The paper's "beyond scope" combination: subsampling + preemption.

    Runs S-SLIC sweep by sweep; after each full sweep, clusters whose
    centers moved less than ``preemption_threshold`` stop being updated
    (their members keep their labels). Implemented by running S-SLIC with
    one-sweep granularity and masking center updates of frozen clusters.
    """
    if params is None:
        params = SlicParams(subsample_ratio=0.5)
    if overrides:
        params = params.with_(**overrides)
    if preemption_threshold < 0:
        raise ConfigurationError("preemption_threshold must be >= 0")
    # Sweep-at-a-time driver: run S-SLIC one full sweep at a time,
    # warm-starting each sweep from the previous state. After every sweep,
    # frozen clusters (spatial movement below the threshold) have their
    # centers pinned back, so the next sweep's distance comparisons see
    # them unchanged — the compute a real implementation would skip.
    image = np.asarray(image)
    sweeps_budget = params.max_iterations
    one_sweep = params.with_(
        max_iterations=1, convergence_threshold=0.0, enforce_connectivity=False
    )
    centers = None
    labels = None
    frozen = None
    total_subs = 0
    active_history = []
    result = None
    for _ in range(sweeps_budget):
        result = sslic(image, one_sweep, warm_centers=centers, warm_labels=labels)
        total_subs += result.subiterations
        new_centers = result.centers
        if centers is not None:
            move = np.sqrt(
                ((new_centers[:, 3:5] - centers[:, 3:5]) ** 2).sum(axis=1)
            )
            newly_frozen = move < preemption_threshold
            frozen = newly_frozen if frozen is None else (frozen | newly_frozen)
            # Pin frozen centers to their pre-sweep values.
            new_centers[frozen] = centers[frozen]
            active_history.append(int((~frozen).sum()))
            if frozen.all():
                centers = new_centers
                labels = result.labels
                break
        else:
            active_history.append(result.n_superpixels)
        centers = new_centers
        labels = result.labels
    # Final connectivity pass on the converged labels.
    final_labels = result.labels
    if params.enforce_connectivity:
        h, w = final_labels.shape
        s = float(np.sqrt(h * w / result.n_superpixels))
        min_size = max(1, int(params.min_size_factor * s * s))
        final_labels = enforce_connectivity(final_labels, min_size)
    out = SegmentationResult(
        labels=final_labels.astype(np.int32),
        centers=centers,
        n_superpixels=result.n_superpixels,
        iterations=len(active_history),
        subiterations=total_subs,
        converged=bool(frozen is not None and frozen.all()),
        movement_history=result.movement_history,
        timings=result.timings,
        params=params,
    )
    out.active_history = active_history
    return out
