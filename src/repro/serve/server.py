"""The asyncio HTTP front end: superpixels as an overload-safe service.

A deliberately small stdlib-only HTTP/1.1 server (``asyncio.start_server``
plus a hand-rolled request parser — no framework dependency) whose whole
reason to exist is *robust overload behavior*:

* every frame request passes through the :class:`AdmissionController`
  first — the queue is bounded, excess load is shed with ``429`` and a
  ``Retry-After`` derived from the observed service time, and requests
  whose deadline is already infeasible are rejected at admission;
* a :class:`CircuitBreaker` fed by frame failures and *new* kernel
  supervisor demotions refuses work up front (``503``) while the
  backend is suspect;
* a :class:`DegradeController` steps the quality ladder down under
  sustained queue pressure — every degraded response carries
  ``X-Repro-Degraded: true`` plus ``degraded``/``quality_rung`` body
  fields and increments ``serve.degraded``;
* ``SIGTERM`` triggers a drain: readiness fails first, new frame work is
  refused with ``503 draining``, in-flight frames complete, then the
  listener closes.

Endpoints::

    POST   /v1/segment                one-shot (cold) segmentation
    POST   /v1/streams/{id}/frames    warm-started per-stream frames
    DELETE /v1/streams/{id}           drop a stream's warm state
    GET    /healthz                   liveness (200 while the loop runs)
    GET    /readyz                    readiness (503 when draining/open)
    GET    /metrics                   Prometheus text (repro.obs.export)

Request bodies are JSON. The image arrives either as raw bytes
(``image_b64`` = base64 of H*W*3 uint8 RGB, with ``height``/``width``)
or as a recipe (``synthetic: {seed, height, width}`` rendered through
``repro.data.generate_scene`` — which is what lets the CI smoke job
drive the server from curl alone). ``deadline_ms`` bounds the request
end to end; ``params`` may override a safe subset of
:class:`~repro.core.params.SlicParams`; ``return_labels`` opts into the
full label map (responses always carry ``labels_sha256``, so clients —
and our bit-identity tests — can verify output without shipping it).
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import hashlib
import json
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.params import SlicParams
from ..errors import ConfigurationError, ReproError, StreamError
from ..obs import Tracer, render_prometheus
from ..parallel.records import FrameTask
from .admission import AdmissionController, CircuitBreaker, ServiceTimeTracker
from .degrade import DEFAULT_LADDER, DegradeController
from .executor import ServeExecutor
from .sessions import SessionRegistry

__all__ = ["ServeConfig", "SuperpixelServer", "BackgroundServer"]

#: Latency histogram buckets (seconds) — tuned for frame-sized work.
LATENCY_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: SlicParams fields a request body may override. Deliberately narrow:
#: only knobs that change *this request's* quality/cost trade, never the
#: execution substrate (backend, threads) the operator configured.
_PARAM_OVERRIDES = (
    "n_superpixels", "compactness", "max_iterations", "subsample_ratio",
)

_MAX_HEADER_BYTES = 32 * 1024


def labels_digest(labels: np.ndarray) -> str:
    """Canonical SHA-256 of a label map: little-endian int32 raster."""
    return hashlib.sha256(
        np.ascontiguousarray(labels, dtype="<i4").tobytes()
    ).hexdigest()


@dataclass
class ServeConfig:
    """Everything the server needs, in one bag the CLI can fill.

    ``default_deadline_ms`` applies when a request does not carry its
    own ``deadline_ms``; ``None`` means no deadline unless requested.
    """

    host: str = "127.0.0.1"
    port: int = 0
    params: SlicParams = field(default_factory=SlicParams)
    exec_mode: str = "thread"
    n_workers: int = 1
    max_queue: int = 8
    default_deadline_ms: float | None = None
    degrade_enabled: bool = True
    overload_ratio: float = 0.75
    recover_ratio: float = 0.25
    degrade_hold_s: float = 2.0
    breaker_threshold: int = 5
    breaker_reset_s: float = 5.0
    max_sessions: int = 64
    session_ttl_s: float | None = 300.0
    drain_timeout_s: float = 10.0
    max_body_bytes: int = 32 * 1024 * 1024
    service_time_prior_s: float = 0.05


class _HttpError(Exception):
    """Internal: carries (status, payload, headers) up to the dispatcher."""

    def __init__(self, status: int, payload: dict, headers=None):
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload
        self.headers = headers or {}


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class SuperpixelServer:
    """The serving front end; construct, ``await start()``, ``await drain()``."""

    def __init__(self, config: ServeConfig | None = None, tracer=None,
                 clock=time.monotonic):
        self.config = config if config is not None else ServeConfig()
        # The server always keeps live metrics (that is what /metrics
        # serves); an enabled tracer over a NullSink records metrics
        # without writing span events anywhere.
        self.tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.clock = clock
        cfg = self.config
        tracker = ServiceTimeTracker(prior_s=cfg.service_time_prior_s)
        self.admission = AdmissionController(
            max_queue=cfg.max_queue, n_workers=cfg.n_workers,
            tracker=tracker, clock=clock,
        )
        self.breaker = CircuitBreaker(
            threshold=cfg.breaker_threshold,
            reset_after_s=cfg.breaker_reset_s, clock=clock,
        )
        self.degrade = DegradeController(
            ladder=DEFAULT_LADDER, enabled=cfg.degrade_enabled,
            overload_ratio=cfg.overload_ratio,
            recover_ratio=cfg.recover_ratio,
            hold_s=cfg.degrade_hold_s, clock=clock,
        )
        self.sessions = SessionRegistry(
            cfg.params, max_sessions=cfg.max_sessions,
            ttl_s=cfg.session_ttl_s, clock=clock,
        )
        self.executor = ServeExecutor(
            mode=cfg.exec_mode, n_workers=cfg.n_workers, tracer=self.tracer,
        )
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._drained = asyncio.Event()
        self._adhoc_counter = 0
        self._seen_demotions: set = set()
        self._started_at = None
        self._connections: set = set()
        self._last_shed: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            raise ConfigurationError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        if self._server is not None:
            raise ConfigurationError("server is already started")
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port,
                limit=_MAX_HEADER_BYTES,
            )
        except OSError as exc:
            raise ConfigurationError(
                f"cannot bind {self.config.host}:{self.config.port}: {exc}"
            ) from exc
        self._started_at = self.clock()

    async def drain(self, timeout_s: float | None = None) -> bool:
        """Graceful shutdown: fail readiness, finish in-flight, close.

        Order matters and is load-balancer-shaped: (1) flip draining so
        ``/readyz`` fails and new frame work gets ``503``; (2) wait for
        every admitted request to release (bounded by the timeout);
        (3) close the listener and the executor. Returns ``True`` when
        all in-flight frames completed inside the timeout.
        """
        timeout_s = (
            self.config.drain_timeout_s if timeout_s is None else timeout_s
        )
        self._draining = True
        if self.admission.outstanding == 0:
            self._drained.set()
        clean = True
        try:
            await asyncio.wait_for(self._drained.wait(), timeout=timeout_s)
        except asyncio.TimeoutError:
            clean = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections are parked in readuntil(); close
        # their transports so every handler task unwinds before the
        # loop is allowed to stop.
        for writer in list(self._connections):
            try:
                writer.close()
            except Exception:
                pass
        deadline = self.clock() + 1.0
        while self._connections and self.clock() < deadline:
            await asyncio.sleep(0.01)
        self.executor.close()
        self.tracer.count("serve.drains", labels={
            "clean": "true" if clean else "false",
        })
        return clean

    async def serve_forever(self) -> None:
        """Serve until :meth:`drain` (or cancellation) closes the listener."""
        server = self._server
        if server is None:
            raise ConfigurationError("server is not started")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            # drain() closing the listener cancels serve_forever — that
            # is the normal shutdown path, not an error.
            pass

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    ConnectionError,
                ):
                    return
                try:
                    method, path, headers = _parse_head(head)
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "malformed request"},
                        close=True,
                    )
                    return
                body = b""
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    length = -1
                if length < 0:  # non-numeric or negative: both are 400s
                    await self._respond(
                        writer, 400, {"error": "invalid Content-Length"},
                        close=True,
                    )
                    return
                if length:
                    if length > self.config.max_body_bytes:
                        await self._respond(
                            writer, 413,
                            {"error": (
                                f"body of {length} bytes exceeds the "
                                f"{self.config.max_body_bytes}-byte limit"
                            )},
                            close=True,
                        )
                        return
                    try:
                        body = await reader.readexactly(length)
                    except asyncio.IncompleteReadError:
                        return
                close = headers.get("connection", "").lower() == "close"
                status, payload, extra = await self._dispatch(
                    method, path, body
                )
                await self._respond(
                    writer, status, payload, headers=extra, close=close
                )
                if close:
                    return
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _respond(self, writer, status: int, payload, headers=None,
                       close: bool = False) -> None:
        if isinstance(payload, (dict, list)):
            body = (json.dumps(payload) + "\n").encode()
            ctype = "application/json"
        else:
            body = payload if isinstance(payload, bytes) else str(
                payload).encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for key, val in (headers or {}).items():
            lines.append(f"{key}: {val}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
        try:
            await writer.drain()
        except ConnectionError:
            pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str, body: bytes):
        """Route one request; returns ``(status, payload, extra_headers)``."""
        endpoint, handler, args = self._route(method, path)
        try:
            status, payload, extra = await handler(body, *args)
        except _HttpError as exc:
            status, payload, extra = exc.status, exc.payload, exc.headers
        except ReproError as exc:
            status, payload, extra = 500, {
                "error": str(exc), "error_type": type(exc).__name__,
            }, {}
        except Exception as exc:  # noqa: BLE001 - the server must answer
            status, payload, extra = 500, {
                "error": str(exc), "error_type": type(exc).__name__,
            }, {}
        self.tracer.count("serve.requests", labels={
            "endpoint": endpoint, "status": str(status),
        })
        return status, payload, extra

    def _route(self, method: str, path: str):
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return "healthz", self._handle_healthz, ()
        if path == "/readyz" and method == "GET":
            return "readyz", self._handle_readyz, ()
        if path == "/metrics" and method == "GET":
            return "metrics", self._handle_metrics, ()
        if path == "/v1/segment" and method == "POST":
            return "segment", self._handle_segment, (None,)
        parts = [p for p in path.split("/") if p]
        if len(parts) == 4 and parts[:2] == ["v1", "streams"] and (
            parts[3] == "frames" and method == "POST"
        ):
            return "stream_frame", self._handle_segment, (parts[2],)
        if len(parts) == 3 and parts[:2] == ["v1", "streams"] and (
            method == "DELETE"
        ):
            return "stream_delete", self._handle_stream_delete, (parts[2],)
        return "unknown", self._handle_unknown, (method, path)

    async def _handle_unknown(self, body, method, path):
        return 404, {"error": f"no route for {method} {path}"}, {}

    async def _handle_healthz(self, body):
        return 200, {"status": "ok", "uptime_s": round(
            self.clock() - self._started_at, 3
        ) if self._started_at is not None else 0.0}, {}

    async def _handle_readyz(self, body):
        breaker_state = self.breaker.state
        if self._draining:
            return 503, {"ready": False, "reason": "draining"}, {}
        if breaker_state == CircuitBreaker.OPEN:
            return 503, {"ready": False, "reason": "circuit_open"}, {}
        return 200, {
            "ready": True,
            "breaker": breaker_state,
            "outstanding": self.admission.outstanding,
            "degrade_level": self.degrade.level,
        }, {}

    async def _handle_metrics(self, body):
        self.tracer.gauge("serve.queue_depth", self.admission.outstanding)
        self.tracer.gauge("serve.degrade_level", self.degrade.level)
        self.tracer.gauge(
            "serve.breaker_open",
            1 if self.breaker.state == CircuitBreaker.OPEN else 0,
        )
        self.tracer.gauge("serve.sessions_active", len(self.sessions))
        text = render_prometheus(self.tracer.metrics, namespace="repro")
        return 200, text.encode(), {}

    async def _handle_stream_delete(self, body, stream_id):
        existed = self.sessions.close(stream_id)
        return 200, {"stream_id": stream_id, "closed": existed}, {}

    # ------------------------------------------------------------------
    # The frame path
    # ------------------------------------------------------------------
    async def _handle_segment(self, body, stream_id):
        arrival = self.clock()
        request = _parse_json(body)
        params = self._request_params(request)
        deadline_s = self._deadline_s(request)

        # Overload machinery, in refusal-cheapness order: drain flag,
        # breaker, then admission (which is also the degradation
        # controller's sampling point — sheds push the dwell timer too).
        if self._draining:
            raise _HttpError(503, {
                "error": "server is draining", "reason": "draining",
            }, _retry_headers(self.config.drain_timeout_s))
        # A half-open breaker admits exactly one probe; if this request
        # claims it (state is half-open and allow() passes), every exit
        # that skips _feed_breaker must release the slot again or the
        # breaker wedges — half-open, probe "in flight" forever, every
        # request refused with a retry hint of 0.
        probe = self.breaker.state == CircuitBreaker.HALF_OPEN
        if not self.breaker.allow():
            self.tracer.count("serve.shed", labels={"reason": "circuit_open"})
            raise _HttpError(503, {
                "error": "backend circuit breaker is open",
                "reason": "circuit_open",
            }, _retry_headers(self.breaker.retry_after_s()))
        try:
            self.degrade.observe(self._pressure())
            decision = self.admission.try_admit(deadline_s)
            if not decision.admitted:
                if decision.reason == "queue_full":
                    self._last_shed = self.clock()
                self.tracer.count(
                    "serve.shed", labels={"reason": decision.reason}
                )
                status = 429
                raise _HttpError(status, {
                    "error": (
                        "admission queue is full"
                        if decision.reason == "queue_full"
                        else (
                            "deadline cannot be met: predicted wait "
                            f"{decision.predicted_wait_s * 1000:.1f} ms plus "
                            "one service time exceeds the budget"
                        )
                    ),
                    "reason": decision.reason,
                    "retry_after_s": round(decision.retry_after_s, 4),
                    "predicted_wait_s": round(decision.predicted_wait_s, 4),
                }, _retry_headers(decision.retry_after_s))

            try:
                # Image decode happens only after admission: a shed
                # request must cost near-nothing, and "rejected before
                # burning a worker" includes not materializing its
                # pixels.
                image = self._decode_image(request)
                run_params, rung, degraded = self.degrade.apply(params)
                if degraded:
                    self.tracer.count("serve.degraded", labels={"rung": rung})
                if stream_id is None:
                    self._adhoc_counter += 1
                    task = FrameTask(
                        stream_id=f"adhoc-{self._adhoc_counter}",
                        frame_index=0, image=image, params=run_params,
                    )
                    record = await self.executor.run(
                        task, self._remaining(deadline_s, arrival)
                    )
                else:
                    record = await self._run_stream_frame(
                        stream_id, image, run_params, deadline_s, arrival
                    )
                elapsed = self.clock() - arrival
            except BaseException:
                # The slot release must be unconditional or one internal
                # error leaks queue capacity forever; service time is
                # only fed for frames that actually ran (the success arm
                # below).
                self.admission.release()
                self._wake_drain_if_idle()
                raise
            self.admission.release(service_s=elapsed)
            self._wake_drain_if_idle()
            return self._frame_response(
                record, request, rung, degraded, elapsed, probe
            )
        except BaseException:
            # Exited before _feed_breaker judged the probe (admission
            # shed, bad image, stream conflict, executor crash): the
            # backend was never exercised, so release the slot without
            # re-opening. A no-op when _feed_breaker already ran — the
            # state has left half-open by then.
            if probe:
                self.breaker.abort_probe()
            raise

    def _wake_drain_if_idle(self) -> None:
        if self._draining and self.admission.outstanding == 0:
            self._drained.set()

    def _pressure(self) -> float:
        """The degradation controller's load signal, in [0, 1].

        Instantaneous queue occupancy is a poor overload signal at small
        ``max_queue``: it flips 0 -> 1 -> 0 every few milliseconds, so a
        dwell timer sampled at request arrivals would reset on every
        idle instant even while half the offered load is being shed.
        A queue-full shed is unambiguous overload evidence, so it pins
        the signal at 1.0 for the controller's own dwell window; with no
        recent shed the signal is the live occupancy.
        """
        if self._last_shed is not None and (
            self.clock() - self._last_shed <= self.degrade.hold_s
        ):
            return 1.0
        return self.admission.queue_ratio

    async def _run_stream_frame(self, stream_id, image, run_params,
                                deadline_s, arrival):
        session = self.sessions.get_or_create(stream_id)
        async with session.lock:
            try:
                plan = session.segmenter.plan(image.shape)
            except StreamError as exc:
                raise _HttpError(409, {
                    "error": str(exc), "reason": "stream_conflict",
                }) from exc
            task = FrameTask(
                stream_id=stream_id,
                frame_index=plan.frame_index,
                image=image,
                params=run_params,
                warm_centers=plan.warm_centers,
                warm_labels=plan.warm_labels,
            )
            record = await self.executor.run(
                task, self._remaining(deadline_s, arrival)
            )
            if record.ok:
                session.segmenter.commit(plan, record.result)
                session.frames_served += 1
        return record

    def _frame_response(self, record, request, rung, degraded, elapsed,
                        probe):
        self._feed_breaker(record, probe)
        self.tracer.observe(
            "serve.latency_seconds", elapsed, LATENCY_BUCKETS,
            labels={"outcome": "ok" if record.ok else "error"},
        )
        if not record.ok:
            status = 504 if record.error_type == "FrameTimeout" else (
                409 if record.error_type == "StreamError" else 500
            )
            return status, {
                "error": record.error, "error_type": record.error_type,
                "stream_id": record.stream_id,
                "frame_index": record.frame_index,
            }, {}
        result = record.result
        payload = {
            "ok": True,
            "stream_id": record.stream_id,
            "frame_index": record.frame_index,
            "n_superpixels": int(result.labels.max()) + 1,
            "iterations": result.iterations,
            "subiterations": result.subiterations,
            "warm_started": record.warm_started,
            "kernel_backend": record.kernel_backend,
            "degraded": degraded,
            "quality_rung": rung,
            "elapsed_ms": round(elapsed * 1000, 3),
            "labels_sha256": labels_digest(result.labels),
        }
        if record.demoted_from:
            payload["demoted_from"] = record.demoted_from
        if request.get("return_labels"):
            labels = np.ascontiguousarray(result.labels, dtype="<i4")
            payload["labels_b64"] = base64.b64encode(
                labels.tobytes()
            ).decode("ascii")
            payload["labels_shape"] = list(labels.shape)
            payload["labels_dtype"] = "<i4"
        headers = {
            "X-Repro-Degraded": "true" if degraded else "false",
            "X-Repro-Quality-Rung": rung,
        }
        return 200, payload, headers

    def _feed_breaker(self, record, probe) -> None:
        """Frame outcome + deduplicated demotions -> breaker signals."""
        new_demotion = False
        if record.demoted_from:
            transition = (record.demoted_from, record.kernel_backend)
            if transition not in self._seen_demotions:
                self._seen_demotions.add(transition)
                new_demotion = True
                self.tracer.count("serve.backend_demotions", labels={
                    "from": transition[0], "to": str(transition[1]),
                })
        if not record.ok:
            self.breaker.record_failure()
        elif new_demotion and not probe:
            # The frame succeeded on the demoted backend, but the
            # demotion itself is a health event the breaker should see.
            self.breaker.record_failure()
        else:
            self.breaker.record_success()

    # ------------------------------------------------------------------
    # Request decoding
    # ------------------------------------------------------------------
    def _remaining(self, deadline_s, arrival) -> float | None:
        if deadline_s is None:
            return None
        return max(0.0, deadline_s - (self.clock() - arrival))

    def _deadline_s(self, request) -> float | None:
        raw = request.get("deadline_ms", self.config.default_deadline_ms)
        if raw is None:
            return None
        try:
            deadline_ms = float(raw)
        except (TypeError, ValueError):
            raise _HttpError(400, {
                "error": f"deadline_ms must be a number, got {raw!r}",
            }) from None
        if deadline_ms <= 0:
            raise _HttpError(400, {
                "error": f"deadline_ms must be > 0, got {deadline_ms}",
            })
        return deadline_ms / 1000.0

    def _request_params(self, request) -> SlicParams:
        overrides = request.get("params") or {}
        if not isinstance(overrides, dict):
            raise _HttpError(400, {"error": "params must be an object"})
        unknown = set(overrides) - set(_PARAM_OVERRIDES)
        if unknown:
            raise _HttpError(400, {
                "error": (
                    f"unsupported params override(s) {sorted(unknown)}; "
                    f"allowed: {list(_PARAM_OVERRIDES)}"
                ),
            })
        if not overrides:
            return self.config.params
        try:
            return self.config.params.with_(**overrides)
        except (ReproError, TypeError, ValueError) as exc:
            raise _HttpError(400, {"error": str(exc)}) from exc

    def _decode_image(self, request) -> np.ndarray:
        synthetic = request.get("synthetic")
        if synthetic is not None:
            if not isinstance(synthetic, dict):
                raise _HttpError(400, {"error": "synthetic must be an object"})
            from ..data import SceneConfig, generate_scene

            height = int(synthetic.get("height", 96))
            width = int(synthetic.get("width", 128))
            seed = int(synthetic.get("seed", 0))
            if not (8 <= height <= 4096 and 8 <= width <= 4096):
                raise _HttpError(400, {
                    "error": (
                        "synthetic height/width must be in [8, 4096], got "
                        f"{height}x{width}"
                    ),
                })
            scene = generate_scene(
                SceneConfig(height=height, width=width), seed=seed
            )
            return scene.image
        encoded = request.get("image_b64")
        if encoded is None:
            raise _HttpError(400, {
                "error": "request needs either image_b64 or synthetic",
            })
        try:
            height = int(request["height"])
            width = int(request["width"])
        except (KeyError, TypeError, ValueError):
            raise _HttpError(400, {
                "error": "image_b64 requires integer height and width",
            }) from None
        try:
            raw = base64.b64decode(encoded, validate=True)
        except (binascii.Error, ValueError) as exc:
            raise _HttpError(400, {
                "error": f"image_b64 is not valid base64: {exc}",
            }) from exc
        expected = height * width * 3
        if len(raw) != expected:
            raise _HttpError(400, {
                "error": (
                    f"image_b64 decodes to {len(raw)} bytes; "
                    f"{height}x{width}x3 uint8 RGB needs {expected}"
                ),
            })
        return np.frombuffer(raw, dtype=np.uint8).reshape(
            (height, width, 3)
        ).copy()


def _retry_headers(retry_after_s: float) -> dict:
    """RFC-shaped ``Retry-After`` (integer seconds, never 0)."""
    return {"Retry-After": str(max(1, int(-(-retry_after_s // 1))))}


def _parse_json(body: bytes) -> dict:
    if not body:
        return {}
    try:
        request = json.loads(body)
    except json.JSONDecodeError as exc:
        raise _HttpError(400, {"error": f"body is not JSON: {exc}"}) from exc
    if not isinstance(request, dict):
        raise _HttpError(400, {"error": "body must be a JSON object"})
    return request


def _parse_head(head: bytes):
    """``(method, path, headers)`` from the raw request head."""
    text = head.decode("latin-1")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError(f"bad request line: {lines[0]!r}")
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        key, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"bad header line: {line!r}")
        headers[key.strip().lower()] = value.strip()
    return parts[0], parts[1], headers


class BackgroundServer:
    """Run a :class:`SuperpixelServer` on a private loop in a thread.

    The test/bench harness: synchronous callers (pytest, the load
    generator) start the server, talk plain ``http.client`` to it, and
    drain it — all without owning an event loop themselves. ``with``
    semantics drain on exit.
    """

    def __init__(self, config: ServeConfig | None = None, tracer=None):
        import threading

        self.server = SuperpixelServer(config, tracer=tracer)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self._started = threading.Event()
        self._start_error: BaseException | None = None
        self._closed = False

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to start()
            self._start_error = exc
            self._started.set()
            return
        self._started.set()
        self._loop.run_forever()
        self._loop.close()

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._started.wait(timeout=30)
        if self._start_error is not None:
            raise self._start_error
        if not self._started.is_set():  # pragma: no cover - defensive
            raise ConfigurationError("server failed to start within 30 s")
        return self

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"{self.server.config.host}:{self.port}"

    def submit(self, coro):
        """Run ``coro`` on the server loop; returns a concurrent future."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def drain(self, timeout_s: float | None = None) -> bool:
        if self._closed:
            return True
        self._closed = True
        clean = self.submit(self.server.drain(timeout_s)).result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        return clean

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.drain()
