"""Frame execution behind the asyncio front end.

The server never computes a frame on the event loop. :class:`ServeExecutor`
bridges asyncio to the same execution machinery the batch engine uses —
every frame runs through :func:`repro.parallel.worker.run_frame` (so the
kernel-backend supervisor, demotion recording, per-stream connectivity
caches, and ``FrameRecord`` failure-as-data semantics all apply
unchanged) — in one of two modes:

``"thread"`` (default)
    A ``ThreadPoolExecutor``. With the ``native-mt`` kernel backend the
    C hot loops release the GIL and fan out over the in-process pthread
    pool, so this is exactly the roadmap's "one process per stream,
    threads per frame" composition with zero serialization. A frame
    that overruns its deadline cannot be killed (threads are not
    preemptible), so the overrun is detected at the deadline, answered
    as a timeout, and the stale result discarded when it eventually
    lands.

``"process"``
    A ``ProcessPoolExecutor`` shipping pickled tasks, as in
    :class:`~repro.parallel.ParallelRunner`. Deadline overruns reuse the
    PR-4 watchdog machinery literally: the pool is torn down through
    ``ParallelRunner._teardown_executor`` (terminate the hung worker
    processes, abandon their futures), the frame becomes a
    ``FrameTimeout``-shaped record, and a fresh pool is built for the
    next frame.

Both modes surface every outcome as a
:class:`~repro.parallel.records.FrameRecord` — the server's response
layer never sees an exception from frame execution.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from ..errors import ConfigurationError
from ..parallel.records import FrameRecord, FrameTask
from ..parallel.runner import ParallelRunner
from ..parallel.worker import run_frame

__all__ = ["ServeExecutor"]


class ServeExecutor:
    """Asyncio-facing frame execution with deadline enforcement."""

    def __init__(self, mode: str = "thread", n_workers: int = 2,
                 tracer=None):
        if mode not in ("thread", "process"):
            raise ConfigurationError(
                f"exec mode must be 'thread' or 'process', got {mode!r}"
            )
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.mode = mode
        self.n_workers = int(n_workers)
        self.tracer = tracer
        self._pool = None
        self._watchdog_teardowns = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def watchdog_teardowns(self) -> int:
        return self._watchdog_teardowns

    def _ensure_pool(self):
        if self._pool is None:
            if self.mode == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix="serve-frame",
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._pool

    @staticmethod
    def _timeout_record(task: FrameTask, deadline_s: float,
                        torn_down: bool) -> FrameRecord:
        detail = (
            "worker presumed hung, pool torn down"
            if torn_down
            else "in-process thread abandoned (result will be discarded)"
        )
        return FrameRecord(
            stream_id=task.stream_id,
            frame_index=task.frame_index,
            ok=False,
            error=(
                f"frame exceeded its {deadline_s:.3g} s deadline in "
                f"flight; {detail}"
            ),
            error_type="FrameTimeout",
            warm_started=task.warm_centers is not None,
            elapsed_s=deadline_s,
            attempts=task.attempt + 1,
        )

    async def run(self, task: FrameTask,
                  deadline_s: float | None = None) -> FrameRecord:
        """Execute one frame off-loop; a deadline overrun is a record.

        ``deadline_s`` is the remaining budget when execution starts
        (admission already rejected requests whose budget could not
        cover queue wait + service).
        """
        if self._closed:
            raise ConfigurationError("executor is closed")
        loop = asyncio.get_running_loop()
        pool = self._ensure_pool()
        if self.mode == "thread":
            # run_frame(in_worker=False) converts unexpected exceptions
            # into ok=False records itself via the ReproError net; keep
            # a belt-and-braces net for anything outside it.
            def _invoke():
                try:
                    return run_frame(task, in_worker=False)
                except Exception as exc:  # pragma: no cover - defensive
                    return FrameRecord(
                        stream_id=task.stream_id,
                        frame_index=task.frame_index,
                        ok=False,
                        error=str(exc),
                        error_type=type(exc).__name__,
                        warm_started=task.warm_centers is not None,
                        attempts=task.attempt + 1,
                    )

            future = loop.run_in_executor(pool, _invoke)
        else:
            future = asyncio.wrap_future(pool.submit(run_frame, task))
        if deadline_s is None:
            return await future
        try:
            return await asyncio.wait_for(
                asyncio.shield(future) if self.mode == "thread" else future,
                timeout=max(0.0, deadline_s),
            )
        except asyncio.TimeoutError:
            if self.mode == "process":
                # The PR-4 watchdog move: terminate the hung worker's
                # process, abandon the future, rebuild lazily.
                ParallelRunner._teardown_executor(self._pool)
                self._pool = None
            else:
                # The thread keeps computing; swallow its eventual
                # result (or error) so the loop never logs an orphan.
                future.add_done_callback(_discard_result)
            self._watchdog_teardowns += 1
            if self.tracer is not None:
                self.tracer.count("serve.watchdog_teardowns")
            return self._timeout_record(
                task, deadline_s, torn_down=self.mode == "process"
            )
        except Exception as exc:
            # Process mode: a worker death surfaces as BrokenProcessPool
            # on the future; rebuild and fail the frame as data.
            if self.mode == "process" and self._pool is not None:
                ParallelRunner._teardown_executor(self._pool)
                self._pool = None
            return FrameRecord(
                stream_id=task.stream_id,
                frame_index=task.frame_index,
                ok=False,
                error=str(exc),
                error_type=type(exc).__name__,
                warm_started=task.warm_centers is not None,
                attempts=task.attempt + 1,
            )

    def close(self) -> None:
        """Shut the pool down (idempotent); waits for running frames."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def _discard_result(future) -> None:
    """Consume an abandoned future's outcome so nothing warns about it."""
    try:
        future.exception()
    except Exception:  # pragma: no cover - cancelled/invalid futures
        pass
