"""Admission control for the serving front end: bounded queue + shedding.

The accelerator exists to hold a real-time budget; the service boundary
must hold one too. This module is the pure-logic half of that contract —
no sockets, no asyncio, no wall clock it does not receive — so the
overload semantics are deterministic, fake-clock-testable functions:

:class:`ServiceTimeTracker`
    An EWMA + recent-window estimate of observed per-frame service time.
    Every admission decision prices waiting in units of this estimate,
    so ``Retry-After`` hints track the *measured* workload, not a
    constant someone guessed at deploy time.

:class:`AdmissionController`
    A bounded admission queue. A request is admitted only when (a) a
    slot exists under ``max_queue`` outstanding requests and (b) its
    deadline — when it carries one — is still feasible given the
    predicted queue wait plus one predicted service time. Requests that
    cannot meet their deadline are rejected **at admission**, before
    they burn a worker; overloaded requests are shed with a
    ``Retry-After`` derived from how long a slot should take to free.

:class:`CircuitBreaker`
    A three-state (closed / open / half-open) breaker the server feeds
    with the kernel supervisor's demotion/self-test signals and frame
    failures. While open, requests are refused up front (503) until the
    reset window elapses; the first probe after that either closes the
    breaker or re-opens it.

Wall-clock access is always through the injected ``clock`` callable
(default ``time.monotonic``) — ``tests/test_serve_admission.py`` drives
every transition with a fake clock.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "ServiceTimeTracker",
    "AdmissionDecision",
    "AdmissionController",
    "CircuitBreaker",
]


class ServiceTimeTracker:
    """Running estimate of per-frame service time (seconds).

    Blends an EWMA (fast reaction to drift) with the max of a small
    recent window (so a burst of slow frames immediately widens
    ``Retry-After`` hints instead of waiting for the average to catch
    up). Until the first observation, :meth:`estimate` returns the
    configured prior — the server seeds it from its first real frame.
    """

    def __init__(self, prior_s: float = 0.05, alpha: float = 0.2,
                 window: int = 32):
        if prior_s <= 0:
            raise ConfigurationError(
                f"prior_s must be > 0 seconds, got {prior_s}"
            )
        if not (0.0 < alpha <= 1.0):
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.prior_s = float(prior_s)
        self.alpha = float(alpha)
        self._ewma: float | None = None
        self._window: deque = deque(maxlen=max(1, int(window)))

    @property
    def n_observed(self) -> int:
        return len(self._window)

    def observe(self, service_s: float) -> None:
        """Record one completed frame's measured service time."""
        service_s = max(1e-6, float(service_s))
        self._window.append(service_s)
        if self._ewma is None:
            self._ewma = service_s
        else:
            self._ewma += self.alpha * (service_s - self._ewma)

    def estimate(self) -> float:
        """Current per-frame service-time estimate in seconds."""
        if self._ewma is None:
            return self.prior_s
        # Recent worst case dominates the hint under bursty load; the
        # EWMA dominates once the burst ages out of the window.
        return max(self._ewma, *self._window) if self._window else self._ewma


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission attempt.

    ``reason`` is ``"ok"`` for admitted requests, else one of
    ``"queue_full"`` / ``"deadline_infeasible"`` (plus the server-level
    ``"draining"`` / ``"circuit_open"`` refusals that never reach the
    controller). ``retry_after_s`` is the shed hint — how long until a
    slot should plausibly exist; ``predicted_wait_s`` is the queue wait
    the request would have seen, which deadline feasibility was judged
    against.
    """

    admitted: bool
    reason: str
    retry_after_s: float = 0.0
    predicted_wait_s: float = 0.0


class AdmissionController:
    """Bounded admission: shed early, reject infeasible deadlines early.

    Parameters
    ----------
    max_queue:
        Maximum outstanding admitted requests (queued *plus* executing).
        Admission attempt number ``max_queue + 1`` is shed with a 429 —
        the queue never grows without bound.
    n_workers:
        Service parallelism the wait prediction divides by ("the k'th
        request in line waits ``k / n_workers`` service times").
    tracker:
        Optional shared :class:`ServiceTimeTracker` (a fresh one is
        created when omitted).
    clock:
        Monotonic-seconds callable; injected by tests.
    """

    def __init__(self, max_queue: int = 8, n_workers: int = 1,
                 tracker: ServiceTimeTracker | None = None,
                 clock=time.monotonic):
        if max_queue < 1:
            raise ConfigurationError(
                f"max_queue must be >= 1, got {max_queue}"
            )
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.max_queue = int(max_queue)
        self.n_workers = int(n_workers)
        self.tracker = tracker if tracker is not None else ServiceTimeTracker()
        self.clock = clock
        self._outstanding = 0
        self._peak_outstanding = 0
        self._admitted_total = 0
        self._shed_total = 0
        self._deadline_rejected_total = 0

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Admitted requests not yet released (queued + executing)."""
        return self._outstanding

    @property
    def peak_outstanding(self) -> int:
        return self._peak_outstanding

    @property
    def shed_total(self) -> int:
        return self._shed_total

    @property
    def deadline_rejected_total(self) -> int:
        return self._deadline_rejected_total

    @property
    def queue_ratio(self) -> float:
        """Occupancy in [0, 1+]: the degradation controller's signal."""
        return self._outstanding / self.max_queue

    def predicted_wait_s(self) -> float:
        """Expected queue wait for a request admitted *now*."""
        est = self.tracker.estimate()
        return (self._outstanding / self.n_workers) * est

    def retry_after_s(self) -> float:
        """How long until a slot should free, given observed service time.

        The front of the queue drains one request per
        ``estimate / n_workers`` seconds; a shed client should come back
        after the *excess* has drained. Never less than one service
        time — a hint of 0 would just synchronize the retry storm.
        """
        est = self.tracker.estimate()
        excess = max(0, self._outstanding - self.max_queue + 1)
        return max(est, excess * est / self.n_workers)

    # ------------------------------------------------------------------
    def try_admit(self, deadline_s: float | None = None) -> AdmissionDecision:
        """Admit, shed, or deadline-reject one request.

        ``deadline_s`` is the request's *remaining budget* in seconds
        (relative, not absolute — the transport layer converts). An
        admitted request holds a slot until :meth:`release` is called.
        """
        est = self.tracker.estimate()
        predicted_wait = self.predicted_wait_s()
        if self._outstanding >= self.max_queue:
            self._shed_total += 1
            return AdmissionDecision(
                admitted=False,
                reason="queue_full",
                retry_after_s=self.retry_after_s(),
                predicted_wait_s=predicted_wait,
            )
        if deadline_s is not None and predicted_wait + est > deadline_s:
            # The request would blow its deadline while still in line
            # (or mid-service): reject now, before it burns a worker.
            self._deadline_rejected_total += 1
            return AdmissionDecision(
                admitted=False,
                reason="deadline_infeasible",
                retry_after_s=max(est, predicted_wait),
                predicted_wait_s=predicted_wait,
            )
        self._outstanding += 1
        self._admitted_total += 1
        self._peak_outstanding = max(self._peak_outstanding, self._outstanding)
        return AdmissionDecision(
            admitted=True, reason="ok", predicted_wait_s=predicted_wait
        )

    def release(self, service_s: float | None = None) -> None:
        """Return a slot; feed the measured service time to the tracker."""
        if self._outstanding <= 0:
            raise ConfigurationError(
                "release() without a matching admitted request"
            )
        self._outstanding -= 1
        if service_s is not None:
            self.tracker.observe(service_s)


class CircuitBreaker:
    """Closed / open / half-open breaker over backend-health signals.

    The server records a **failure** for every frame that errors and for
    every *new* kernel-supervisor demotion or self-test failure it
    observes (the supervisor memoizes per process, so the server
    deduplicates transitions before feeding them here — a demoted-but-
    working backend is one signal, not one per frame). ``threshold``
    consecutive failures open the breaker; while open, :meth:`allow`
    refuses everything until ``reset_after_s`` has elapsed, then admits
    a single half-open probe. The probe's outcome closes or re-opens.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int = 5, reset_after_s: float = 10.0,
                 clock=time.monotonic):
        if threshold < 1:
            raise ConfigurationError(
                f"threshold must be >= 1, got {threshold}"
            )
        if reset_after_s <= 0:
            raise ConfigurationError(
                f"reset_after_s must be > 0, got {reset_after_s}"
            )
        self.threshold = int(threshold)
        self.reset_after_s = float(reset_after_s)
        self.clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._opened_total = 0
        self._probe_inflight = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing open -> half-open on a lapsed window."""
        if self._state == self.OPEN and (
            self.clock() - self._opened_at >= self.reset_after_s
        ):
            self._state = self.HALF_OPEN
            self._probe_inflight = False
        return self._state

    @property
    def opened_total(self) -> int:
        return self._opened_total

    def retry_after_s(self) -> float:
        """Seconds until the breaker will admit a probe (0 when it would)."""
        if self.state != self.OPEN:
            return 0.0
        return max(0.0, self.reset_after_s - (self.clock() - self._opened_at))

    def allow(self) -> bool:
        """Whether a request may proceed right now.

        Closed: always. Open: never. Half-open: exactly one in-flight
        probe at a time — concurrent requests during the probe are
        refused rather than stampeding a possibly-broken backend.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def _open(self) -> None:
        self._state = self.OPEN
        self._opened_at = self.clock()
        self._opened_total += 1
        self._probe_inflight = False

    def record_failure(self) -> None:
        """One backend-health failure signal (frame error, new demotion)."""
        if self.state == self.HALF_OPEN:
            self._open()  # the probe failed: full reset window again
            return
        self._consecutive_failures += 1
        if self._state == self.CLOSED and (
            self._consecutive_failures >= self.threshold
        ):
            self._open()

    def record_success(self) -> None:
        """One healthy frame; closes a half-open breaker."""
        self._consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self._state = self.CLOSED
            self._probe_inflight = False

    def abort_probe(self) -> None:
        """Release the half-open probe slot without judging the backend.

        For a probe that never exercised the backend — shed at
        admission, rejected as a bad request, crashed before its frame
        ran — neither :meth:`record_success` nor :meth:`record_failure`
        is warranted. Without this release the slot would leak: the
        breaker would sit half-open refusing every request (with a
        retry hint of 0) forever. The breaker stays half-open and the
        next request may claim the probe. A no-op once the probe's real
        outcome has been recorded (the state has left half-open).
        """
        if self._state == self.HALF_OPEN:
            self._probe_inflight = False
