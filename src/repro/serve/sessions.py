"""Warm-started per-stream sessions for the serving front end.

``POST /v1/streams/{id}/frames`` gives a client the same frame-to-frame
warm starting the accelerator gets from keeping centers and labels in
external memory (Section 4.3): a :class:`StreamSession` owns one
:class:`~repro.core.streaming.StreamSegmenter` and runs every frame of
the stream through the exact ``plan()`` / ``commit()`` protocol the
serial driver and the :class:`~repro.parallel.ParallelRunner` use, so a
stream served over HTTP produces the **same warm chain** — and therefore
the same labels — as the same frames run locally.

Per-stream ordering is enforced with an ``asyncio.Lock`` per session:
two concurrent requests for one stream serialize (frame *n+1* never
plans before frame *n* commits), while different streams proceed in
parallel — the service-side analogue of "one process per stream".

The registry is bounded two ways: ``max_sessions`` LRU-evicts the
coldest stream when a new one would exceed the cap, and ``ttl_s``
expires sessions idle longer than the TTL (swept opportunistically on
access). Eviction only costs the next frame of that stream a cold
start — warm state is a pure optimization, never correctness — which is
what makes shedding sessions under memory pressure safe.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict

from ..core.params import SlicParams
from ..core.streaming import StreamSegmenter
from ..errors import ConfigurationError

__all__ = ["StreamSession", "SessionRegistry"]


class StreamSession:
    """One client stream's warm state + its ordering lock."""

    __slots__ = ("stream_id", "segmenter", "lock", "created_at",
                 "last_used", "frames_served")

    def __init__(self, stream_id: str, segmenter: StreamSegmenter,
                 now: float):
        self.stream_id = stream_id
        self.segmenter = segmenter
        self.lock = asyncio.Lock()
        self.created_at = now
        self.last_used = now
        self.frames_served = 0

    @property
    def warm(self) -> bool:
        return self.segmenter.has_state


class SessionRegistry:
    """Bounded, TTL-swept registry of :class:`StreamSession` objects.

    Parameters
    ----------
    params:
        The server's (undegraded) :class:`SlicParams`; every session's
        segmenter is built from it.
    drift_limit, strict_shape:
        Forwarded to each :class:`StreamSegmenter`. Strict shape is on:
        a stream that changes resolution mid-flight gets a per-frame
        ``StreamError`` (HTTP 409), same as the batch engine.
    max_sessions:
        LRU capacity; creating session ``max_sessions + 1`` evicts the
        least-recently-used one.
    ttl_s:
        Idle expiry. ``None`` disables TTL sweeping.
    clock:
        Monotonic-seconds callable; injected by tests.
    """

    def __init__(self, params: SlicParams, drift_limit: float = 0.6,
                 strict_shape: bool = True, max_sessions: int = 64,
                 ttl_s: float | None = 300.0, clock=time.monotonic):
        if max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        if ttl_s is not None and ttl_s <= 0:
            raise ConfigurationError(f"ttl_s must be > 0, got {ttl_s}")
        self.params = params
        self.drift_limit = drift_limit
        self.strict_shape = bool(strict_shape)
        self.max_sessions = int(max_sessions)
        self.ttl_s = float(ttl_s) if ttl_s is not None else None
        self.clock = clock
        self._sessions: OrderedDict[str, StreamSession] = OrderedDict()
        self._evicted_total = 0
        self._expired_total = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def evicted_total(self) -> int:
        return self._evicted_total

    @property
    def expired_total(self) -> int:
        return self._expired_total

    def sweep(self) -> int:
        """Expire idle sessions; returns how many were dropped."""
        if self.ttl_s is None:
            return 0
        now = self.clock()
        stale = [
            sid for sid, sess in self._sessions.items()
            if now - sess.last_used > self.ttl_s
        ]
        for sid in stale:
            del self._sessions[sid]
        self._expired_total += len(stale)
        return len(stale)

    def get_or_create(self, stream_id: str) -> StreamSession:
        """The stream's session, created (and LRU-registered) on demand."""
        self.sweep()
        session = self._sessions.get(stream_id)
        now = self.clock()
        if session is None:
            session = StreamSession(
                stream_id,
                StreamSegmenter(
                    self.params,
                    drift_limit=self.drift_limit,
                    strict_shape=self.strict_shape,
                ),
                now,
            )
            self._sessions[stream_id] = session
            while len(self._sessions) > self.max_sessions:
                evicted_id, _ = self._sessions.popitem(last=False)
                self._evicted_total += 1
                if evicted_id == stream_id:  # pragma: no cover - cap >= 1
                    break
        else:
            self._sessions.move_to_end(stream_id)
        session.last_used = now
        return session

    def close(self, stream_id: str) -> bool:
        """Drop one stream's warm state; True when it existed."""
        return self._sessions.pop(stream_id, None) is not None

    def stats(self) -> dict:
        return {
            "active": len(self._sessions),
            "evicted": self._evicted_total,
            "expired": self._expired_total,
        }
