"""Graceful degradation: a quality ladder the server steps down under load.

The paper's accelerator holds its real-time budget by *fixing* the work
per frame; a software service facing open-loop traffic cannot, so under
sustained overload it trades quality for service time instead of
queueing into collapse. The ladder mirrors the paper's own quality/
throughput dials, in the order the paper ranks them:

1. **full** — the configured parameters, untouched.
2. **fewer iterations** — cap ``max_iterations`` (Fig. 2: quality
   saturates well before the default sweep budget).
3. **S-SLIC subsampling** — drop ``subsample_ratio`` (the paper's
   headline trick: a fraction of pixels per sub-iteration at nearly
   the same boundary recall).

Every rung after ``full`` marks the response as **degraded** — clients
always see an explicit label (HTTP header + body field) and the server
counts degraded responses per rung, so degradation is observable, never
silent.

Transitions use dwell-time hysteresis: the overload signal (admission
queue occupancy) must stay above ``overload_ratio`` for ``hold_s``
seconds to step *down* the ladder (more degraded), and below
``recover_ratio`` for ``hold_s`` to step back *up* — a load spike
shorter than the dwell changes nothing, and flapping between rungs
requires the signal itself to flap slower than ``hold_s``.

With ``enabled=False`` the controller is inert: :meth:`apply` returns
the caller's params object itself (the *same* object, not a copy), so
the serial path stays bit-identical — asserted in
``tests/test_serve_degrade.py``.

Like everything in ``repro.serve``, the clock is injected — the ladder
is fake-clock-testable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.params import SlicParams
from ..errors import ConfigurationError

__all__ = ["QualityRung", "DEFAULT_LADDER", "DegradeController"]


@dataclass(frozen=True)
class QualityRung:
    """One rung of the ladder: a named partial override of SlicParams."""

    name: str
    max_iterations: int | None = None
    subsample_ratio: float | None = None

    def apply(self, params: SlicParams) -> SlicParams:
        """The rung's params: overrides applied only where they reduce work."""
        changes = {}
        if (
            self.max_iterations is not None
            and self.max_iterations < params.max_iterations
        ):
            changes["max_iterations"] = self.max_iterations
        if (
            self.subsample_ratio is not None
            and self.subsample_ratio < params.subsample_ratio
        ):
            changes["subsample_ratio"] = self.subsample_ratio
        return params.with_(**changes) if changes else params


#: The default ladder: full quality, then capped sweeps, then S-SLIC
#: quarter subsampling with capped sweeps (the paper's cheapest variant).
DEFAULT_LADDER = (
    QualityRung("full"),
    QualityRung("iter-capped", max_iterations=4),
    QualityRung("subsampled", max_iterations=3, subsample_ratio=0.25),
)


class DegradeController:
    """Step down a quality ladder under sustained overload, back up after.

    Parameters
    ----------
    ladder:
        Quality rungs, best first. The first rung must be the identity
        (no overrides) — level 0 is the not-degraded state.
    enabled:
        ``False`` pins level 0 forever and makes :meth:`apply` the
        identity function (same object out), preserving bit-identity.
    overload_ratio / recover_ratio:
        Hysteresis band over the load signal (admission queue occupancy,
        ``outstanding / max_queue``). Signal >= ``overload_ratio``
        sustained for ``hold_s`` steps toward more degradation; signal
        <= ``recover_ratio`` sustained for ``hold_s`` steps back.
        Between the two, dwell timers reset — no movement.
    hold_s:
        Dwell time either side of a transition.
    clock:
        Monotonic-seconds callable; injected by tests.
    """

    def __init__(self, ladder=DEFAULT_LADDER, enabled: bool = True,
                 overload_ratio: float = 0.75, recover_ratio: float = 0.25,
                 hold_s: float = 2.0, clock=time.monotonic):
        ladder = tuple(ladder)
        if not ladder:
            raise ConfigurationError("ladder must have at least one rung")
        first = ladder[0]
        if first.max_iterations is not None or first.subsample_ratio is not None:
            raise ConfigurationError(
                "the first ladder rung must be the identity (no overrides); "
                f"got {first!r}"
            )
        if not (0.0 <= recover_ratio < overload_ratio):
            raise ConfigurationError(
                f"need 0 <= recover_ratio < overload_ratio, got "
                f"recover={recover_ratio} overload={overload_ratio}"
            )
        if hold_s < 0:
            raise ConfigurationError(f"hold_s must be >= 0, got {hold_s}")
        self.ladder = ladder
        self.enabled = bool(enabled)
        self.overload_ratio = float(overload_ratio)
        self.recover_ratio = float(recover_ratio)
        self.hold_s = float(hold_s)
        self.clock = clock
        self._level = 0
        self._above_since: float | None = None
        self._below_since: float | None = None
        self._transitions = 0

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        return self._level

    @property
    def rung(self) -> QualityRung:
        return self.ladder[self._level]

    @property
    def degraded(self) -> bool:
        return self._level > 0

    @property
    def transitions(self) -> int:
        return self._transitions

    def observe(self, queue_ratio: float) -> int:
        """Feed one load sample; returns the (possibly new) level.

        Called by the server on every admission attempt, with the
        admission controller's occupancy (sheds naturally sample at
        ratio 1.0, pushing the dwell timer along).
        """
        if not self.enabled:
            return 0
        now = self.clock()
        if queue_ratio >= self.overload_ratio:
            self._below_since = None
            if self._above_since is None:
                self._above_since = now
            elif (
                now - self._above_since >= self.hold_s
                and self._level < len(self.ladder) - 1
            ):
                self._level += 1
                self._transitions += 1
                self._above_since = now  # re-arm: next rung needs its own dwell
        elif queue_ratio <= self.recover_ratio:
            self._above_since = None
            if self._below_since is None:
                self._below_since = now
            elif now - self._below_since >= self.hold_s and self._level > 0:
                self._level -= 1
                self._transitions += 1
                self._below_since = now
        else:
            # Hysteresis dead zone: neither dwell accumulates.
            self._above_since = None
            self._below_since = None
        return self._level

    def apply(self, params: SlicParams) -> tuple[SlicParams, str, bool]:
        """``(params, rung_name, degraded)`` for the current level.

        Disabled or level 0 returns the caller's object itself — the
        serial path's params are untouched, not merely equal.
        """
        if not self.enabled or self._level == 0:
            return params, self.ladder[0].name, False
        rung = self.ladder[self._level]
        return rung.apply(params), rung.name, True
