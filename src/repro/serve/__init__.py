"""repro.serve — superpixels as an overload-safe service.

The service boundary over the segmentation engine (ROADMAP item 3): a
stdlib-asyncio HTTP front end whose defining feature is staying correct
when offered load exceeds capacity — bounded admission with load
shedding, end-to-end deadlines, a graceful-degradation quality ladder,
a circuit breaker over backend health, and drain-on-SIGTERM. See
``docs/serving.md`` for the endpoint reference and overload policy.

Quick start::

    from repro.serve import BackgroundServer, ServeConfig

    with BackgroundServer(ServeConfig(port=0)) as bg:
        ...  # POST to http://127.0.0.1:<bg.port>/v1/segment

or from the shell: ``repro serve --port 8080``.
"""

from .admission import (
    AdmissionController,
    AdmissionDecision,
    CircuitBreaker,
    ServiceTimeTracker,
)
from .degrade import DEFAULT_LADDER, DegradeController, QualityRung
from .executor import ServeExecutor
from .server import BackgroundServer, ServeConfig, SuperpixelServer
from .sessions import SessionRegistry, StreamSession

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BackgroundServer",
    "CircuitBreaker",
    "DEFAULT_LADDER",
    "DegradeController",
    "QualityRung",
    "ServeConfig",
    "ServeExecutor",
    "ServiceTimeTracker",
    "SessionRegistry",
    "StreamSession",
    "SuperpixelServer",
]
