"""The segmentation engine driving both SLIC and S-SLIC.

One engine implements the two flowcharts of Figure 1:

* CPA (Figure 1a): per sweep, scan a 2S x 2S window per center and keep
  image-sized running-minimum buffers; with ``subsample_ratio < 1`` the
  centers are processed in round-robin subsets (the CPA flavour of S-SLIC).
* PPA (Figure 1b): per sub-iteration, (re)assign a pixel subset against its
  9 candidate centers and update the centers from the subset's sigma
  accumulations (the accelerator's algorithm).

``subsample_ratio == 1`` with PPA reproduces the gSLIC-style full-image
pixel-perspective SLIC; with CPA it reproduces the original algorithm.

The engine is instrumented with :class:`~repro.core.profiles.PhaseTimer`
buckets that map onto Table 1's columns, and — when a
:class:`repro.obs.Tracer` is passed — emits a full span tree
(``segmentation`` > ``sweep`` > ``subiteration`` > ``phase:*``) plus
pixels-touched / centers-updated counters and the per-sweep
center-movement residual, so convergence dynamics are observable from
the JSONL telemetry alone.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..color import rgb_to_lab
from ..color.hw_convert import HwColorConverter
from ..errors import ConfigurationError
from ..kernels import get_backend, resolve_name
from ..obs.tracer import NULL_TRACER
from ..types import as_uint8_rgb, validate_rgb_image
from .accumulators import SigmaAccumulator, center_movement
from .assignment import PixelArrays
from .connectivity import enforce_connectivity
from .distance import spatial_weight
from .initialization import grid_geometry, initial_centers, perturb_centers
from .neighbors import candidate_map, dynamic_candidate_map, tile_map
from .params import ARCH_CPA, ARCH_PPA, SlicParams
from .profiles import PhaseTimer
from .result import SegmentationResult
from .subsampling import center_subsets, make_schedule

__all__ = ["run_segmentation", "expected_cluster_count", "FUSED_COLOR_ENV"]

#: Sentinel for "not yet assigned" in the CPA distance buffer.
_INF = np.inf

#: Environment opt-out for the fused color conversion (decode folded into
#: the code-generation traversal). On by default; ``SlicParams.fused_color``
#: overrides the environment when set.
FUSED_COLOR_ENV = "REPRO_FUSED_COLOR"

_OFF_VALUES = ("0", "false", "no", "off")


def _fused_color_enabled(params) -> bool:
    if params.fused_color is not None:
        return bool(params.fused_color)
    raw = os.environ.get(FUSED_COLOR_ENV)
    if raw is None:
        return True
    return raw.strip().lower() not in _OFF_VALUES

#: Histogram buckets (seconds) for per-sweep latency. Spans 1 ms tile
#: sweeps on thumbnails up to multi-second 1080p software sweeps; the
#: exporter adds the +Inf overflow bucket.
SWEEP_SECONDS_BUCKETS = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0)


def expected_cluster_count(shape, n_superpixels: int) -> int:
    """Grid-realized cluster count K' for an (H, W) image and requested K.

    This is the number of rows ``initial_centers`` will produce — and
    therefore the K the engine validates ``warm_centers`` against. Stream
    drivers use it to detect K mismatches (e.g. after a resolution
    change) *before* shipping a frame to a worker process.
    """
    grid_h, grid_w, _, _ = grid_geometry(shape, n_superpixels)
    return grid_h * grid_w


def _check_warm_labels(warm_labels, shape, n_clusters) -> np.ndarray:
    """Validate a warm-start label map and return an int32 copy."""
    arr = np.asarray(warm_labels)
    if arr.ndim != 2 or arr.size == 0:
        raise ConfigurationError(
            f"warm_labels must be a non-empty 2-D label map, got shape "
            f"{arr.shape}"
        )
    if arr.shape != shape:
        raise ConfigurationError(
            f"warm_labels must have shape {shape}, got {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise ConfigurationError(
            f"warm_labels must be integer-typed, got dtype {arr.dtype}"
        )
    lo, hi = int(arr.min()), int(arr.max())
    if lo < 0 or hi >= n_clusters:
        raise ConfigurationError(
            f"warm_labels values must be in [0, {n_clusters}), got "
            f"[{lo}, {hi}]"
        )
    return arr.astype(np.int32).copy()


def run_segmentation(
    image: np.ndarray,
    params: SlicParams,
    warm_centers: np.ndarray | None = None,
    warm_labels: np.ndarray | None = None,
    tracer=None,
    connectivity_state=None,
) -> SegmentationResult:
    """Segment ``image`` according to ``params``; see module docstring.

    ``warm_centers`` (K', 5) and/or ``warm_labels`` (H, W) warm-start the
    run from a previous result — used for video streams (frame-to-frame
    temporal coherence) and for sweep-at-a-time drivers like Preemptive
    S-SLIC. The warm centers must match the grid-realized cluster count.

    ``tracer`` is an optional :class:`repro.obs.Tracer`; when given, the
    run emits the span tree and counters described in the module
    docstring. When ``None`` the shared disabled tracer is used and the
    instrumentation cost is a handful of attribute checks per sweep.

    ``connectivity_state`` is an optional
    :class:`~repro.core.connectivity.ConnectivityState` owned by the
    caller (one per video stream): connectivity enforcement then reuses
    the previous frame's run structures and re-resolves only the row
    bands whose labels changed, reporting the work done through the
    ``connectivity.tiles_resolved`` counter and
    ``SegmentationResult.tiles_resolved``. The state is a pure cache —
    results are bit-identical with or without it.
    """
    validate_rgb_image(image)
    tracer = tracer if tracer is not None else NULL_TRACER
    timer = PhaseTimer(tracer=tracer)
    kernel_name = resolve_name(params.kernel_backend)
    if kernel_name == "native-mt":
        # Pin the ambient kernel thread count for the whole run: every
        # name-string dispatch site (color conversion, connectivity,
        # metrics) resolves through it, and it is context-local, so
        # concurrent engines in one process keep their own settings.
        from ..kernels.native_mt import resolve_threads, thread_context

        n_threads = resolve_threads(params.n_threads)
        thread_ctx = thread_context(n_threads)
    else:
        import contextlib

        n_threads = None
        thread_ctx = contextlib.nullcontext()
    with thread_ctx, tracer.span(
        "segmentation",
        architecture=params.architecture,
        n_superpixels=params.n_superpixels,
        subsample_ratio=params.subsample_ratio,
        height=image.shape[0],
        width=image.shape[1],
        kernel_backend=kernel_name,
        n_threads=n_threads,
    ) as root:
        result = _run_instrumented(
            image, params, warm_centers, warm_labels, tracer, timer,
            kernel_name, connectivity_state,
        )
        root.set(
            sweeps=result.iterations,
            subiterations=result.subiterations,
            converged=result.converged,
            realized_superpixels=result.n_superpixels,
        )
    return result


def _run_instrumented(
    image, params, warm_centers, warm_labels, tracer, timer, kernel_name,
    connectivity_state=None,
):
    """The engine body; always runs inside the root ``segmentation`` span."""
    kernels = get_backend(kernel_name)

    # ------------------------------------------------------------------
    # Color conversion (reference float path, or the LUT hardware path
    # when a fixed datapath is configured).
    # ------------------------------------------------------------------
    datapath = params.datapath
    with timer.phase("color_conversion"):
        if datapath is not None:
            from ..color.lut import CACHE_STATS

            hits_before = CACHE_STATS["hits"]
            converter = HwColorConverter(encoding=datapath.encoding)
            lut_hits = CACHE_STATS["hits"] - hits_before
            if lut_hits:
                tracer.count("color.lut_cache_hits", lut_hits)
            if _fused_color_enabled(params):
                # One traversal produces the codes and their float decode
                # (bit-identical to convert-then-decode on every backend).
                lab, codes = converter.convert_fused(
                    as_uint8_rgb(image), backend=kernel_name
                )
                tracer.count("color.fused_frames")
            else:
                codes = converter.convert_codes(
                    as_uint8_rgb(image), backend=kernel_name
                )
                lab = datapath.encoding.decode(codes)
        else:
            codes = None
            lab = rgb_to_lab(image)

    h, w = lab.shape[:2]

    # ------------------------------------------------------------------
    # Initialization: grid centers, gradient perturbation, PPA structures.
    # ------------------------------------------------------------------
    with timer.phase("initialization"):
        grid_h, grid_w, _, _ = grid_geometry((h, w), params.n_superpixels)
        n_clusters = grid_h * grid_w
        if warm_centers is not None:
            # Warm-started frames never read the grid seeds: the warm
            # centers replace them wholesale, so deriving (and gradient-
            # perturbing) initial centers would be dead work.
            warm_centers = np.asarray(warm_centers, dtype=np.float64)
            if warm_centers.shape != (n_clusters, 5):
                raise ConfigurationError(
                    f"warm_centers must be ({n_clusters}, 5) — the "
                    f"grid-realized cluster count for this image/K (see "
                    f"expected_cluster_count) — got {warm_centers.shape}"
                )
            centers = warm_centers.copy()
        else:
            centers = initial_centers(lab, params.n_superpixels)
            if params.perturb_centers:
                centers = perturb_centers(centers, lab)
        s = float(np.sqrt(h * w / n_clusters))
        weight = spatial_weight(params.compactness, s)
        n_subsets = params.n_subsets

        if params.architecture == ARCH_PPA:
            tiles = tile_map((h, w), grid_h, grid_w)
            cands = candidate_map(grid_h, grid_w)
            pixels = PixelArrays(lab, tiles, datapath=datapath, codes=codes)
            # Source arrays for the sigma_accumulate kernel: the fixed
            # datapath accumulates decoded codes (values5 semantics), the
            # float path accumulates the lab rows directly.
            if datapath is not None:
                sigma_src = {
                    "codes_flat": pixels.codes_flat,
                    "encoding": datapath.encoding,
                }
            else:
                sigma_src = {"lab_flat": pixels.lab_flat}
            schedule = make_schedule(
                (h, w), params.subsample_ratio, params.subset_strategy, params.seed
            )
            if warm_labels is not None:
                labels_flat = _check_warm_labels(
                    warm_labels, (h, w), n_clusters
                ).ravel()
            else:
                labels_flat = tiles.ravel().astype(np.int32).copy()
        else:
            dist_buf = np.full((h, w), _INF, dtype=np.float64)
            if warm_labels is not None:
                labels_buf = _check_warm_labels(warm_labels, (h, w), n_clusters)
            else:
                labels_buf = tile_map((h, w), grid_h, grid_w).astype(np.int32)
            c_subsets = center_subsets(n_clusters, n_subsets)
            # Center updates accumulate straight from the flat lab array
            # via the sigma_accumulate kernel — no (H*W, 5) cache.
            lab_rows = lab.reshape(-1, 3)

    acc = SigmaAccumulator(n_clusters)
    movement_history = []
    converged = False
    max_sub = (
        params.max_subiterations
        if params.max_subiterations is not None
        else params.max_iterations * n_subsets
    )

    # ------------------------------------------------------------------
    # Main iteration loop.
    # ------------------------------------------------------------------
    sub = 0
    sweeps = 0
    while sub < max_sub:
        sweep_t0 = time.perf_counter()
        with tracer.span("sweep", index=sweeps) as sweep_span:
            sweep_start = centers.copy()
            for _ in range(n_subsets):
                if sub >= max_sub:
                    break
                if params.architecture == ARCH_PPA:
                    idx = schedule.subset(sub)
                    subit = tracer.span(
                        "subiteration",
                        sub=sub,
                        subset=sub % n_subsets,
                        architecture=ARCH_PPA,
                        pixels=len(idx),
                    )
                    with subit:
                        with timer.phase("distance_min"):
                            chosen = kernels.ppa_assign(
                                pixels,
                                idx,
                                cands,
                                centers,
                                weight,
                                compactness=params.compactness,
                                grid_s=s,
                            )
                            labels_flat[idx] = chosen
                        with timer.phase("center_update"):
                            mode = params.center_update_mode
                            if mode == "accumulate":
                                # Sigma registers persist across the sweep's
                                # subset passes and reset at sweep boundaries
                                # (hardware behaviour; see
                                # SlicParams.center_update_mode).
                                if sub % n_subsets == 0:
                                    acc.reset()
                                acc.accumulate(
                                    kernels, chosen, w, idx=idx, **sigma_src
                                )
                            elif mode == "subset":
                                acc.reset()
                                acc.accumulate(
                                    kernels, chosen, w, idx=idx, **sigma_src
                                )
                            else:  # all_assigned
                                acc.reset()
                                acc.accumulate(
                                    kernels, labels_flat, w, **sigma_src
                                )
                            centers = acc.compute_centers(fallback=centers)
                    tracer.count("engine.pixels_assigned", len(idx))
                    if tracer is not NULL_TRACER:
                        # Centers actually refreshed from data this pass:
                        # those with at least one accumulated pixel.
                        tracer.count(
                            "engine.centers_updated",
                            int(np.count_nonzero(acc.counts)),
                        )
                else:
                    subset_k = c_subsets[sub % n_subsets]
                    # Reset the running minima at sweep boundaries (with a
                    # single subset, every sub-iteration is a boundary).
                    if sub % n_subsets == 0:
                        dist_buf.fill(_INF)
                    subit = tracer.span(
                        "subiteration",
                        sub=sub,
                        subset=sub % n_subsets,
                        architecture=ARCH_CPA,
                        centers=len(subset_k),
                    )
                    with subit:
                        with timer.phase("distance_min"):
                            n_touched = kernels.cpa_assign(
                                lab,
                                centers,
                                weight,
                                s,
                                dist_buf,
                                labels_buf,
                                cluster_indices=subset_k,
                                datapath=datapath,
                                compactness=params.compactness,
                                codes=codes,
                            )
                        with timer.phase("center_update"):
                            acc.reset()
                            acc.accumulate(
                                kernels,
                                labels_buf.ravel(),
                                w,
                                lab_flat=lab_rows,
                            )
                            new_centers = acc.compute_centers(fallback=centers)
                            if n_subsets > 1:
                                # Only the scanned subset's centers move this
                                # sub-iteration (the others' pixel sets are
                                # stale).
                                merged = centers.copy()
                                merged[subset_k] = new_centers[subset_k]
                                centers = merged
                            else:
                                centers = new_centers
                    # Distinct pixels scanned this pass (windows overlap,
                    # so this is the deduplicated count, never > h*w).
                    tracer.count("engine.pixels_assigned", n_touched)
                    tracer.count("engine.centers_updated", len(subset_k))
                sub += 1
                tracer.count("engine.subiterations")
            sweeps += 1
            tracer.count("engine.sweeps")
            movement = center_movement(sweep_start, centers)
            movement_history.append(movement)
            sweep_span.set(movement=movement, subiterations_done=sub)
            tracer.gauge("engine.center_movement", movement)
        tracer.observe(
            "engine.sweep_seconds",
            time.perf_counter() - sweep_t0,
            buckets=SWEEP_SECONDS_BUCKETS,
        )
        if params.convergence_threshold > 0 and movement < params.convergence_threshold:
            converged = True
            break
        if params.architecture == ARCH_PPA and not params.static_neighbors:
            with timer.phase("initialization"):
                cands = dynamic_candidate_map(centers, grid_h, grid_w, (h, w))

    # ------------------------------------------------------------------
    # Connectivity enforcement.
    # ------------------------------------------------------------------
    if params.architecture == ARCH_PPA:
        labels = labels_flat.reshape(h, w)
    else:
        labels = labels_buf
    tiles_resolved = None
    if params.enforce_connectivity:
        with timer.phase("connectivity"):
            min_size = max(1, int(params.min_size_factor * s * s))
            labels = enforce_connectivity(
                labels, min_size, backend=kernel_name,
                state=connectivity_state,
            )
        if connectivity_state is not None:
            tiles_resolved = connectivity_state.tiles_resolved
            tracer.count("connectivity.tiles_resolved", tiles_resolved)
            tracer.count(
                "connectivity.tiles_total", connectivity_state.tiles_total
            )

    return SegmentationResult(
        labels=labels.astype(np.int32),
        centers=centers,
        n_superpixels=n_clusters,
        iterations=sweeps,
        subiterations=sub,
        converged=converged,
        movement_history=movement_history,
        timings=timer.as_dict(),
        params=params,
        tiles_resolved=tiles_resolved,
    )
