"""The PPA's 9-candidate structure: tiles and nearest-center maps.

Section 4.3: "the accelerator performs the initial assignment of the 9
closest SP centers for a given pixel. [...] our S-SLIC implementation
precomputes these values. [...] The image is statically split into tiled
regions based on the initial 9 closest SPs."

Because centers initialize on a regular grid, each pixel's 9 closest
candidates are simply the 3x3 grid-cell neighborhood of the tile containing
it. This module builds:

* ``tile_map`` — (H, W) tile index per pixel (which grid cell owns it),
* ``candidate_map`` — (T, 9) candidate cluster indices per tile, and
* a dynamic variant that recomputes candidates from *current* center
  positions (for the static-vs-dynamic ablation).

Edge tiles clamp their out-of-range neighbors, producing duplicate
candidates; the hardware always evaluates 9 distances, so duplicates model
it exactly (a duplicate can never win over itself).
"""

from __future__ import annotations

import numpy as np

__all__ = ["tile_map", "candidate_map", "dynamic_candidate_map"]


def tile_map(shape, grid_h: int, grid_w: int) -> np.ndarray:
    """(H, W) int map: which grid tile each pixel falls in.

    Tiles are the uniform regions of the initialization grid; tile index is
    ``gy * grid_w + gx``, matching the center ordering of
    :func:`~repro.core.initialization.initial_centers`.
    """
    h, w = shape[:2]
    gy = np.minimum((np.arange(h) * grid_h) // h, grid_h - 1)
    gx = np.minimum((np.arange(w) * grid_w) // w, grid_w - 1)
    return (gy[:, None] * grid_w + gx[None, :]).astype(np.int32)


def candidate_map(grid_h: int, grid_w: int) -> np.ndarray:
    """(T, 9) candidate cluster indices for each tile (3x3 neighborhood).

    Out-of-grid neighbors clamp to the edge, so every tile has exactly 9
    entries (with duplicates at the borders) — the hardware's fixed-size
    center register file.
    """
    gy, gx = np.mgrid[0:grid_h, 0:grid_w]
    cands = np.empty((grid_h * grid_w, 9), dtype=np.int32)
    k = 0
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            ny = np.clip(gy + dy, 0, grid_h - 1)
            nx = np.clip(gx + dx, 0, grid_w - 1)
            cands[:, k] = (ny * grid_w + nx).ravel()
            k += 1
    return cands


def dynamic_candidate_map(
    centers: np.ndarray, grid_h: int, grid_w: int, shape
) -> np.ndarray:
    """(T, 9) candidates recomputed from current center positions.

    For each tile, the 9 centers spatially closest to the tile's geometric
    middle. This is what "Set list of 9 spatially closest SP cluster
    centers for each pixel" (Figure 1b) does when evaluated per iteration;
    the ablation compares it against the static map.
    """
    h, w = shape[:2]
    ty = (np.arange(grid_h) + 0.5) * h / grid_h
    tx = (np.arange(grid_w) + 0.5) * w / grid_w
    tyy, txx = np.meshgrid(ty, tx, indexing="ij")
    tile_xy = np.stack([txx.ravel(), tyy.ravel()], axis=1)  # (T, 2) as (x, y)
    cxy = centers[:, 3:5]  # (K, 2)
    # (T, K) squared distances; T and K are both ~ the superpixel count, so
    # this stays small (K^2) even for thousands of superpixels.
    d2 = ((tile_xy[:, None, :] - cxy[None, :, :]) ** 2).sum(axis=2)
    k = min(9, d2.shape[1])
    nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
    if k < 9:
        # Fewer than 9 clusters exist; pad with the nearest one.
        pad = nearest[:, [0]] if k > 0 else np.zeros((len(tile_xy), 1), dtype=np.intp)
        nearest = np.concatenate([nearest] + [pad] * (9 - k), axis=1)
    # Sort each row by actual distance so index 0 is the closest center
    # (deterministic tie behaviour for the 9:1 minimum unit).
    row = np.arange(len(tile_xy))[:, None]
    order = np.argsort(d2[row, nearest], axis=1, kind="stable")
    return nearest[row, order].astype(np.int32)
