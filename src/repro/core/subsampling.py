"""Pixel-subset schedules for S-SLIC.

Section 3: "The image pixels are split into subsets of equal size. At each
iteration, a different subset is used to update the SPs. The subsets are
traversed in a round-robin fashion to guarantee that all image pixels are
considered. Choosing the proper subsampling strategy is fundamental to
guaranteeing the convergence of the iterative algorithm."

Each schedule partitions the pixel grid into ``n_subsets`` equal classes and
exposes the class members as flat pixel indices. Interleaved schedules
(strided, checkerboard, rows) keep every subset spatially uniform — each
superpixel sees ~1/n of its pixels every sub-iteration, which is what makes
the OS-EM-style center update unbiased. The ``blocks`` schedule is
deliberately *bad* (contiguous stripes starve most superpixels each
sub-iteration) and exists for the schedule ablation.

A schedule for centers (the CPA variant of S-SLIC, which subsets the
superpixels instead of the pixels) is also provided.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["SubsetSchedule", "make_schedule", "center_subsets"]


class SubsetSchedule:
    """Partition of an (H, W) pixel grid into ``n_subsets`` index sets.

    Parameters
    ----------
    shape:
        Image shape (H, W).
    n_subsets:
        Number of equal subsets (1 = no subsampling).
    strategy:
        One of ``strided``, ``checkerboard``, ``rows``, ``blocks``,
        ``random``.
    seed:
        Used only by the ``random`` strategy.

    The subsets are materialized once as flat index arrays; ``subset(p)``
    returns the indices of phase ``p mod n_subsets``, so round-robin
    traversal is just ``subset(0), subset(1), ...``.
    """

    def __init__(self, shape, n_subsets: int, strategy: str = "strided", seed: int = 0):
        h, w = shape[:2]
        if n_subsets < 1:
            raise ConfigurationError(f"n_subsets must be >= 1, got {n_subsets}")
        if n_subsets > h * w:
            raise ConfigurationError(
                f"n_subsets {n_subsets} exceeds pixel count {h * w}"
            )
        self.shape = (h, w)
        self.n_subsets = n_subsets
        self.strategy = strategy
        n = h * w
        if n_subsets == 1:
            phase = np.zeros(n, dtype=np.int32)
        elif strategy == "strided":
            # Raster-order interleave: adjacent pixels land in different
            # subsets; each subset is a uniform sparse lattice.
            phase = (np.arange(n, dtype=np.int64) % n_subsets).astype(np.int32)
        elif strategy == "checkerboard":
            yy, xx = np.mgrid[0:h, 0:w]
            if n_subsets == 2:
                phase = ((xx + yy) % 2).astype(np.int32).ravel()
            elif n_subsets == 4:
                phase = ((yy % 2) * 2 + (xx % 2)).astype(np.int32).ravel()
            else:
                # Generalized 2D interleave for other counts.
                phase = ((xx + yy * 2) % n_subsets).astype(np.int32).ravel()
        elif strategy == "rows":
            yy = np.repeat(np.arange(h), w)
            phase = (yy % n_subsets).astype(np.int32)
        elif strategy == "blocks":
            # Contiguous horizontal bands — the pathological schedule.
            yy = np.repeat(np.arange(h), w)
            phase = np.minimum(yy * n_subsets // h, n_subsets - 1).astype(np.int32)
        elif strategy == "random":
            rng = np.random.default_rng(seed)
            perm = rng.permutation(n)
            phase = np.empty(n, dtype=np.int32)
            phase[perm] = (np.arange(n) % n_subsets).astype(np.int32)
        else:
            raise ConfigurationError(f"unknown subset strategy {strategy!r}")
        self._subsets = [
            np.flatnonzero(phase == p).astype(np.int64) for p in range(n_subsets)
        ]

    def subset(self, phase: int) -> np.ndarray:
        """Flat pixel indices of subset ``phase mod n_subsets``."""
        return self._subsets[phase % self.n_subsets]

    def subset_mask(self, phase: int) -> np.ndarray:
        """Boolean (H, W) mask of subset ``phase mod n_subsets``."""
        mask = np.zeros(self.shape[0] * self.shape[1], dtype=bool)
        mask[self.subset(phase)] = True
        return mask.reshape(self.shape)

    @property
    def sizes(self) -> list:
        """Subset sizes (balanced to within one pixel for grid schedules)."""
        return [len(s) for s in self._subsets]


def make_schedule(shape, subsample_ratio: float, strategy: str, seed: int = 0) -> SubsetSchedule:
    """Build the schedule for a subsample ratio of ``1/n``."""
    n = int(round(1.0 / subsample_ratio))
    if abs(n * subsample_ratio - 1.0) > 1e-9:
        raise ConfigurationError(
            f"subsample_ratio must be 1/n for integer n, got {subsample_ratio}"
        )
    return SubsetSchedule(shape, n, strategy=strategy, seed=seed)


def center_subsets(n_centers: int, n_subsets: int) -> list:
    """Round-robin partition of center indices — the CPA S-SLIC variant.

    "We also examined a SP Center Perspective Architecture in which the SPs
    are split into subsets of equal size" (Section 3). Interleaving by
    index keeps each subset spatially spread out, since grid order maps
    index to position.
    """
    if n_subsets < 1:
        raise ConfigurationError(f"n_subsets must be >= 1, got {n_subsets}")
    idx = np.arange(n_centers)
    return [idx[idx % n_subsets == p] for p in range(n_subsets)]
