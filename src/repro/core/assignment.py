"""Assignment passes: CPA window scan and PPA 9-candidate evaluation.

Two iteration orders compute the same k-means-style assignment:

* :func:`assign_cpa` — the original SLIC order (Figure 1a): for each
  center, scan a 2S x 2S window and keep per-pixel running minima in two
  image-sized buffers ("Two memory buffers (as large as the image) are
  required to store the minimum distance and the corresponding SP").
* :func:`assign_ppa` — the accelerator order (Figure 1b): for each pixel,
  evaluate the 9 statically-assigned candidate centers and take the 9:1
  minimum. No distance buffer is needed, and any pixel subset can be
  processed independently — which is what makes S-SLIC subsampling cheap.

Both support the float64 reference datapath and the quantized
:class:`~repro.core.distance.FixedDatapath`.
"""

from __future__ import annotations

import numpy as np

from .distance import FixedDatapath, pairwise_d2_float

__all__ = ["PixelArrays", "assign_ppa", "assign_cpa"]

#: Chunk size (pixels) for the PPA vectorized pass; bounds peak memory at
#: roughly chunk * 9 * 5 float64s (~95 MB at the default).
_PPA_CHUNK = 1 << 18


class PixelArrays:
    """Flat per-pixel arrays prepared once per run.

    Holds the Lab image (float and, when a fixed datapath is configured,
    code domain), integer pixel coordinates, and the tile index of every
    pixel. Assignment functions index these with subset index arrays.
    """

    def __init__(
        self,
        lab: np.ndarray,
        tile_of_pixel: np.ndarray,
        datapath: FixedDatapath = None,
        codes: np.ndarray | None = None,
    ):
        h, w = lab.shape[:2]
        self.shape = (h, w)
        self.lab_flat = lab.reshape(-1, 3).astype(np.float64)
        yy, xx = np.mgrid[0:h, 0:w]
        self.x_flat = xx.ravel().astype(np.int64)
        self.y_flat = yy.ravel().astype(np.int64)
        self.tile_flat = np.asarray(tile_of_pixel).ravel().astype(np.int64)
        self.datapath = datapath
        if datapath is not None:
            if codes is None:
                codes = datapath.encode_image(lab)
            self.codes_flat = np.asarray(codes, dtype=np.int64).reshape(-1, 3)
        else:
            self.codes_flat = None

    @property
    def n_pixels(self) -> int:
        return len(self.x_flat)

    def values5(self, idx: np.ndarray) -> np.ndarray:
        """(M, 5) rows ``[L, a, b, x, y]`` for sigma accumulation.

        In fixed mode the color fields are the *decoded* code values, so
        center means stay in real Lab units while reflecting the code
        quantization the hardware accumulates.
        """
        out = np.empty((len(idx), 5), dtype=np.float64)
        if self.datapath is not None:
            out[:, 0:3] = self.datapath.encoding.decode(self.codes_flat[idx])
        else:
            out[:, 0:3] = self.lab_flat[idx]
        out[:, 3] = self.x_flat[idx]
        out[:, 4] = self.y_flat[idx]
        return out


def assign_ppa(
    pixels: PixelArrays,
    subset_idx: np.ndarray,
    candidates: np.ndarray,
    centers: np.ndarray,
    weight: float,
    compactness: float | None = None,
    grid_s: float | None = None,
) -> np.ndarray:
    """PPA assignment for the pixels in ``subset_idx``.

    Parameters
    ----------
    pixels:
        Prepared :class:`PixelArrays`.
    subset_idx:
        Flat indices of the pixels to (re)assign this sub-iteration.
    candidates:
        (T, 9) candidate cluster indices per tile.
    centers:
        (K, 5) float centers.
    weight:
        Float spatial weight ``m^2/S^2`` (reference datapath).
    compactness, grid_s:
        Needed to derive the fixed-point weight when a
        :class:`FixedDatapath` is configured.

    Returns the chosen cluster index for each subset pixel, in subset
    order. Ties resolve to the lowest candidate slot — the deterministic
    behaviour of the hardware 9:1 minimum tree.
    """
    dp = pixels.datapath
    if dp is not None:
        c_codes_all = dp.encode_centers(centers)
        weight_raw = dp.weight_raw(compactness, grid_s)
    out = np.empty(len(subset_idx), dtype=np.int32)
    for start in range(0, len(subset_idx), _PPA_CHUNK):
        idx = subset_idx[start : start + _PPA_CHUNK]
        cand = candidates[pixels.tile_flat[idx]]  # (M, 9)
        if dp is None:
            px_lab = pixels.lab_flat[idx][:, None, :]  # (M, 1, 3)
            px_xy = np.stack([pixels.x_flat[idx], pixels.y_flat[idx]], axis=1)[
                :, None, :
            ].astype(np.float64)
            c_lab = centers[cand, 0:3]  # (M, 9, 3)
            c_xy = centers[cand, 3:5]
            d2 = pairwise_d2_float(px_lab, px_xy, c_lab, c_xy, weight)
        else:
            px_codes = pixels.codes_flat[idx][:, None, :]
            px_xy = np.stack([pixels.x_flat[idx], pixels.y_flat[idx]], axis=1)[
                :, None, :
            ]
            c_codes = c_codes_all[cand, 0:3]
            c_xy_raw = c_codes_all[cand, 3:5]
            d2 = dp.pairwise_d2(px_codes, px_xy, c_codes, c_xy_raw, weight_raw)
        best = np.argmin(d2, axis=1)  # first minimum wins, like the hw tree
        out[start : start + len(idx)] = cand[np.arange(len(idx)), best]
    return out


def assign_cpa(
    lab: np.ndarray,
    centers: np.ndarray,
    weight: float,
    grid_s: float,
    dist_buf: np.ndarray,
    labels_buf: np.ndarray,
    cluster_indices: np.ndarray | None = None,
    datapath: FixedDatapath = None,
    compactness: float | None = None,
    codes: np.ndarray | None = None,
) -> int:
    """CPA assignment: scan a 2S x 2S window per center, updating the
    running-minimum buffers in place.

    The window is the paper's 2S x 2S region: ``ceil(S)`` pixels each
    side of the center's integer position.

    ``dist_buf`` (float64 or int64 (H, W), pre-filled with +inf / a large
    sentinel) and ``labels_buf`` (int32 (H, W)) are the paper's two
    image-sized memory buffers. ``cluster_indices`` restricts the scan to a
    subset of centers — the CPA flavour of S-SLIC; ``None`` scans all.

    In fixed mode pass ``codes`` (the encoded image) and ``compactness``.

    Returns the number of distinct pixels scanned at least once (windows
    overlap, so this is less than the summed window areas).
    """
    h, w = lab.shape[:2]
    half = int(np.ceil(grid_s))
    if cluster_indices is None:
        cluster_indices = np.arange(len(centers))
    if datapath is not None:
        c_all = datapath.encode_centers(centers)
        weight_raw = datapath.weight_raw(compactness, grid_s)
        sf = datapath.spatial_frac_bits
    touched = np.zeros((h, w), dtype=bool)
    for k in cluster_indices:
        cx, cy = centers[k, 3], centers[k, 4]
        x0 = max(0, int(np.floor(cx)) - half)
        x1 = min(w, int(np.floor(cx)) + half + 1)
        y0 = max(0, int(np.floor(cy)) - half)
        y1 = min(h, int(np.floor(cy)) + half + 1)
        if x0 >= x1 or y0 >= y1:
            continue
        yy, xx = np.mgrid[y0:y1, x0:x1]
        if datapath is None:
            window = lab[y0:y1, x0:x1, :]
            dc2 = ((window - centers[k, 0:3]) ** 2).sum(axis=-1)
            ds2 = (xx - cx) ** 2 + (yy - cy) ** 2
            d2 = dc2 + weight * ds2
        else:
            window = codes[y0:y1, x0:x1, :]
            dlab = window - c_all[k, 0:3]
            dc2 = (dlab * dlab).sum(axis=-1)
            dxy_x = (xx.astype(np.int64) << sf) - c_all[k, 3]
            dxy_y = (yy.astype(np.int64) << sf) - c_all[k, 4]
            ds2 = (dxy_x * dxy_x + dxy_y * dxy_y) >> (2 * sf)
            d2 = dc2 + ((weight_raw * ds2) >> 12)
            if datapath.quantize_distance:
                d2 = np.minimum(
                    d2 >> datapath.effective_distance_shift, datapath.distance_max_code
                )
        sub_d = dist_buf[y0:y1, x0:x1]
        sub_l = labels_buf[y0:y1, x0:x1]
        better = d2 < sub_d
        sub_d[better] = d2[better]
        sub_l[better] = k
        touched[y0:y1, x0:x1] = True
    return int(np.count_nonzero(touched))
