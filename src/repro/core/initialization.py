"""Cluster-center initialization: regular grid + gradient perturbation.

Section 2 of the paper: "The SP centers are initialized on a regular grid,
with a spacing of S = sqrt(N/K) pixels. [...] Each SP center is then moved
to the local minimum of the gradient image in a 3x3 neighborhood, to avoid
initialization on an edge or a noisy pixel."
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "grid_geometry",
    "initial_grid_xy",
    "initial_centers",
    "gradient_magnitude",
    "perturb_centers",
]


def grid_geometry(shape, n_superpixels: int):
    """Compute the initialization grid for K superpixels on an (H, W) image.

    Returns ``(grid_h, grid_w, ys, xs)`` where ``ys``/``xs`` are the center
    row/column coordinates. The realized count ``grid_h * grid_w`` is the
    closest grid-feasible value to K (standard SLIC behaviour).
    """
    h, w = shape[:2]
    if n_superpixels < 1:
        raise ConfigurationError(f"n_superpixels must be >= 1, got {n_superpixels}")
    if n_superpixels > h * w:
        raise ConfigurationError(
            f"n_superpixels {n_superpixels} exceeds pixel count {h * w}"
        )
    s = np.sqrt(h * w / n_superpixels)
    grid_h = max(1, int(round(h / s)))
    grid_w = max(1, int(round(w / s)))
    ys = ((np.arange(grid_h) + 0.5) * h / grid_h)
    xs = ((np.arange(grid_w) + 0.5) * w / grid_w)
    return grid_h, grid_w, ys, xs


def initial_grid_xy(shape, n_superpixels: int) -> np.ndarray:
    """Initial center positions only: ``(K', 2)`` float64 ``[x, y]`` rows.

    Shape-only companion to :func:`initial_centers` — same grid order,
    no image required. Used by stream drivers that need the home grid
    of a resolution without touching pixel data.
    """
    grid_h, grid_w, ys, xs = grid_geometry(shape, n_superpixels)
    yy, xx = np.meshgrid(ys, xs, indexing="ij")
    return np.stack([xx.ravel(), yy.ravel()], axis=1)


def initial_centers(lab: np.ndarray, n_superpixels: int) -> np.ndarray:
    """Place centers on the grid and fill their Lab values from the image.

    Returns a ``(K', 5)`` float64 array ``[L, a, b, x, y]`` in row-major
    grid order (row ``gy``, column ``gx`` maps to index ``gy*grid_w+gx`` —
    the tiling in :mod:`repro.core.neighbors` relies on this order).
    """
    h, w = lab.shape[:2]
    grid_h, grid_w, ys, xs = grid_geometry((h, w), n_superpixels)
    yy, xx = np.meshgrid(ys, xs, indexing="ij")
    y_idx = np.clip(np.rint(yy).astype(np.intp), 0, h - 1)
    x_idx = np.clip(np.rint(xx).astype(np.intp), 0, w - 1)
    centers = np.empty((grid_h * grid_w, 5), dtype=np.float64)
    centers[:, 0:3] = lab[y_idx.ravel(), x_idx.ravel(), :]
    centers[:, 3] = xx.ravel()
    centers[:, 4] = yy.ravel()
    return centers


def gradient_magnitude(lab: np.ndarray) -> np.ndarray:
    """Squared gradient magnitude of a Lab image, summed over channels.

    Central differences in the interior, one-sided at the borders — cheap
    and sufficient for choosing the smoothest pixel of a 3x3 patch.
    """
    img = np.asarray(lab, dtype=np.float64)
    if img.ndim == 2:
        img = img[..., None]
    gy = np.empty_like(img)
    gx = np.empty_like(img)
    gy[1:-1] = (img[2:] - img[:-2]) * 0.5
    gy[0] = img[1] - img[0]
    gy[-1] = img[-1] - img[-2]
    gx[:, 1:-1] = (img[:, 2:] - img[:, :-2]) * 0.5
    gx[:, 0] = img[:, 1] - img[:, 0]
    gx[:, -1] = img[:, -1] - img[:, -2]
    return (gy ** 2 + gx ** 2).sum(axis=-1)


def perturb_centers(centers: np.ndarray, lab: np.ndarray) -> np.ndarray:
    """Move each center to the 3x3-neighborhood pixel of minimum gradient.

    Also refreshes the center's Lab value from its new pixel. Returns a new
    array; the input is untouched.
    """
    h, w = lab.shape[:2]
    grad = gradient_magnitude(lab)
    out = centers.copy()
    cx = np.clip(np.rint(centers[:, 3]).astype(np.intp), 0, w - 1)
    cy = np.clip(np.rint(centers[:, 4]).astype(np.intp), 0, h - 1)
    best_g = np.full(len(centers), np.inf)
    best_x = cx.copy()
    best_y = cy.copy()
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            ny = np.clip(cy + dy, 0, h - 1)
            nx = np.clip(cx + dx, 0, w - 1)
            g = grad[ny, nx]
            better = g < best_g
            best_g[better] = g[better]
            best_y[better] = ny[better]
            best_x[better] = nx[better]
    out[:, 0:3] = lab[best_y, best_x, :]
    out[:, 3] = best_x
    out[:, 4] = best_y
    return out
