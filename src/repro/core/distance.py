"""The color-space distance of Equation 5, in float and fixed point.

Equation 5 combines the CIELAB color distance ``dc`` and the spatial
distance ``ds`` as::

    d = sqrt(dc^2 + m^2 * (ds / S)^2)

Both implementations work with the *squared* distance: sqrt is monotone, so
the argmin over candidates is unchanged — exactly the simplification the
accelerator makes ("SLIC accuracy is determined by the relative
color-distance comparison results rather than the absolute [...] results",
Section 6.1).

Two backends:

* float64 — the software reference;
* :class:`FixedDatapath` — the quantized hardware datapath: Lab values are
  ``bits``-wide codes (see :class:`~repro.color.hw_convert.LabEncoding`),
  center positions are quantized to ``spatial_frac_bits`` of sub-pixel
  precision, the spatial weight is one fixed-point constant multiplier, and
  (optionally) the final distance is crushed to a ``bits``-wide code the
  way the accelerator's distance calculators "return the 8-bit distance".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..color.hw_convert import LabEncoding
from ..errors import ConfigurationError

__all__ = ["FixedDatapath", "pairwise_d2_float", "spatial_weight"]

#: Fraction bits of the fixed-point spatial-weight constant.
WEIGHT_FRAC_BITS = 12


def spatial_weight(compactness: float, s: float) -> float:
    """The Equation 5 spatial weight ``m^2 / S^2`` (float path)."""
    if s <= 0:
        raise ConfigurationError(f"grid interval S must be > 0, got {s}")
    return (compactness / s) ** 2


def pairwise_d2_float(
    px_lab: np.ndarray,
    px_xy: np.ndarray,
    c_lab: np.ndarray,
    c_xy: np.ndarray,
    weight: float,
) -> np.ndarray:
    """Squared Equation 5 distance, float64, broadcasting over candidates.

    Shapes: ``px_lab (M, 1, 3)`` against ``c_lab (M, C, 3)`` (or anything
    numpy-broadcastable); returns ``(M, C)``.
    """
    dc2 = ((px_lab - c_lab) ** 2).sum(axis=-1)
    ds2 = ((px_xy - c_xy) ** 2).sum(axis=-1)
    return dc2 + weight * ds2


@dataclass(frozen=True)
class FixedDatapath:
    """Configuration of the quantized (hardware) distance datapath.

    Attributes
    ----------
    bits:
        Width of the Lab channel codes *and* of the (optional) distance
        output. The paper's final design uses 8; Section 6.1 sweeps this.
    uniform_encoding:
        Use the same codes-per-Lab-unit scale for L as for a/b so the code
        -domain distance weights channels like the reference (default). A
        non-uniform encoding stretches L over the full code range at the
        cost of a 6.5x implicit L weight.
    spatial_frac_bits:
        Sub-pixel precision of the stored center positions (2 = quarter
        pixel). Pixel positions themselves are integers.
    quantize_distance:
        If True (hardware-faithful), the combined squared distance is
        right-shifted and saturated to a ``bits``-wide code before the 9:1
        comparison. If False, candidates compare full-precision sums of
        quantized inputs.
    distance_shift:
        Right-shift applied before the distance saturation; ``None`` picks
        ``max(0, bits - 4)`` — sized so the practical within-neighborhood
        distance range spans the output code range with minimal
        saturation (empirically the quality sweet spot; see the Section
        6.1 bench).
    """

    bits: int = 8
    uniform_encoding: bool = True
    spatial_frac_bits: int = 2
    quantize_distance: bool = True
    distance_shift: int | None = None

    def __post_init__(self) -> None:
        if not (2 <= self.bits <= 16):
            raise ConfigurationError(f"datapath bits must be in [2, 16], got {self.bits}")
        if not (0 <= self.spatial_frac_bits <= 8):
            raise ConfigurationError(
                f"spatial_frac_bits must be in [0, 8], got {self.spatial_frac_bits}"
            )
        if self.distance_shift is not None and self.distance_shift < 0:
            raise ConfigurationError("distance_shift must be >= 0")

    # ------------------------------------------------------------------
    @property
    def encoding(self) -> LabEncoding:
        """The Lab channel-code encoding this datapath consumes."""
        return LabEncoding(self.bits, uniform=self.uniform_encoding)

    @property
    def effective_distance_shift(self) -> int:
        if self.distance_shift is not None:
            return self.distance_shift
        return max(0, self.bits - 4)

    @property
    def distance_max_code(self) -> int:
        return (1 << self.bits) - 1

    def weight_raw(self, compactness: float, s: float) -> int:
        """Fixed-point spatial weight in *code-domain* units.

        Scales ``m^2/S^2`` by the square of the Lab code scale so that the
        code-domain color term and the pixel-domain spatial term combine
        with the same balance as Equation 5, then quantizes to a
        ``WEIGHT_FRAC_BITS``-fraction constant. A weight that quantizes to
        zero is clamped to 1 LSB so the spatial term never vanishes.
        """
        scale = self.encoding.ab_scale
        w = (compactness * scale / s) ** 2
        raw = int(round(w * (1 << WEIGHT_FRAC_BITS)))
        return max(raw, 1)

    # ------------------------------------------------------------------
    def encode_image(self, lab: np.ndarray) -> np.ndarray:
        """Real Lab image -> (H, W, 3) int64 channel codes."""
        return self.encoding.encode(lab)

    def encode_centers(self, centers: np.ndarray) -> np.ndarray:
        """Float centers (K, 5) -> int64 code-domain centers (K, 5).

        Lab components quantize to channel codes; x/y quantize to
        ``spatial_frac_bits`` sub-pixel codes.
        """
        out = np.empty(centers.shape, dtype=np.int64)
        out[:, 0:3] = self.encoding.encode(centers[:, 0:3])
        sf = 1 << self.spatial_frac_bits
        out[:, 3] = np.rint(centers[:, 3] * sf)
        out[:, 4] = np.rint(centers[:, 4] * sf)
        return out

    def pairwise_d2(
        self,
        px_codes: np.ndarray,
        px_xy: np.ndarray,
        c_codes: np.ndarray,
        c_xy_raw: np.ndarray,
        weight_raw: int,
    ) -> np.ndarray:
        """Squared Equation 5 distance in the integer code domain.

        Parameters
        ----------
        px_codes : (M, 1, 3) or broadcastable int64
            Pixel Lab channel codes.
        px_xy : (M, 1, 2) int64
            Integer pixel positions (x, y).
        c_codes : (M, C, 3) int64
            Candidate center Lab codes.
        c_xy_raw : (M, C, 2) int64
            Candidate center positions in ``spatial_frac_bits`` sub-pixel
            codes.
        weight_raw:
            Output of :meth:`weight_raw`.

        Returns int64 ``(M, C)`` distance codes — either the full-precision
        combined value or, when ``quantize_distance``, the ``bits``-wide
        saturated code.
        """
        dlab = px_codes - c_codes
        dc2 = (dlab * dlab).sum(axis=-1)
        sf = self.spatial_frac_bits
        dxy = (px_xy << sf) - c_xy_raw
        ds2 = (dxy * dxy).sum(axis=-1) >> (2 * sf)  # back to whole pixels^2
        d2 = dc2 + ((weight_raw * ds2) >> WEIGHT_FRAC_BITS)
        if not self.quantize_distance:
            return d2
        shifted = d2 >> self.effective_distance_shift
        return np.minimum(shifted, self.distance_max_code)
