"""Connectivity enforcement — the final SLIC post-processing step.

Section 2: "At convergence, a final step is performed to enforce the
connectivity, ensuring that any stray pixels that may still be disjoint are
assigned to the closest large SP."

The pass:

1. find 4-connected components of the label map (two-pass union-find,
   vectorized per row);
2. build the component adjacency graph once (shared-border lengths);
3. greedily merge every component smaller than ``min_size`` into the
   neighbor with which it shares the longest border, processing small
   components in increasing size order on the *graph* (no image-domain
   recomputation), chaining through union-find so a small component merged
   into another small one ends up wherever that one goes;
4. each pixel takes the superpixel label of its component's final root, so
   labels remain comparable to the cluster centers.

``connected_components`` dispatches through :mod:`repro.kernels` (the
pure-Python union-find here is the ``reference`` backend; the optimized
backends use a loop-free min-propagation pass or the native two-pass C
kernel). All renumber components by first appearance — the minimal run
id of each component — so backends are interchangeable bit for bit.

For warm-started video, :class:`ConnectivityState` adds an incremental
path: the label map is split into row bands ("tiles"), per-band run
structures are cached, and a new frame rebuilds only the bands whose
labels actually changed since the previous frame before the (cheap)
global union-find resolve. The state is a pure cache — dropping it, or
feeding it frames from the wrong stream, can never change the output,
only the ``tiles_resolved`` telemetry and the speed — which is what
keeps checkpoint replay and worker-pool scheduling bit-identical.
"""

from __future__ import annotations

import numpy as np

from ..types import validate_label_map

__all__ = [
    "ConnectivityState",
    "connected_components",
    "connected_components_reference",
    "enforce_connectivity",
    "merge_small_reference",
]


class _UnionFind:
    """Array-based union-find with path halving (plain ints, no recursion)."""

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, i: int) -> int:
        parent = self.parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return int(i)

    def union_into(self, child: int, target: int) -> None:
        """Directed union: ``child``'s root now points at ``target``'s root."""
        rc, rt = self.find(child), self.find(target)
        if rc != rt:
            self.parent[rc] = rt


def _run_ids(labels: np.ndarray):
    """Provisional run decomposition: id of each horizontal run of equal
    labels, numbered in raster order. Returns ``(run_id, n_runs)``."""
    h, w = labels.shape
    same_left = np.zeros((h, w), dtype=bool)
    same_left[:, 1:] = labels[:, 1:] == labels[:, :-1]
    run_start = ~same_left
    run_id = np.cumsum(run_start.ravel()).reshape(h, w) - 1
    return run_id, int(run_id[-1, -1]) + 1


def _resolve_roots(parent: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Union-find roots of ``idx`` via vectorized pointer jumping.

    Read-only on ``parent`` (no path compression) — used to replace the
    per-element ``uf.find`` generator loops on the hot path.
    """
    roots = parent[idx]
    while True:
        hop = parent[roots]
        if np.array_equal(hop, roots):
            return roots
        roots = hop


def _min_propagate(parent: np.ndarray, a: np.ndarray, b: np.ndarray):
    """Resolve union pairs ``(a, b)`` by iterative min-label propagation.

    Repeated minimum-scatter plus pointer jumping until every pair
    agrees; converges in O(log n) rounds. On return ``parent[i]`` is the
    minimal element of ``i``'s component — the canonical representative
    the reference renumbers by.
    """
    while True:
        lo = np.minimum(parent[a], parent[b])
        np.minimum.at(parent, a, lo)
        np.minimum.at(parent, b, lo)
        while True:  # pointer jumping to full compression
            hop = parent[parent]
            if np.array_equal(hop, parent):
                break
            parent = hop
        if np.array_equal(parent[a], parent[b]):
            break
    return parent


def connected_components_reference(labels: np.ndarray):
    """4-connected components of a label map (sequential union-find).

    Returns ``(components, n_components)`` where ``components`` is an
    (H, W) int array of dense component ids, numbered by first
    appearance in raster order.
    """
    labels = validate_label_map(labels)
    run_id, n_runs = _run_ids(labels)
    uf = _UnionFind(n_runs)
    # Vertical unions: where a pixel matches the one above, union the runs.
    same_up = labels[1:, :] == labels[:-1, :]
    if same_up.any():
        up_pairs = np.stack(
            [run_id[1:, :][same_up], run_id[:-1, :][same_up]], axis=1
        )
        up_pairs = np.unique(up_pairs, axis=0)
        for a, b in up_pairs:
            uf.union_into(int(a), int(b))
    roots = np.fromiter(
        (uf.find(i) for i in range(n_runs)), dtype=np.int64, count=n_runs
    )
    # Canonical dense renumbering by each component's minimal run id
    # (first appearance in raster order) — independent of which run the
    # union-find happened to leave as root, so optimized backends can
    # reproduce it exactly.
    comp_min = np.full(n_runs, n_runs, dtype=np.int64)
    np.minimum.at(comp_min, roots, np.arange(n_runs, dtype=np.int64))
    uniq, dense = np.unique(comp_min[roots], return_inverse=True)
    components = dense[run_id]
    return components.astype(np.int32), int(len(uniq))


def connected_components(labels: np.ndarray, backend: str | None = None):
    """4-connected components, dispatched through :mod:`repro.kernels`.

    ``backend`` selects the kernel backend by name (``None`` honours the
    ``REPRO_KERNEL_BACKEND`` environment variable, then ``auto``).
    """
    from ..kernels import get_backend  # lazy: kernels imports this module

    return get_backend(backend).connected_components(labels)


def _resolve_runs(
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    n_runs: int,
    backend: str | None = None,
):
    """Dense first-appearance component ids per run: ``(dense, n_comps)``.

    The union-find resolve behind the incremental path. The native
    backends use the C ``ccl_resolve`` entry point; everything else uses
    :func:`_min_propagate`. Both renumber components ascending by
    minimal run id, so the choice never changes the result.
    """
    from ..errors import ConfigurationError
    from ..kernels import resolve_name  # lazy: kernels imports this module

    if resolve_name(backend) in ("native", "native-mt"):
        from ..kernels import native

        try:
            return native.resolve_runs(pair_a, pair_b, n_runs)
        except ConfigurationError:
            pass  # compiler vanished since resolve_name probed: fall back
    parent = np.arange(n_runs, dtype=np.int64)
    if len(pair_a):
        parent = _min_propagate(parent, pair_a, pair_b)
    uniq, dense = np.unique(parent, return_inverse=True)
    return dense.astype(np.int64), int(len(uniq))


class ConnectivityState:
    """Per-stream cache enabling incremental connectivity enforcement.

    Rows are grouped into bands of ``band_rows`` (the "tiles" of the
    ``connectivity.tiles_resolved`` counter). For each band the run
    decomposition and intra-band vertical adjacencies of the previous
    frame's label map are kept; a new frame recomputes them only for
    bands whose labels changed (band-local runs + prefix-sum offsets
    equal the global decomposition because runs never cross rows). A
    frame whose labels are byte-identical to the previous one returns
    the cached output without resolving anything.

    The state is a *pure cache*: every code path produces exactly the
    labels the stateless path would, so callers may drop, reset, or
    cold-start it at any point (checkpoint resume, worker recycling)
    without affecting bit-identity.
    """

    def __init__(self, band_rows: int = 64):
        self.band_rows = max(1, int(band_rows))
        self.shape: tuple | None = None
        self.prev_labels: np.ndarray | None = None
        self.prev_output: np.ndarray | None = None
        self._min_size: int | None = None
        self._band_runs: list | None = None
        #: Telemetry for the last call: bands re-resolved / total bands.
        self.tiles_resolved = 0
        self.tiles_total = 0

    def _bands(self, h: int) -> list:
        step = self.band_rows
        return [(y, min(y + step, h)) for y in range(0, h, step)]

    def reset(self) -> None:
        """Drop all cached frame state (stream restart / reanchor)."""
        self.shape = None
        self.prev_labels = None
        self.prev_output = None
        self._min_size = None
        self._band_runs = None
        self.tiles_resolved = 0
        self.tiles_total = 0

    def components(
        self,
        labels: np.ndarray,
        min_size: int,
        backend: str | None = None,
    ):
        """Incremental ``(comps, n_comps, shortcut)`` for ``labels``.

        ``shortcut`` is the finished connectivity output when the frame
        is byte-identical to the previous one and was enforced with the
        same ``min_size`` (``comps`` is ``None`` in that case);
        otherwise ``None`` and the caller proceeds with the returned
        component map.
        """
        h, w = labels.shape
        bands = self._bands(h)
        self.tiles_total = len(bands)
        if self.shape != labels.shape or self._band_runs is None:
            self.shape = labels.shape
            self._band_runs = [None] * len(bands)
            dirty = [True] * len(bands)
        else:
            prev = self.prev_labels
            dirty = [
                self._band_runs[i] is None
                or not np.array_equal(labels[y0:y1], prev[y0:y1])
                for i, (y0, y1) in enumerate(bands)
            ]
        self.tiles_resolved = int(sum(dirty))
        if (
            self.tiles_resolved == 0
            and self.prev_output is not None
            and self._min_size == int(min_size)
        ):
            return None, 0, self.prev_output.copy()
        # Disarm the shortcut for any frame that takes the resolve path:
        # only a *completed* enforce_connectivity re-arms it via
        # record_output(). Without this, a merge that raises mid-way and
        # is retried with the same state would see tiles_resolved == 0
        # (prev_labels below already matches) next to a prev_output from
        # an older, different label map — and return stale output.
        self.prev_output = None
        for i, (y0, y1) in enumerate(bands):
            if not dirty[i]:
                continue
            band = labels[y0:y1]
            rid, nr = _run_ids(band)
            same_up = band[1:, :] == band[:-1, :]
            self._band_runs[i] = (
                rid, nr, rid[1:, :][same_up], rid[:-1, :][same_up]
            )
        run_global = np.empty((h, w), dtype=np.int64)
        offsets = []
        n_runs = 0
        for i, (y0, y1) in enumerate(bands):
            rid, nr, _, _ = self._band_runs[i]
            run_global[y0:y1] = rid
            run_global[y0:y1] += n_runs
            offsets.append(n_runs)
            n_runs += nr
        pair_a, pair_b = [], []
        for i, (y0, y1) in enumerate(bands):
            _, _, pa, pb = self._band_runs[i]
            if len(pa):
                pair_a.append(pa + offsets[i])
                pair_b.append(pb + offsets[i])
            if y0 > 0:  # seam row against the band above
                same = labels[y0] == labels[y0 - 1]
                if same.any():
                    pair_a.append(run_global[y0][same])
                    pair_b.append(run_global[y0 - 1][same])
        empty = np.empty(0, dtype=np.int64)
        dense, n_comps = _resolve_runs(
            np.concatenate(pair_a) if pair_a else empty,
            np.concatenate(pair_b) if pair_b else empty,
            n_runs,
            backend=backend,
        )
        self.prev_labels = labels.copy()
        return dense[run_global].astype(np.int32), n_comps, None

    def record_output(self, min_size: int, output: np.ndarray) -> None:
        """Remember the finished output for the identical-frame shortcut."""
        self._min_size = int(min_size)
        self.prev_output = output.copy()


def merge_small_reference(
    sizes: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    dst: np.ndarray,
    border_len: np.ndarray,
    min_size: int,
    order: np.ndarray,
) -> np.ndarray:
    """The greedy small-component merge walk, pure scalar semantics.

    Inputs are the component adjacency graph in CSR form (``starts``,
    ``ends``, ``dst``, ``border_len``), the component ``sizes``, and the
    ``order`` in which to process small components (increasing size,
    stable). Returns the int64 union-find root of every component after
    all merges — the kernel contract every backend must match bit for
    bit, including the tie rule (longest shared border wins, ties to the
    lowest neighbor *component id*).
    """
    n_comps = len(sizes)
    uf = _UnionFind(n_comps)
    merged_size = sizes.astype(np.int64).copy()
    for c in order:
        c = int(c)
        root_c = uf.find(c)
        if merged_size[root_c] >= min_size:
            continue
        lo, hi = int(starts[c]), int(ends[c])
        if lo == hi:
            continue  # isolated (whole image is one label)
        best_w = -1
        best_nb = -1
        best_root = -1
        for e in range(lo, hi):
            nb = int(dst[e])
            root_nb = uf.find(nb)
            if root_nb == root_c:
                continue  # already merged into the same component
            w = int(border_len[e])
            if w > best_w or (w == best_w and nb < best_nb):
                best_w, best_nb, best_root = w, nb, root_nb
        if best_root < 0:
            continue
        uf.union_into(root_c, best_root)
        new_root = uf.find(best_root)
        merged_size[new_root] = merged_size[root_c] + merged_size[best_root]
    return _resolve_roots(uf.parent, np.arange(n_comps, dtype=np.int64))


def enforce_connectivity(
    labels: np.ndarray,
    min_size: int,
    backend: str | None = None,
    state: ConnectivityState | None = None,
) -> np.ndarray:
    """Absorb connected fragments smaller than ``min_size`` pixels.

    See module docstring for the algorithm. The returned map reuses the
    superpixel labels of the absorbing components; a lone image smaller
    than ``min_size`` is returned unchanged (nothing to merge into).
    The greedy merge walk dispatches through :mod:`repro.kernels`
    (``merge_small``); all backends match the reference bit for bit.

    No-op semantics, shared by every early return and the main path:
    when nothing merges, the output is exactly ``labels`` (as a fresh
    int32 copy). This is not an approximation — components are
    label-pure, so an identity merge relabels each pixel with its own
    component's superpixel label — and it holds on every degenerate
    shape (uniform maps, 1×1, single rows); the tests lock it in.

    ``state`` (a :class:`ConnectivityState`) enables the incremental
    video path: only row bands whose labels changed since the previous
    frame are re-resolved, and an unchanged frame short-circuits to the
    cached output. Results are bit-identical with or without a state.
    """
    from ..kernels import get_backend  # lazy: kernels imports this module

    labels = validate_label_map(labels).astype(np.int32)
    if min_size <= 1:
        # Pure no-op: leave the state untouched (its caches still match
        # the last real resolve) but zero the telemetry for this call.
        if state is not None:
            state.tiles_resolved = 0
            state.tiles_total = len(state._bands(labels.shape[0]))
        return labels.copy()
    if state is not None:
        comps, n_comps, shortcut = state.components(
            labels, min_size, backend=backend
        )
        if shortcut is not None:
            return shortcut
    else:
        comps, n_comps = connected_components(labels, backend=backend)
    if n_comps == 1:
        out = labels.copy()
        if state is not None:
            state.record_output(min_size, out)
        return out
    flat_c = comps.ravel()
    sizes = np.bincount(flat_c, minlength=n_comps).astype(np.int64)

    # Superpixel label of each component (components are label-pure):
    # take the label at each component's first pixel.
    first_idx = np.zeros(n_comps, dtype=np.int64)
    first_idx[flat_c[::-1]] = np.arange(flat_c.size - 1, -1, -1)
    comp_label = labels.ravel()[first_idx]

    # Adjacency with shared-border weights, built once.
    horiz = comps[:, 1:] != comps[:, :-1]
    vert = comps[1:, :] != comps[:-1, :]
    pairs = np.concatenate(
        [
            np.stack([comps[:, 1:][horiz], comps[:, :-1][horiz]], axis=1),
            np.stack([comps[1:, :][vert], comps[:-1, :][vert]], axis=1),
        ],
        axis=0,
    )
    if len(pairs) == 0:
        # Unreachable for n_comps > 1 on a connected grid (two or more
        # components always share a boundary), but kept as a defensive
        # no-op with the same semantics as the paths above.
        out = labels.copy()
        if state is not None:
            state.record_output(min_size, out)
        return out
    both = np.concatenate([pairs, pairs[:, ::-1]], axis=0)
    fused = both[:, 0].astype(np.int64) * n_comps + both[:, 1]
    fused_unique, border_len = np.unique(fused, return_counts=True)
    src = (fused_unique // n_comps).astype(np.int64)
    dst = (fused_unique % n_comps).astype(np.int64)
    # CSR-style neighbor slices per source component.
    csr_order = np.argsort(src, kind="stable")
    src, dst = src[csr_order], dst[csr_order]
    border_len = border_len[csr_order].astype(np.int64)
    starts = np.searchsorted(src, np.arange(n_comps))
    ends = np.searchsorted(src, np.arange(n_comps) + 1)

    # Process small components in increasing size order: tiny strays are
    # absorbed first, and a small component that grew past min_size by
    # absorbing others is skipped when its turn comes. Components already
    # large enough never start a merge, so only the small ones are walked.
    size_order = np.argsort(sizes, kind="stable")
    small = size_order[sizes[size_order] < min_size]
    final_root = get_backend(backend).merge_small(
        sizes, starts, ends, dst, border_len, min_size, small
    )
    out = comp_label[final_root][comps].astype(np.int32)
    if state is not None:
        state.record_output(min_size, out)
    return out
