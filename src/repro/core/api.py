"""Public entry points: :func:`slic` and :func:`sslic`.

Thin wrappers over :func:`repro.core.engine.run_segmentation` with the
defaults the paper uses for each algorithm:

* ``slic`` — the original algorithm (Figure 1a): center-perspective
  iteration order, no subsampling.
* ``sslic`` — the paper's contribution (Figure 1b): pixel-perspective
  order with round-robin pixel subsets.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .engine import run_segmentation
from .params import ARCH_CPA, ARCH_PPA, SlicParams
from .result import SegmentationResult

__all__ = ["slic", "sslic"]


def _build_params(params, overrides, forced) -> SlicParams:
    if params is None:
        params = SlicParams()
    if not isinstance(params, SlicParams):
        raise ConfigurationError(
            f"params must be a SlicParams, got {type(params).__name__}"
        )
    merged = dict(overrides)
    merged.update(forced)
    return params.with_(**merged) if merged else params


def slic(
    image: np.ndarray,
    params: SlicParams = None,
    warm_centers: np.ndarray | None = None,
    warm_labels: np.ndarray | None = None,
    tracer=None,
    **overrides,
) -> SegmentationResult:
    """Run original SLIC superpixel segmentation on an RGB image.

    Parameters
    ----------
    image:
        (H, W, 3) RGB image, uint8 in [0, 255] or float in [0, 1].
    params:
        Optional :class:`SlicParams`; keyword overrides are applied on
        top (e.g. ``slic(img, n_superpixels=900, compactness=10)``).
        The architecture is forced to CPA and the subsample ratio to 1 —
        that is what "SLIC" means in the paper's comparisons.
    tracer:
        Optional :class:`repro.obs.Tracer` the run emits spans and
        counters into.

    Returns a :class:`~repro.core.result.SegmentationResult`.
    """
    params = _build_params(
        params, overrides, {"architecture": ARCH_CPA, "subsample_ratio": 1.0}
    )
    return run_segmentation(
        image, params, warm_centers=warm_centers, warm_labels=warm_labels,
        tracer=tracer,
    )


def sslic(
    image: np.ndarray,
    params: SlicParams = None,
    warm_centers: np.ndarray | None = None,
    warm_labels: np.ndarray | None = None,
    tracer=None,
    **overrides,
) -> SegmentationResult:
    """Run S-SLIC (subsampled SLIC) on an RGB image.

    Defaults to the paper's configuration: pixel-perspective architecture
    with a 0.5 subsample ratio ("S-SLIC (0.5)"). Pass
    ``subsample_ratio=0.25`` for the other published variant, or
    ``architecture="cpa"`` for the center-perspective subsampling the paper
    examined and rejected. ``tracer`` is an optional
    :class:`repro.obs.Tracer` the run emits spans and counters into.

    Returns a :class:`~repro.core.result.SegmentationResult`.
    """
    defaults = {"architecture": ARCH_PPA}
    if params is None or (
        "subsample_ratio" not in overrides and params.subsample_ratio == 1.0
    ):
        defaults["subsample_ratio"] = 0.5
    if "architecture" in overrides:
        defaults.pop("architecture")
    if "subsample_ratio" in overrides:
        defaults.pop("subsample_ratio", None)
    merged = dict(defaults)
    merged.update(overrides)
    params = _build_params(params, merged, {})
    return run_segmentation(
        image, params, warm_centers=warm_centers, warm_labels=warm_labels,
        tracer=tracer,
    )
