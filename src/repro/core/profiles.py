"""Phase timing instrumentation for the Table 1 breakdown.

Table 1 of the paper reports the fraction of runtime spent in color
conversion, distance + minimum, center update, and "other" for SLIC and
S-SLIC. :class:`PhaseTimer` collects those wall-clock buckets with
negligible overhead (one ``perf_counter`` pair per phase entry).

The timer is backed by the :mod:`repro.obs` tracing layer: when built
with a :class:`~repro.obs.tracer.Tracer`, every phase entry additionally
opens a ``phase:<name>`` span on it, so Table 1 buckets appear in the
JSONL telemetry nested under whatever span was live (a ``subiteration``,
a ``sweep``). With no tracer — the default — only the local bucket
arithmetic runs, same as the original standalone timer.

Exception handling: a phase aborted by an exception does not pollute its
normal bucket. The partial time is recorded under ``<name>!aborted`` (a
distinct bucket, visible in :meth:`PhaseTimer.as_dict`), the span — if a
tracer is attached — is emitted with ``status="error"``, and the
exception propagates.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from ..obs.tracer import NULL_TRACER

__all__ = ["PhaseTimer", "PHASES", "ABORTED_SUFFIX"]

#: Canonical phase names, in Table 1 column order (plus bookkeeping ones).
PHASES = (
    "color_conversion",
    "initialization",
    "distance_min",
    "center_update",
    "connectivity",
    "other",
)

#: Bucket-name suffix for partially-timed, exception-aborted phases.
ABORTED_SUFFIX = "!aborted"


class PhaseTimer:
    """Accumulates wall-clock seconds into named phase buckets.

    Parameters
    ----------
    tracer:
        Optional :class:`repro.obs.Tracer`; phase entries become
        ``phase:<name>`` spans on it in addition to the local buckets.
    """

    def __init__(self, tracer=None):
        self.totals = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @contextmanager
    def phase(self, name: str):
        """Context manager: time the enclosed block into bucket ``name``.

        On exception the elapsed time lands in ``<name>!aborted`` instead
        and the span (if tracing) is tagged ``status="error"``.
        """
        tracer = self.tracer
        span = tracer.start_span(f"phase:{name}", phase=name)
        start = time.perf_counter()
        try:
            yield
        except BaseException as exc:
            elapsed = time.perf_counter() - start
            key = name + ABORTED_SUFFIX
            self.totals[key] = self.totals.get(key, 0.0) + elapsed
            span.set(error_type=type(exc).__name__)
            tracer.end_span(span, status="error")
            raise
        else:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            tracer.end_span(span)

    def add(self, name: str, seconds: float) -> None:
        """Add seconds to a bucket directly (for externally-timed work)."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return float(sum(self.totals.values()))

    def aborted(self) -> dict:
        """Bucket -> seconds for phases that exited via an exception."""
        return {
            k[: -len(ABORTED_SUFFIX)]: v
            for k, v in self.totals.items()
            if k.endswith(ABORTED_SUFFIX)
        }

    def fractions(self) -> dict:
        """Phase -> fraction of total, the Table 1 presentation."""
        total = self.total
        if total <= 0:
            return {k: 0.0 for k in self.totals}
        return {k: v / total for k, v in self.totals.items()}

    def as_dict(self) -> dict:
        """Copy of the raw seconds per phase."""
        return dict(self.totals)
