"""Phase timing instrumentation for the Table 1 breakdown.

Table 1 of the paper reports the fraction of runtime spent in color
conversion, distance + minimum, center update, and "other" for SLIC and
S-SLIC. :class:`PhaseTimer` collects those wall-clock buckets with
negligible overhead (one ``perf_counter`` pair per phase entry).
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["PhaseTimer", "PHASES"]

#: Canonical phase names, in Table 1 column order (plus bookkeeping ones).
PHASES = (
    "color_conversion",
    "initialization",
    "distance_min",
    "center_update",
    "connectivity",
    "other",
)


class PhaseTimer:
    """Accumulates wall-clock seconds into named phase buckets."""

    def __init__(self):
        self.totals = {}

    @contextmanager
    def phase(self, name: str):
        """Context manager: time the enclosed block into bucket ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Add seconds to a bucket directly (for externally-timed work)."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return float(sum(self.totals.values()))

    def fractions(self) -> dict:
        """Phase -> fraction of total, the Table 1 presentation."""
        total = self.total
        if total <= 0:
            return {k: 0.0 for k in self.totals}
        return {k: v / total for k, v in self.totals.items()}

    def as_dict(self) -> dict:
        """Copy of the raw seconds per phase."""
        return dict(self.totals)
