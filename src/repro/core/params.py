"""Algorithm parameters for SLIC and S-SLIC.

:class:`SlicParams` is the single configuration object accepted by
:func:`repro.core.slic` and :func:`repro.core.sslic`. It validates itself on
construction so bad configurations fail loudly before touching image data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import ConfigurationError

__all__ = ["SlicParams", "ARCH_CPA", "ARCH_PPA", "SUBSET_STRATEGIES"]

#: Center Perspective Architecture — the original SLIC iteration order
#: (loop over superpixels, scan a 2S x 2S window around each center).
ARCH_CPA = "cpa"

#: Pixel Perspective Architecture — loop over pixels, compare each against
#: its 9 statically-assigned nearest centers (the accelerator's order).
ARCH_PPA = "ppa"

#: Subset schedules accepted by S-SLIC (see repro.core.subsampling).
SUBSET_STRATEGIES = ("strided", "checkerboard", "rows", "blocks", "random")


@dataclass(frozen=True)
class SlicParams:
    """Parameters shared by SLIC and S-SLIC.

    Attributes
    ----------
    n_superpixels:
        Requested superpixel count K. The realized count is the nearest
        grid-feasible value (standard SLIC behaviour).
    compactness:
        The ``m`` of Equation 5, balancing color against spatial distance.
        The paper notes m is "generally set between 1 and 40"; 10 is the
        common default.
    max_iterations:
        Maximum number of *full-image-equivalent* sweeps. S-SLIC performs
        ``n_subsets`` sub-iterations per sweep, each over ``1/n_subsets``
        of the pixels, so total distance work per sweep matches SLIC.
    max_subiterations:
        Optional hard cap on sub-iterations (overrides ``max_iterations``;
        used by the Fig 2 runtime sweeps for fine-grained control).
    convergence_threshold:
        Stop when the mean spatial movement of the centers over a full
        sweep falls below this many pixels. Set to 0 to always run
        ``max_iterations`` sweeps.
    subsample_ratio:
        Fraction of pixels per sub-iteration. 1.0 reproduces plain SLIC
        ordering; 0.5 and 0.25 are the paper's S-SLIC variants. Must be
        ``1/n`` for integer n.
    architecture:
        ``"ppa"`` (default, the accelerator's pixel-perspective order) or
        ``"cpa"`` (original SLIC center-perspective order).
    subset_strategy:
        How pixels are partitioned into subsets (PPA) — see
        :mod:`repro.core.subsampling`.
    center_update_mode:
        How S-SLIC recomputes centers after each subset pass:

        * ``"accumulate"`` (default, hardware-faithful): the sigma
          registers carry their accumulations across the subset passes of
          one full sweep ("The current accumulations for the 9 SPs in the
          cluster update unit are loaded from the center update unit",
          Section 4.3) and reset at sweep boundaries. Mid-sweep updates
          use the pixels seen so far; the sweep-final update equals a full
          SLIC update, so S-SLIC shares SLIC's fixed point.
        * ``"subset"``: registers reset every pass; centers average only
          the pass's pixels (pure OS-EM).
        * ``"all_assigned"``: centers average every pixel's stored
          assignment each pass (highest quality, but re-reads the whole
          frame per pass — defeating the bandwidth saving; ablation only).
    enforce_connectivity:
        Run the final connectivity pass, absorbing stray fragments smaller
        than ``min_size_factor * S**2`` into adjacent superpixels.
    min_size_factor:
        Fragment-size threshold as a fraction of the nominal superpixel
        area.
    perturb_centers:
        Move each initial center to the lowest-gradient pixel of its 3x3
        neighborhood (Section 2 of the paper).
    static_neighbors:
        PPA only: fix each pixel's 9 candidate centers from the initial
        grid (the accelerator precomputes these offline). ``False``
        recomputes candidates from current center positions each sweep
        (the ablation of Section 4.3's "minimal effect" claim).
    datapath:
        ``None`` for the float64 reference datapath, or a
        :class:`repro.core.distance.FixedDatapath` for the quantized
        hardware datapath.
    seed:
        Seed for the ``"random"`` subset strategy.
    kernel_backend:
        Which :mod:`repro.kernels` backend runs the assignment and
        connectivity hot loops: ``"reference"``, ``"vectorized"``,
        ``"native"``, ``"native-mt"``, or ``"auto"``. ``None`` (default)
        defers to the ``REPRO_KERNEL_BACKEND`` environment variable,
        then ``auto``. All backends produce bit-identical labels.
    n_threads:
        Kernel threads per frame for the ``native-mt`` backend (other
        backends ignore it). ``None`` defers to ``REPRO_KERNEL_THREADS``,
        then the visible core count. Results are bit-identical at any
        thread count, so this only affects speed.
    fused_color:
        Fixed-datapath color conversion: produce the decoded Lab array
        and the channel codes in one fused kernel traversal (``True``)
        or convert then decode in two steps (``False``). ``None``
        (default) defers to the ``REPRO_FUSED_COLOR`` environment
        variable, then on. Both paths are bit-identical; this knob
        exists for benchmarking and fault isolation.
    """

    n_superpixels: int = 100
    compactness: float = 10.0
    max_iterations: int = 10
    max_subiterations: int | None = None
    convergence_threshold: float = 0.25
    subsample_ratio: float = 1.0
    architecture: str = ARCH_PPA
    subset_strategy: str = "strided"
    center_update_mode: str = "accumulate"
    enforce_connectivity: bool = True
    min_size_factor: float = 0.25
    perturb_centers: bool = True
    static_neighbors: bool = True
    datapath: object = None
    seed: int = 0
    kernel_backend: str | None = None
    n_threads: int | None = None
    fused_color: bool | None = None

    def __post_init__(self) -> None:
        if self.n_superpixels < 1:
            raise ConfigurationError(
                f"n_superpixels must be >= 1, got {self.n_superpixels}"
            )
        if self.compactness <= 0:
            raise ConfigurationError(
                f"compactness must be > 0, got {self.compactness}"
            )
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.max_subiterations is not None and self.max_subiterations < 1:
            raise ConfigurationError(
                f"max_subiterations must be >= 1, got {self.max_subiterations}"
            )
        if self.convergence_threshold < 0:
            raise ConfigurationError("convergence_threshold must be >= 0")
        if not (0.0 < self.subsample_ratio <= 1.0):
            raise ConfigurationError(
                f"subsample_ratio must be in (0, 1], got {self.subsample_ratio}"
            )
        n = 1.0 / self.subsample_ratio
        if abs(n - round(n)) > 1e-9:
            raise ConfigurationError(
                f"subsample_ratio must be 1/n for integer n, got {self.subsample_ratio}"
            )
        if self.architecture not in (ARCH_CPA, ARCH_PPA):
            raise ConfigurationError(f"unknown architecture {self.architecture!r}")
        if self.subset_strategy not in SUBSET_STRATEGIES:
            raise ConfigurationError(
                f"unknown subset_strategy {self.subset_strategy!r}; "
                f"choose from {SUBSET_STRATEGIES}"
            )
        if self.center_update_mode not in ("accumulate", "subset", "all_assigned"):
            raise ConfigurationError(
                f"unknown center_update_mode {self.center_update_mode!r}"
            )
        if not (0.0 <= self.min_size_factor < 1.0):
            raise ConfigurationError(
                f"min_size_factor must be in [0, 1), got {self.min_size_factor}"
            )
        if self.kernel_backend is not None:
            # Lazy import: kernels imports core modules at load time.
            from ..kernels import validate_name

            object.__setattr__(
                self, "kernel_backend", validate_name(self.kernel_backend)
            )
        if self.n_threads is not None and self.n_threads < 1:
            raise ConfigurationError(
                f"n_threads must be >= 1, got {self.n_threads}"
            )

    @property
    def n_subsets(self) -> int:
        """Number of pixel subsets: ``round(1 / subsample_ratio)``."""
        return int(round(1.0 / self.subsample_ratio))

    def grid_interval(self, shape) -> float:
        """The S of the paper: ``sqrt(N / K)`` for an (H, W) image."""
        h, w = shape[:2]
        return float(np.sqrt(h * w / self.n_superpixels))

    def with_(self, **changes) -> "SlicParams":
        """Return a copy with ``changes`` applied (dataclasses.replace)."""
        return replace(self, **changes)
