"""Sigma accumulators and the center-update step.

The accelerator's Cluster Update Unit keeps one *sigma register* per
superpixel: "Each sigma register holds six fields: the accumulated L, a, and
b color information, the accumulated x, y location information, and the
number of pixels assigned to the associated SP" (Section 4.3). After a pass,
the Center Update Unit divides each field by the count to produce the new
center.

:class:`SigmaAccumulator` is the software model of those registers; it
accepts batches (vectorized ``bincount``) rather than single pixels, but the
arithmetic — per-field sums plus a final division — is identical.

:func:`sigma_accumulate_reference` is the canonical form of the
``sigma_accumulate`` kernel contract entry: one pass producing the
partial sums/counts for a batch directly from the flat image arrays,
with x/y derived from the flat pixel index — no (M, 5) values matrix.
The optimized backends (vectorized bincount columns, native C loops)
must reproduce it bit for bit; :meth:`SigmaAccumulator.accumulate`
dispatches through whichever backend the engine selected.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "SigmaAccumulator",
    "center_movement",
    "sigma_accumulate_reference",
]


def sigma_accumulate_reference(
    labels,
    n_clusters,
    width,
    lab_flat=None,
    codes_flat=None,
    encoding=None,
    idx=None,
):
    """Canonical one-pass sigma partial accumulation.

    Parameters
    ----------
    labels:
        (M,) assigned cluster per batch entry.
    n_clusters:
        Register count K.
    width:
        Image width; entry ``i``'s coordinates are ``x = i % width``,
        ``y = i // width`` (row-major flat indexing).
    lab_flat:
        (N, 3) float Lab rows (reference datapath), or ``None``.
    codes_flat / encoding:
        (N, 3) integer channel codes plus their
        :class:`~repro.color.hw_convert.LabEncoding` (fixed datapath);
        color fields are the *decoded* code values, exactly like
        ``PixelArrays.values5``.
    idx:
        (M,) flat pixel indices selecting the batch, or ``None`` for
        "every row in order" (``idx[j] == j``).

    Returns ``(sums, counts)``: the (K, 5) float64 field sums and (K,)
    int64 member counts accumulated from zero — precisely the values
    :meth:`SigmaAccumulator.add` would fold in for the equivalent
    (M, 5) values matrix, since each field's sum is the same
    ``np.bincount`` fold.
    """
    labels = np.asarray(labels)
    if idx is None:
        idx = np.arange(len(labels), dtype=np.int64)
    else:
        idx = np.asarray(idx, dtype=np.int64)
    vals = np.empty((len(idx), 5), dtype=np.float64)
    if codes_flat is not None:
        vals[:, 0:3] = encoding.decode(np.asarray(codes_flat)[idx])
    else:
        vals[:, 0:3] = np.asarray(lab_flat, dtype=np.float64)[idx]
    vals[:, 3] = idx % width
    vals[:, 4] = idx // width
    counts = np.bincount(labels, minlength=n_clusters).astype(
        np.int64, copy=False
    )
    sums = np.empty((n_clusters, 5), dtype=np.float64)
    for f in range(5):
        sums[:, f] = np.bincount(
            labels, weights=vals[:, f], minlength=n_clusters
        )
    return sums, counts


class SigmaAccumulator:
    """Per-cluster sums of (L, a, b, x, y) and member counts.

    The six fields of the hardware sigma register. Sums are float64, which
    represents integer code sums exactly up to 2**53 — far beyond any
    frame-sized accumulation.
    """

    def __init__(self, n_clusters: int):
        if n_clusters < 1:
            raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.sums = np.zeros((n_clusters, 5), dtype=np.float64)
        self.counts = np.zeros(n_clusters, dtype=np.int64)

    def reset(self) -> None:
        """Clear all registers (start of a pass)."""
        self.sums.fill(0.0)
        self.counts.fill(0)

    def add(self, values5: np.ndarray, labels: np.ndarray) -> None:
        """Accumulate a batch: ``values5`` is (M, 5), ``labels`` is (M,).

        Each row's five fields are added to its label's register and the
        label's count increments — the six additions per pixel the paper's
        adder unit performs.
        """
        values5 = np.asarray(values5, dtype=np.float64)
        labels = np.asarray(labels)
        if values5.ndim != 2 or values5.shape[1] != 5:
            raise ConfigurationError(f"values5 must be (M, 5), got {values5.shape}")
        if labels.shape != (values5.shape[0],):
            raise ConfigurationError(
                f"labels shape {labels.shape} does not match values {values5.shape}"
            )
        if len(labels) == 0:
            return
        self.counts += np.bincount(labels, minlength=self.n_clusters)
        for f in range(5):
            self.sums[:, f] += np.bincount(
                labels, weights=values5[:, f], minlength=self.n_clusters
            )

    def accumulate(
        self,
        kernels,
        labels,
        width,
        idx=None,
        lab_flat=None,
        codes_flat=None,
        encoding=None,
    ) -> None:
        """Accumulate a batch through a kernel backend's ``sigma_accumulate``.

        The backend returns zero-based partials ``(sums, counts)`` which are
        folded in with ``+=`` — bitwise-equal to :meth:`add` on the
        equivalent (M, 5) values matrix, without ever materializing it.
        """
        sums, counts = kernels.sigma_accumulate(
            labels,
            self.n_clusters,
            width,
            lab_flat=lab_flat,
            codes_flat=codes_flat,
            encoding=encoding,
            idx=idx,
        )
        self.sums += sums
        self.counts += counts

    def merge(self, other: "SigmaAccumulator") -> None:
        """Fold another accumulator in (tile-parallel cores merging)."""
        if other.n_clusters != self.n_clusters:
            raise ConfigurationError(
                f"cluster count mismatch: {self.n_clusters} vs {other.n_clusters}"
            )
        self.sums += other.sums
        self.counts += other.counts

    def compute_centers(self, fallback: np.ndarray) -> np.ndarray:
        """The Center Update Unit's division pass.

        Returns (K, 5) new centers: per-field mean where a cluster received
        members, the ``fallback`` row otherwise (a cluster starved by the
        current subset keeps its previous center — required for S-SLIC,
        where a sub-iteration touches only 1/n of the pixels).
        """
        fallback = np.asarray(fallback, dtype=np.float64)
        if fallback.shape != (self.n_clusters, 5):
            raise ConfigurationError(
                f"fallback must be ({self.n_clusters}, 5), got {fallback.shape}"
            )
        out = fallback.copy()
        got = self.counts > 0
        out[got] = self.sums[got] / self.counts[got, None]
        return out


def center_movement(old: np.ndarray, new: np.ndarray) -> float:
    """Mean spatial (x, y) L2 movement between two center arrays, in pixels.

    The paper's convergence test is "center movement > threshold?"
    (Figure 1); spatial movement is the interpretable, resolution-scaled
    choice.
    """
    old = np.asarray(old, dtype=np.float64)
    new = np.asarray(new, dtype=np.float64)
    if old.shape != new.shape:
        raise ConfigurationError(f"center shapes differ: {old.shape} vs {new.shape}")
    d = new[:, 3:5] - old[:, 3:5]
    return float(np.mean(np.sqrt((d ** 2).sum(axis=1))))
