"""The paper's contribution: SLIC and subsampled SLIC (S-SLIC).

Public surface:

* :func:`slic` / :func:`sslic` — run a segmentation.
* :class:`SlicParams` — configuration (architecture, subsampling, fixed
  datapath, ...).
* :class:`SegmentationResult` — labels, centers, timings.
* :class:`FixedDatapath` — the quantized hardware datapath for the
  bit-width exploration.
"""

from .params import ARCH_CPA, ARCH_PPA, SUBSET_STRATEGIES, SlicParams
from .result import SegmentationResult
from .distance import FixedDatapath, pairwise_d2_float, spatial_weight
from .api import slic, sslic
from .engine import expected_cluster_count, run_segmentation
from .initialization import (
    grid_geometry,
    gradient_magnitude,
    initial_centers,
    initial_grid_xy,
    perturb_centers,
)
from .neighbors import candidate_map, dynamic_candidate_map, tile_map
from .subsampling import SubsetSchedule, center_subsets, make_schedule
from .accumulators import SigmaAccumulator, center_movement
from .connectivity import connected_components, enforce_connectivity
from .profiles import PHASES, PhaseTimer
from .streaming import FramePlan, StreamFrameStats, StreamSegmenter

__all__ = [
    "slic",
    "sslic",
    "run_segmentation",
    "expected_cluster_count",
    "SlicParams",
    "SegmentationResult",
    "FixedDatapath",
    "ARCH_CPA",
    "ARCH_PPA",
    "SUBSET_STRATEGIES",
    "pairwise_d2_float",
    "spatial_weight",
    "grid_geometry",
    "initial_centers",
    "initial_grid_xy",
    "perturb_centers",
    "gradient_magnitude",
    "tile_map",
    "candidate_map",
    "dynamic_candidate_map",
    "SubsetSchedule",
    "make_schedule",
    "center_subsets",
    "SigmaAccumulator",
    "center_movement",
    "connected_components",
    "enforce_connectivity",
    "PhaseTimer",
    "PHASES",
    "StreamSegmenter",
    "StreamFrameStats",
    "FramePlan",
]
