"""Streaming segmentation: S-SLIC over a video with temporal warm starts.

The accelerator keeps its centers and label map in external memory between
frames (Section 4.3), so a video pipeline gets frame-to-frame warm starting
for free. :class:`StreamSegmenter` is the software embodiment:

* each frame starts from the previous frame's centers and labels;
* because the PPA's 9-candidate map is *static* (tile-based), warm starts
  are only valid while centers remain near their home tiles — the
  segmenter measures center drift each frame and re-anchors (cold-starts)
  when the mean drift exceeds a fraction of the grid interval S;
* per-frame convergence typically drops from ~6 sweeps to ~3-4 on
  coherent streams (see ``examples/mobile_vision_pipeline.py``).

The warm-start decision and the state update are exposed separately as
:meth:`StreamSegmenter.plan` and :meth:`StreamSegmenter.commit` so that
drivers which execute the segmentation elsewhere — notably the
:class:`repro.parallel.ParallelRunner`, which ships frames to worker
processes — share *exactly* the warm chain :meth:`process` would produce.
``process(image)`` is plan + run + commit, and stays the one-call API.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, StreamError
from .connectivity import ConnectivityState
from .engine import expected_cluster_count, run_segmentation
from .params import SlicParams
from .result import SegmentationResult

__all__ = ["StreamSegmenter", "StreamFrameStats", "FramePlan"]


@dataclass(frozen=True)
class StreamFrameStats:
    """Bookkeeping for one processed frame."""

    frame_index: int
    sweeps: int
    subiterations: int
    warm_started: bool
    reanchored: bool
    mean_drift_px: float


@dataclass(frozen=True)
class FramePlan:
    """The warm-start decision for one frame, made before it runs.

    Produced by :meth:`StreamSegmenter.plan`; carries everything the
    engine call needs (``warm_centers`` / ``warm_labels`` are ``None``
    on a cold start) plus the bookkeeping :meth:`StreamSegmenter.commit`
    records afterwards.
    """

    frame_index: int
    shape: tuple
    warm: bool
    reanchor: bool
    mean_drift_px: float
    warm_centers: np.ndarray | None = None
    warm_labels: np.ndarray | None = None
    #: The stream's incremental-connectivity cache (pure cache: safe to
    #: drop or ignore — bit-identity never depends on it). In-process
    #: executors pass it to run_segmentation; the parallel runner ships
    #: frames to workers instead, which keep their own per-stream caches.
    connectivity_state: ConnectivityState | None = None


class StreamSegmenter:
    """Segment a stream of equally-sized frames with temporal coherence.

    Parameters
    ----------
    params:
        Algorithm parameters (a convergence threshold > 0 is what converts
        warm starts into saved sweeps). Defaults to S-SLIC(0.5) with a
        0.3 px threshold. The params are used *verbatim* (the frame runs
        through :func:`repro.core.engine.run_segmentation` directly), so
        ``subsample_ratio=1.0`` really means no subsampling.
    drift_limit:
        Re-anchor when the mean distance of centers from their home grid
        positions exceeds ``drift_limit * S`` (the static candidate map's
        validity radius is one tile, so 1.0 is the hard ceiling; 0.6
        leaves margin).
    strict_shape:
        If True, a frame whose resolution differs from the previous
        frame's raises :class:`repro.errors.StreamError` instead of
        silently re-anchoring. Stream drivers that promise warm-start
        continuity (``repro.parallel``) enable this so a mixed-resolution
        stream fails loudly per frame rather than degrading.
    """

    def __init__(
        self,
        params: SlicParams = None,
        drift_limit: float = 0.6,
        strict_shape: bool = False,
    ):
        if params is None:
            params = SlicParams(
                subsample_ratio=0.5, architecture="ppa", convergence_threshold=0.3
            )
        if not isinstance(params, SlicParams):
            raise ConfigurationError("params must be a SlicParams")
        if not (0.0 < drift_limit <= 1.5):
            raise ConfigurationError(
                f"drift_limit must be in (0, 1.5], got {drift_limit}"
            )
        self.params = params
        self.drift_limit = drift_limit
        self.strict_shape = bool(strict_shape)
        self._centers = None
        self._labels = None
        self._home_xy = None
        self._shape = None
        self._frame_index = 0
        self._conn_state = ConnectivityState()
        self.history = []

    # ------------------------------------------------------------------
    @property
    def has_state(self) -> bool:
        """Whether the segmenter holds warm state a next frame could use."""
        return self._centers is not None

    def reset(self) -> None:
        """Drop all temporal state (next frame cold-starts)."""
        self._centers = None
        self._labels = None
        self._home_xy = None
        self._shape = None
        self._conn_state.reset()

    def _mean_drift(self) -> float:
        if self._centers is None or self._home_xy is None:
            return 0.0
        d = self._centers[:, 3:5] - self._home_xy
        return float(np.mean(np.hypot(d[:, 0], d[:, 1])))

    # ------------------------------------------------------------------
    def plan(self, shape) -> FramePlan:
        """Decide warm vs. cold for a frame of ``shape`` (H, W).

        Pure read of the segmenter state — call :meth:`commit` with the
        frame's result to advance it. A warm start requires stored state,
        an unchanged resolution, drift within ``drift_limit * S``, *and*
        a stored center count matching the new frame's grid-realized K
        (the K-mismatch guard: a resolution change alters the realized
        grid, and stale centers would otherwise hit a shape error deep in
        the engine).
        """
        shape = tuple(shape[:2])
        s = self.params.grid_interval(shape)
        drift = self._mean_drift()
        shape_changed = self._shape is not None and self._shape != shape
        if shape_changed and self.strict_shape:
            raise StreamError(
                f"frame {self._frame_index} resolution {shape} differs from "
                f"the stream's established resolution {self._shape}; "
                f"warm-start chains require equally-sized frames "
                f"(reset() the segmenter or disable strict_shape to "
                f"re-anchor instead)"
            )
        k_expected = expected_cluster_count(shape, self.params.n_superpixels)
        k_mismatch = (
            self._centers is not None and len(self._centers) != k_expected
        )
        reanchor = shape_changed or k_mismatch or drift > self.drift_limit * s
        warm = self._centers is not None and not reanchor
        return FramePlan(
            frame_index=self._frame_index,
            shape=shape,
            warm=warm,
            reanchor=reanchor,
            mean_drift_px=drift,
            warm_centers=self._centers if warm else None,
            warm_labels=self._labels if warm else None,
            connectivity_state=self._conn_state,
        )

    def commit(self, plan: FramePlan, result: SegmentationResult) -> None:
        """Record ``result`` as the outcome of ``plan`` and advance state."""
        if plan.reanchor or self._home_xy is None or plan.shape != self._shape:
            # Home positions are the *initial grid* of this cold start;
            # they depend only on shape and K, so recover them from the
            # grid geometry alone — no image allocation, no segmentation.
            from .initialization import initial_grid_xy

            self._home_xy = initial_grid_xy(
                plan.shape, self.params.n_superpixels
            )
        self._centers = result.centers
        self._labels = result.labels
        self._shape = plan.shape
        self.history.append(
            StreamFrameStats(
                frame_index=plan.frame_index,
                sweeps=result.iterations,
                subiterations=result.subiterations,
                warm_started=plan.warm,
                reanchored=bool(plan.reanchor and plan.frame_index > 0),
                mean_drift_px=plan.mean_drift_px,
            )
        )
        self._frame_index = plan.frame_index + 1

    def process(self, image: np.ndarray, tracer=None) -> SegmentationResult:
        """Segment the next frame; warm-starts when state is valid."""
        plan = self.plan(image.shape)
        result = run_segmentation(
            image,
            self.params,
            warm_centers=plan.warm_centers,
            warm_labels=plan.warm_labels,
            tracer=tracer,
            connectivity_state=plan.connectivity_state,
        )
        self.commit(plan, result)
        return result

    # ------------------------------------------------------------------
    @property
    def mean_sweeps(self) -> float:
        """Average sweeps per processed frame."""
        if not self.history:
            return 0.0
        return float(np.mean([h.sweeps for h in self.history]))

    @property
    def reanchor_count(self) -> int:
        return sum(1 for h in self.history if h.reanchored)
