"""Streaming segmentation: S-SLIC over a video with temporal warm starts.

The accelerator keeps its centers and label map in external memory between
frames (Section 4.3), so a video pipeline gets frame-to-frame warm starting
for free. :class:`StreamSegmenter` is the software embodiment:

* each frame starts from the previous frame's centers and labels;
* because the PPA's 9-candidate map is *static* (tile-based), warm starts
  are only valid while centers remain near their home tiles — the
  segmenter measures center drift each frame and re-anchors (cold-starts)
  when the mean drift exceeds a fraction of the grid interval S;
* per-frame convergence typically drops from ~6 sweeps to ~3-4 on
  coherent streams (see ``examples/mobile_vision_pipeline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .api import sslic
from .params import SlicParams
from .result import SegmentationResult

__all__ = ["StreamSegmenter", "StreamFrameStats"]


@dataclass(frozen=True)
class StreamFrameStats:
    """Bookkeeping for one processed frame."""

    frame_index: int
    sweeps: int
    subiterations: int
    warm_started: bool
    reanchored: bool
    mean_drift_px: float


class StreamSegmenter:
    """Segment a stream of equally-sized frames with temporal coherence.

    Parameters
    ----------
    params:
        Algorithm parameters (a convergence threshold > 0 is what converts
        warm starts into saved sweeps). Defaults to S-SLIC(0.5) with a
        0.3 px threshold.
    drift_limit:
        Re-anchor when the mean distance of centers from their home grid
        positions exceeds ``drift_limit * S`` (the static candidate map's
        validity radius is one tile, so 1.0 is the hard ceiling; 0.6
        leaves margin).
    """

    def __init__(self, params: SlicParams = None, drift_limit: float = 0.6):
        if params is None:
            params = SlicParams(
                subsample_ratio=0.5, architecture="ppa", convergence_threshold=0.3
            )
        if not isinstance(params, SlicParams):
            raise ConfigurationError("params must be a SlicParams")
        if not (0.0 < drift_limit <= 1.5):
            raise ConfigurationError(
                f"drift_limit must be in (0, 1.5], got {drift_limit}"
            )
        self.params = params
        self.drift_limit = drift_limit
        self._centers = None
        self._labels = None
        self._home_xy = None
        self._shape = None
        self._frame_index = 0
        self.history = []

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all temporal state (next frame cold-starts)."""
        self._centers = None
        self._labels = None
        self._home_xy = None
        self._shape = None

    def _mean_drift(self) -> float:
        if self._centers is None or self._home_xy is None:
            return 0.0
        d = self._centers[:, 3:5] - self._home_xy
        return float(np.mean(np.hypot(d[:, 0], d[:, 1])))

    def process(self, image: np.ndarray) -> SegmentationResult:
        """Segment the next frame; warm-starts when state is valid."""
        shape = image.shape[:2]
        s = self.params.grid_interval(shape)
        drift = self._mean_drift()
        shape_changed = self._shape is not None and self._shape != shape
        reanchor = shape_changed or drift > self.drift_limit * s
        warm = self._centers is not None and not reanchor

        result = sslic(
            image,
            self.params,
            warm_centers=self._centers if warm else None,
            warm_labels=self._labels if warm else None,
        )
        if self._home_xy is None or reanchor or shape_changed:
            # Home positions are the *initial grid* of this cold start.
            from .initialization import initial_centers
            from ..color import rgb_to_lab

            # Recover the grid positions without rerunning segmentation:
            # they depend only on shape and K.
            grid = initial_centers(np.zeros(shape + (3,)), self.params.n_superpixels)
            self._home_xy = grid[:, 3:5].copy()
        self._centers = result.centers
        self._labels = result.labels
        self._shape = shape
        self.history.append(
            StreamFrameStats(
                frame_index=self._frame_index,
                sweeps=result.iterations,
                subiterations=result.subiterations,
                warm_started=warm,
                reanchored=bool(reanchor and self._frame_index > 0),
                mean_drift_px=drift,
            )
        )
        self._frame_index += 1
        return result

    # ------------------------------------------------------------------
    @property
    def mean_sweeps(self) -> float:
        """Average sweeps per processed frame."""
        if not self.history:
            return 0.0
        return float(np.mean([h.sweeps for h in self.history]))

    @property
    def reanchor_count(self) -> int:
        return sum(1 for h in self.history if h.reanchored)
