"""Result objects returned by the SLIC / S-SLIC drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SegmentationResult"]


@dataclass
class SegmentationResult:
    """Everything a segmentation run produced.

    Attributes
    ----------
    labels:
        ``(H, W)`` int32 superpixel label map (dense range ``[0, K')``
        after connectivity enforcement).
    centers:
        ``(K, 5)`` float array of final cluster centers
        ``[L, a, b, x, y]`` (x is the column, y the row — the paper's
        coordinate order).
    n_superpixels:
        Realized superpixel count (grid-feasible K, before connectivity
        merging).
    iterations:
        Full-image-equivalent sweeps executed.
    subiterations:
        Sub-iterations executed (equals ``iterations`` for plain SLIC).
    converged:
        Whether the center-movement threshold stopped the run before the
        iteration cap.
    movement_history:
        Mean spatial center movement (pixels) after each full sweep.
    timings:
        Phase-name -> seconds dict from the built-in profiler. Keys:
        ``color_conversion``, ``initialization``, ``distance_min``,
        ``center_update``, ``connectivity``, ``other``.
    params:
        The :class:`~repro.core.params.SlicParams` used.
    tiles_resolved:
        Row bands re-resolved by incremental connectivity enforcement
        (``None`` when the run had no
        :class:`~repro.core.connectivity.ConnectivityState`, i.e. every
        stateless or connectivity-disabled run).
    """

    labels: np.ndarray
    centers: np.ndarray
    n_superpixels: int
    iterations: int
    subiterations: int
    converged: bool
    movement_history: list = field(default_factory=list)
    timings: dict = field(default_factory=dict)
    params: object = None
    tiles_resolved: int | None = None

    @property
    def total_time(self) -> float:
        """Total wall-clock seconds across all recorded phases."""
        return float(sum(self.timings.values()))

    def timing_fractions(self) -> dict:
        """Per-phase fraction of total time (Table 1's breakdown)."""
        total = self.total_time
        if total <= 0:
            return {k: 0.0 for k in self.timings}
        return {k: v / total for k, v in self.timings.items()}

    def __repr__(self) -> str:
        return (
            f"SegmentationResult(n_superpixels={self.n_superpixels}, "
            f"iterations={self.iterations}, subiterations={self.subiterations}, "
            f"converged={self.converged}, shape={self.labels.shape})"
        )
