"""repro — S-SLIC superpixels and the DAC'16 accelerator model.

Reproduction of Hong et al., "A Real-time Energy-Efficient Superpixel
Hardware Accelerator for Mobile Computer Vision Applications" (DAC 2016).

Quick start
-----------
>>> import numpy as np
>>> from repro import sslic, generate_scene
>>> scene = generate_scene(seed=1)
>>> result = sslic(scene.image, n_superpixels=150)
>>> result.labels.shape == scene.image.shape[:2]
True

Subpackages
-----------
``repro.core``
    SLIC / S-SLIC algorithms (the paper's contribution).
``repro.color``
    Reference CIELAB conversion and the LUT hardware pipeline.
``repro.fixedpoint``
    Q-format saturating arithmetic for the quantized datapath.
``repro.metrics``
    Undersegmentation error, boundary recall, ASA, compactness, ...
``repro.data``
    Synthetic ground-truth corpus, PPM I/O, optional BSDS loader.
``repro.hw``
    Accelerator timing/energy/area models and the CPA/PPA analysis.
``repro.baselines``
    GPU platform models (Table 5), gSLIC, Preemptive SLIC.
``repro.analysis``
    Per-table/figure experiment drivers and DSE sweeps.
``repro.viz``
    Boundary overlays and ASCII plots.
``repro.obs``
    Unified instrumentation: tracing spans, metrics, JSONL run telemetry.
``repro.parallel``
    Batch/video execution engine: process-pool sharding with per-stream
    warm starts and bit-identical-to-serial results.
``repro.resilience``
    Hardened execution: deterministic fault injection, retry policies,
    checkpoint journals, and the soft-error quality model.
"""

from .version import __version__
from .errors import (
    ConfigurationError,
    ConvergenceError,
    DatasetError,
    FixedPointError,
    HardwareModelError,
    ImageError,
    MetricError,
    ReproError,
)
from .types import HD_1080, HD_720, VGA, Resolution
from .core import (
    FixedDatapath,
    SegmentationResult,
    SlicParams,
    slic,
    sslic,
)
from .data import Scene, SceneConfig, SyntheticDataset, generate_scene
from .metrics import (
    achievable_segmentation_accuracy,
    boundary_recall,
    undersegmentation_error,
)
from .hw import AcceleratorConfig, AcceleratorModel, ClusterWays
from .baselines import gslic, preemptive_slic, preemptive_sslic
from .obs import JsonlSink, RunManifest, Tracer
from .errors import CheckpointError, ResilienceError, StreamError
from .parallel import BatchResult, ParallelRunner
from .resilience import FaultPlan, RetryPolicy

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "ImageError",
    "FixedPointError",
    "DatasetError",
    "MetricError",
    "HardwareModelError",
    "ConvergenceError",
    "StreamError",
    "ResilienceError",
    "CheckpointError",
    # types
    "Resolution",
    "HD_1080",
    "HD_720",
    "VGA",
    # core
    "slic",
    "sslic",
    "SlicParams",
    "SegmentationResult",
    "FixedDatapath",
    # data
    "Scene",
    "SceneConfig",
    "SyntheticDataset",
    "generate_scene",
    # metrics
    "undersegmentation_error",
    "boundary_recall",
    "achievable_segmentation_accuracy",
    # hw
    "AcceleratorModel",
    "AcceleratorConfig",
    "ClusterWays",
    # baselines
    "gslic",
    "preemptive_slic",
    "preemptive_sslic",
    # obs
    "Tracer",
    "JsonlSink",
    "RunManifest",
    # parallel
    "ParallelRunner",
    "BatchResult",
    # resilience
    "FaultPlan",
    "RetryPolicy",
]
