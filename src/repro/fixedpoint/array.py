"""A convenience wrapper bundling raw codes with their Q-format.

:class:`FxpArray` is a thin value-semantics wrapper used at API boundaries
(e.g. the quantized distance backend) so that a format can never silently
drift away from its codes. The inner loops operate on raw numpy arrays via
:mod:`repro.fixedpoint.ops` for speed; FxpArray is the safe hand-off type.
"""

from __future__ import annotations

import numpy as np

from ..errors import FixedPointError
from .qformat import QFormat, RoundingMode
from . import ops

__all__ = ["FxpArray"]


class FxpArray:
    """An array of fixed-point values: raw int64 codes plus a QFormat.

    Construct from real values with :meth:`from_float`, or wrap existing raw
    codes with the constructor. Arithmetic returns new FxpArrays in the same
    format (saturating), mirroring a fixed-width datapath.
    """

    __slots__ = ("raw", "fmt")

    def __init__(self, raw: np.ndarray, fmt: QFormat):
        raw = np.asarray(raw, dtype=np.int64)
        if np.any(raw > fmt.raw_max) or np.any(raw < fmt.raw_min):
            raise FixedPointError(
                f"raw codes out of range for {fmt}: "
                f"[{raw.min()}, {raw.max()}] vs [{fmt.raw_min}, {fmt.raw_max}]"
            )
        self.raw = raw
        self.fmt = fmt

    # ------------------------------------------------------------------
    @classmethod
    def from_float(
        cls, values, fmt: QFormat, rounding: str = RoundingMode.NEAREST
    ) -> "FxpArray":
        """Quantize real ``values`` into format ``fmt``."""
        return cls(fmt.to_raw(values, rounding=rounding), fmt)

    def to_float(self) -> np.ndarray:
        """Dequantize back to float64."""
        return self.fmt.from_raw(self.raw)

    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.raw.shape

    @property
    def size(self) -> int:
        return self.raw.size

    def __len__(self) -> int:
        return len(self.raw)

    def __getitem__(self, idx) -> "FxpArray":
        return FxpArray(self.raw[idx], self.fmt)

    def reshape(self, *shape) -> "FxpArray":
        return FxpArray(self.raw.reshape(*shape), self.fmt)

    # ------------------------------------------------------------------
    def _coerce(self, other) -> np.ndarray:
        if isinstance(other, FxpArray):
            if other.fmt != self.fmt:
                raise FixedPointError(
                    f"format mismatch: {self.fmt} vs {other.fmt}; use rescale()"
                )
            return other.raw
        # Scalars / float arrays are quantized on the fly.
        return self.fmt.to_raw(other)

    def __add__(self, other) -> "FxpArray":
        return FxpArray(ops.sat_add(self.raw, self._coerce(other), self.fmt), self.fmt)

    def __sub__(self, other) -> "FxpArray":
        return FxpArray(ops.sat_sub(self.raw, self._coerce(other), self.fmt), self.fmt)

    def __mul__(self, other) -> "FxpArray":
        return FxpArray(ops.sat_mul(self.raw, self._coerce(other), self.fmt), self.fmt)

    def square(self) -> "FxpArray":
        return FxpArray(ops.sat_square(self.raw, self.fmt), self.fmt)

    def rescale(self, dst: QFormat) -> "FxpArray":
        """Move to another format, rounding/saturating as hardware would."""
        return FxpArray(ops.rescale(self.raw, self.fmt, dst), dst)

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FxpArray)
            and self.fmt == other.fmt
            and np.array_equal(self.raw, other.raw)
        )

    def __repr__(self) -> str:
        return f"FxpArray({self.fmt}, shape={self.raw.shape})"
