"""Saturating fixed-point arithmetic on raw integer codes.

These functions model the arithmetic units of the accelerator datapath.
All operands and results are *raw codes* (int64 numpy arrays) tagged with a
:class:`~repro.fixedpoint.qformat.QFormat`. Operations saturate instead of
wrapping — the accelerator's adders and multipliers are saturating, which is
what makes an 8-bit datapath usable for distance accumulation.

The operations stay in int64 internally (wide enough for any product of two
<=32-bit formats), then saturate to the result format. This matches a
hardware implementation with full-width partial results and a final
saturating quantizer.
"""

from __future__ import annotations

import numpy as np

from ..errors import FixedPointError
from .qformat import QFormat

__all__ = [
    "sat_add",
    "sat_sub",
    "sat_mul",
    "sat_square",
    "sat_mac",
    "rescale",
    "isqrt_raw",
    "div_raw",
]


def _check_same_format(a_fmt: QFormat, b_fmt: QFormat) -> None:
    if a_fmt != b_fmt:
        raise FixedPointError(
            f"operand formats differ: {a_fmt} vs {b_fmt}; rescale() first"
        )


def sat_add(a, b, fmt: QFormat) -> np.ndarray:
    """Saturating addition of two raw-code arrays in format ``fmt``."""
    wide = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    return fmt.saturate_raw(wide)


def sat_sub(a, b, fmt: QFormat) -> np.ndarray:
    """Saturating subtraction ``a - b`` of raw-code arrays in ``fmt``."""
    wide = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
    return fmt.saturate_raw(wide)


def rescale(raw, src: QFormat, dst: QFormat) -> np.ndarray:
    """Convert raw codes from format ``src`` to format ``dst``.

    Shifts the binary point (with round-to-nearest on right shifts, i.e.
    when precision is dropped) and saturates to the destination range. This
    is the model of a hardware format-conversion stage.
    """
    raw = np.asarray(raw, dtype=np.int64)
    shift = dst.frac_bits - src.frac_bits
    if shift >= 0:
        if shift > 62:
            raise FixedPointError(f"rescale shift {shift} too large")
        wide = raw << shift
    else:
        down = -shift
        if down > 62:
            raise FixedPointError(f"rescale shift {-down} too large")
        half = np.int64(1) << (down - 1)
        # Round half away from zero, like the NEAREST quantizer.
        wide = np.where(raw >= 0, (raw + half) >> down, -((-raw + half) >> down))
    return dst.saturate_raw(wide)


def sat_mul(a, b, fmt: QFormat, result_fmt: QFormat = None) -> np.ndarray:
    """Saturating multiply of raw codes that share format ``fmt``.

    The full-precision product has ``2 * fmt.frac_bits`` fraction bits; it
    is rounded back to ``result_fmt`` (default: ``fmt``). Overflow of the
    int64 intermediate is guarded against by the QFormat width limit (<=64
    total bits, and multiplies are only used on narrow datapath formats).
    """
    if result_fmt is None:
        result_fmt = fmt
    if fmt.total_bits > 31:
        raise FixedPointError(
            f"sat_mul requires operand width <= 31 bits, got {fmt.total_bits}"
        )
    wide = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
    prod_fmt = QFormat(
        min(64, 2 * fmt.total_bits + 1), 2 * fmt.frac_bits, signed=True
    )
    return rescale(wide, prod_fmt, result_fmt)


def sat_square(a, fmt: QFormat, result_fmt: QFormat = None) -> np.ndarray:
    """Saturating square ``a*a`` — the datapath's difference-squaring unit."""
    return sat_mul(a, a, fmt, result_fmt=result_fmt)


def sat_mac(acc, a, b, fmt: QFormat, acc_fmt: QFormat) -> np.ndarray:
    """Multiply-accumulate: ``acc + a*b`` with product rounded to acc_fmt.

    ``a`` and ``b`` are raw codes in ``fmt``; ``acc`` and the result are raw
    codes in ``acc_fmt``. This is the compound operation the paper's
    "optimized compound operations" refer to: one fused step of the distance
    computation.
    """
    prod = sat_mul(a, b, fmt, result_fmt=acc_fmt)
    return sat_add(acc, prod, acc_fmt)


def div_raw(
    numerator,
    denominator,
    num_fmt: QFormat,
    result_fmt: QFormat,
) -> np.ndarray:
    """Fixed-point division — the Center Update Unit's divider.

    Computes ``numerator / denominator`` where the numerator carries
    ``num_fmt``'s fraction bits and the denominator is a plain integer
    count (the sigma register's pixel count). The quotient is produced
    with ``result_fmt``'s precision using round-to-nearest (the final
    adjust step of a non-restoring divider), saturated to range.

    Division by zero yields zero — the hardware's behaviour for an empty
    superpixel, whose center update is skipped upstream anyway.
    """
    num = np.asarray(numerator, dtype=np.int64)
    den = np.asarray(denominator, dtype=np.int64)
    if np.any(den < 0):
        raise FixedPointError("div_raw denominator must be a non-negative count")
    shift = result_fmt.frac_bits - num_fmt.frac_bits
    if shift >= 0:
        if shift > 40:
            raise FixedPointError(f"div_raw shift {shift} too large")
        scaled = num << shift
    else:
        scaled = num  # handled after division via rescale-style rounding
    safe_den = np.where(den == 0, 1, den)
    # Round-half-away-from-zero: add +-den/2 before the truncating divide.
    half = safe_den // 2
    q = np.where(
        scaled >= 0,
        (scaled + half) // safe_den,
        -((-scaled + half) // safe_den),
    )
    if shift < 0:
        down = -shift
        rounding_half = np.int64(1) << (down - 1)
        q = np.where(
            q >= 0, (q + rounding_half) >> down, -((-q + rounding_half) >> down)
        )
    q = np.where(den == 0, 0, q)
    return result_fmt.saturate_raw(q)


def isqrt_raw(raw, fmt: QFormat, result_fmt: QFormat = None) -> np.ndarray:
    """Integer square root on raw codes, the hardware sqrt approximation.

    Computes ``sqrt(value)`` where ``value = raw * 2**-f``; implemented the
    way a non-restoring hardware square-rooter behaves: exact integer sqrt
    of the appropriately shifted code, truncated (round toward zero).

    Note SLIC only needs *relative* distance comparisons, so the final
    accelerator skips the sqrt entirely (monotone transform); this unit
    exists for bit-accurate comparison against Equation 5.
    """
    if result_fmt is None:
        result_fmt = fmt
    raw = np.asarray(raw, dtype=np.int64)
    if np.any(raw < 0):
        raise FixedPointError("isqrt_raw input must be non-negative")
    # sqrt(raw * 2^-f) = sqrt(raw * 2^(2g - f)) * 2^-g  for result frac g.
    g = result_fmt.frac_bits
    shift = 2 * g - fmt.frac_bits
    if shift >= 0:
        if shift > 62:
            raise FixedPointError(f"isqrt shift {shift} too large")
        shifted = raw << shift
    else:
        shifted = raw >> (-shift)
    root = np.floor(np.sqrt(shifted.astype(np.float64))).astype(np.int64)
    # floor(sqrt()) in float64 can be off by one ULP near perfect squares;
    # correct with one Newton check each way, like hardware final adjust.
    too_big = root * root > shifted
    root = np.where(too_big, root - 1, root)
    too_small = (root + 1) * (root + 1) <= shifted
    root = np.where(too_small, root + 1, root)
    return result_fmt.saturate_raw(root)
