"""Q-format fixed-point number specification.

The S-SLIC accelerator uses a narrow fixed-point datapath (8 bits in the
final design; the paper sweeps 4..16 bits plus float64 in Section 6.1). A
:class:`QFormat` describes such a representation: total bit width, number of
fractional bits, and signedness. Values are stored as integers scaled by
``2**frac_bits``.

This module deliberately implements only what a hardware datapath provides:
quantization with a selectable rounding mode, saturation to the representable
range, and range/resolution queries. Arithmetic on arrays of quantized values
lives in :mod:`repro.fixedpoint.ops`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FixedPointError

__all__ = ["QFormat", "RoundingMode"]


class RoundingMode:
    """Rounding modes supported by the quantizer.

    ``NEAREST`` is round-half-away-from-zero (what a hardware round-and-add
    implementation produces); ``TRUNCATE`` drops fraction bits (cheapest in
    gates); ``FLOOR`` rounds toward negative infinity.
    """

    NEAREST = "nearest"
    TRUNCATE = "truncate"
    FLOOR = "floor"

    ALL = (NEAREST, TRUNCATE, FLOOR)


@dataclass(frozen=True)
class QFormat:
    """A fixed-point format: ``total_bits`` wide with ``frac_bits`` fraction.

    Parameters
    ----------
    total_bits:
        Width of the representation including the sign bit when signed.
        Must be in [2, 64].
    frac_bits:
        Number of fractional bits. May be zero (pure integer) and may equal
        or exceed ``total_bits`` for subunitary ranges, but must be
        non-negative.
    signed:
        Whether the format is two's-complement signed.

    Examples
    --------
    >>> q = QFormat(8, 4)          # s3.4: range [-8, 7.9375], step 0.0625
    >>> q.quantize(1.23)
    1.25
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if not (2 <= self.total_bits <= 64):
            raise FixedPointError(
                f"total_bits must be in [2, 64], got {self.total_bits}"
            )
        if self.frac_bits < 0:
            raise FixedPointError(f"frac_bits must be >= 0, got {self.frac_bits}")
        if self.frac_bits > self.total_bits + 32:
            raise FixedPointError(
                f"frac_bits {self.frac_bits} unreasonably exceeds total_bits "
                f"{self.total_bits}"
            )

    # ------------------------------------------------------------------
    # Range queries
    # ------------------------------------------------------------------
    @property
    def int_bits(self) -> int:
        """Integer (non-fraction, non-sign) bits; may be negative."""
        return self.total_bits - self.frac_bits - (1 if self.signed else 0)

    @property
    def scale(self) -> float:
        """Value of one least-significant bit: ``2**-frac_bits``."""
        return float(2.0 ** -self.frac_bits)

    @property
    def raw_min(self) -> int:
        """Smallest representable raw integer code."""
        return -(1 << (self.total_bits - 1)) if self.signed else 0

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer code."""
        if self.signed:
            return (1 << (self.total_bits - 1)) - 1
        return (1 << self.total_bits) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min * self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max * self.scale

    @property
    def resolution(self) -> float:
        """Alias of :attr:`scale` — the quantization step."""
        return self.scale

    # ------------------------------------------------------------------
    # Quantization
    # ------------------------------------------------------------------
    def to_raw(self, value, rounding: str = RoundingMode.NEAREST) -> np.ndarray:
        """Quantize real ``value`` to raw integer codes with saturation.

        Accepts scalars or arrays; always returns int64 raw codes clipped to
        the representable range. NaNs map to zero (hardware datapaths have
        no NaN; this keeps the model total).
        """
        if rounding not in RoundingMode.ALL:
            raise FixedPointError(f"unknown rounding mode {rounding!r}")
        scaled = np.asarray(value, dtype=np.float64) * (2.0 ** self.frac_bits)
        scaled = np.where(np.isnan(scaled), 0.0, scaled)
        if rounding == RoundingMode.NEAREST:
            raw = np.where(scaled >= 0, np.floor(scaled + 0.5), np.ceil(scaled - 0.5))
        elif rounding == RoundingMode.FLOOR:
            raw = np.floor(scaled)
        else:  # TRUNCATE: toward zero
            raw = np.trunc(scaled)
        raw = np.clip(raw, self.raw_min, self.raw_max)
        return raw.astype(np.int64)

    def from_raw(self, raw) -> np.ndarray:
        """Convert raw integer codes back to real values (float64)."""
        return np.asarray(raw, dtype=np.float64) * self.scale

    def quantize(self, value, rounding: str = RoundingMode.NEAREST):
        """Round-trip ``value`` through the format (quantize + dequantize).

        This is the model of "what the datapath sees": the nearest
        representable value, saturated to range. Scalars in, scalar out.
        """
        out = self.from_raw(self.to_raw(value, rounding=rounding))
        if np.isscalar(value) or np.ndim(value) == 0:
            return float(out)
        return out

    def saturate_raw(self, raw) -> np.ndarray:
        """Clip raw codes into this format's representable range."""
        return np.clip(np.asarray(raw, dtype=np.int64), self.raw_min, self.raw_max)

    def representable(self, value) -> bool:
        """True if scalar ``value`` is exactly representable in this format."""
        raw = float(value) * (2.0 ** self.frac_bits)
        return (
            abs(raw - round(raw)) < 1e-9
            and self.raw_min <= round(raw) <= self.raw_max
        )

    def __str__(self) -> str:
        sign = "s" if self.signed else "u"
        return f"Q{sign}{self.int_bits}.{self.frac_bits}"

    # ------------------------------------------------------------------
    # Common formats
    # ------------------------------------------------------------------
    @classmethod
    def for_unit_range(cls, total_bits: int, signed: bool = False) -> "QFormat":
        """Format covering [0, 1) (unsigned) or (-1, 1) (signed)."""
        frac = total_bits - (1 if signed else 0)
        return cls(total_bits, frac, signed=signed)

    @classmethod
    def for_range(
        cls, total_bits: int, lo: float, hi: float, signed: bool | None = None
    ) -> "QFormat":
        """Choose the largest ``frac_bits`` that still covers ``[lo, hi]``.

        This mirrors how a hardware designer picks a Q-format: fix the
        width, then spend as many bits as possible on fraction while the
        integer part still spans the dynamic range.
        """
        if hi < lo:
            raise FixedPointError(f"empty range [{lo}, {hi}]")
        if signed is None:
            signed = lo < 0
        if lo < 0 and not signed:
            raise FixedPointError(f"range [{lo}, {hi}] needs a signed format")
        magnitude = max(abs(lo), abs(hi), 1e-300)
        # Bits needed left of the binary point to represent `magnitude`.
        int_bits = max(0, int(np.ceil(np.log2(magnitude + 1e-12))))
        frac = total_bits - int_bits - (1 if signed else 0)
        frac = max(frac, 0)
        fmt = cls(total_bits, frac, signed=signed)
        # Back off one fraction bit if the top of the range saturates.
        while frac > 0 and (hi > fmt.max_value + 1e-12 or lo < fmt.min_value - 1e-12):
            frac -= 1
            fmt = cls(total_bits, frac, signed=signed)
        return fmt
