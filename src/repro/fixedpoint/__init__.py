"""Fixed-point arithmetic substrate for the S-SLIC datapath.

The accelerator's final design uses an 8-bit fixed-point datapath (paper
Section 6.1); this package provides the Q-format specification, saturating
arithmetic, and the array wrapper used by the quantized distance backend and
the bit-width design-space exploration.
"""

from .qformat import QFormat, RoundingMode
from .array import FxpArray
from .ops import (
    div_raw,
    isqrt_raw,
    rescale,
    sat_add,
    sat_mac,
    sat_mul,
    sat_square,
    sat_sub,
)

__all__ = [
    "QFormat",
    "RoundingMode",
    "FxpArray",
    "sat_add",
    "sat_sub",
    "sat_mul",
    "sat_square",
    "sat_mac",
    "rescale",
    "isqrt_raw",
    "div_raw",
]
