"""Package version (single source of truth for repro.__version__)."""

__version__ = "1.0.0"
