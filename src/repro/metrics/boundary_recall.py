"""Boundary recall (BR) — the paper's second quality metric.

BR measures how much of the ground-truth boundary is recovered: the
fraction of ground-truth boundary pixels that lie within a small tolerance
of a computed superpixel boundary. Higher is better. Figure 2b of the paper
plots BR versus runtime.

Boundary precision and F-measure are included as companions (useful for the
ablation benches: oversegmenting trivially maximizes recall, precision
exposes it).
"""

from __future__ import annotations

import numpy as np

from ..errors import MetricError
from .boundaries import boundary_map, chamfer_distance, dilate_mask

__all__ = ["boundary_recall", "boundary_precision", "boundary_f_measure"]

_DISTANCES = ("chebyshev", "euclidean")


def _check_args(labels, gt_labels, tolerance, distance):
    if np.asarray(labels).shape != np.asarray(gt_labels).shape:
        raise MetricError(
            f"shape mismatch: {np.asarray(labels).shape} vs {np.asarray(gt_labels).shape}"
        )
    if tolerance < 0:
        raise MetricError(f"tolerance must be >= 0, got {tolerance}")
    if distance not in _DISTANCES:
        raise MetricError(f"distance must be one of {_DISTANCES}, got {distance!r}")


def _within(target_edges: np.ndarray, tolerance: float, distance: str) -> np.ndarray:
    """Bool map of pixels within ``tolerance`` of a ``target_edges`` pixel."""
    if distance == "chebyshev":
        return dilate_mask(target_edges, int(tolerance))
    return chamfer_distance(target_edges) <= tolerance + 1e-9


def boundary_recall(
    labels: np.ndarray,
    gt_labels: np.ndarray,
    tolerance: float = 2,
    distance: str = "chebyshev",
) -> float:
    """Fraction of GT boundary pixels within ``tolerance`` of a computed
    boundary pixel.

    ``distance`` chooses the tolerance metric: ``"chebyshev"`` (8-neighbor
    dilation, the cheap conventional choice) or ``"euclidean"``
    (3-4 chamfer distance transform, the Achanta-style definition).
    Returns 1.0 for a boundary-free ground truth (nothing to recall).
    """
    _check_args(labels, gt_labels, tolerance, distance)
    gt_edges = boundary_map(gt_labels)
    n_gt = int(gt_edges.sum())
    if n_gt == 0:
        return 1.0
    near_sp = _within(boundary_map(labels), tolerance, distance)
    hit = int((gt_edges & near_sp).sum())
    return hit / n_gt


def boundary_precision(
    labels: np.ndarray,
    gt_labels: np.ndarray,
    tolerance: float = 2,
    distance: str = "chebyshev",
) -> float:
    """Fraction of computed boundary pixels within ``tolerance`` of a GT
    boundary pixel. Returns 1.0 when the segmentation has no boundaries."""
    _check_args(labels, gt_labels, tolerance, distance)
    sp_edges = boundary_map(labels)
    n_sp = int(sp_edges.sum())
    if n_sp == 0:
        return 1.0
    near_gt = _within(boundary_map(gt_labels), tolerance, distance)
    hit = int((sp_edges & near_gt).sum())
    return hit / n_sp


def boundary_f_measure(
    labels: np.ndarray,
    gt_labels: np.ndarray,
    tolerance: float = 2,
    distance: str = "chebyshev",
) -> float:
    """Harmonic mean of boundary recall and precision."""
    r = boundary_recall(labels, gt_labels, tolerance, distance)
    p = boundary_precision(labels, gt_labels, tolerance, distance)
    if r + p == 0:
        return 0.0
    return 2.0 * r * p / (r + p)
