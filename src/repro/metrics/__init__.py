"""Segmentation-quality metrics.

USE (:func:`undersegmentation_error`) and boundary recall
(:func:`boundary_recall`) are the two metrics the paper reports (Fig 2);
ASA, compactness, explained variation, and boundary precision/F-measure
complete the standard superpixel evaluation suite.
"""

from .boundaries import (
    boundary_map,
    chamfer_distance,
    contingency_table,
    dilate_mask,
    perimeter_counts,
)
from .undersegmentation import (
    corrected_undersegmentation_error,
    undersegmentation_error,
)
from .boundary_recall import boundary_f_measure, boundary_precision, boundary_recall
from .region import (
    achievable_segmentation_accuracy,
    compactness,
    explained_variation,
    superpixel_size_stats,
)

__all__ = [
    "boundary_map",
    "chamfer_distance",
    "dilate_mask",
    "perimeter_counts",
    "contingency_table",
    "undersegmentation_error",
    "corrected_undersegmentation_error",
    "boundary_recall",
    "boundary_precision",
    "boundary_f_measure",
    "achievable_segmentation_accuracy",
    "compactness",
    "explained_variation",
    "superpixel_size_stats",
]
