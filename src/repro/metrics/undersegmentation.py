"""Undersegmentation error (USE) — the paper's first quality metric.

USE penalizes superpixels that straddle ground-truth region boundaries: a
superpixel "leaking" across a boundary inflates the area needed to cover
each ground-truth segment. Lower is better. Figure 2a of the paper plots
USE versus runtime for SLIC and S-SLIC.

Two standard definitions are provided:

* :func:`undersegmentation_error` — Achanta et al. (the paper's reference
  [1]): for every ground-truth segment, sum the areas of all superpixels
  whose overlap with the segment exceeds ``threshold`` times the superpixel
  area, then normalize the excess over the image::

      USE = (sum_g sum_{s : |s ∩ g| > thr·|s|} |s|  -  N) / N

* :func:`corrected_undersegmentation_error` — Neubert & Protzel's
  threshold-free variant, charging each straddling superpixel only
  ``min(inside, outside)`` ("leak") area::

      CUSE = sum_s sum_g min(|s ∩ g|, |s| - |s ∩ g|) / N   over overlapping g
"""

from __future__ import annotations

import numpy as np

from ..errors import MetricError
from .boundaries import contingency_table

__all__ = ["undersegmentation_error", "corrected_undersegmentation_error"]


def undersegmentation_error(
    labels: np.ndarray, gt_labels: np.ndarray, threshold: float = 0.05
) -> float:
    """Achanta-style USE of superpixel ``labels`` against ``gt_labels``.

    ``threshold`` is the overlap fraction below which a superpixel is not
    counted as belonging to a ground-truth segment (Achanta et al. use 5%
    to absorb boundary-pixel ambiguity).
    """
    if not (0.0 <= threshold < 1.0):
        raise MetricError(f"threshold must be in [0, 1), got {threshold}")
    table = contingency_table(gt_labels, labels)  # (G, S)
    sp_area = table.sum(axis=0)  # |s|
    n_pixels = int(table.sum())
    if n_pixels == 0:
        raise MetricError("empty label maps")
    # For each gt segment g: include superpixel s iff |s ∩ g| > thr * |s|.
    include = table > threshold * sp_area[None, :]
    covered = (include * sp_area[None, :]).sum()
    return float(covered - n_pixels) / n_pixels


def corrected_undersegmentation_error(
    labels: np.ndarray, gt_labels: np.ndarray
) -> float:
    """Neubert-Protzel corrected USE (threshold-free leak measure)."""
    table = contingency_table(gt_labels, labels)  # (G, S)
    sp_area = table.sum(axis=0)
    n_pixels = int(table.sum())
    if n_pixels == 0:
        raise MetricError("empty label maps")
    outside = sp_area[None, :] - table
    leak = np.minimum(table, outside)
    # Only charge segments the superpixel actually overlaps.
    leak = np.where(table > 0, leak, 0)
    return float(leak.sum()) / n_pixels
