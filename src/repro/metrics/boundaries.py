"""Boundary-map utilities shared by the segmentation metrics.

A *boundary pixel* is one whose label differs from its right or lower
neighbor (inner-boundary convention on the 4-neighborhood, symmetric by
construction: both sides of an edge are marked).
"""

from __future__ import annotations

import numpy as np

from ..types import validate_label_map

__all__ = [
    "boundary_map",
    "dilate_mask",
    "chamfer_distance",
    "chamfer_distance_reference",
    "perimeter_counts",
    "contingency_table",
    "contingency_table_reference",
]


def boundary_map(labels: np.ndarray) -> np.ndarray:
    """Return a bool (H, W) map marking label-transition pixels.

    Both pixels across each 4-neighborhood label change are marked, so the
    map is independent of which side "owns" the edge.
    """
    labels = validate_label_map(labels)
    edges = np.zeros(labels.shape, dtype=bool)
    horiz = labels[:, 1:] != labels[:, :-1]
    vert = labels[1:, :] != labels[:-1, :]
    edges[:, 1:] |= horiz
    edges[:, :-1] |= horiz
    edges[1:, :] |= vert
    edges[:-1, :] |= vert
    return edges


def dilate_mask(mask: np.ndarray, radius: int) -> np.ndarray:
    """Dilate a bool mask by ``radius`` in Chebyshev (8-neighbor) distance.

    Implemented as ``radius`` rounds of 3x3 max-filtering with numpy shifts
    — no scipy dependency. ``radius == 0`` returns a copy.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    out = np.asarray(mask, dtype=bool).copy()
    for _ in range(radius):
        grown = out.copy()
        grown[1:, :] |= out[:-1, :]
        grown[:-1, :] |= out[1:, :]
        grown[:, 1:] |= out[:, :-1]
        grown[:, :-1] |= out[:, 1:]
        grown[1:, 1:] |= out[:-1, :-1]
        grown[1:, :-1] |= out[:-1, 1:]
        grown[:-1, 1:] |= out[1:, :-1]
        grown[:-1, :-1] |= out[1:, 1:]
        out = grown
    return out


#: Chamfer 3-4 mask weights approximate Euclidean distance with unit cost
#: 3 for axial steps and 4 for diagonal ones (divide by 3 to de-normalize).
_CHAMFER_AXIAL = 3
_CHAMFER_DIAG = 4


#: Unreachable-distance sentinel for the integer chamfer grid.
_CHAMFER_BIG = np.iinfo(np.int64).max // 4


def chamfer_init(mask: np.ndarray) -> np.ndarray:
    """The integer chamfer grid before any sweep: 0 on True, BIG elsewhere."""
    return np.where(mask, 0, _CHAMFER_BIG).astype(np.int64)


def chamfer_finalize(dist: np.ndarray) -> np.ndarray:
    """Integer 3-4 chamfer grid -> float pixel distances (+inf unreachable)."""
    out = dist.astype(np.float64) / _CHAMFER_AXIAL
    out[dist >= _CHAMFER_BIG // 2] = np.inf
    return out


def chamfer_distance(mask: np.ndarray, backend: str | None = None) -> np.ndarray:
    """Approximate Euclidean distance (pixels) to the nearest True pixel.

    Two-pass 3-4 chamfer transform — the classical scipy-free distance
    transform. Error versus exact Euclidean distance is bounded by ~8%,
    far below the 1-2 px tolerances boundary metrics use. An all-False
    mask returns +inf everywhere. ``backend`` selects the
    :mod:`repro.kernels` implementation; all backends are bit-identical
    (the integer grid makes the sweeps exactly reproducible).
    """
    from ..kernels import get_backend  # lazy: kernels imports this module

    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"expected 2-D mask, got shape {mask.shape}")
    return get_backend(backend).chamfer_distance(mask)


def chamfer_distance_reference(mask: np.ndarray) -> np.ndarray:
    """The numpy row-sweep chamfer transform (kernel reference semantics).

    Takes a validated bool (H, W) mask; returns float64 distances.
    """
    h, w = mask.shape
    dist = chamfer_init(mask)
    xs = np.arange(w, dtype=np.int64) * _CHAMFER_AXIAL

    def sweep_left(row: np.ndarray) -> np.ndarray:
        # d[x] = min_{k<=x} (row[k] + 3*(x-k)) as a prefix-min.
        return np.minimum.accumulate(row - xs) + xs

    def sweep_right(row: np.ndarray) -> np.ndarray:
        return (np.minimum.accumulate((row + xs)[::-1]))[::-1] - xs

    # Forward pass (top-left to bottom-right): upper neighbors vectorized
    # per row, then the in-row left propagation as a prefix-min.
    for y in range(h):
        if y > 0:
            dist[y] = np.minimum(dist[y], dist[y - 1] + _CHAMFER_AXIAL)
            dist[y, 1:] = np.minimum(dist[y, 1:], dist[y - 1, :-1] + _CHAMFER_DIAG)
            dist[y, :-1] = np.minimum(dist[y, :-1], dist[y - 1, 1:] + _CHAMFER_DIAG)
        dist[y] = np.minimum(dist[y], sweep_left(dist[y]))
    # Backward pass (bottom-right to top-left).
    for y in range(h - 1, -1, -1):
        if y < h - 1:
            dist[y] = np.minimum(dist[y], dist[y + 1] + _CHAMFER_AXIAL)
            dist[y, 1:] = np.minimum(dist[y, 1:], dist[y + 1, :-1] + _CHAMFER_DIAG)
            dist[y, :-1] = np.minimum(dist[y, :-1], dist[y + 1, 1:] + _CHAMFER_DIAG)
        dist[y] = np.minimum(dist[y], sweep_right(dist[y]))
    return chamfer_finalize(dist)


def perimeter_counts(labels: np.ndarray) -> np.ndarray:
    """Per-label perimeter: count of 4-neighbor edges to a different label
    or to the image border. Returns an array of length ``max_label + 1``."""
    labels = validate_label_map(labels)
    n = int(labels.max()) + 1
    perim = np.zeros(n, dtype=np.int64)
    horiz = labels[:, 1:] != labels[:, :-1]
    vert = labels[1:, :] != labels[:-1, :]
    # Each differing adjacency contributes one unit to both labels.
    np.add.at(perim, labels[:, 1:][horiz], 1)
    np.add.at(perim, labels[:, :-1][horiz], 1)
    np.add.at(perim, labels[1:, :][vert], 1)
    np.add.at(perim, labels[:-1, :][vert], 1)
    # Image border contributes to the touching label.
    for border in (labels[0, :], labels[-1, :], labels[:, 0], labels[:, -1]):
        np.add.at(perim, border, 1)
    return perim


def contingency_table(
    labels_a: np.ndarray, labels_b: np.ndarray, backend: str | None = None
) -> np.ndarray:
    """Joint histogram: ``table[i, j]`` = pixels with label_a i and label_b j.

    The workhorse of USE / ASA. ``backend`` selects the
    :mod:`repro.kernels` implementation (an exact integer histogram in
    every backend).
    """
    from ..kernels import get_backend  # lazy: kernels imports this module

    labels_a = validate_label_map(labels_a)
    labels_b = validate_label_map(labels_b)
    if labels_a.shape != labels_b.shape:
        raise ValueError(
            f"label map shapes differ: {labels_a.shape} vs {labels_b.shape}"
        )
    n_a = int(labels_a.max()) + 1
    n_b = int(labels_b.max()) + 1
    a_flat = np.ascontiguousarray(labels_a.ravel(), dtype=np.int64)
    b_flat = np.ascontiguousarray(labels_b.ravel(), dtype=np.int64)
    return get_backend(backend).contingency_table(a_flat, b_flat, n_a, n_b)


def contingency_table_reference(
    a_flat: np.ndarray, b_flat: np.ndarray, n_a: int, n_b: int
) -> np.ndarray:
    """One bincount over fused indices (kernel reference semantics).

    Takes pre-validated flat int64 label arrays of equal length.
    """
    fused = a_flat * n_b + b_flat
    counts = np.bincount(fused, minlength=n_a * n_b)
    return counts.reshape(n_a, n_b)
