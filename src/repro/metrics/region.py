"""Region-level companion metrics: ASA, compactness, explained variation.

The paper reports USE and boundary recall; these three standard superpixel
metrics round out the evaluation suite and power the ablation benches.
"""

from __future__ import annotations

import numpy as np

from ..errors import MetricError
from ..types import validate_label_map
from .boundaries import contingency_table, perimeter_counts

__all__ = [
    "achievable_segmentation_accuracy",
    "compactness",
    "explained_variation",
    "superpixel_size_stats",
]


def achievable_segmentation_accuracy(
    labels: np.ndarray, gt_labels: np.ndarray
) -> float:
    """ASA: the accuracy of the best labeling achievable by assigning each
    superpixel wholly to one ground-truth segment. Upper bound on any
    downstream segmentation built from these superpixels; higher is better.
    """
    table = contingency_table(gt_labels, labels)  # (G, S)
    n_pixels = int(table.sum())
    if n_pixels == 0:
        raise MetricError("empty label maps")
    return float(table.max(axis=0).sum()) / n_pixels


def compactness(labels: np.ndarray) -> float:
    """Schick et al. compactness: area-weighted isoperimetric quotient.

    1.0 for perfect disks; long snaky superpixels score near 0. Needs no
    ground truth.
    """
    labels = validate_label_map(labels)
    areas = np.bincount(labels.ravel())
    perims = perimeter_counts(labels)
    present = areas > 0
    q = np.zeros(len(areas), dtype=np.float64)
    q[present] = 4.0 * np.pi * areas[present] / (perims[present].astype(np.float64) ** 2)
    q = np.minimum(q, 1.0)
    n_pixels = int(areas.sum())
    return float((areas * q).sum()) / n_pixels


def explained_variation(labels: np.ndarray, image: np.ndarray) -> float:
    """Fraction of image color variance explained by superpixel means.

    ``image`` is any (H, W, C) float array (Lab recommended). 1.0 means
    superpixels capture all color structure.
    """
    labels = validate_label_map(labels)
    img = np.asarray(image, dtype=np.float64)
    if img.shape[:2] != labels.shape:
        raise MetricError(f"image {img.shape[:2]} vs labels {labels.shape} mismatch")
    if img.ndim == 2:
        img = img[..., None]
    flat = img.reshape(-1, img.shape[-1])
    lab_flat = labels.ravel()
    n = int(labels.max()) + 1
    counts = np.bincount(lab_flat, minlength=n).astype(np.float64)
    counts_safe = np.maximum(counts, 1.0)
    mu_global = flat.mean(axis=0)
    total = float(((flat - mu_global) ** 2).sum())
    if total <= 0:
        return 1.0
    between = 0.0
    for c in range(flat.shape[1]):
        sums = np.bincount(lab_flat, weights=flat[:, c], minlength=n)
        means = sums / counts_safe
        between += float((counts * (means - mu_global[c]) ** 2).sum())
    return between / total


def superpixel_size_stats(labels: np.ndarray) -> dict:
    """Size distribution summary: count, min/mean/max area, std.

    Useful for validating connectivity enforcement (no tiny strays) and the
    subsampling schedules (subsets must not starve superpixels).
    """
    labels = validate_label_map(labels)
    areas = np.bincount(labels.ravel())
    areas = areas[areas > 0]
    return {
        "n_superpixels": int(len(areas)),
        "min_area": int(areas.min()),
        "max_area": int(areas.max()),
        "mean_area": float(areas.mean()),
        "std_area": float(areas.std()),
    }
