"""Visualization: boundary overlays, label renderings, ASCII plots."""

from .overlay import draw_boundaries, label_color_image, mean_color_image
from .ascii_plot import ascii_xy_plot

__all__ = [
    "draw_boundaries",
    "label_color_image",
    "mean_color_image",
    "ascii_xy_plot",
]
