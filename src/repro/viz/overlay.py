"""Visualization helpers: boundary overlays and label colorings.

Pure numpy; images are written with :func:`repro.data.write_ppm` so the
examples have zero extra dependencies.
"""

from __future__ import annotations

import numpy as np

from ..metrics import boundary_map
from ..types import as_uint8_rgb, validate_label_map

__all__ = ["draw_boundaries", "label_color_image", "mean_color_image"]


def draw_boundaries(
    image: np.ndarray, labels: np.ndarray, color=(255, 210, 40)
) -> np.ndarray:
    """Overlay superpixel boundaries on an RGB image.

    Returns a new uint8 image with boundary pixels painted ``color``.
    """
    img = as_uint8_rgb(image).copy()
    labels = validate_label_map(labels)
    if labels.shape != img.shape[:2]:
        raise ValueError(f"labels {labels.shape} vs image {img.shape[:2]} mismatch")
    edges = boundary_map(labels)
    img[edges] = np.asarray(color, dtype=np.uint8)
    return img


def label_color_image(labels: np.ndarray, seed: int = 0) -> np.ndarray:
    """Render a label map with distinct pseudo-random colors (uint8 RGB)."""
    labels = validate_label_map(labels)
    n = int(labels.max()) + 1
    rng = np.random.default_rng(seed)
    palette = rng.integers(40, 256, size=(n, 3), dtype=np.int64).astype(np.uint8)
    return palette[labels]


def mean_color_image(image: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Replace each superpixel with its mean RGB color (uint8).

    The classic "superpixelized" rendering showing what downstream stages
    see after SP reduction.
    """
    img = as_uint8_rgb(image)
    labels = validate_label_map(labels)
    if labels.shape != img.shape[:2]:
        raise ValueError(f"labels {labels.shape} vs image {img.shape[:2]} mismatch")
    n = int(labels.max()) + 1
    flat = labels.ravel()
    counts = np.maximum(np.bincount(flat, minlength=n), 1)
    out = np.empty_like(img)
    for c in range(3):
        sums = np.bincount(flat, weights=img[..., c].ravel(), minlength=n)
        means = (sums / counts).astype(np.uint8)
        out[..., c] = means[labels]
    return out
