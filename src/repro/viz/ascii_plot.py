"""Terminal line plots for benchmark output.

The benchmark harness prints the paper's figures as small ASCII charts so
"the same rows/series the paper reports" are visible directly in the bench
log, with no plotting dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_xy_plot"]


def ascii_xy_plot(
    series: dict,
    width: int = 72,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render ``{name: (xs, ys)}`` series as an ASCII scatter/line chart.

    Each series gets a marker character; points are plotted on a
    ``width x height`` grid spanning the joint data range. Returns the
    chart as a string (caller prints it).
    """
    markers = "*o+x#@%&"
    all_x = np.concatenate([np.asarray(xs, dtype=float) for xs, _ in series.values()])
    all_y = np.concatenate([np.asarray(ys, dtype=float) for _, ys in series.values()])
    if len(all_x) == 0:
        return "(no data)"
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, (xs, ys)) in enumerate(series.items()):
        mark = markers[si % len(markers)]
        for x, y in zip(xs, ys):
            cx = int(round((float(x) - x_lo) / (x_hi - x_lo) * (width - 1)))
            cy = int(round((float(y) - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - cy][cx] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:>10.4g} +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{x_lo:<12.4g}" + x_label.center(width - 24) + f"{x_hi:>12.4g}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend + f"   (y: {y_label})")
    return "\n".join(lines)
