"""Color-space constants shared by the reference and hardware conversions.

The paper's Equations 1-4 convert sRGB to CIELAB through linear RGB and XYZ.
``M`` below is the standard sRGB-to-XYZ matrix (D65, 2-degree observer) the
paper refers to as "a 3x3 matrix", and ``D65_WHITE`` is the reference white
[Xr, Yr, Zr].
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SRGB_TO_XYZ",
    "XYZ_TO_SRGB",
    "D65_WHITE",
    "GAMMA_THRESHOLD",
    "LAB_EPSILON",
    "LAB_KAPPA",
]

#: sRGB (linear) -> XYZ matrix, D65 white point. Equation 2's M.
SRGB_TO_XYZ = np.array(
    [
        [0.4124564, 0.3575761, 0.1804375],
        [0.2126729, 0.7151522, 0.0721750],
        [0.0193339, 0.1191920, 0.9503041],
    ],
    dtype=np.float64,
)

#: Inverse matrix, used by the synthetic dataset generator and round-trips.
XYZ_TO_SRGB = np.linalg.inv(SRGB_TO_XYZ)

#: Reference white [Xr, Yr, Zr] for D65 (Y normalized to 1).
D65_WHITE = np.array([0.95047, 1.00000, 1.08883], dtype=np.float64)

#: Equation 1's linear-segment threshold for the sRGB inverse gamma.
GAMMA_THRESHOLD = 0.04045

#: Equation 4's cube-root domain threshold (CIE epsilon), 0.008856.
LAB_EPSILON = 0.008856

#: Slope constant of Equation 4's linear branch: 903.3 (CIE kappa).
LAB_KAPPA = 903.3
