"""Integer (hardware) RGB -> CIELAB conversion pipeline.

This module models the accelerator's Color Conversion Unit bit-by-bit:

1. a 256-entry LUT replaces the Equation 1 power function (exact for 8-bit
   inputs up to the internal quantization),
2. an integer 3x3 matrix multiply computes W/Wr directly (the 1/white
   normalization is folded into the matrix coefficients, as hardware would),
3. an 8-segment piecewise-linear LUT replaces Equation 4's cube root,
4. integer scale-and-offset encodes L, a, b into ``bits``-wide channel codes
   destined for the three channel scratchpad memories.

The output codes are what the Cluster Update Unit's distance calculators
consume; :class:`LabEncoding` defines their meaning so quality metrics can
decode them back to real Lab values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, ImageError
from ..fixedpoint import QFormat
from ..types import as_uint8_rgb
from .constants import D65_WHITE, SRGB_TO_XYZ
from .lut import PiecewiseLinearLut, build_cbrt_pwl, build_gamma_lut

__all__ = [
    "LabEncoding",
    "HwColorConverter",
    "convert_codes_reference",
    "lab_from_codes_reference",
]


@dataclass(frozen=True)
class LabEncoding:
    """How L, a, b are packed into ``bits``-wide unsigned channel codes.

    * a and b in [-128, 128) map offset-binary: for ``bits == 8`` this is
      exactly ``code = value + 128``, the natural hardware choice; narrower
      widths scale down proportionally.
    * L in [0, 100]: with ``uniform=True`` (default) L uses the *same*
      codes-per-unit scale as a/b, so code-domain distances weight the
      three channels like the reference Equation 5 (at 8 bits, codes are
      literally integer Lab values). With ``uniform=False`` L stretches
      over the full code range for maximum luma resolution, at the cost of
      an implicit ~6.5x L weight in code-domain distances.
    """

    bits: int = 8
    uniform: bool = True

    def __post_init__(self) -> None:
        if not (2 <= self.bits <= 16):
            raise ConfigurationError(f"Lab encoding bits must be in [2,16], got {self.bits}")

    @property
    def code_max(self) -> int:
        return (1 << self.bits) - 1

    @property
    def l_scale(self) -> float:
        """Codes per unit L."""
        if self.uniform:
            return self.ab_scale
        return self.code_max / 100.0

    @property
    def ab_scale(self) -> float:
        """Codes per unit a/b."""
        return (1 << self.bits) / 256.0

    @property
    def ab_offset(self) -> int:
        return 1 << (self.bits - 1)

    def encode(self, lab: np.ndarray) -> np.ndarray:
        """Real Lab (..., 3) -> integer channel codes (..., 3), clipped."""
        lab = np.asarray(lab, dtype=np.float64)
        if lab.shape[-1] != 3:
            raise ImageError(f"expected (..., 3) Lab array, got {lab.shape}")
        codes = np.empty(lab.shape, dtype=np.int64)
        codes[..., 0] = np.rint(lab[..., 0] * self.l_scale)
        codes[..., 1] = np.rint(lab[..., 1] * self.ab_scale) + self.ab_offset
        codes[..., 2] = np.rint(lab[..., 2] * self.ab_scale) + self.ab_offset
        return np.clip(codes, 0, self.code_max)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Integer channel codes (..., 3) -> real Lab (..., 3)."""
        codes = np.asarray(codes, dtype=np.float64)
        lab = np.empty(codes.shape, dtype=np.float64)
        lab[..., 0] = codes[..., 0] / self.l_scale
        lab[..., 1] = (codes[..., 1] - self.ab_offset) / self.ab_scale
        lab[..., 2] = (codes[..., 2] - self.ab_offset) / self.ab_scale
        return lab


class HwColorConverter:
    """The LUT-based integer color conversion pipeline.

    Parameters
    ----------
    encoding:
        Output :class:`LabEncoding` (defaults to the paper's 8-bit codes).
    gamma_frac_bits:
        Fraction bits of the 256-entry gamma LUT entries (internal
        precision of the linear-light values). 12 by default.
    pwl:
        The Equation 4 piecewise-linear LUT; defaults to the 8-segment
        :func:`~repro.color.lut.build_cbrt_pwl`.
    """

    def __init__(
        self,
        encoding: LabEncoding = None,
        gamma_frac_bits: int = 12,
        pwl: PiecewiseLinearLut = None,
    ):
        self.encoding = encoding if encoding is not None else LabEncoding(8)
        self.gamma_frac_bits = gamma_frac_bits
        self.gamma_lut = build_gamma_lut(gamma_frac_bits)
        self.pwl = pwl if pwl is not None else build_cbrt_pwl()
        # Fold the white-point normalization into the matrix: rows of M
        # divided by [Xr, Yr, Zr] give W/Wr directly from linear RGB.
        folded = SRGB_TO_XYZ / D65_WHITE[:, None]
        self._matrix_fmt = QFormat(16, 14, signed=True)
        self.matrix_raw = self._matrix_fmt.to_raw(folded)

    # ------------------------------------------------------------------
    def convert_codes(self, rgb: np.ndarray, backend: str | None = None) -> np.ndarray:
        """uint8 RGB image -> integer Lab channel codes (H, W, 3), int64.

        Every step is integer arithmetic mirroring the fixed-point
        datapath. ``backend`` selects the :mod:`repro.kernels`
        implementation (``None``/"auto" picks the best available); all
        backends are bit-identical to :func:`convert_codes_reference`.
        """
        from ..kernels import get_backend  # local import: kernels ↔ color

        rgb = as_uint8_rgb(rgb)
        return get_backend(backend).lab_codes(self, rgb)

    def convert_fused(
        self, rgb: np.ndarray, backend: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """uint8 RGB image -> ``(lab, codes)`` in one backend traversal.

        The fused form of ``decode(convert_codes(rgb))`` plus the codes
        themselves; native backends produce both outputs in a single pass
        over the pixels. Bit-identical to the two-step sequence on every
        backend.
        """
        from ..kernels import get_backend  # local import: kernels ↔ color

        rgb = as_uint8_rgb(rgb)
        return get_backend(backend).lab_from_codes(self, rgb)

    def convert(self, rgb: np.ndarray) -> np.ndarray:
        """uint8 RGB image -> real Lab values *as the hardware sees them*.

        Convenience wrapper: convert to codes, decode through the encoding.
        The result differs from the float64 reference by the LUT and
        quantization error — exactly the error the bit-width exploration of
        Section 6.1 studies.
        """
        return self.encoding.decode(self.convert_codes(rgb))


def convert_codes_reference(converter: HwColorConverter, rgb: np.ndarray) -> np.ndarray:
    """The scalar-semantics reference pipeline for :meth:`convert_codes`.

    uint8 RGB image -> integer Lab channel codes (H, W, 3), int64. Every
    step is integer arithmetic on numpy int64 arrays; the vectorized and
    native kernel backends must reproduce this bit for bit.
    """
    rgb = as_uint8_rgb(rgb)
    # Step 1: gamma LUT. linear codes have gamma_frac_bits fraction.
    linear = converter.gamma_lut[rgb.astype(np.intp)]  # (H, W, 3) int64
    # Step 2: integer matrix multiply -> W/Wr codes.
    # product fraction = gamma_frac + matrix_frac.
    t_wide = np.einsum("hwc,kc->hwk", linear, converter.matrix_raw, dtype=np.int64)
    prod_frac = converter.gamma_frac_bits + converter._matrix_fmt.frac_bits
    # Round to the PWL input format.
    shift = prod_frac - converter.pwl.in_fmt.frac_bits
    half = np.int64(1) << (shift - 1)
    t_raw = (t_wide + half) >> shift
    t_raw = converter.pwl.in_fmt.saturate_raw(np.maximum(t_raw, 0))
    # Step 3: PWL cube root.
    f_raw = converter.pwl.eval_raw(t_raw)  # frac = out_fmt.frac_bits
    fx = f_raw[..., 0]
    fy = f_raw[..., 1]
    fz = f_raw[..., 2]
    f_frac = converter.pwl.out_fmt.frac_bits
    one = np.int64(1) << f_frac
    # Step 4: Equation 3 with integer constants, then encode.
    l_raw = 116 * fy - 16 * one  # frac = f_frac, range [0, 100]
    a_raw = 500 * (fx - fy)
    b_raw = 200 * (fy - fz)
    enc = converter.encoding
    codes = np.empty(rgb.shape, dtype=np.int64)
    codes[..., 0] = _scale_round(l_raw, enc.l_scale, f_frac)
    codes[..., 1] = _scale_round(a_raw, enc.ab_scale, f_frac) + enc.ab_offset
    codes[..., 2] = _scale_round(b_raw, enc.ab_scale, f_frac) + enc.ab_offset
    return np.clip(codes, 0, enc.code_max)


def lab_from_codes_reference(
    converter: HwColorConverter, rgb: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Canonical fused conversion: ``(decoded lab, codes)``.

    The reference simply composes :func:`convert_codes_reference` with
    :meth:`LabEncoding.decode`; optimized backends fuse the decode into
    the conversion traversal and must match both arrays bit for bit.
    """
    codes = convert_codes_reference(converter, rgb)
    return converter.encoding.decode(codes), codes


def _scale_round(raw: np.ndarray, scale: float, frac_bits: int) -> np.ndarray:
    """Multiply raw fixed-point codes by a real scale and round to integer.

    Hardware implements this as one constant multiplier and a rounding
    shift; we model it with a quantized scale constant (14 fraction bits).
    """
    scale_raw = np.int64(round(scale * (1 << 14)))
    wide = raw * scale_raw
    shift = frac_bits + 14
    half = np.int64(1) << (shift - 1)
    return np.where(wide >= 0, (wide + half) >> shift, -((-wide + half) >> shift))
