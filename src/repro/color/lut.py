"""Look-up-table primitives for the hardware color-conversion unit.

Section 6.1 of the paper: "We adopt a 256-entry LUT for the power function
used in the 8-bit RGB to XYZ conversion (Equation 1), and an 8 component
piecewise linear LUT approximation of the power function used in the XYZ to
LAB conversion (Equation 4)."

Two structures implement that:

* :func:`build_gamma_lut` — a direct 256-entry table from 8-bit sRGB code to
  the linear-light value, quantized to an internal fixed-point precision.
  A direct table is exact for an 8-bit input, which is why the hardware can
  afford it.
* :class:`PiecewiseLinearLut` — a generic N-segment piecewise-linear
  approximation of a scalar function, with fixed-point slopes/intercepts.
  Equation 4's input (W/Wr) is not 8-bit — it is an intermediate with more
  precision — so a direct table would be large; 8 linear segments suffice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..fixedpoint import QFormat
from .constants import LAB_EPSILON, LAB_KAPPA
from .reference import srgb_gamma_expand

__all__ = [
    "build_gamma_lut",
    "PiecewiseLinearLut",
    "build_cbrt_pwl",
    "DEFAULT_CBRT_BREAKPOINTS",
    "CACHE_STATS",
    "reset_lut_caches",
]

#: Per-process LUT construction caches. Tables are pure functions of
#: their fixed-point configuration, so every HwColorConverter with the
#: same config shares one (read-only) table instead of re-fitting per
#: frame. ``CACHE_STATS`` feeds the ``color.lut_cache_hits`` telemetry
#: counter the engine emits.
_GAMMA_CACHE: dict = {}
_PWL_CACHE: dict = {}
CACHE_STATS = {"hits": 0, "misses": 0}


def reset_lut_caches() -> None:
    """Drop memoized LUTs and zero the stats (test isolation hook)."""
    _GAMMA_CACHE.clear()
    _PWL_CACHE.clear()
    CACHE_STATS["hits"] = 0
    CACHE_STATS["misses"] = 0


def build_gamma_lut(frac_bits: int = 12) -> np.ndarray:
    """Build the 256-entry inverse-gamma LUT (memoized per process).

    Maps each 8-bit sRGB code (0..255) to the Equation 1 linear-light value
    quantized to an unsigned fixed-point code with ``frac_bits`` fraction
    bits. Returned as a read-only int64 array of length 256 with values in
    ``[0, 2**frac_bits]``; repeat calls with the same ``frac_bits`` share
    one table.
    """
    if not (1 <= frac_bits <= 30):
        raise ConfigurationError(f"gamma LUT frac_bits must be in [1,30], got {frac_bits}")
    cached = _GAMMA_CACHE.get(frac_bits)
    if cached is not None:
        CACHE_STATS["hits"] += 1
        return cached
    CACHE_STATS["misses"] += 1
    codes = np.arange(256, dtype=np.float64) / 255.0
    linear = srgb_gamma_expand(codes)
    scale = float(1 << frac_bits)
    lut = np.rint(linear * scale).astype(np.int64)
    lut.flags.writeable = False  # shared across converters
    _GAMMA_CACHE[frac_bits] = lut
    return lut


@dataclass(frozen=True)
class PiecewiseLinearLut:
    """An N-segment piecewise-linear approximation ``y ~= a_i * x + b_i``.

    Segment boundaries, slopes, and intercepts are stored as fixed-point
    codes, modeling the small ROM + multiplier the hardware uses. Evaluation
    is vectorized: a searchsorted picks the segment, then one multiply and
    one add produce the output — exactly the datapath the accelerator
    implements.

    Attributes
    ----------
    breakpoints:
        Segment boundaries as real values, length ``n_segments + 1``,
        strictly increasing. Inputs outside the range clamp to the first or
        last segment.
    slopes_raw, intercepts_raw:
        Per-segment coefficients as raw fixed-point codes in ``coeff_fmt``.
    in_fmt, out_fmt, coeff_fmt:
        Q-formats of the input codes, output codes, and coefficients.
    """

    breakpoints: np.ndarray
    slopes_raw: np.ndarray
    intercepts_raw: np.ndarray
    in_fmt: QFormat
    out_fmt: QFormat
    coeff_fmt: QFormat
    #: Raw-code breakpoints (in in_fmt), derived once for fast evaluation.
    breaks_raw: np.ndarray = field(repr=False, default=None)

    @property
    def n_segments(self) -> int:
        return len(self.slopes_raw)

    @classmethod
    def fit(
        cls,
        fn,
        breakpoints,
        in_fmt: QFormat,
        out_fmt: QFormat,
        coeff_fmt: QFormat = None,
    ) -> "PiecewiseLinearLut":
        """Fit a PWL LUT to scalar function ``fn`` over ``breakpoints``.

        Each segment interpolates ``fn`` between consecutive breakpoints
        (endpoint interpolation — what a designer tabulates by hand). The
        coefficients are then quantized to ``coeff_fmt`` (default: 16-bit
        with 12 fraction bits, a typical ROM word).
        """
        bp = np.asarray(breakpoints, dtype=np.float64)
        if bp.ndim != 1 or len(bp) < 2:
            raise ConfigurationError("need at least two breakpoints")
        if np.any(np.diff(bp) <= 0):
            raise ConfigurationError("breakpoints must be strictly increasing")
        if coeff_fmt is None:
            coeff_fmt = QFormat(16, 12, signed=True)
        x0, x1 = bp[:-1], bp[1:]
        y0 = np.asarray([fn(x) for x in x0], dtype=np.float64)
        y1 = np.asarray([fn(x) for x in x1], dtype=np.float64)
        slopes = (y1 - y0) / (x1 - x0)
        intercepts = y0 - slopes * x0
        return cls(
            breakpoints=bp,
            slopes_raw=coeff_fmt.to_raw(slopes),
            intercepts_raw=coeff_fmt.to_raw(intercepts),
            in_fmt=in_fmt,
            out_fmt=out_fmt,
            coeff_fmt=coeff_fmt,
            breaks_raw=in_fmt.to_raw(bp),
        )

    def eval_raw(self, x_raw) -> np.ndarray:
        """Evaluate on raw input codes, returning raw output codes.

        Models the hardware: segment select (comparators), one multiply,
        one add, one rounding shift, saturation to the output format.
        """
        x_raw = np.asarray(x_raw, dtype=np.int64)
        # Segment index: count of interior breakpoints <= x, clamped.
        seg = np.searchsorted(self.breaks_raw[1:-1], x_raw, side="right")
        seg = np.clip(seg, 0, self.n_segments - 1)
        a = self.slopes_raw[seg]
        b = self.intercepts_raw[seg]
        # y = a*x + b with a,b in coeff_fmt, x in in_fmt.
        # Product fraction bits: coeff.frac + in.frac; intercept aligned up.
        prod = a * x_raw
        prod_frac = self.coeff_fmt.frac_bits + self.in_fmt.frac_bits
        b_aligned = b << (prod_frac - self.coeff_fmt.frac_bits)
        y_wide = prod + b_aligned
        # Round to out_fmt.
        shift = prod_frac - self.out_fmt.frac_bits
        if shift > 0:
            half = np.int64(1) << (shift - 1)
            y = np.where(y_wide >= 0, (y_wide + half) >> shift, -((-y_wide + half) >> shift))
        else:
            y = y_wide << (-shift)
        return self.out_fmt.saturate_raw(y)

    def eval_float(self, x) -> np.ndarray:
        """Evaluate on real inputs, returning real outputs (for testing)."""
        x_raw = self.in_fmt.to_raw(x)
        return self.out_fmt.from_raw(self.eval_raw(x_raw))

    def max_abs_error(self, fn, n_samples: int = 4096) -> float:
        """Worst-case |LUT - fn| over the breakpoint range (for validation)."""
        xs = np.linspace(self.breakpoints[0], self.breakpoints[-1], n_samples)
        approx = self.eval_float(xs)
        exact = np.asarray([fn(x) for x in xs])
        return float(np.max(np.abs(approx - exact)))


#: Default 8-segment breakpoints for Equation 4's f() over W/Wr in [0, 1.1].
#: Denser near zero where the cube root is steep; the first knot sits at the
#: CIE epsilon so the linear branch is represented exactly by one segment.
DEFAULT_CBRT_BREAKPOINTS = (
    0.0,
    LAB_EPSILON,  # end of the exact linear branch
    0.030,
    0.074,
    0.155,
    0.300,
    0.520,
    0.800,
    1.100,
)


def _f_scalar(t: float) -> float:
    """Equation 4's f() on a scalar (shared with the reference path)."""
    if t > LAB_EPSILON:
        return float(t) ** (1.0 / 3.0)
    return (LAB_KAPPA * float(t) + 16.0) / 116.0


def build_cbrt_pwl(
    in_fmt: QFormat = None,
    out_fmt: QFormat = None,
    breakpoints=DEFAULT_CBRT_BREAKPOINTS,
) -> PiecewiseLinearLut:
    """Build the paper's 8-segment PWL LUT for Equation 4's f().

    Defaults model the accelerator's internal precision: 16-bit input codes
    with 12 fraction bits (covering W/Wr up to ~8, far beyond the needed
    1.1) and 16-bit output codes with 14 fraction bits (f() is in [0.1379,
    1.04]). Memoized per process: the fit is a pure function of the
    formats and breakpoints, and the LUT is immutable, so converters
    sharing a configuration share one instance.
    """
    if in_fmt is None:
        in_fmt = QFormat(16, 12, signed=False)
    if out_fmt is None:
        out_fmt = QFormat(16, 14, signed=False)
    key = (in_fmt, out_fmt, tuple(float(b) for b in breakpoints))
    cached = _PWL_CACHE.get(key)
    if cached is not None:
        CACHE_STATS["hits"] += 1
        return cached
    CACHE_STATS["misses"] += 1
    pwl = PiecewiseLinearLut.fit(_f_scalar, breakpoints, in_fmt, out_fmt)
    for arr in (pwl.slopes_raw, pwl.intercepts_raw, pwl.breaks_raw):
        arr.flags.writeable = False  # shared across converters
    _PWL_CACHE[key] = pwl
    return pwl
