"""Color-space substrate: reference CIELAB and the LUT hardware pipeline.

Two conversion paths are provided:

* :func:`rgb_to_lab` / :func:`lab_to_rgb` — the float64 reference
  implementation of the paper's Equations 1-4 (what the software SLIC
  baseline uses).
* :class:`HwColorConverter` — the integer, LUT-based pipeline of the
  accelerator's Color Conversion Unit (256-entry gamma LUT + 8-segment
  piecewise-linear cube root), producing ``bits``-wide Lab channel codes.
"""

from .constants import D65_WHITE, SRGB_TO_XYZ, XYZ_TO_SRGB
from .reference import (
    lab_to_rgb,
    lab_to_xyz,
    linear_rgb_to_xyz,
    rgb_to_lab,
    srgb_gamma_compress,
    srgb_gamma_expand,
    xyz_to_lab,
    xyz_to_linear_rgb,
)
from .lut import (
    DEFAULT_CBRT_BREAKPOINTS,
    PiecewiseLinearLut,
    build_cbrt_pwl,
    build_gamma_lut,
)
from .hw_convert import HwColorConverter, LabEncoding

__all__ = [
    "D65_WHITE",
    "SRGB_TO_XYZ",
    "XYZ_TO_SRGB",
    "rgb_to_lab",
    "lab_to_rgb",
    "xyz_to_lab",
    "lab_to_xyz",
    "linear_rgb_to_xyz",
    "xyz_to_linear_rgb",
    "srgb_gamma_expand",
    "srgb_gamma_compress",
    "PiecewiseLinearLut",
    "build_gamma_lut",
    "build_cbrt_pwl",
    "DEFAULT_CBRT_BREAKPOINTS",
    "HwColorConverter",
    "LabEncoding",
]
