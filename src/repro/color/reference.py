"""Reference (float64) sRGB <-> CIELAB conversion, Equations 1-4 of the paper.

This is the "golden" software path: SLIC and S-SLIC run on top of it in
float mode, and the LUT-based hardware conversion in
:mod:`repro.color.hw_convert` is validated against it.

The forward chain is:

1. inverse sRGB gamma (Equation 1)::

       x' = x / 12.92                      if x <= 0.04045
       x' = ((x + 0.055) / 1.055) ** 2.4   otherwise

   (The paper's text prints the offset as 0.05; 0.055 is the sRGB standard
   and what every SLIC implementation, including the authors' baseline,
   uses. We follow the standard.)

2. linear RGB -> XYZ via the 3x3 matrix M (Equation 2).

3. XYZ -> LAB via the cube-root / linear-branch function f (Equations 3-4).
"""

from __future__ import annotations

import numpy as np

from ..types import as_float_rgb, validate_rgb_image
from .constants import (
    D65_WHITE,
    GAMMA_THRESHOLD,
    LAB_EPSILON,
    LAB_KAPPA,
    SRGB_TO_XYZ,
    XYZ_TO_SRGB,
)

__all__ = [
    "srgb_gamma_expand",
    "srgb_gamma_compress",
    "linear_rgb_to_xyz",
    "xyz_to_linear_rgb",
    "xyz_to_lab",
    "lab_to_xyz",
    "rgb_to_lab",
    "lab_to_rgb",
]


def srgb_gamma_expand(rgb: np.ndarray) -> np.ndarray:
    """Equation 1: sRGB [0,1] -> linear-light RGB [0,1].

    The power branch is evaluated full-size and the (rare) linear branch
    patched in by mask — elementwise identical to the two-branch select,
    without materializing both branches for every pixel.
    """
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim == 0:
        return np.where(
            rgb <= GAMMA_THRESHOLD, rgb / 12.92, ((rgb + 0.055) / 1.055) ** 2.4
        )
    linear = ((rgb + 0.055) / 1.055) ** 2.4
    low = rgb <= GAMMA_THRESHOLD
    if low.any():
        linear[low] = rgb[low] / 12.92
    return linear


def srgb_gamma_compress(linear: np.ndarray) -> np.ndarray:
    """Inverse of Equation 1: linear-light RGB -> sRGB [0,1]."""
    linear = np.clip(np.asarray(linear, dtype=np.float64), 0.0, 1.0)
    if linear.ndim == 0:
        return np.where(
            linear <= GAMMA_THRESHOLD / 12.92,
            linear * 12.92,
            1.055 * linear ** (1.0 / 2.4) - 0.055,
        )
    out = 1.055 * linear ** (1.0 / 2.4) - 0.055
    low = linear <= GAMMA_THRESHOLD / 12.92
    if low.any():
        out[low] = linear[low] * 12.92
    return out


def linear_rgb_to_xyz(linear: np.ndarray) -> np.ndarray:
    """Equation 2: linear RGB -> XYZ. Works on any (..., 3) array."""
    linear = np.asarray(linear, dtype=np.float64)
    return linear @ SRGB_TO_XYZ.T


def xyz_to_linear_rgb(xyz: np.ndarray) -> np.ndarray:
    """Inverse of Equation 2."""
    xyz = np.asarray(xyz, dtype=np.float64)
    return xyz @ XYZ_TO_SRGB.T


def _f(w_over_wr: np.ndarray) -> np.ndarray:
    """Equation 4's f(): cube root with a linear branch near zero."""
    t = np.asarray(w_over_wr, dtype=np.float64)
    if t.ndim == 0:
        return np.where(
            t > LAB_EPSILON, np.cbrt(t), (LAB_KAPPA * t + 16.0) / 116.0
        )
    out = np.cbrt(t)
    small = ~(t > LAB_EPSILON)
    if small.any():
        ts = t[small]
        out[small] = (LAB_KAPPA * ts + 16.0) / 116.0
    return out


def _f_inv(f: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_f`."""
    f = np.asarray(f, dtype=np.float64)
    if f.ndim == 0:
        cubed = f ** 3
        return np.where(
            cubed > LAB_EPSILON, cubed, (116.0 * f - 16.0) / LAB_KAPPA
        )
    out = f ** 3
    small = ~(out > LAB_EPSILON)
    if small.any():
        out[small] = (116.0 * f[small] - 16.0) / LAB_KAPPA
    return out


def xyz_to_lab(xyz: np.ndarray, white: np.ndarray = D65_WHITE) -> np.ndarray:
    """Equations 3-4: XYZ -> CIELAB relative to ``white``."""
    xyz = np.asarray(xyz, dtype=np.float64)
    fxyz = _f(xyz / white)
    fx, fy, fz = fxyz[..., 0], fxyz[..., 1], fxyz[..., 2]
    lab = np.empty_like(xyz)
    lab[..., 0] = 116.0 * fy - 16.0
    lab[..., 1] = 500.0 * (fx - fy)
    lab[..., 2] = 200.0 * (fy - fz)
    return lab


def lab_to_xyz(lab: np.ndarray, white: np.ndarray = D65_WHITE) -> np.ndarray:
    """Inverse of :func:`xyz_to_lab`."""
    lab = np.asarray(lab, dtype=np.float64)
    fy = (lab[..., 0] + 16.0) / 116.0
    fxyz = np.empty_like(lab)
    fxyz[..., 0] = fy + lab[..., 1] / 500.0
    fxyz[..., 1] = fy
    fxyz[..., 2] = fy - lab[..., 2] / 200.0
    return _f_inv(fxyz) * white


_GAMMA_LUT_U8 = None


def _gamma_lut_u8() -> np.ndarray:
    """256-entry table of ``srgb_gamma_expand(v / 255.0)`` for uint8 v.

    Gamma expansion is elementwise, so gathering from this table is
    bit-identical to ``srgb_gamma_expand(as_float_rgb(rgb))`` on uint8
    input — each entry is the literal float64 the full-image expression
    would compute for that code value.
    """
    global _GAMMA_LUT_U8
    if _GAMMA_LUT_U8 is None:
        _GAMMA_LUT_U8 = srgb_gamma_expand(
            np.arange(256, dtype=np.float64) / 255.0
        )
    return _GAMMA_LUT_U8


def rgb_to_lab(rgb: np.ndarray) -> np.ndarray:
    """Full reference pipeline: sRGB image (uint8 or float [0,1]) -> CIELAB.

    This is the color-conversion step at the top of both SLIC flowcharts
    (Figure 1). Returns float64 with L in [0, 100].

    uint8 input takes a gamma-LUT gather instead of evaluating the power
    function per pixel; the downstream matrix multiply and Lab transform
    run on the same full-shape float64 array either way, so the result
    is bit-identical to the float path fed ``as_float_rgb(rgb)``.
    """
    rgb_arr = validate_rgb_image(rgb)
    if rgb_arr.dtype == np.uint8:
        linear = _gamma_lut_u8()[rgb_arr]
    else:
        linear = srgb_gamma_expand(as_float_rgb(rgb_arr))
    return xyz_to_lab(linear_rgb_to_xyz(linear))


def lab_to_rgb(lab: np.ndarray) -> np.ndarray:
    """Inverse pipeline: CIELAB -> sRGB float image clipped to [0, 1]."""
    linear = xyz_to_linear_rgb(lab_to_xyz(np.asarray(lab, dtype=np.float64)))
    return np.clip(srgb_gamma_compress(np.clip(linear, 0.0, 1.0)), 0.0, 1.0)
