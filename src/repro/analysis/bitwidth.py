"""Bit-width design space exploration — the Section 6.1 experiment.

"We performed an analysis of the error in the output given various data
sizes and types [...]. At 8-bit fixed point representation we see only
0.003 larger undersegmentation error, and only 0.001 smaller boundary
recall, compared to the 64-bit double-precision S-SLIC implementation.
[...] At 7-bit precision and below, the increase in error begins to be
noticeable."

:func:`run_bitwidth_sweep` reruns S-SLIC with the full quantized pipeline
(LUT color conversion + fixed-point distance datapath, both at width ``w``)
over a corpus, reporting USE and boundary recall deltas versus the float64
reference at each width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import SlicParams, sslic
from ..core.distance import FixedDatapath
from ..data import SyntheticDataset
from ..errors import ConfigurationError
from ..metrics import boundary_recall, undersegmentation_error

__all__ = ["BitwidthPoint", "run_bitwidth_sweep", "DEFAULT_WIDTHS"]

#: Widths the sweep covers by default (the paper explores down to where
#: error "begins to be noticeable", below 7 bits).
DEFAULT_WIDTHS = (4, 5, 6, 7, 8, 10, 12)


@dataclass(frozen=True)
class BitwidthPoint:
    """Mean quality at one datapath width (or the float reference)."""

    label: str
    bits: int  # 0 for the float64 reference
    use: float
    recall: float
    delta_use: float
    delta_recall: float


def run_bitwidth_sweep(
    dataset: SyntheticDataset,
    n_superpixels: int,
    widths=DEFAULT_WIDTHS,
    iterations: int = 6,
    subsample_ratio: float = 0.5,
    compactness: float = 10.0,
    quantize_distance: bool = True,
) -> list:
    """Quality versus datapath width over ``dataset``.

    Returns a list of :class:`BitwidthPoint`, the float64 reference first
    (deltas are relative to it: positive ``delta_use`` = worse, positive
    ``delta_recall`` = worse, matching the paper's phrasing "larger USE /
    smaller boundary recall").
    """
    widths = list(widths)
    if not widths:
        raise ConfigurationError("widths must be non-empty")
    scenes = list(dataset)
    base = SlicParams(
        n_superpixels=n_superpixels,
        compactness=compactness,
        max_iterations=iterations,
        convergence_threshold=0.0,
        subsample_ratio=subsample_ratio,
    )

    def mean_quality(params):
        uses, recalls = [], []
        for scene in scenes:
            result = sslic(scene.image, params)
            uses.append(undersegmentation_error(result.labels, scene.gt_labels))
            recalls.append(
                boundary_recall(result.labels, scene.gt_labels, tolerance=1)
            )
        return float(np.mean(uses)), float(np.mean(recalls))

    ref_use, ref_recall = mean_quality(base)
    points = [
        BitwidthPoint(
            label="float64", bits=0, use=ref_use, recall=ref_recall,
            delta_use=0.0, delta_recall=0.0,
        )
    ]
    for bits in widths:
        dp = FixedDatapath(bits=bits, quantize_distance=quantize_distance)
        use, recall = mean_quality(base.with_(datapath=dp))
        points.append(
            BitwidthPoint(
                label=f"{bits}-bit fixed",
                bits=bits,
                use=use,
                recall=recall,
                delta_use=use - ref_use,
                delta_recall=ref_recall - recall,
            )
        )
    return points
