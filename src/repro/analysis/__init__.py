"""Analysis and design-space-exploration drivers for every experiment."""

from .tables import format_value, render_table
from .tradeoff import (
    TradeoffCurve,
    TradeoffPoint,
    default_variants,
    run_tradeoff,
    time_saving_at_quality,
)
from .breakdown import TABLE1_COLUMNS, breakdown_for_image, phase_breakdown
from .bitwidth import BitwidthPoint, DEFAULT_WIDTHS, run_bitwidth_sweep
from .dse import (
    sweep_buffer_sizes,
    sweep_cluster_configs,
    sweep_cores,
    sweep_datapath_widths,
    sweep_resolutions,
)
from .pareto import best_real_time_design, joint_design_space, pareto_frontier
from .report import ARTIFACT_ORDER, generate_report
from .experiments import EXPERIMENTS, ExperimentResult, eval_dataset, run_experiment

__all__ = [
    "render_table",
    "format_value",
    "TradeoffPoint",
    "TradeoffCurve",
    "run_tradeoff",
    "default_variants",
    "time_saving_at_quality",
    "TABLE1_COLUMNS",
    "phase_breakdown",
    "breakdown_for_image",
    "BitwidthPoint",
    "DEFAULT_WIDTHS",
    "run_bitwidth_sweep",
    "sweep_cluster_configs",
    "sweep_buffer_sizes",
    "sweep_resolutions",
    "sweep_datapath_widths",
    "sweep_cores",
    "joint_design_space",
    "pareto_frontier",
    "best_real_time_design",
    "generate_report",
    "ARTIFACT_ORDER",
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "eval_dataset",
]
