"""Runtime phase breakdown — the Table 1 experiment.

Table 1 reports what fraction of SLIC's and S-SLIC's CPU runtime goes to
color conversion, distance + minimum, center update, and everything else.
The engine's :class:`~repro.core.profiles.PhaseTimer` buckets map directly
onto those columns; "Other" absorbs initialization and the connectivity
enforcement ("The remaining execution includes the connectivity
enforcement, and some initialization tasks", Section 4.1).
"""

from __future__ import annotations

import numpy as np

from ..core import SlicParams, slic, sslic
from ..errors import ConfigurationError

__all__ = ["TABLE1_COLUMNS", "phase_breakdown", "breakdown_for_image"]

#: Table 1 column names in paper order.
TABLE1_COLUMNS = ("color_conversion", "distance_min", "center_update", "other")


def phase_breakdown(timings: dict) -> dict:
    """Collapse engine timing buckets into Table 1's four columns.

    Returns percentages summing to 100.
    """
    if not timings:
        raise ConfigurationError("empty timings dict")
    color = timings.get("color_conversion", 0.0)
    dist = timings.get("distance_min", 0.0)
    center = timings.get("center_update", 0.0)
    known = {"color_conversion", "distance_min", "center_update"}
    other = sum(v for k, v in timings.items() if k not in known)
    total = color + dist + center + other
    if total <= 0:
        raise ConfigurationError("timings sum to zero")
    return {
        "color_conversion": 100.0 * color / total,
        "distance_min": 100.0 * dist / total,
        "center_update": 100.0 * center / total,
        "other": 100.0 * other / total,
    }


def breakdown_for_image(
    image: np.ndarray,
    n_superpixels: int,
    iterations: int = 10,
    subsample_ratio: float = 0.5,
    compactness: float = 10.0,
) -> dict:
    """Run both algorithms on ``image`` and return their Table 1 rows.

    Returns ``{"SLIC": {col: pct}, "S-SLIC": {col: pct}}``.
    """
    base = SlicParams(
        n_superpixels=n_superpixels,
        compactness=compactness,
        max_iterations=iterations,
        convergence_threshold=0.0,
        # Table 1 profiles the paper's software loops; the optimized
        # kernel backends would shrink distance_min and distort the row.
        kernel_backend="reference",
    )
    r_slic = slic(image, base)
    r_sslic = sslic(image, base.with_(subsample_ratio=subsample_ratio,
                                      architecture="ppa"))
    return {
        "SLIC": phase_breakdown(r_slic.timings),
        "S-SLIC": phase_breakdown(r_sslic.timings),
    }
