"""Fixed-width text table rendering for benchmark output.

Benches print "the same rows the paper reports" — this renderer keeps that
output aligned and diff-friendly without any dependency.
"""

from __future__ import annotations

__all__ = ["render_table", "format_value"]


def format_value(value, precision: int = 3) -> str:
    """Human-format one cell: floats trimmed, ints plain, None as '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 10 ** (-precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(headers, rows, title: str = "", precision: int = 3) -> str:
    """Render ``rows`` (iterables of cells) under ``headers`` as text.

    Column widths adapt to content; numeric cells are right-aligned.
    """
    headers = [str(h) for h in headers]
    formatted = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    n_cols = len(headers)
    for row in formatted:
        if len(row) != n_cols:
            raise ValueError(
                f"row has {len(row)} cells, expected {n_cols}: {row}"
            )
    widths = [
        max(len(headers[c]), max((len(r[c]) for r in formatted), default=0))
        for c in range(n_cols)
    ]
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(
        "|" + "|".join(f" {headers[c]:<{widths[c]}} " for c in range(n_cols)) + "|"
    )
    lines.append(sep)
    for row in formatted:
        lines.append(
            "|" + "|".join(f" {row[c]:>{widths[c]}} " for c in range(n_cols)) + "|"
        )
    lines.append(sep)
    return "\n".join(lines)
