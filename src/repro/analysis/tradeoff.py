"""Quality-versus-runtime trade-off curves — the Figure 2 experiment.

For each algorithm variant (SLIC, S-SLIC at one or more subsample ratios)
and each iteration budget, run the segmentation over a corpus and record
mean wall-clock time together with mean undersegmentation error and
boundary recall. The paper's headline claims are read off these curves:

* "S-SLIC achieves the same USE of SLIC in a 25% shorter time" (Fig 2a);
* "for the same boundary recall, S-SLIC (0.5) has a 15% shorter execution
  time than SLIC" (Fig 2b).

:func:`time_saving_at_quality` computes exactly those crossover numbers
from the measured curves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core import SlicParams, slic, sslic
from ..data import SyntheticDataset
from ..errors import ConfigurationError
from ..metrics import boundary_recall, undersegmentation_error

__all__ = [
    "TradeoffPoint",
    "TradeoffCurve",
    "run_tradeoff",
    "default_variants",
    "time_saving_at_quality",
]


@dataclass(frozen=True)
class TradeoffPoint:
    """One (iteration budget) point of a quality/runtime curve."""

    subiterations: int
    sweeps: int
    time_ms: float
    use: float
    recall: float


@dataclass
class TradeoffCurve:
    """A named series of trade-off points (one Fig 2 line)."""

    name: str
    points: list = field(default_factory=list)

    @property
    def times_ms(self) -> np.ndarray:
        return np.asarray([p.time_ms for p in self.points])

    @property
    def sweeps(self) -> np.ndarray:
        """Full-image-equivalent sweeps — the deterministic work axis."""
        return np.asarray([float(p.sweeps) for p in self.points])

    @property
    def uses(self) -> np.ndarray:
        return np.asarray([p.use for p in self.points])

    @property
    def recalls(self) -> np.ndarray:
        return np.asarray([p.recall for p in self.points])


def default_variants() -> dict:
    """The three Fig 2 variants: SLIC, S-SLIC(0.5), S-SLIC(0.25)."""
    return {
        "SLIC": {"ratio": 1.0},
        "S-SLIC (0.5)": {"ratio": 0.5},
        "S-SLIC (0.25)": {"ratio": 0.25},
    }


def run_tradeoff(
    dataset: SyntheticDataset,
    n_superpixels: int,
    sweep_budgets,
    variants: dict | None = None,
    compactness: float = 10.0,
    repeats: int = 1,
    recall_tolerance: int = 1,
) -> dict:
    """Measure quality/runtime curves over ``dataset``.

    Parameters
    ----------
    dataset:
        Corpus of scenes with ground truth.
    n_superpixels:
        K (the paper uses 900 for Fig 2).
    sweep_budgets:
        Iterable of *full-sweep* budgets (e.g. ``range(1, 11)``); each
        variant runs each budget on every scene. For a subsampled variant
        a budget of ``b`` sweeps means ``b * n_subsets`` sub-iterations of
        ``1/n_subsets`` of the pixels — equal total distance work.
    variants:
        ``{name: {"ratio": r}}``; defaults to the paper's three lines.
    repeats:
        Timing repeats per (variant, budget, scene); the minimum is kept
        (standard timing hygiene).

    Returns ``{name: TradeoffCurve}``.
    """
    if variants is None:
        variants = default_variants()
    sweep_budgets = list(sweep_budgets)
    if not sweep_budgets:
        raise ConfigurationError("sweep_budgets must be non-empty")
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    curves = {}
    scenes = list(dataset)
    for name, spec in variants.items():
        ratio = spec["ratio"]
        curve = TradeoffCurve(name=name)
        for budget in sweep_budgets:
            times = []
            uses = []
            recalls = []
            for scene in scenes:
                params = SlicParams(
                    n_superpixels=n_superpixels,
                    compactness=compactness,
                    max_iterations=budget,
                    convergence_threshold=0.0,
                    subsample_ratio=ratio,
                )
                best_t = np.inf
                result = None
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    if ratio >= 1.0:
                        result = slic(scene.image, params)
                    else:
                        result = sslic(scene.image, params)
                    best_t = min(best_t, time.perf_counter() - t0)
                times.append(best_t * 1e3)
                uses.append(undersegmentation_error(result.labels, scene.gt_labels))
                recalls.append(
                    boundary_recall(
                        result.labels, scene.gt_labels, tolerance=recall_tolerance
                    )
                )
            n_subsets = int(round(1.0 / ratio))
            curve.points.append(
                TradeoffPoint(
                    subiterations=budget * n_subsets,
                    sweeps=budget,
                    time_ms=float(np.mean(times)),
                    use=float(np.mean(uses)),
                    recall=float(np.mean(recalls)),
                )
            )
        curves[name] = curve
    return curves


def _crossing_time(times: np.ndarray, quality: np.ndarray, target: float) -> float:
    """Interpolated time at which a monotone-envelope quality curve reaches
    ``target`` (quality values are oriented so *lower is better*)."""
    envelope = np.minimum.accumulate(quality)
    reached = envelope <= target
    if not reached.any():
        return float("nan")
    i = int(np.argmax(reached))
    if i == 0:
        return float(times[0])
    v0, v1 = float(envelope[i - 1]), float(envelope[i])
    t0, t1 = float(times[i - 1]), float(times[i])
    if v1 >= v0:
        return t1
    frac = (target - v0) / (v1 - v0)
    return t0 + frac * (t1 - t0)


def time_saving_at_quality(
    baseline: TradeoffCurve,
    candidate: TradeoffCurve,
    metric: str = "use",
    target_fraction: float = 0.8,
    axis: str = "time",
) -> float:
    """Fractional time saving of ``candidate`` over ``baseline`` at equal
    quality — the numbers the paper reads off Fig 2 (~0.25 for USE, ~0.15
    for boundary recall, both for S-SLIC(0.5) vs SLIC).

    The quality target sits ``target_fraction`` of the way from the
    baseline's first-point quality to its best quality — mid-curve, where
    the paper draws its arrows. (Comparing at the absolute best level is
    ill-conditioned: converged curves differ by less than measurement
    noise there.) Each curve's crossing time is linearly interpolated on
    its running-best envelope. Positive = candidate is faster; ``nan`` if
    the candidate never reaches the target.
    """
    if metric not in ("use", "recall"):
        raise ConfigurationError(f"metric must be 'use' or 'recall', got {metric!r}")
    if not (0.0 < target_fraction <= 1.0):
        raise ConfigurationError(
            f"target_fraction must be in (0, 1], got {target_fraction}"
        )
    if axis not in ("time", "work"):
        raise ConfigurationError(f"axis must be 'time' or 'work', got {axis!r}")
    if metric == "use":
        b_vals = baseline.uses
        c_vals = candidate.uses
    else:
        # Orient recall so lower is better, reusing one code path.
        b_vals = -baseline.recalls
        c_vals = -candidate.recalls
    first = float(b_vals[0])
    best = float(np.min(b_vals))
    target = first + target_fraction * (best - first)
    b_x = baseline.times_ms if axis == "time" else baseline.sweeps
    c_x = candidate.times_ms if axis == "time" else candidate.sweeps
    t_baseline = _crossing_time(b_x, b_vals, target)
    t_candidate = _crossing_time(c_x, c_vals, target)
    if np.isnan(t_baseline) or np.isnan(t_candidate) or t_baseline <= 0:
        return float("nan")
    return 1.0 - t_candidate / t_baseline
