"""Design space exploration drivers for the accelerator model.

Wraps the :mod:`repro.hw` cost models into the sweeps the paper runs
(cluster-unit parallelism, buffer size, resolution) plus the extension
sweeps DESIGN.md calls out (datapath width vs area/energy, multi-core
scaling).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..hw import (
    AcceleratorConfig,
    AcceleratorModel,
    ClusterUnitModel,
    ClusterWays,
    TABLE3_WAYS,
    table4_configs,
)

__all__ = [
    "sweep_cluster_configs",
    "sweep_buffer_sizes",
    "sweep_resolutions",
    "sweep_datapath_widths",
    "sweep_cores",
]


def sweep_cluster_configs(ways_list=TABLE3_WAYS, n_pixels: int = 1920 * 1080, bits: int = 8):
    """Table 3: one :class:`ClusterUnitReport` per ways configuration."""
    return [ClusterUnitModel(w, bits=bits).report(n_pixels) for w in ways_list]


def sweep_buffer_sizes(buffers_kb, base: AcceleratorConfig = None):
    """Fig 6: accelerator report per channel-buffer size."""
    if base is None:
        base = table4_configs()["1920x1080"]
    reports = []
    for kb in buffers_kb:
        if kb <= 0:
            raise ConfigurationError(f"buffer size must be > 0 kB, got {kb}")
        cfg = base.with_(buffer_kb_per_channel=float(kb))
        reports.append(AcceleratorModel(cfg).report())
    return reports


def sweep_resolutions(configs: dict | None = None):
    """Table 4: accelerator report per resolution configuration."""
    if configs is None:
        configs = table4_configs()
    return {name: AcceleratorModel(cfg).report() for name, cfg in configs.items()}


def sweep_datapath_widths(widths, base: AcceleratorConfig = None):
    """Extension DSE: full-accelerator cost versus datapath width.

    Quality as a function of width comes from
    :mod:`repro.analysis.bitwidth`; this sweep provides the other side of
    the trade-off (area shrinks ~quadratically in the distance multipliers,
    energy drops with narrower arithmetic).
    """
    if base is None:
        base = table4_configs()["1920x1080"]
    reports = []
    for bits in widths:
        cfg = base.with_(bits=int(bits))
        reports.append(AcceleratorModel(cfg).report())
    return reports


def sweep_cores(core_counts, base: AcceleratorConfig = None):
    """Extension DSE: multi-core scaling.

    Compute terms scale with cores; the shared DRAM interface and the
    per-superpixel center update do not — so speedup saturates, which is
    the interesting output of this sweep.
    """
    if base is None:
        base = table4_configs()["1920x1080"]
    reports = []
    for cores in core_counts:
        if cores < 1:
            raise ConfigurationError(f"core count must be >= 1, got {cores}")
        cfg = base.with_(n_cores=int(cores))
        reports.append(AcceleratorModel(cfg).report())
    return reports
