"""Experiment registry: one runner per paper table/figure.

Each runner returns an :class:`ExperimentResult` with measured rows and the
paper's published values side by side. The benchmark harness and
EXPERIMENTS.md are both generated from this registry, so "paper vs
measured" comes from exactly one code path.

Runners take a ``scale`` argument: ``"quick"`` keeps CI-friendly corpus
sizes; ``"full"`` approaches the paper's workload sizes (100+ scenes,
K = 900 at BSDS-like resolution for Fig 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import SceneConfig, SyntheticDataset
from ..errors import ConfigurationError
from ..hw import (
    AcceleratorModel,
    PAPER_FIG6_BUFFERS_KB,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    REAL_TIME_MS,
    compare_architectures,
    table4_configs,
)
from ..baselines import table5_comparison
from .bitwidth import run_bitwidth_sweep
from .breakdown import TABLE1_COLUMNS, breakdown_for_image
from .dse import sweep_buffer_sizes, sweep_cluster_configs, sweep_resolutions
from .tradeoff import run_tradeoff, time_saving_at_quality

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "eval_dataset"]


@dataclass
class ExperimentResult:
    """Outcome of one registered experiment."""

    exp_id: str
    title: str
    headers: list
    rows: list
    paper: object = None
    notes: str = ""
    extras: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Shared evaluation corpus
# ---------------------------------------------------------------------------
def eval_dataset(scale: str = "quick", seed: int = 7) -> SyntheticDataset:
    """The BSDS-surrogate corpus used by the quality experiments.

    Scenes are deliberately harder than the library default (closer base
    colors, more texture and noise) so USE and boundary recall move the
    way they do on natural images.
    """
    config = SceneConfig(
        height=128 if scale == "quick" else 192,
        width=192 if scale == "quick" else 288,
        n_regions=16 if scale == "quick" else 22,
        n_disks=3,
        shading=8.0,
        texture=4.0,
        noise=2.0,
        min_color_separation=10.0,
        blur_sigma=1.5,
    )
    n_scenes = 6 if scale == "quick" else 24
    return SyntheticDataset(n_scenes, config=config, seed=seed)


#: Compactness used by the quality experiments. m = 20 (the paper notes m
#: is "generally set between 1 and 40"): on the texture-heavy synthetic
#: corpus the common m = 10 lets superpixels wander across soft ground-truth
#: boundaries, masking the convergence dynamics Fig 2 is about.
EVAL_COMPACTNESS = 20.0


def _eval_k(scale: str) -> int:
    """K for the quality experiments: keeps the paper's Fig 2 regime of
    S ~ 13 px (K = 900 on 481x321 BSDS frames)."""
    return 160 if scale == "quick" else 330


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------
def run_fig2(scale: str = "quick") -> ExperimentResult:
    """Fig 2: USE / boundary recall versus runtime for SLIC and S-SLIC."""
    dataset = eval_dataset(scale)
    budgets = range(1, 7 if scale == "quick" else 11)
    curves = run_tradeoff(dataset, _eval_k(scale), budgets, compactness=EVAL_COMPACTNESS)
    rows = []
    for name, curve in curves.items():
        for p in curve.points:
            rows.append([name, p.sweeps, p.subiterations, p.time_ms, p.use, p.recall])
    savings = {
        variant: {
            "use": time_saving_at_quality(curves["SLIC"], curves[variant], "use"),
            "recall": time_saving_at_quality(curves["SLIC"], curves[variant], "recall"),
            "use_work": time_saving_at_quality(
                curves["SLIC"], curves[variant], "use", axis="work"
            ),
            "recall_work": time_saving_at_quality(
                curves["SLIC"], curves[variant], "recall", axis="work"
            ),
        }
        for variant in curves
        if variant != "SLIC"
    }
    return ExperimentResult(
        exp_id="fig2",
        title="Fig 2: quality vs runtime (SLIC vs S-SLIC)",
        headers=["variant", "sweeps", "subiterations", "time_ms", "USE", "boundary_recall"],
        rows=rows,
        paper={"use_saving": 0.25, "recall_saving": 0.15},
        notes=(
            "Paper: S-SLIC reaches SLIC's USE ~25% sooner and its boundary "
            "recall ~15% sooner (K=900, Berkeley corpus)."
        ),
        extras={"curves": curves, "savings": savings},
    )


def run_table1(scale: str = "quick") -> ExperimentResult:
    """Table 1: phase time breakdown of SLIC vs S-SLIC."""
    if scale == "quick":
        config = SceneConfig(height=120, width=180, n_regions=12)
        k = 120
    else:
        config = SceneConfig(height=320, width=480, n_regions=24)
        k = 900
    scene = SyntheticDataset(1, config=config, seed=11)[0]
    measured = breakdown_for_image(scene.image, n_superpixels=k, iterations=10)
    rows = [
        [algo] + [measured[algo][c] for c in TABLE1_COLUMNS] for algo in measured
    ]
    return ExperimentResult(
        exp_id="table1",
        title="Table 1: time breakdown (%)",
        headers=["algorithm"] + list(TABLE1_COLUMNS),
        rows=rows,
        paper=PAPER_TABLE1,
        notes=(
            "Distance+min must dominate both algorithms; center update's "
            "share must grow for S-SLIC (it updates centers per subset)."
        ),
        extras={"measured": measured},
    )


def run_table2(scale: str = "quick") -> ExperimentResult:
    """Table 2: CPA vs PPA memory traffic and op count per iteration."""
    cmp = compare_architectures()
    rows = [
        [
            p.name,
            p.memory_mb_per_iteration,
            p.ops_per_iteration / 1e6,
            p.energy_per_iteration_pj() / 1e6,
        ]
        for p in (cmp["cpa"], cmp["ppa"])
    ]
    return ExperimentResult(
        exp_id="table2",
        title="Table 2: CPA vs PPA per 1080p iteration",
        headers=["architecture", "memory_MB", "ops_M", "energy_uJ(simple model)"],
        rows=rows,
        paper=PAPER_TABLE2,
        notes=f"Energy model selects: {cmp['selected']} (paper selects PPA).",
        extras=cmp,
    )


def run_table3(scale: str = "quick") -> ExperimentResult:
    """Table 3: the five Cluster Update Unit configurations."""
    reports = sweep_cluster_configs()
    rows = [
        [
            r.label,
            r.area_mm2,
            r.power_mw,
            r.latency_cycles,
            r.throughput_pixels_per_cycle,
            r.time_ms,
            r.energy_uj,
        ]
        for r in reports
    ]
    return ExperimentResult(
        exp_id="table3",
        title="Table 3: Cluster Update Unit configurations (1080p iteration)",
        headers=["config", "area_mm2", "power_mW", "latency_cyc", "px/cyc", "time_ms", "energy_uJ"],
        rows=rows,
        paper=PAPER_TABLE3,
        extras={"reports": reports},
    )


def run_sec61(scale: str = "quick") -> ExperimentResult:
    """Section 6.1: quality versus datapath bit width."""
    dataset = eval_dataset(scale)
    points = run_bitwidth_sweep(
        dataset,
        _eval_k(scale),
        iterations=5 if scale == "quick" else 8,
        compactness=EVAL_COMPACTNESS,
    )
    rows = [
        [p.label, p.use, p.recall, p.delta_use, p.delta_recall] for p in points
    ]
    return ExperimentResult(
        exp_id="sec61",
        title="Sec 6.1: bit-width exploration (USE/recall vs datapath width)",
        headers=["datapath", "USE", "recall", "dUSE_vs_float", "dRecall_vs_float"],
        rows=rows,
        paper={"delta_use_8bit": 0.003, "delta_recall_8bit": 0.001,
               "noticeable_below_bits": 7},
        notes=(
            "Paper: 8-bit fixed point costs only +0.003 USE / -0.001 recall; "
            "error becomes noticeable at 7 bits and below."
        ),
        extras={"points": points},
    )


def run_fig6(scale: str = "quick") -> ExperimentResult:
    """Fig 6: frame time versus channel buffer size."""
    reports = sweep_buffer_sizes(PAPER_FIG6_BUFFERS_KB)
    rows = [
        [r.config.buffer_kb_per_channel, r.latency_ms, r.fps, r.real_time]
        for r in reports
    ]
    smallest_rt = next(
        (r.config.buffer_kb_per_channel for r in reports if r.real_time), None
    )
    return ExperimentResult(
        exp_id="fig6",
        title="Fig 6: frame time vs channel buffer size (9-9-6, 1080p, K=5000)",
        headers=["buffer_kB", "time_ms", "fps", "real_time"],
        rows=rows,
        paper={"smallest_real_time_buffer_kb": 4, "real_time_ms": REAL_TIME_MS},
        notes=f"Smallest real-time buffer measured: {smallest_rt} kB (paper: 4 kB).",
        extras={"reports": reports, "smallest_real_time_kb": smallest_rt},
    )


def run_table4(scale: str = "quick") -> ExperimentResult:
    """Table 4: best configuration per resolution."""
    reports = sweep_resolutions()
    rows = [
        [
            name,
            r.config.buffer_kb_per_channel,
            r.area_mm2,
            r.power_mw,
            r.latency_ms,
            r.fps,
            r.energy_per_frame_mj,
            r.perf_per_area_fps_mm2,
        ]
        for name, r in reports.items()
    ]
    return ExperimentResult(
        exp_id="table4",
        title="Table 4: best S-SLIC accelerator configurations",
        headers=["resolution", "buffer_kB", "area_mm2", "power_mW", "latency_ms",
                 "fps", "energy_mJ", "fps_per_mm2"],
        rows=rows,
        paper=PAPER_TABLE4,
        extras={"reports": reports},
    )


def run_table5(scale: str = "quick") -> ExperimentResult:
    """Table 5: GPU / mobile GPU / accelerator comparison."""
    accel = AcceleratorModel(table4_configs()["1920x1080"]).report()
    cmp = table5_comparison(accel)
    rows = [
        [
            row.name,
            row.algorithm,
            row.technology,
            row.on_chip_kb,
            row.cores,
            row.avg_power_w * 1e3,
            row.norm_power_w * 1e3,
            row.latency_ms,
            row.energy_per_frame_mj_norm,
        ]
        for row in cmp["rows"].values()
    ]
    return ExperimentResult(
        exp_id="table5",
        title="Table 5: platform comparison (1080p, K=5000)",
        headers=["platform", "algorithm", "technology", "on_chip_kB", "cores",
                 "avg_power_mW", "norm_power_mW", "latency_ms", "energy_mJ_norm"],
        rows=rows,
        paper=PAPER_TABLE5,
        notes=(
            f"Efficiency vs K20: {cmp['efficiency_vs_k20']:.0f}x (paper: >500x); "
            f"vs TK1: {cmp['efficiency_vs_tk1']:.0f}x (paper: >250x)."
        ),
        extras=cmp,
    )


#: Registry: experiment id -> runner.
EXPERIMENTS = {
    "fig2": run_fig2,
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "sec61": run_sec61,
    "fig6": run_fig6,
    "table4": run_table4,
    "table5": run_table5,
}


def run_experiment(exp_id: str, scale: str = "quick") -> ExperimentResult:
    """Run one registered experiment by id."""
    if exp_id not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    if scale not in ("quick", "full"):
        raise ConfigurationError(f"scale must be 'quick' or 'full', got {scale!r}")
    return EXPERIMENTS[exp_id](scale)
