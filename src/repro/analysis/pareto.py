"""Joint design space exploration and Pareto analysis.

The paper explores each axis (ways, width, buffer size) separately and
picks the chosen design by inspection. This module sweeps the *joint*
space and computes the Pareto frontier over (latency, area, energy),
letting the selection be derived rather than narrated: the published
configuration should emerge as the minimum-area real-time point of the
swept space — which the `bench_ext_pareto` benchmark asserts.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from ..errors import ConfigurationError
from ..hw import AcceleratorConfig, AcceleratorModel, ClusterWays, table4_configs

__all__ = ["joint_design_space", "pareto_frontier", "best_real_time_design"]

#: Default joint grid: the axes the paper's Section 6 explores.
DEFAULT_WAYS = (ClusterWays(1, 1, 1), ClusterWays(3, 3, 3), ClusterWays(9, 9, 6))
DEFAULT_BUFFERS_KB = (1.0, 2.0, 4.0, 8.0, 16.0)
DEFAULT_BITS = (6, 8, 10)
DEFAULT_CORES = (1, 2)


def joint_design_space(
    base: AcceleratorConfig = None,
    ways_list=DEFAULT_WAYS,
    buffers_kb=DEFAULT_BUFFERS_KB,
    bits_list=DEFAULT_BITS,
    cores_list=DEFAULT_CORES,
) -> list:
    """Evaluate every combination; returns a list of AcceleratorReports."""
    if base is None:
        base = table4_configs()["1920x1080"]
    reports = []
    for ways, kb, bits, cores in product(ways_list, buffers_kb, bits_list, cores_list):
        cfg = base.with_(
            ways=ways, buffer_kb_per_channel=float(kb), bits=int(bits),
            n_cores=int(cores),
        )
        reports.append(AcceleratorModel(cfg).report())
    return reports


def _objective_matrix(reports) -> np.ndarray:
    """(n, 3) matrix of minimization objectives: latency, area, energy."""
    return np.array(
        [
            [r.latency_ms, r.area_mm2, r.energy_per_frame_mj]
            for r in reports
        ]
    )


def pareto_frontier(reports) -> list:
    """Non-dominated subset under (latency, area, energy) minimization.

    A design is dominated if another is no worse on every objective and
    strictly better on at least one.
    """
    if not reports:
        return []
    objectives = _objective_matrix(reports)
    n = len(reports)
    keep = []
    for i in range(n):
        dominated = (
            (objectives <= objectives[i] + 1e-12).all(axis=1)
            & (objectives < objectives[i] - 1e-12).any(axis=1)
        )
        dominated[i] = False
        if not dominated.any():
            keep.append(reports[i])
    return keep


def best_real_time_design(reports, prefer: str = "area"):
    """The minimum-``prefer`` design meeting 30 fps, or None.

    ``prefer`` is ``"area"`` (the paper's implicit objective — it calls
    the chosen design's 0.066 mm^2 "extremely small"), ``"energy"``, or
    ``"latency"``.
    """
    key = {
        "area": lambda r: (r.area_mm2, r.energy_per_frame_mj),
        "energy": lambda r: (r.energy_per_frame_mj, r.area_mm2),
        "latency": lambda r: (r.latency_ms, r.area_mm2),
    }.get(prefer)
    if key is None:
        raise ConfigurationError(
            f"prefer must be area|energy|latency, got {prefer!r}"
        )
    feasible = [r for r in reports if r.real_time]
    if not feasible:
        return None
    return min(feasible, key=key)
