"""Counters, gauges, and fixed-bucket histograms — pure stdlib.

A :class:`MetricsRegistry` is a namespace of named instruments. Registries
are cheap enough to create per run; the engine, the cycle simulator, and
the CLI all write into the registry owned by their
:class:`~repro.obs.tracer.Tracer` and the values are flushed to the
tracer's sink as ``counter`` / ``gauge`` / ``hist`` events.

Instruments accept ints and floats (hardware cycle counts are fractional
in the analytical models), and a histogram's buckets are fixed at
creation — observation is O(#buckets) with no allocation.
"""

from __future__ import annotations

import bisect

from ..errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically non-decreasing accumulator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} increment must be >= 0, got {amount}"
            )
        self.value += amount

    def as_event(self) -> dict:
        return {"ev": "counter", "name": self.name, "value": self.value}


class Gauge:
    """Last-write-wins value (e.g. buffer bytes, residual movement)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = None

    def set(self, value) -> None:
        self.value = value

    def as_event(self) -> dict:
        return {"ev": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with sum/count, Prometheus-style.

    ``buckets`` are the upper bounds of the finite buckets, strictly
    increasing; values above the last bound land in the implicit +inf
    bucket. ``counts`` has ``len(buckets) + 1`` entries.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count")

    def __init__(self, name: str, buckets):
        bounds = [float(b) for b in buckets]
        if not bounds or any(nxt <= prev for nxt, prev in zip(bounds[1:], bounds)):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be non-empty and strictly "
                f"increasing, got {list(buckets)}"
            )
        self.name = name
        self.buckets = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_event(self) -> dict:
        return {
            "ev": "hist",
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are free-form dotted strings (``engine.pixels_assigned``,
    ``cyclesim.fsm.fetch_cycles``). Re-requesting a name returns the same
    instrument; requesting it as a different kind raises.
    """

    def __init__(self):
        self._instruments = {}

    def _get(self, name: str, kind, factory):
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
        elif not isinstance(inst, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, requested {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, buckets) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(self._instruments.values())

    def snapshot(self) -> dict:
        """Plain-dict view: ``{counters: {}, gauges: {}, histograms: {}}``."""
        snap = {"counters": {}, "gauges": {}, "histograms": {}}
        for inst in self:
            if isinstance(inst, Counter):
                snap["counters"][inst.name] = inst.value
            elif isinstance(inst, Gauge):
                snap["gauges"][inst.name] = inst.value
            else:
                snap["histograms"][inst.name] = {
                    "count": inst.count,
                    "sum": inst.total,
                    "mean": inst.mean,
                }
        return snap

    def emit_to(self, sink) -> None:
        """Write one event per instrument to ``sink``."""
        for inst in self:
            sink.emit(inst.as_event())
