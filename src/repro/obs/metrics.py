"""Counters, gauges, and fixed-bucket histograms — pure stdlib.

A :class:`MetricsRegistry` is a namespace of named instruments. Registries
are cheap enough to create per run; the engine, the cycle simulator, and
the CLI all write into the registry owned by their
:class:`~repro.obs.tracer.Tracer` and the values are flushed to the
tracer's sink as ``counter`` / ``gauge`` / ``hist`` events.

Instruments accept ints and floats (hardware cycle counts are fractional
in the analytical models), and a histogram's buckets are fixed at
creation — observation is O(#buckets) with no allocation.

Instruments may carry **labels** (a small dict of str -> str), giving one
metric *family* several independent series — e.g.
``parallel.transport_fallbacks{requested="shm"}`` — which is what the
Prometheus exposition in :mod:`repro.obs.export` renders as labeled
samples. The same family name must keep one instrument kind across all
label sets.
"""

from __future__ import annotations

import bisect

from ..errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "labels_key"]


def labels_key(labels) -> tuple:
    """Canonical hashable form of a label dict (sorted key/value pairs)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically non-decreasing accumulator."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str, labels=None):
        self.name = name
        self.value = 0
        self.labels = dict(labels) if labels else None

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} increment must be >= 0, got {amount}"
            )
        self.value += amount

    def as_event(self) -> dict:
        event = {"ev": "counter", "name": self.name, "value": self.value}
        if self.labels:
            event["labels"] = dict(self.labels)
        return event


class Gauge:
    """Last-write-wins value (e.g. buffer bytes, residual movement)."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str, labels=None):
        self.name = name
        self.value = None
        self.labels = dict(labels) if labels else None

    def set(self, value) -> None:
        self.value = value

    def as_event(self) -> dict:
        event = {"ev": "gauge", "name": self.name, "value": self.value}
        if self.labels:
            event["labels"] = dict(self.labels)
        return event


class Histogram:
    """Fixed-bucket histogram with sum/count, Prometheus-style.

    ``buckets`` are the upper bounds of the finite buckets, strictly
    increasing; values above the last bound land in the implicit +inf
    bucket. ``counts`` has ``len(buckets) + 1`` entries.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count", "labels")

    def __init__(self, name: str, buckets, labels=None):
        bounds = [float(b) for b in buckets]
        if not bounds or any(nxt <= prev for nxt, prev in zip(bounds[1:], bounds)):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be non-empty and strictly "
                f"increasing, got {list(buckets)}"
            )
        self.name = name
        self.buckets = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.labels = dict(labels) if labels else None

    def observe(self, value) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_event(self) -> dict:
        event = {
            "ev": "hist",
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
        }
        if self.labels:
            event["labels"] = dict(self.labels)
        return event

    def merge(self, event: dict) -> None:
        """Fold another histogram's snapshot event into this one.

        Used when a parent process aggregates worker-side histograms;
        the bucket layouts must match (same instrument, same code).
        """
        if [float(b) for b in event["buckets"]] != list(self.buckets):
            raise ConfigurationError(
                f"histogram {self.name!r}: cannot merge snapshot with "
                f"buckets {event['buckets']} into {list(self.buckets)}"
            )
        self.count += int(event["count"])
        self.total += float(event["sum"])
        self.counts = [
            a + int(b) for a, b in zip(self.counts, event["counts"])
        ]


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are free-form dotted strings (``engine.pixels_assigned``,
    ``cyclesim.fsm.fetch_cycles``). Re-requesting a name (with the same
    labels) returns the same instrument; requesting a family name as a
    different kind raises — labels never change an instrument's kind.
    """

    def __init__(self):
        self._instruments = {}  # (name, labels_key) -> instrument
        self._kinds = {}  # family name -> instrument class

    def _get(self, name: str, kind, factory, labels=None):
        registered = self._kinds.get(name)
        if registered is not None and registered is not kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{registered.__name__}, requested {kind.__name__}"
            )
        key = (name, labels_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = factory()
            self._instruments[key] = inst
            self._kinds[name] = kind
        return inst

    def counter(self, name: str, labels=None) -> Counter:
        return self._get(
            name, Counter, lambda: Counter(name, labels), labels
        )

    def gauge(self, name: str, labels=None) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, labels), labels)

    def histogram(self, name: str, buckets, labels=None) -> Histogram:
        return self._get(
            name, Histogram, lambda: Histogram(name, buckets, labels), labels
        )

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(list(self._instruments.values()))

    @staticmethod
    def _series_key(inst) -> str:
        if not inst.labels:
            return inst.name
        rendered = ",".join(
            f'{k}="{v}"' for k, v in sorted(inst.labels.items())
        )
        return f"{inst.name}{{{rendered}}}"

    def snapshot(self) -> dict:
        """Plain-dict view: ``{counters: {}, gauges: {}, histograms: {}}``.

        Labeled series appear under a rendered key
        (``name{label="value"}``); unlabeled instruments keep the bare
        name, so existing consumers see no change.
        """
        snap = {"counters": {}, "gauges": {}, "histograms": {}}
        for inst in self:
            key = self._series_key(inst)
            if isinstance(inst, Counter):
                snap["counters"][key] = inst.value
            elif isinstance(inst, Gauge):
                snap["gauges"][key] = inst.value
            else:
                snap["histograms"][key] = {
                    "count": inst.count,
                    "sum": inst.total,
                    "mean": inst.mean,
                }
        return snap

    def emit_to(self, sink) -> None:
        """Write one event per instrument to ``sink``."""
        for inst in self:
            sink.emit(inst.as_event())
