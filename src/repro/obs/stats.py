"""Trace summarization: turn a JSONL telemetry file into a readable table.

Backs ``python -m repro stats run.jsonl``. The summary aggregates span
events by name (count, total/mean/min/max duration, error count), lists
final counter and gauge values, and condenses histograms to count/mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .sinks import read_jsonl

__all__ = ["SpanStats", "TraceSummary", "summarize_events", "summarize_trace",
           "format_summary"]


@dataclass
class SpanStats:
    """Aggregate over all spans sharing one name."""

    name: str
    count: int = 0
    errors: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, duration: float, status: str) -> None:
        self.count += 1
        if status == "error":
            self.errors += 1
        if duration is None:
            return
        self.total_s += duration
        self.min_s = min(self.min_s, duration)
        self.max_s = max(self.max_s, duration)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Everything :func:`format_summary` needs, machine-readable."""

    n_events: int = 0
    schema: int | None = None
    spans: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    unknown_events: int = 0


def _series_key(ev) -> tuple:
    """(name, frozen labels) — labeled metric events are independent
    series that must not clobber each other in the summary."""
    labels = ev.get("labels") or {}
    return (
        ev.get("name", "?"),
        tuple(sorted((str(k), str(v)) for k, v in labels.items())),
    )


def summarize_events(events) -> TraceSummary:
    """Aggregate a list of event dicts (see :func:`read_jsonl`).

    Counter values are summed across label sets of the same family
    (``counters["resilience.retries"]`` stays the total even when the
    emitter split it by ``error_type``); per-series last values win
    within one label set. Gauges keep the family's last write.
    """
    summary = TraceSummary(n_events=len(events))
    counter_series = {}
    for ev in events:
        kind = ev.get("ev")
        if kind == "span":
            name = ev.get("name", "?")
            stats = summary.spans.get(name)
            if stats is None:
                stats = summary.spans[name] = SpanStats(name)
            stats.add(ev.get("dur"), ev.get("status", "ok"))
        elif kind == "counter":
            counter_series[_series_key(ev)] = ev.get("value")
        elif kind == "gauge":
            summary.gauges[ev.get("name", "?")] = ev.get("value")
        elif kind == "hist":
            count = ev.get("count", 0)
            total = ev.get("sum", 0.0)
            summary.histograms[ev.get("name", "?")] = {
                "count": count,
                "sum": total,
                "mean": total / count if count else 0.0,
            }
        elif kind == "meta":
            summary.schema = ev.get("schema")
        elif kind in ("event", "bench", "bench.record"):
            pass  # point events carry no aggregate
        else:
            summary.unknown_events += 1
    for (name, _labels), value in counter_series.items():
        if value is None:
            continue
        summary.counters[name] = summary.counters.get(name, 0) + value
    return summary


def summarize_trace(path) -> TraceSummary:
    """Read ``path`` (JSONL) and aggregate it."""
    return summarize_events(read_jsonl(path))


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:8.3f}s "
    return f"{s * 1e3:8.2f}ms"


def _fmt_value(v) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def format_summary(summary: TraceSummary, title: str = "trace summary") -> str:
    """Render a :class:`TraceSummary` as an aligned plain-text report."""
    lines = [title, "=" * len(title),
             f"events: {summary.n_events}"
             + (f"  (schema v{summary.schema})" if summary.schema else "")]
    if summary.unknown_events:
        lines.append(f"unrecognized events: {summary.unknown_events}")

    if summary.spans:
        lines += ["", "spans",
                  f"  {'name':<28} {'count':>6} {'errors':>6} "
                  f"{'total':>10} {'mean':>10} {'max':>10}"]
        ordered = sorted(
            summary.spans.values(), key=lambda s: s.total_s, reverse=True
        )
        for s in ordered:
            lines.append(
                f"  {s.name:<28} {s.count:>6} {s.errors:>6} "
                f"{_fmt_seconds(s.total_s)} {_fmt_seconds(s.mean_s)} "
                f"{_fmt_seconds(s.max_s if s.count else 0.0)}"
            )

    if summary.counters:
        lines += ["", "counters"]
        for name in sorted(summary.counters):
            lines.append(f"  {name:<40} {_fmt_value(summary.counters[name]):>14}")

    if summary.gauges:
        lines += ["", "gauges"]
        for name in sorted(summary.gauges):
            lines.append(f"  {name:<40} {_fmt_value(summary.gauges[name]):>14}")

    if summary.histograms:
        lines += ["", "histograms"]
        for name in sorted(summary.histograms):
            h = summary.histograms[name]
            lines.append(
                f"  {name:<40} count={h['count']} mean={h['mean']:.6g}"
            )
    return "\n".join(lines)
