"""Per-span resource profiling: CPU time, peak RSS, GC pressure.

Opt-in (``Tracer(..., profile=True)`` or ``tracer.enable_profiling()``;
``--profile-spans`` on the CLI). When enabled, every span closes with
four extra attributes:

``cpu_user_s`` / ``cpu_sys_s``
    Process CPU seconds consumed while the span was open (``os.times``
    deltas — resolution is the OS clock tick, typically 10 ms, so tiny
    spans legitimately read 0.0).
``rss_peak_kb``
    The process's peak resident set size, in kB, observed at span close
    (``resource.getrusage``; a high-water mark, so it is monotonic
    across spans — compare successive spans to see which one pushed it).
``gc_collections``
    Cyclic garbage collections (all generations) that ran while the
    span was open — a span that triggers collections is allocating in
    the hot path.

The sampling cost is two ``os.times`` + ``getrusage`` + ``gc.get_stats``
calls per span — single-digit microseconds — and the repo budgets the
end-to-end cost at **<= 5% wall time** on a traced VGA serial video run,
gated in ``benchmarks/bench_e2e_video.py`` (measured overhead is
recorded in ``BENCH_e2e.json`` under ``profiling``).

On platforms without the ``resource`` module (Windows), RSS reads as 0
and everything else still works.
"""

from __future__ import annotations

import gc
import os

try:  # resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover - Windows
    _resource = None

__all__ = ["ResourceProfiler", "rss_peak_kb", "gc_collections"]

#: ru_maxrss is kilobytes on Linux but bytes on macOS.
_RSS_DIVISOR = (
    1024
    if hasattr(os, "uname") and os.uname().sysname == "Darwin"
    else 1
)


def rss_peak_kb() -> int:
    """Current peak resident set size in kB (0 where unavailable)."""
    if _resource is None:
        return 0
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss // _RSS_DIVISOR)


def gc_collections() -> int:
    """Total cyclic collections across all generations so far."""
    return sum(s.get("collections", 0) for s in gc.get_stats())


class ResourceProfiler:
    """Cheap span-boundary sampler; one instance per tracer.

    :meth:`snapshot` captures the counters at span open;
    :meth:`delta` turns an open-time snapshot into the attribute dict
    recorded on the closing span.
    """

    __slots__ = ("samples",)

    def __init__(self):
        self.samples = 0  # spans profiled (for overhead accounting)

    def snapshot(self) -> tuple:
        t = os.times()
        return (t.user, t.system, gc_collections())

    def delta(self, snap: tuple) -> dict:
        t = os.times()
        user0, sys0, gc0 = snap
        self.samples += 1
        return {
            "cpu_user_s": round(t.user - user0, 6),
            "cpu_sys_s": round(t.system - sys0, 6),
            "rss_peak_kb": rss_peak_kb(),
            "gc_collections": gc_collections() - gc0,
        }
