"""Prometheus text exposition + a live telemetry HTTP server.

Two halves, both pure stdlib:

:func:`render_prometheus`
    Renders a :class:`~repro.obs.metrics.MetricsRegistry` in the
    Prometheus **text exposition format v0.0.4**: counters as
    ``<name>_total``, gauges verbatim, histograms expanded into
    cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
    Metric and label names are sanitized to the Prometheus grammar
    (``[a-zA-Z_:][a-zA-Z0-9_:]*`` / ``[a-zA-Z_][a-zA-Z0-9_]*``) with
    deterministic collision resolution; label values are escaped per the
    spec.

:class:`TelemetryServer`
    A ``ThreadingHTTPServer`` (daemon thread, ephemeral or fixed port)
    serving

    * ``GET /metrics`` — the exposition above (``text/plain; version=0.0.4``),
    * ``GET /healthz`` — liveness JSON (status, uptime, pid, event count),
    * ``GET /spans``  — the most recent span forest as JSON (reconstructed
      from a bounded :class:`~repro.obs.sinks.SpanRingSink`).

    Attach it to any live :class:`~repro.obs.tracer.Tracer` — the
    engine's, a :class:`~repro.parallel.ParallelRunner`'s, or the CLI's
    (``--telemetry-port``) — and scrape while the run executes. Reads
    are lock-free: the GIL makes int/float loads atomic, and a scrape
    observing a half-updated *set* of metrics is acceptable for
    monitoring (each individual sample is consistent).
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ConfigurationError
from .metrics import Counter, Gauge, Histogram
from .sinks import NullSink, SpanRingSink, TeeSink

__all__ = [
    "sanitize_metric_name",
    "sanitize_label_name",
    "escape_label_value",
    "render_prometheus",
    "span_forest",
    "TelemetryServer",
]

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_METRIC_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str) -> str:
    """Coerce ``name`` to the Prometheus metric-name grammar.

    Invalid characters (the repo's dotted names use ``.``) become ``_``;
    a leading digit gets a ``_`` prefix; empty input becomes ``_``.
    Idempotent, and the identity on already-valid names.
    """
    name = str(name)
    if _METRIC_NAME_RE.match(name):
        return name
    out = _METRIC_INVALID.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def sanitize_label_name(name: str) -> str:
    """Coerce ``name`` to the label-name grammar (no ``:`` allowed).

    A ``__`` prefix is reserved by Prometheus, so it is stripped to a
    single leading underscore.
    """
    name = str(name)
    out = _LABEL_INVALID.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    while out.startswith("__"):
        out = out[1:]
    return out


def escape_label_value(value) -> str:
    """Escape a label value per the text format: ``\\``, ``"``, newline."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r'\"')
        .replace("\n", r"\n")
    )


def _fmt(value) -> str:
    """Format a sample value: ints exact, floats via repr, specials per spec."""
    if value is None:
        return "0"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_labels(labels, extra=None) -> str:
    """The ``{k="v",...}`` block, or empty for no labels."""
    pairs = []
    if labels:
        for key, val in sorted(labels.items()):
            pairs.append(
                f'{sanitize_label_name(key)}="{escape_label_value(val)}"'
            )
    if extra:
        pairs.extend(extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


class _FamilyNames:
    """Deterministic raw-name -> exposition-name mapping.

    Two distinct raw families whose sanitized names collide (e.g.
    ``a.b`` and ``a_b``) get suffixes in first-seen order: the first
    keeps the clean name, later ones get ``_2``, ``_3``, ... — stable
    for a fixed registration order, and never silently merged.
    """

    def __init__(self, namespace: str):
        self.namespace = sanitize_metric_name(namespace) if namespace else ""
        self._by_raw = {}
        self._taken = set()

    def resolve(self, raw_name: str) -> str:
        known = self._by_raw.get(raw_name)
        if known is not None:
            return known
        base = sanitize_metric_name(
            f"{self.namespace}_{raw_name}" if self.namespace else raw_name
        )
        candidate, n = base, 1
        while candidate in self._taken:
            n += 1
            candidate = f"{base}_{n}"
        self._by_raw[raw_name] = candidate
        self._taken.add(candidate)
        return candidate


def render_prometheus(registry, namespace: str = "repro") -> str:
    """Render ``registry`` in the Prometheus text format (v0.0.4).

    One ``# TYPE`` line per family, then one sample line per series
    (label set). Counters get the conventional ``_total`` suffix;
    histograms expand to cumulative ``_bucket`` series with ``le``
    labels (``+Inf`` last), ``_sum``, and ``_count``. Unset gauges
    (never written) are skipped. Ends with a trailing newline, as the
    format requires.
    """
    names = _FamilyNames(namespace)
    families = {}  # exposition family name -> (type, [lines])
    for inst in registry:
        if isinstance(inst, Counter):
            family = names.resolve(inst.name) + "_total"
            kind = "counter"
            lines = [f"{family}{_render_labels(inst.labels)} {_fmt(inst.value)}"]
        elif isinstance(inst, Gauge):
            if inst.value is None:
                continue
            family = names.resolve(inst.name)
            kind = "gauge"
            lines = [f"{family}{_render_labels(inst.labels)} {_fmt(inst.value)}"]
        elif isinstance(inst, Histogram):
            family = names.resolve(inst.name)
            kind = "histogram"
            lines = []
            cumulative = 0
            for bound, count in zip(inst.buckets, inst.counts):
                cumulative += count
                le = f'le="{_fmt(bound)}"'
                lines.append(
                    f"{family}_bucket"
                    f"{_render_labels(inst.labels, [le])} {cumulative}"
                )
            inf_label = 'le="+Inf"'
            lines.append(
                f"{family}_bucket"
                f"{_render_labels(inst.labels, [inf_label])} {inst.count}"
            )
            lines.append(
                f"{family}_sum{_render_labels(inst.labels)} {_fmt(inst.total)}"
            )
            lines.append(
                f"{family}_count{_render_labels(inst.labels)} {inst.count}"
            )
        else:  # pragma: no cover - registry only holds the three kinds
            continue
        entry = families.get(family)
        if entry is None:
            families[family] = (kind, lines)
        else:
            entry[1].extend(lines)

    out = []
    for family, (kind, lines) in families.items():
        out.append(f"# TYPE {family} {kind}")
        out.extend(lines)
    return "\n".join(out) + "\n" if out else "\n"


def span_forest(events, max_roots: int | None = None) -> list:
    """Reconstruct a span tree (forest) from span events.

    ``events`` is any iterable of event dicts; non-span events are
    ignored. A span whose parent is absent from the window (evicted from
    the ring, or a true root) becomes a root. Children are ordered by
    start timestamp. Returns a list of nested dicts ready for JSON.
    """
    spans = {}
    order = []
    for ev in events:
        if ev.get("ev") != "span" or ev.get("id") is None:
            continue
        node = {
            "id": ev["id"],
            "name": ev.get("name"),
            "parent": ev.get("parent"),
            "trace": ev.get("trace"),
            "ts": ev.get("ts"),
            "dur": ev.get("dur"),
            "status": ev.get("status"),
            "attrs": ev.get("attrs") or {},
            "children": [],
        }
        spans[node["id"]] = node
        order.append(node)
    roots = []
    for node in order:
        parent = spans.get(node["parent"])
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in order:
        node["children"].sort(key=lambda c: (c["ts"] is None, c["ts"]))
    if max_roots is not None:
        roots = roots[-max_roots:]
    return roots


class _Handler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz, /spans; everything else is 404."""

    server_version = "repro-telemetry/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, *args) -> None:  # silence per-request stderr spam
        pass

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        telemetry = self.server.telemetry
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = render_prometheus(
                    telemetry.registry, namespace=telemetry.namespace
                ).encode("utf-8")
                self._respond(
                    200, "text/plain; version=0.0.4; charset=utf-8", body
                )
            elif path == "/healthz":
                body = json.dumps(telemetry.health()).encode("utf-8")
                self._respond(200, "application/json", body)
            elif path == "/spans":
                body = json.dumps(
                    {
                        "trace": telemetry.trace_id,
                        "spans": span_forest(telemetry.ring.events()),
                    }
                ).encode("utf-8")
                self._respond(200, "application/json", body)
            else:
                self._respond(
                    404, "text/plain; charset=utf-8",
                    b"not found; try /metrics, /healthz, or /spans\n",
                )
        except BrokenPipeError:  # scraper hung up mid-response
            pass


class TelemetryServer:
    """Serve a tracer's metrics and recent spans over HTTP.

    Parameters
    ----------
    tracer:
        The :class:`~repro.obs.tracer.Tracer` to expose. The server tees
        the tracer's sink into a bounded :class:`SpanRingSink` (a tracer
        whose sink is a ``NullSink`` is switched to the ring and
        enabled, so ``--telemetry-port`` works without ``--trace``).
        Must not be the shared ``NULL_TRACER``.
    host, port:
        Bind address. ``port=0`` (default) picks an ephemeral port,
        published as :attr:`port` after :meth:`start`.
    namespace:
        Metric-name prefix for the exposition (default ``repro``).
    span_buffer:
        Ring capacity for ``/spans``.

    Usage::

        tracer = Tracer(JsonlSink("run.jsonl"))
        with TelemetryServer(tracer, port=9100) as server:
            runner = ParallelRunner(params, tracer=tracer, ...)
            runner.run_streams(streams)   # scrape while this runs
    """

    def __init__(self, tracer, host: str = "127.0.0.1", port: int = 0,
                 namespace: str = "repro", span_buffer: int = 1024):
        from .tracer import NULL_TRACER

        if tracer is NULL_TRACER:
            raise ConfigurationError(
                "TelemetryServer cannot attach to the shared NULL_TRACER; "
                "construct a dedicated Tracer (any sink) to expose"
            )
        self.tracer = tracer
        self.registry = tracer.metrics
        self.namespace = namespace
        self.ring = SpanRingSink(span_buffer)
        if isinstance(tracer.sink, NullSink):
            tracer.sink = self.ring
        else:
            tracer.sink = TeeSink(tracer.sink, self.ring)
        if not tracer.enabled:
            tracer.enabled = True
        if tracer.trace_id is None:
            from .tracer import new_trace_id

            tracer.trace_id = new_trace_id()
        self.host = host
        self.port = int(port)
        self._httpd = None
        self._thread = None
        self._started_at = None

    @property
    def trace_id(self):
        return self.tracer.trace_id

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def health(self) -> dict:
        import os

        return {
            "status": "ok",
            "uptime_s": round(time.time() - (self._started_at or time.time()), 3),
            "pid": os.getpid(),
            "trace": self.trace_id,
            "events_buffered": len(self.ring),
            "metrics": len(self.registry),
        }

    def start(self) -> "TelemetryServer":
        """Bind and serve from a daemon thread; returns self.

        The bind happens here, in the calling thread — a taken port is a
        :class:`ConfigurationError` naming the address, raised where the
        caller can catch it, never a traceback from the serving thread.
        """
        if self._httpd is not None:
            return self
        try:
            self._httpd = ThreadingHTTPServer(
                (self.host, self.port), _Handler
            )
        except OSError as exc:
            raise ConfigurationError(
                f"telemetry server cannot bind {self.host}:{self.port}: "
                f"{exc}"
            ) from exc
        self._httpd.daemon_threads = True
        self._httpd.telemetry = self
        self.port = self._httpd.server_address[1]
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"telemetry:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
