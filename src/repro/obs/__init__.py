"""repro.obs — unified instrumentation: spans, metrics, run telemetry.

The paper's claims are measurements (Table 1's runtime breakdown, Figure
6's bandwidth sweep, Table 4's fps/mW); this package is how the repo
produces its own. One :class:`Tracer` threads through the segmentation
engine, the hardware cycle simulator, and the CLI; everything it sees is
emitted as JSONL events a machine can aggregate (``python -m repro stats``)
and a :class:`RunManifest` pins the run's params/seed/versions.

Quick start::

    from repro import sslic
    from repro.obs import JsonlSink, Tracer

    with Tracer(JsonlSink("run.jsonl")) as tracer:
        result = sslic(image, tracer=tracer)

With no tracer supplied, every instrumented call site routes to the
shared disabled tracer and costs a single attribute check.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sinks import (
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    SpanRingSink,
    TeeSink,
    read_jsonl,
)
from .tracer import NULL_TRACER, Span, Tracer, new_trace_id
from .manifest import RunManifest, git_describe
from .export import TelemetryServer, render_prometheus, span_forest
from .profile import ResourceProfiler
from .regress import (
    BENCH_SCHEMA_VERSION,
    RegressionReport,
    check_regressions,
    compare_metrics,
    flatten_bench_metrics,
)
from .stats import (
    SpanStats,
    TraceSummary,
    format_summary,
    summarize_events,
    summarize_trace,
)

__all__ = [
    # tracer
    "Tracer",
    "Span",
    "NULL_TRACER",
    "new_trace_id",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    # sinks
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "SpanRingSink",
    "TeeSink",
    "read_jsonl",
    # manifest
    "RunManifest",
    "git_describe",
    # export / live telemetry
    "TelemetryServer",
    "render_prometheus",
    "span_forest",
    # profiling
    "ResourceProfiler",
    # regression sentinel
    "BENCH_SCHEMA_VERSION",
    "RegressionReport",
    "check_regressions",
    "compare_metrics",
    "flatten_bench_metrics",
    # stats
    "TraceSummary",
    "SpanStats",
    "summarize_events",
    "summarize_trace",
    "format_summary",
]
