"""Perf-regression sentinel over the committed ``BENCH_*.json`` artifacts.

The repo commits benchmark trajectories at the root (``BENCH_e2e.json``
today; ``BENCH_*.json`` as the suite grows). This module turns them into
a CI gate: parse the committed **baseline**, parse a **current** run (a
freshly regenerated artifact), flatten both into comparable scalar
metrics, and fail loudly when a metric moved the *wrong way* past a
tolerance band. Wired as the ``repro regress`` CLI subcommand and a CI
step (see ``docs/observability.md``).

Metric direction is inferred from the name: throughput-ish metrics
(``fps``, ``throughput``, ``speedup``, ``ratio`` named gains) must not
drop; time-ish metrics (``elapsed_s``, ``*_seconds``, ``*_ms``) must not
grow. Names with no recognizable direction are reported as ``ignored``
rather than silently gated — no hidden coverage.

Artifacts are versioned: schema v2 files carry ``"schema"`` and
``"trace"`` fields (written by ``benchmarks/conftest.py`` and
``bench_e2e_video.py`` since this PR); files without a schema field are
treated as v1 and parsed identically — the sentinel reads old and new
history.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigurationError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "MetricDelta",
    "RegressionReport",
    "flatten_bench_metrics",
    "load_bench_file",
    "metric_direction",
    "compare_metrics",
    "check_regressions",
]

#: Version stamped into freshly written bench artifacts.
BENCH_SCHEMA_VERSION = 2

#: Default relative tolerance band: a metric may move up to this
#: fraction the wrong way before the sentinel flags it. Benchmarks on
#: shared CI runners are noisy; 25% catches real regressions (a phase
#: going quadratic, a transport falling back) without paging on jitter.
DEFAULT_TOLERANCE = 0.25

_HIGHER_BETTER = ("fps", "throughput", "speedup", "over_pickle",
                  "over_serial", "over_shm", "over_baseline", "recall",
                  "rps")
_LOWER_BETTER = ("elapsed_s", "_seconds", "_ms", "latency", "overhead")


def metric_direction(name: str) -> int:
    """+1 when higher is better, -1 when lower is better, 0 unknown.

    Matched on the final path component of the flattened metric name so
    ``.../phase_seconds/connectivity`` classifies by ``phase_seconds``.
    """
    parts = name.lower().split("/")
    for component in reversed(parts):
        for marker in _HIGHER_BETTER:
            if marker in component:
                return +1
        for marker in _LOWER_BETTER:
            if marker in component:
                return -1
    return 0


def flatten_bench_metrics(payload: dict, prefix: str | None = None) -> dict:
    """Flatten a bench artifact into ``{metric_path: float}``.

    Understands the committed shape — a ``rows`` list whose entries are
    keyed by their identifying string fields (``resolution``, ``config``
    ...) — and generic nested dicts. Booleans, strings, and ``None`` are
    skipped (they are identity, not measurement).

    ``gate`` blocks get special treatment: each block (and each nested
    sub-block) carries a ``result`` string, and its numbers become
    metrics only when that result is a real verdict (``pass``/``fail``).
    A gate that recorded ``"skipped: ..."`` — e.g. the host had too few
    cores to make the comparison meaningful — contributes *nothing*:
    skipped gates are neutral, never a baseline a faster host could
    "regress" against. ``cores``/``baseline_cores`` stamps inside gate
    blocks are environment identity, not measurements.
    """
    bench = prefix if prefix is not None else str(
        payload.get("bench", "bench")
    )
    out = {}

    def walk(node, path):
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{path}/{key}")
        elif isinstance(node, list):
            for i, value in enumerate(node):
                walk(value, f"{path}[{i}]")
        elif isinstance(node, bool) or node is None or isinstance(node, str):
            return
        elif isinstance(node, (int, float)):
            out[path] = float(node)

    def walk_gate(node, path):
        # Each gate level is its own verdict scope: numbers count only
        # when this level's result is pass/fail. Skipped (or absent)
        # verdicts are neutral — the numbers were recorded for the
        # curious, not for the sentinel. Nested blocks carry their own
        # result and are judged independently.
        if not isinstance(node, dict):
            return
        result = node.get("result")
        gated = isinstance(result, str) and (
            result.startswith("pass") or result.startswith("fail")
        )
        for key, value in node.items():
            if isinstance(value, dict):
                walk_gate(value, f"{path}/{key}")
            elif gated and isinstance(value, (int, float)) \
                    and not isinstance(value, bool) \
                    and key not in ("cores", "baseline_cores"):
                out[f"{path}/{key}"] = float(value)

    for key, value in payload.items():
        if key in ("schema", "trace", "ts", "cores", "platform", "python",
                   "bench", "scale", "params", "shm_available"):
            continue  # run identity / environment, not perf metrics
        if key == "gate":
            walk_gate(value, f"{bench}/gate")
            continue
        if key == "rows" and isinstance(value, list):
            for row in value:
                if not isinstance(row, dict):
                    continue
                ident = "/".join(
                    str(row[k])
                    for k in ("resolution", "config", "name", "label",
                              "phase")
                    if isinstance(row.get(k), str)
                )
                base = f"{bench}/{ident}" if ident else f"{bench}/row"
                for rkey, rvalue in row.items():
                    if isinstance(rvalue, (dict, list)):
                        walk(rvalue, f"{base}/{rkey}")
                    elif isinstance(rvalue, bool) or isinstance(rvalue, str) \
                            or rvalue is None:
                        continue
                    elif isinstance(rvalue, (int, float)):
                        # Row geometry is identity, not a measurement.
                        if rkey in ("width", "height", "workers", "frames"):
                            continue
                        out[f"{base}/{rkey}"] = float(rvalue)
        else:
            walk(value, f"{bench}/{key}")
    return out


def load_bench_file(path) -> dict:
    """Parse one ``BENCH_*.json`` artifact; loud on malformed input."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read bench artifact {path}: {exc}")
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"bench artifact {path} must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    return payload


@dataclass
class MetricDelta:
    """One metric compared across baseline and current."""

    name: str
    baseline: float
    current: float
    direction: int  # +1 higher-better, -1 lower-better, 0 unknown
    ratio: float  # current / baseline (inf when baseline == 0)
    regressed: bool

    @property
    def change_pct(self) -> float:
        return (self.ratio - 1.0) * 100.0


@dataclass
class RegressionReport:
    """Everything ``repro regress`` computed, machine-readable."""

    baseline_files: list = field(default_factory=list)
    current_files: list = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE
    deltas: list = field(default_factory=list)
    ignored: list = field(default_factory=list)  # unknown-direction names
    missing: list = field(default_factory=list)  # in baseline, not current
    added: list = field(default_factory=list)  # in current, not baseline

    @property
    def regressions(self) -> list:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> dict:
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "ok": self.ok,
            "tolerance": self.tolerance,
            "baseline_files": [str(p) for p in self.baseline_files],
            "current_files": [str(p) for p in self.current_files],
            "n_compared": len(self.deltas),
            "regressions": [
                {
                    "metric": d.name,
                    "baseline": d.baseline,
                    "current": d.current,
                    "change_pct": round(d.change_pct, 2),
                    "direction": "higher-better" if d.direction > 0
                    else "lower-better",
                }
                for d in self.regressions
            ],
            "ignored": sorted(self.ignored),
            "missing": sorted(self.missing),
            "added": sorted(self.added),
        }

    def format_text(self) -> str:
        lines = [
            f"perf regression sentinel — tolerance ±{self.tolerance:.0%}",
            f"baseline: {', '.join(str(p) for p in self.baseline_files) or '-'}",
            f"current : {', '.join(str(p) for p in self.current_files) or '-'}",
            f"compared {len(self.deltas)} metric(s), "
            f"{len(self.ignored)} ignored (unknown direction), "
            f"{len(self.missing)} missing, {len(self.added)} new",
        ]
        for d in self.regressions:
            arrow = "↓" if d.direction > 0 else "↑"
            lines.append(
                f"  REGRESSION {d.name}: {d.baseline:g} -> {d.current:g} "
                f"({arrow} {abs(d.change_pct):.1f}%, allowed "
                f"{self.tolerance:.0%})"
            )
        if self.missing:
            lines.append(
                "  note: baseline metrics absent from the current run: "
                + ", ".join(sorted(self.missing)[:5])
                + ("..." if len(self.missing) > 5 else "")
            )
        lines.append("verdict: " + ("OK" if self.ok else
                                    f"{len(self.regressions)} regression(s)"))
        return "\n".join(lines)


def compare_metrics(baseline: dict, current: dict,
                    tolerance: float = DEFAULT_TOLERANCE) -> RegressionReport:
    """Compare two flattened metric dicts under a tolerance band.

    A higher-better metric regresses when
    ``current < baseline * (1 - tolerance)``; a lower-better one when
    ``current > baseline * (1 + tolerance)``. Unknown-direction metrics
    are listed, never gated.
    """
    if tolerance < 0:
        raise ConfigurationError(
            f"tolerance must be >= 0, got {tolerance}"
        )
    report = RegressionReport(tolerance=tolerance)
    for name in sorted(baseline):
        if name not in current:
            report.missing.append(name)
            continue
        base, cur = baseline[name], current[name]
        direction = metric_direction(name)
        if direction == 0:
            report.ignored.append(name)
            continue
        ratio = cur / base if base else float("inf")
        if direction > 0:
            regressed = cur < base * (1.0 - tolerance)
        else:
            regressed = cur > base * (1.0 + tolerance)
        report.deltas.append(
            MetricDelta(
                name=name, baseline=base, current=cur,
                direction=direction, ratio=ratio, regressed=regressed,
            )
        )
    report.added = [name for name in current if name not in baseline]
    return report


def check_regressions(baseline_paths, current_paths=None,
                      tolerance: float = DEFAULT_TOLERANCE) -> RegressionReport:
    """Run the sentinel over artifact files.

    ``baseline_paths`` are the committed ``BENCH_*.json`` files. With no
    ``current_paths``, the baseline is validated against itself — a
    parse check of the committed history that trivially passes, which is
    the CI default until a fresh run is supplied. Artifacts are matched
    by their ``bench`` field; a current file whose bench has no baseline
    contributes only ``added`` metrics.

    When both sides of a bench stamp a ``cores`` count and the counts
    differ, the sentinel **refuses the comparison** (exit 2 via the CLI)
    instead of producing a verdict: a 1-core laptop "regressing" against
    an 8-core CI baseline is hardware, not code, and silently passing
    because the laptop happened to be fast enough would be just as
    wrong.
    """
    baseline_paths = [Path(p) for p in baseline_paths]
    if not baseline_paths:
        raise ConfigurationError(
            "no baseline artifacts: expected at least one BENCH_*.json"
        )
    current_paths = [Path(p) for p in (current_paths or baseline_paths)]

    baseline, current = {}, {}
    cores = ({}, {})  # per-side {bench: cores}
    for side, paths in enumerate((baseline_paths, current_paths)):
        target = (baseline, current)[side]
        for path in paths:
            payload = load_bench_file(path)
            target.update(flatten_bench_metrics(payload))
            if isinstance(payload.get("cores"), int):
                cores[side][str(payload.get("bench", "bench"))] = \
                    payload["cores"]
    for bench in sorted(set(cores[0]) & set(cores[1])):
        if cores[0][bench] != cores[1][bench]:
            raise ConfigurationError(
                f"refusing cross-core-count comparison for bench "
                f"{bench!r}: baseline ran on {cores[0][bench]} core(s), "
                f"current on {cores[1][bench]} — perf ratios across "
                f"different hosts are not comparable; regenerate the "
                f"baseline on this host or compare like against like"
            )
    report = compare_metrics(baseline, current, tolerance=tolerance)
    report.baseline_files = baseline_paths
    report.current_files = current_paths
    return report
