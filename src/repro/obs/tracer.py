"""Nestable tracing spans with a near-zero-cost disabled path.

A :class:`Tracer` owns a sink, a metrics registry, and a span stack.
``tracer.span("sweep", index=3)`` opens a span; nesting follows the call
stack (a span opened while another is live records it as its parent), so
the engine's ``phase:distance_min`` spans nest under ``subiteration``
spans which nest under ``sweep`` spans.

Spans record wall-clock start (``time.time``, for aligning runs across
processes) and a monotonic duration (``time.perf_counter``). A span that
exits via an exception is emitted with ``status="error"`` and the
exception type in its attributes, then the exception propagates.

Every enabled tracer belongs to a **trace**: a 16-hex-char ``trace_id``
stamped on each emitted span/event. Worker processes construct their
tracer with the parent's ``trace_id``, a ``span_prefix`` that makes
their locally-counted span ids globally unique (``s0f3a1.00000002``),
and a ``root_parent`` pointing at the parent-side span their root spans
hang from — which is how a :class:`repro.parallel.ParallelRunner` run
stitches per-worker span trees into one trace (see
``docs/observability.md``).

The module-level :data:`NULL_TRACER` is shared by every code path that
was given no tracer: its ``span()`` returns a reusable no-op context
manager and its counter/gauge helpers return immediately, so the hot
paths stay within the <5% overhead budget when observability is off.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager

from .metrics import MetricsRegistry
from .sinks import NullSink

__all__ = ["Span", "Tracer", "NULL_TRACER", "NULL_SPAN", "new_trace_id"]

#: Event-schema version stamped into the ``meta`` event. v2 adds
#: ``trace`` (trace id) on meta/span/event records and optional
#: ``labels`` on counter/gauge/hist records; v1 files remain readable.
SCHEMA_VERSION = 2


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    return os.urandom(8).hex()


class Span:
    """One timed region. Mutate attributes via :meth:`set` while open."""

    __slots__ = ("name", "span_id", "parent_id", "start_wall", "start_mono",
                 "duration", "status", "attrs", "profile")

    def __init__(self, name, span_id, parent_id, attrs):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_wall = time.time()
        self.start_mono = time.perf_counter()
        self.duration = None
        self.status = "open"
        self.attrs = attrs
        self.profile = None  # resource snapshot when profiling is on

    def set(self, **attrs) -> "Span":
        """Attach key/value attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def as_event(self) -> dict:
        return {
            "ev": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "ts": self.start_wall,
            "dur": self.duration,
            "status": self.status,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Inert span handed out by disabled tracers; ``set`` is a no-op."""

    __slots__ = ()
    name = None
    span_id = None
    parent_id = None
    duration = None
    status = "disabled"

    def set(self, **attrs) -> "_NullSpan":
        return self


class _NullSpanContext:
    """Reusable context manager yielding :data:`NULL_SPAN`."""

    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()
_NULL_CTX = _NullSpanContext()


class Tracer:
    """Span emitter + metrics front-end over a single sink.

    Parameters
    ----------
    sink:
        Event destination. Defaults to :class:`NullSink`, which also
        disables the tracer entirely.
    enabled:
        Force-enable/disable; by default the tracer is enabled exactly
        when the sink is not a ``NullSink``.
    trace_id:
        The trace this tracer emits into. Auto-generated for enabled
        tracers; pass the parent's id to join an existing trace from a
        worker process.
    span_prefix:
        Prepended to every locally-generated span id. Workers use
        ``"s<stream>f<frame>a<attempt>."`` so ids from independent
        processes (each counting from 1) never collide inside one trace.
    root_parent:
        Parent span id assigned to root spans (spans opened with an
        empty stack). ``None`` (the default) leaves roots parentless;
        workers point it at the parent-side ``frame`` span.
    profile:
        Enable per-span resource profiling (CPU time, peak RSS, GC
        collections recorded as span attributes — see
        :mod:`repro.obs.profile`). Also switchable later via
        :meth:`enable_profiling`.

    Use as a context manager to guarantee the metric snapshot is flushed
    and the sink closed::

        with Tracer(JsonlSink("run.jsonl")) as tracer:
            result = sslic(image, tracer=tracer)
    """

    def __init__(self, sink=None, enabled=None, trace_id=None,
                 span_prefix: str = "", root_parent=None, profile=False):
        self.sink = sink if sink is not None else NullSink()
        self.enabled = (
            enabled if enabled is not None else not isinstance(self.sink, NullSink)
        )
        self.trace_id = trace_id if trace_id is not None else (
            new_trace_id() if self.enabled else None
        )
        self.span_prefix = span_prefix
        self.root_parent = root_parent
        self.metrics = MetricsRegistry()
        self._stack = []
        self._ids = itertools.count(1)
        self._emitted_meta = False
        self.profiler = None
        if profile:
            self.enable_profiling()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def start_span(self, name: str, **attrs) -> Span:
        """Open a span manually; pair with :meth:`end_span`.

        Prefer the :meth:`span` context manager; the manual pair exists
        for callers (like ``PhaseTimer``) that cannot use ``with``.
        """
        if not self.enabled:
            return NULL_SPAN
        if not self._emitted_meta:
            self._emitted_meta = True
            self.sink.emit(
                {"ev": "meta", "schema": SCHEMA_VERSION,
                 "trace": self.trace_id, "ts": time.time()}
            )
        parent = (
            self._stack[-1].span_id if self._stack else self.root_parent
        )
        span = Span(
            name, f"{self.span_prefix}{next(self._ids):08x}", parent,
            dict(attrs),
        )
        if self.profiler is not None:
            span.profile = self.profiler.snapshot()
        self._stack.append(span)
        return span

    def end_span(self, span, status: str = "ok") -> None:
        """Close ``span``, emit it, and pop it off the stack."""
        if span is NULL_SPAN or not self.enabled:
            return
        span.duration = time.perf_counter() - span.start_mono
        span.status = status
        if self.profiler is not None and span.profile is not None:
            span.attrs.update(self.profiler.delta(span.profile))
            span.profile = None
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order closes
            self._stack.remove(span)
        event = span.as_event()
        if self.trace_id is not None:
            event["trace"] = self.trace_id
        self.sink.emit(event)

    def span(self, name: str, **attrs):
        """Context manager for a span; tags ``status="error"`` on raise."""
        if not self.enabled:
            return _NULL_CTX
        return self._live_span(name, attrs)

    @contextmanager
    def _live_span(self, name, attrs):
        span = self.start_span(name, **attrs)
        try:
            yield span
        except BaseException as exc:
            span.attrs.setdefault("error_type", type(exc).__name__)
            self.end_span(span, status="error")
            raise
        else:
            self.end_span(span)

    def event(self, name: str, **attrs) -> None:
        """Emit an instantaneous point event (no duration)."""
        if not self.enabled:
            return
        parent = (
            self._stack[-1].span_id if self._stack else self.root_parent
        )
        self.sink.emit(
            {"ev": "event", "name": name, "parent": parent,
             "trace": self.trace_id, "ts": time.time(), "attrs": attrs}
        )

    @property
    def current_span(self):
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def enable_profiling(self) -> "Tracer":
        """Attach a :class:`repro.obs.profile.ResourceProfiler`.

        Subsequent spans carry ``cpu_user_s`` / ``cpu_sys_s`` /
        ``rss_peak_kb`` / ``gc_collections`` attributes. Opt-in because
        the per-span sampling cost, while small, is not zero (budgeted
        at <= 5% wall time — gated in ``benchmarks/bench_e2e_video.py``).
        """
        if self.enabled and self.profiler is None:
            from .profile import ResourceProfiler

            self.profiler = ResourceProfiler()
        return self

    # ------------------------------------------------------------------
    # Metrics front-end (no-ops when disabled)
    # ------------------------------------------------------------------
    def count(self, name: str, amount=1, labels=None) -> None:
        if self.enabled:
            self.metrics.counter(name, labels=labels).inc(amount)

    def gauge(self, name: str, value, labels=None) -> None:
        if self.enabled:
            self.metrics.gauge(name, labels=labels).set(value)

    def observe(self, name: str, value, buckets, labels=None) -> None:
        if self.enabled:
            self.metrics.histogram(name, buckets, labels=labels).observe(value)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Emit the current metric snapshot and flush the sink."""
        if self.enabled:
            self.metrics.emit_to(self.sink)
        self.sink.flush()

    def close(self) -> None:
        self.flush()
        self.sink.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


#: Shared disabled tracer used whenever no tracer is supplied.
NULL_TRACER = Tracer(NullSink())
