"""Event sinks: where tracer spans and metric snapshots go.

Every event is a flat JSON-serializable dict with an ``"ev"`` type field
(see ``docs/observability.md`` for the schema). Sinks are deliberately
dumb — they receive finished events and persist them; all buffering and
formatting decisions live here so the :class:`~repro.obs.tracer.Tracer`
stays allocation-free on the disabled path.

Three implementations:

* :class:`NullSink` — discards everything; the default, so instrumented
  code pays near-zero cost when observability is off.
* :class:`MemorySink` — keeps events in a list; for tests and in-process
  consumers.
* :class:`JsonlSink` — one compact JSON object per line, append-friendly
  and greppable; the on-disk run-telemetry format.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["Sink", "NullSink", "MemorySink", "JsonlSink", "read_jsonl"]


class Sink:
    """Abstract event consumer. Subclasses override :meth:`emit`."""

    def emit(self, event: dict) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        self.flush()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class NullSink(Sink):
    """Discards every event (the disabled-observability default)."""

    def emit(self, event: dict) -> None:
        pass


class MemorySink(Sink):
    """Accumulates events in :attr:`events` (insertion order)."""

    def __init__(self):
        self.events = []
        self.closed = False

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        super().close()
        self.closed = True

    def by_type(self, ev: str) -> list:
        """Events whose ``"ev"`` field equals ``ev``."""
        return [e for e in self.events if e.get("ev") == ev]


class JsonlSink(Sink):
    """Writes one compact JSON object per line to ``path``.

    The file is opened lazily on the first event and truncated (a sink
    represents one run's telemetry; use distinct paths per run). Events
    must be JSON-serializable; numpy scalars are coerced via ``float``.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._fh = None
        self.n_events = 0

    def _coerce(self, obj):
        # numpy ints/floats/bools and other scalar-likes -> builtins.
        if hasattr(obj, "item"):
            return obj.item()
        raise TypeError(f"not JSON serializable: {type(obj).__name__}")

    def emit(self, event: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
        line = json.dumps(event, separators=(",", ":"), default=self._coerce)
        self._fh.write(line + "\n")
        self.n_events += 1

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None


def read_jsonl(path) -> list:
    """Parse a JSONL telemetry file back into a list of event dicts.

    Blank lines are skipped; a malformed line raises ``ValueError`` with
    its line number (telemetry is machine-written, so corruption should
    be loud, not silently dropped).
    """
    events = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed JSONL: {exc}") from exc
    return events
