"""Event sinks: where tracer spans and metric snapshots go.

Every event is a flat JSON-serializable dict with an ``"ev"`` type field
(see ``docs/observability.md`` for the schema). Sinks are deliberately
dumb — they receive finished events and persist them; all buffering and
formatting decisions live here so the :class:`~repro.obs.tracer.Tracer`
stays allocation-free on the disabled path.

Implementations:

* :class:`NullSink` — discards everything; the default, so instrumented
  code pays near-zero cost when observability is off.
* :class:`MemorySink` — keeps events in a list; for tests and in-process
  consumers.
* :class:`JsonlSink` — one compact JSON object per line, append-friendly
  and greppable; the on-disk run-telemetry format.
* :class:`SpanRingSink` — a bounded ring of recent events; what the
  :class:`~repro.obs.export.TelemetryServer` serves from ``/spans``.
* :class:`TeeSink` — fans one event stream out to several sinks (e.g.
  JSONL on disk *and* the telemetry server's ring).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

__all__ = [
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "SpanRingSink",
    "TeeSink",
    "read_jsonl",
]


class Sink:
    """Abstract event consumer. Subclasses override :meth:`emit`."""

    def emit(self, event: dict) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        self.flush()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class NullSink(Sink):
    """Discards every event (the disabled-observability default)."""

    def emit(self, event: dict) -> None:
        pass


class MemorySink(Sink):
    """Accumulates events in :attr:`events` (insertion order)."""

    def __init__(self):
        self.events = []
        self.closed = False

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        super().close()
        self.closed = True

    def by_type(self, ev: str) -> list:
        """Events whose ``"ev"`` field equals ``ev``."""
        return [e for e in self.events if e.get("ev") == ev]


class SpanRingSink(Sink):
    """Keeps the newest ``maxlen`` events in a ring buffer.

    Backs the telemetry server's ``/spans`` endpoint: a long batch run
    stays scrapeable without unbounded memory. ``deque.append`` is
    thread-safe under the GIL, so the serving thread can snapshot
    (:meth:`events`) while the run emits.
    """

    def __init__(self, maxlen: int = 1024):
        self._ring = deque(maxlen=int(maxlen))
        self.n_events = 0

    def emit(self, event: dict) -> None:
        self._ring.append(event)
        self.n_events += 1

    def events(self) -> list:
        """A consistent snapshot of the buffered events (oldest first)."""
        return list(self._ring)

    def by_type(self, ev: str) -> list:
        return [e for e in self.events() if e.get("ev") == ev]

    def __len__(self) -> int:
        return len(self._ring)


class TeeSink(Sink):
    """Replicates every event to each wrapped sink, in order.

    ``flush``/``close`` fan out too; a failing downstream sink does not
    stop the others from closing (the first error propagates after all
    sinks were attempted).
    """

    def __init__(self, *sinks):
        self.sinks = [s for s in sinks if s is not None]

    def emit(self, event: dict) -> None:
        first_error = None
        for sink in self.sinks:
            try:
                sink.emit(event)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def _fan_out(self, method: str) -> None:
        first_error = None
        for sink in self.sinks:
            try:
                getattr(sink, method)()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def flush(self) -> None:
        self._fan_out("flush")

    def close(self) -> None:
        self._fan_out("close")


class JsonlSink(Sink):
    """Writes one compact JSON object per line to ``path``.

    The file is opened lazily on the first event. By default it is
    truncated (a sink represents one run's telemetry; use distinct paths
    per run); pass ``append=True`` to add to an existing file — in
    append mode each event is a single ``write()`` of one line, so
    concurrent writers (multiple processes sharing one telemetry file)
    interleave whole lines rather than corrupting each other, per POSIX
    ``O_APPEND`` semantics.

    Events should be JSON-serializable; numpy scalars are coerced via
    ``.item()`` and anything else non-serializable is degraded to its
    ``repr`` — mid-run telemetry must never kill the run it is
    observing.
    """

    def __init__(self, path, append: bool = False):
        self.path = Path(path)
        self.append = bool(append)
        self._fh = None
        self.n_events = 0

    def _coerce(self, obj):
        # numpy ints/floats/bools and other scalar-likes -> builtins;
        # everything else degrades to repr instead of raising.
        if hasattr(obj, "item"):
            try:
                return obj.item()
            except Exception:
                pass
        return repr(obj)

    def emit(self, event: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open(
                "a" if self.append else "w", encoding="utf-8"
            )
        line = json.dumps(event, separators=(",", ":"), default=self._coerce)
        self._fh.write(line + "\n")
        self.n_events += 1

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None


def read_jsonl(path) -> list:
    """Parse a JSONL telemetry file back into a list of event dicts.

    Blank lines are skipped; a malformed line raises ``ValueError`` with
    its line number (telemetry is machine-written, so corruption should
    be loud, not silently dropped).
    """
    events = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed JSONL: {exc}") from exc
    return events
