"""Run manifests: one JSON artifact that makes a run reproducible.

A :class:`RunManifest` captures what was run (command + params), how
(seed, versions, git state), and what came out (final metrics), so a
trace file plus its manifest fully describe a run without consulting the
shell history. The schema is flat JSON — see ``docs/observability.md``.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path

__all__ = ["RunManifest", "git_describe"]

#: Manifest schema version.
MANIFEST_SCHEMA = 1


def git_describe(cwd=None) -> str:
    """``git describe --always --dirty`` of the source tree, or ``None``.

    Failure (no git binary, not a repo, timeout) is expected in deployed
    environments and reported as ``None`` rather than raised.
    """
    if cwd is None:
        cwd = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _versions() -> dict:
    from .. import __version__

    versions = {
        "python": platform.python_version(),
        "repro": __version__,
    }
    numpy = sys.modules.get("numpy")
    if numpy is not None:
        versions["numpy"] = numpy.__version__
    return versions


class RunManifest:
    """Mutable manifest builder; ``start`` it, ``finish`` it, ``write`` it.

    Parameters
    ----------
    command:
        What ran (``"segment"``, ``"experiment:fig6"``, a bench name...).
    params:
        JSON-serializable run parameters.
    seed:
        The RNG seed, surfaced top-level because reproducibility hinges
        on it.
    extra:
        Any further top-level fields (e.g. input path, scale).
    """

    def __init__(self, command: str, params: dict | None = None, seed=None, **extra):
        self.command = command
        self.params = dict(params) if params else {}
        self.seed = seed
        self.extra = extra
        self.metrics = {}
        self.status = "running"
        self.started_at = time.time()
        self.finished_at = None
        self.git = git_describe()
        self.versions = _versions()

    @classmethod
    def start(cls, command: str, params: dict | None = None, seed=None, **extra):
        return cls(command, params=params, seed=seed, **extra)

    def finish(self, status: str = "ok", **metrics) -> "RunManifest":
        """Record final metrics and stamp the end time; chainable."""
        self.metrics.update(metrics)
        self.status = status
        self.finished_at = time.time()
        return self

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        doc = {
            "schema": MANIFEST_SCHEMA,
            "command": self.command,
            "params": self.params,
            "seed": self.seed,
            "git": self.git,
            "versions": self.versions,
            "status": self.status,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration_s": (
                self.finished_at - self.started_at
                if self.finished_at is not None
                else None
            ),
            "metrics": self.metrics,
        }
        doc.update(self.extra)
        return doc

    def write(self, path) -> Path:
        """Serialize to ``path`` as indented JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, default=_coerce) + "\n")
        return path

    @staticmethod
    def read(path) -> dict:
        """Load a previously written manifest as a plain dict."""
        return json.loads(Path(path).read_text())


def _coerce(obj):
    if hasattr(obj, "item"):  # numpy scalars
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")
