"""Legacy setup shim: enables `pip install -e . --no-use-pep517` on
offline environments that lack the `wheel` package (PEP 660 editable
installs require it). All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
