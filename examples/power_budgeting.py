#!/usr/bin/env python
"""Power budgeting: the accelerator inside an SoC power envelope.

Two system-integration questions the paper's average-power number cannot
answer, answered from the same calibrated models:

1. **When does the frame draw its power?** — the time-resolved power
   trace of one 1080p frame (color conversion burst, nine cluster-update
   plateaus with center-update dips), whose integral equals the reported
   1.6 mJ/frame.
2. **What does a lighter stream buy?** — per-resolution DVFS: the slowest
   clock (and its supply) that still makes 30 fps, and the energy saved
   versus running flat-out, quantifying the paper's closing remark about
   "ultimately reducing the clock rate".

Run:  python examples/power_budgeting.py
"""

import numpy as np

from repro.analysis import render_table
from repro.hw import (
    AcceleratorModel,
    frame_power_trace,
    min_real_time_point,
    report_at,
    table4_configs,
)
from repro.viz import ascii_xy_plot


def show_power_trace() -> None:
    model = AcceleratorModel(table4_configs()["1920x1080"])
    trace = frame_power_trace(model)
    print(f"1080p frame: {trace.total_ms:.1f} ms, "
          f"average {trace.average_mw:.1f} mW, peak {trace.peak_mw:.1f} mW, "
          f"energy {trace.energy_mj:.2f} mJ\n")
    ts = np.linspace(0, trace.total_ms * 0.999, 200)
    print(ascii_xy_plot(
        {"power": (ts, trace.sample(ts))},
        x_label="time (ms)",
        y_label="mW",
        title="Frame power trace (cluster-update plateaus, center-update dips)",
    ))
    print()


def show_dvfs_table() -> None:
    rows = []
    for name, cfg in table4_configs().items():
        nominal = AcceleratorModel(cfg).report()
        pt = min_real_time_point(cfg)
        scaled = report_at(cfg, pt)
        rows.append(
            [
                name,
                f"{nominal.energy_per_frame_mj:.2f} mJ",
                f"{pt.frequency_hz / 1e9:.2f} GHz @ {pt.voltage:.2f} V",
                f"{scaled.energy_per_frame_mj:.2f} mJ",
                f"{scaled.power_mw:.0f} mW",
                f"{100 * (1 - scaled.energy_per_frame_mj / nominal.energy_per_frame_mj):.0f}%",
            ]
        )
    print(render_table(
        ["stream", "energy @1.6 GHz", "min real-time point", "energy scaled",
         "power scaled", "saved"],
        rows,
        title="DVFS per stream: slowest clock that still makes 30 fps",
    ))
    print("\n1080p sits at the real-time edge (no headroom); VGA streams can "
          "run at ~1 GHz near-threshold and cut frame energy by ~2/3 — the "
          "quantified version of the paper's 'scale gracefully down' remark.")


def main() -> None:
    show_power_trace()
    show_dvfs_table()


if __name__ == "__main__":
    main()
