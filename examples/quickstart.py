#!/usr/bin/env python
"""Quickstart: segment an image with S-SLIC and inspect the result.

Generates a synthetic scene (any (H, W, 3) uint8 RGB array works the same
way), runs S-SLIC, scores the segmentation against the scene's ground
truth, and writes three visualizations next to this script:

* ``quickstart_boundaries.ppm``  — superpixel boundaries over the image,
* ``quickstart_mean_colors.ppm`` — each superpixel filled with its mean color,
* ``quickstart_labels.ppm``      — the raw label map in random colors.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro import SceneConfig, generate_scene, sslic
from repro.metrics import (
    achievable_segmentation_accuracy,
    boundary_recall,
    compactness,
    superpixel_size_stats,
    undersegmentation_error,
)
from repro.data import write_ppm
from repro.viz import draw_boundaries, label_color_image, mean_color_image


def main() -> None:
    out_dir = Path(__file__).parent

    # A 240x360 scene with known ground-truth regions.
    scene = generate_scene(
        SceneConfig(height=240, width=360, n_regions=16, n_disks=4), seed=7
    )
    print(f"scene: {scene.image.shape[1]}x{scene.image.shape[0]} px, "
          f"{scene.n_gt_regions} ground-truth regions")

    # S-SLIC with the paper's defaults: pixel-perspective architecture,
    # 0.5 subsample ratio, 10 full-sweep iteration budget.
    result = sslic(scene.image, n_superpixels=400, compactness=10.0)
    print(f"S-SLIC: {result.n_superpixels} superpixels, "
          f"{result.iterations} sweeps ({result.subiterations} sub-iterations), "
          f"converged={result.converged}")
    print("phase timings (s):",
          {k: round(v, 4) for k, v in result.timings.items()})

    # Quality against the ground truth.
    labels, gt = result.labels, scene.gt_labels
    print(f"undersegmentation error: {undersegmentation_error(labels, gt):.4f}")
    print(f"boundary recall:         {boundary_recall(labels, gt):.4f}")
    print(f"achievable seg accuracy: {achievable_segmentation_accuracy(labels, gt):.4f}")
    print(f"compactness:             {compactness(labels):.4f}")
    print("size stats:", superpixel_size_stats(labels))

    # Visualizations.
    write_ppm(out_dir / "quickstart_boundaries.ppm",
              draw_boundaries(scene.image, labels))
    write_ppm(out_dir / "quickstart_mean_colors.ppm",
              mean_color_image(scene.image, labels))
    write_ppm(out_dir / "quickstart_labels.ppm", label_color_image(labels))
    print(f"wrote quickstart_*.ppm to {out_dir}")


if __name__ == "__main__":
    main()
