#!/usr/bin/env python
"""Accelerator versus GPU platforms: the Table 5 story on a real frame.

Runs the *functional* accelerator pipeline (LUT color conversion + 8-bit
fixed-point distances) on an image, verifies the quantized result tracks
the float reference, then prints the platform comparison the paper's
abstract headlines: >500x the energy efficiency of a Tesla K20 and >250x a
Tegra K1 at 30 fps.

Run:  python examples/accelerator_vs_gpu.py
"""

import numpy as np

from repro import AcceleratorModel, SceneConfig, generate_scene, sslic
from repro.analysis import render_table
from repro.baselines import table5_comparison
from repro.hw import table4_configs
from repro.metrics import boundary_recall, undersegmentation_error


def main() -> None:
    # ---------------------------------------------------------------
    # Functional check: the 8-bit hardware pipeline on a real frame.
    # ---------------------------------------------------------------
    scene = generate_scene(
        SceneConfig(height=192, width=288, n_regions=14, n_disks=3), seed=11
    )
    model = AcceleratorModel()  # the paper's 1080p configuration
    hw_result, frame_report = model.simulate(scene.image, n_superpixels=200)
    ref_result = sslic(
        scene.image, n_superpixels=200,
        max_iterations=hw_result.params.max_iterations,
        convergence_threshold=0.0,
    )

    rows = [
        ["float64 reference",
         f"{undersegmentation_error(ref_result.labels, scene.gt_labels):.4f}",
         f"{boundary_recall(ref_result.labels, scene.gt_labels):.4f}"],
        ["8-bit accelerator pipeline",
         f"{undersegmentation_error(hw_result.labels, scene.gt_labels):.4f}",
         f"{boundary_recall(hw_result.labels, scene.gt_labels):.4f}"],
    ]
    print(render_table(
        ["datapath", "USE", "boundary recall"], rows,
        title="Functional check: quantized pipeline vs float reference",
    ))
    agreement = (hw_result.labels == ref_result.labels).mean()
    print(f"pixel-level label agreement: {100 * agreement:.1f}%  "
          "(disagreements sit in texture-flat interiors where the "
          "assignment is ambiguous; the quality metrics above show the "
          "8-bit datapath is lossless where it matters)\n")

    # ---------------------------------------------------------------
    # Platform comparison at the paper's 1080p / K=5000 operating point.
    # ---------------------------------------------------------------
    accel = AcceleratorModel(table4_configs()["1920x1080"]).report()
    cmp = table5_comparison(accel)
    rows = [
        [row.name, row.algorithm, f"{row.cores}",
         f"{row.avg_power_w * 1e3:.0f} mW",
         f"{row.latency_ms:.1f} ms", f"{row.fps:.1f}",
         f"{row.energy_per_frame_mj_norm:.1f} mJ",
         "yes" if row.real_time else "no"]
        for row in cmp["rows"].values()
    ]
    print(render_table(
        ["platform", "algo", "cores", "avg power", "latency", "fps",
         "energy/frame (16nm-norm)", "30 fps?"],
        rows,
        title="Table 5: platform comparison (1080p, K=5000)",
    ))
    print(f"\nenergy efficiency vs Tesla K20: {cmp['efficiency_vs_k20']:.0f}x"
          f"   vs Tegra K1: {cmp['efficiency_vs_tk1']:.0f}x")
    print("(paper: 'over 500x more energy efficient than K20 and over 250x "
          "more efficient than K1, while meeting the 30 fps requirement')")


if __name__ == "__main__":
    main()
