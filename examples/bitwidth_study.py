#!/usr/bin/env python
"""Bit-width study: quality and hardware cost versus datapath width.

Reproduces Section 6.1's two-sided argument in one place:

* quality side — rerun S-SLIC with the fully quantized pipeline at each
  width and measure USE/boundary-recall degradation against float64;
* cost side — the accelerator model's area and energy at each width.

The product of the two is the design decision: 8 bits is the narrowest
width whose quality loss is negligible, and it halves the multiplier area
relative to 12 bits.

Run:  python examples/bitwidth_study.py          (quick corpus)
      REPRO_BENCH_SCALE=full python examples/bitwidth_study.py
"""

import os

from repro.analysis import render_table, run_bitwidth_sweep, sweep_datapath_widths
from repro.analysis.experiments import EVAL_COMPACTNESS, eval_dataset, _eval_k
from repro.viz import ascii_xy_plot

WIDTHS = (4, 5, 6, 7, 8, 10, 12)


def main() -> None:
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    dataset = eval_dataset(scale)
    print(f"corpus: {len(dataset)} scenes at scale={scale!r}\n")

    quality = run_bitwidth_sweep(
        dataset, _eval_k(scale), widths=WIDTHS, iterations=5,
        compactness=EVAL_COMPACTNESS,
    )
    cost = {r.config.bits: r for r in sweep_datapath_widths(WIDTHS)}

    rows = []
    for p in quality:
        if p.bits == 0:
            rows.append(["float64", f"{p.use:.4f}", f"{p.recall:.4f}",
                         "-", "-", "-"])
        else:
            c = cost[p.bits]
            rows.append(
                [p.label, f"{p.use:.4f}", f"{p.recall:.4f}",
                 f"{p.delta_use:+.4f}", f"{c.area_mm2:.4f}",
                 f"{c.energy_per_frame_mj:.2f}"]
            )
    print(render_table(
        ["datapath", "USE", "recall", "dUSE", "area mm2", "mJ/frame"],
        rows,
        title="Quality and cost vs datapath width (paper Section 6.1)",
    ))

    fixed = [p for p in quality if p.bits > 0]
    print(ascii_xy_plot(
        {
            "quality loss (dUSE)": (
                [p.bits for p in fixed], [p.delta_use for p in fixed]
            ),
        },
        x_label="bits",
        y_label="USE increase",
        title="The knee: error becomes noticeable below 8 bits",
    ))
    eight = next(p for p in fixed if p.bits == 8)
    print(f"\nat 8 bits: +{eight.delta_use:.4f} USE, "
          f"-{eight.delta_recall:.4f} recall "
          "(paper: +0.003 USE, -0.001 recall on the Berkeley corpus)")
    print("conclusion: adopt the 8-bit fixed-point datapath, as the paper does.")


if __name__ == "__main__":
    main()
