#!/usr/bin/env python
"""Downstream applications: what the superpixels are *for*.

The paper's introduction motivates superpixels as preprocessing that
reduces later pipeline complexity ("object classification, depth
estimation, and region segmentation"). This example runs two such
consumers from ``repro.apps`` on an S-SLIC segmentation:

1. **Region segmentation** — greedy region-adjacency-graph merging from
   ~400 superpixels down to the scene's object count, scored against the
   ground truth. The merge works on the superpixel graph (~K nodes), not
   the pixel grid (~N pixels): the complexity reduction in action.
2. **Image abstraction / compression** — the superpixel codec's
   rate/distortion sweep: bits-per-pixel and PSNR as a function of K.

Run:  python examples/segmentation_applications.py
"""

from repro import SceneConfig, generate_scene, sslic
from repro.analysis import render_table
from repro.apps import SuperpixelCodec, merge_regions
from repro.metrics import achievable_segmentation_accuracy, undersegmentation_error


def main() -> None:
    scene = generate_scene(
        SceneConfig(height=240, width=360, n_regions=12, n_disks=3), seed=5
    )
    result = sslic(scene.image, n_superpixels=400, max_iterations=8)
    print(f"S-SLIC: {result.n_superpixels} superpixels on a "
          f"{scene.image.shape[1]}x{scene.image.shape[0]} scene with "
          f"{scene.n_gt_regions} ground-truth regions\n")

    # ------------------------------------------------------------------
    # Application 1: region segmentation by RAG merging.
    # ------------------------------------------------------------------
    rows = []
    for target in (64, 32, scene.n_gt_regions):
        merged = merge_regions(result.labels, scene.image, n_regions=target)
        rows.append(
            [
                target,
                merged.n_regions,
                f"{achievable_segmentation_accuracy(merged.labels, scene.gt_labels):.4f}",
                f"{undersegmentation_error(merged.labels, scene.gt_labels):.4f}",
            ]
        )
    print(render_table(
        ["target regions", "got", "achievable accuracy", "USE"],
        rows,
        title="Region segmentation via superpixel RAG merging",
    ))
    print("Merging operates on the ~400-node superpixel graph instead of "
          f"the {scene.image.shape[0] * scene.image.shape[1]}-pixel grid.\n")

    # ------------------------------------------------------------------
    # Application 2: superpixel image code (rate/distortion).
    # ------------------------------------------------------------------
    codec = SuperpixelCodec()
    rows = []
    for k in (50, 150, 400, 1000):
        seg = sslic(scene.image, n_superpixels=k, max_iterations=6)
        rd = codec.rate_distortion(scene.image, seg.labels)
        rows.append(
            [
                rd["n_superpixels"],
                f"{rd['bits_per_pixel']:.2f}",
                f"{rd['compression_ratio']:.1f}x",
                f"{rd['psnr_db']:.1f} dB",
            ]
        )
    print(render_table(
        ["superpixels", "bits/pixel", "vs raw 24 bpp", "PSNR"],
        rows,
        title="Superpixel image code: rate/distortion vs K",
    ))


if __name__ == "__main__":
    main()
