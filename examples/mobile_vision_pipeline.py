#!/usr/bin/env python
"""Mobile vision pipeline: real-time superpixel preprocessing of a video.

The paper's motivating scenario (Section 1): superpixel segmentation as a
preprocessing stage for mobile applications — autonomous vehicles, AR,
robotics — where the camera delivers a continuous stream and the budget is
30 fps. This example:

1. synthesizes a short "camera" sequence (a scene with global motion and
   per-frame sensor noise),
2. segments every frame with S-SLIC, warm-starting each frame from the
   previous frame's centers and labels (temporal coherence — the kind of
   system-level optimization the accelerator's external-memory state
   enables for free),
3. reports per-frame quality and convergence with and without warm start,
4. projects the stream onto the hardware: what the Table 4 accelerator
   configuration would deliver for this resolution.

Run:  python examples/mobile_vision_pipeline.py
"""

import numpy as np

from repro import AcceleratorConfig, AcceleratorModel, Resolution, SceneConfig, sslic
from repro.data import VideoSequence
from repro.metrics import boundary_recall, undersegmentation_error


def make_stream(n_frames: int, seed: int = 3):
    """A hand-held-camera sequence (see :class:`repro.data.VideoSequence`).

    Shake rather than constant pan: S-SLIC's static 9-candidate tiling
    assumes centers stay near their grid cells, so warm starting pays off
    when inter-frame motion is bounded (the common mobile case between
    keyframes); sustained panning needs motion-compensated re-anchoring,
    which is out of scope here.
    """
    seq = VideoSequence(
        n_frames,
        config=SceneConfig(height=192, width=288, n_regions=14, n_disks=3, noise=0.0),
        motion="shake",
        amplitude=3.0,
        noise_sigma=4.0,
        seed=seed,
    )
    return [(frame.image, frame.gt_labels) for frame in seq]


def run_stream(frames, k: int, warm: bool):
    """Segment the stream; returns per-frame (sweeps, USE, recall)."""
    stats = []
    centers = labels = None
    for image, gt in frames:
        result = sslic(
            image,
            n_superpixels=k,
            max_iterations=10,
            convergence_threshold=0.3,
            warm_centers=centers if warm else None,
            warm_labels=labels if warm else None,
        )
        if warm:
            centers, labels = result.centers, result.labels
        stats.append(
            (
                result.iterations,
                undersegmentation_error(result.labels, gt),
                boundary_recall(result.labels, gt),
            )
        )
    return stats


def main() -> None:
    frames = make_stream(8)
    k = 250
    print(f"stream: {len(frames)} frames of "
          f"{frames[0][0].shape[1]}x{frames[0][0].shape[0]}, K={k}\n")

    for warm in (False, True):
        stats = run_stream(frames, k, warm)
        label = "warm-started " if warm else "cold-started "
        sweeps = [s[0] for s in stats]
        print(f"{label}S-SLIC: sweeps per frame = {sweeps}")
        print(f"  mean USE {np.mean([s[1] for s in stats]):.4f}, "
              f"mean recall {np.mean([s[2] for s in stats]):.4f}, "
              f"mean sweeps {np.mean(sweeps):.1f}")
    print("\nWarm starting converges in fewer sweeps at equal quality — "
          "the temporal analogue of S-SLIC's subsampling idea.\n")

    # Hardware projection for this stream's resolution.
    h, w = frames[0][0].shape[:2]
    cfg = AcceleratorConfig(
        resolution=Resolution(w, h),
        n_superpixels=k,
        buffer_kb_per_channel=1.0,
    )
    report = AcceleratorModel(cfg).report()
    print(f"accelerator projection at {w}x{h}, K={k}:")
    print(f"  {report.latency_ms:.2f} ms/frame ({report.fps:.0f} fps), "
          f"{report.power_mw:.1f} mW, "
          f"{report.energy_per_frame_mj * 1e3:.0f} uJ/frame, "
          f"{report.area_mm2:.3f} mm^2")
    print(f"  real-time (30 fps): {'yes' if report.real_time else 'no'}")


if __name__ == "__main__":
    main()
