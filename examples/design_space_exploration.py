#!/usr/bin/env python
"""The paper's design space exploration, end to end.

Walks the three axes of Section 6 — cluster-unit parallelism, datapath
width, scratchpad buffer size — plus the multi-core extension, and arrives
at the published design point (9-9-6 ways, 8 bits, 4 kB buffers, one core)
by the same reasoning the paper uses.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis import (
    render_table,
    sweep_buffer_sizes,
    sweep_cluster_configs,
    sweep_cores,
    sweep_datapath_widths,
)
from repro.hw import REAL_TIME_MS, AcceleratorModel, table4_configs


def explore_parallelism() -> None:
    print("=" * 72)
    print("Step 1 — Cluster Update Unit parallelism (Table 3)")
    reports = sweep_cluster_configs()
    rows = [
        [r.label, f"{r.area_mm2:.4f}", f"{r.power_mw:.1f}",
         r.latency_cycles, f"{r.throughput_pixels_per_cycle:.3f}",
         f"{r.time_ms:.1f}", f"{r.energy_uj:.1f}"]
        for r in reports
    ]
    print(render_table(
        ["config", "mm2", "mW", "latency", "px/cyc", "ms/iter", "uJ/iter"], rows
    ))
    full = reports[-1]
    print(f"-> choose {full.label}: 9x the throughput for ~equal energy; "
          "only a fully-pipelined unit sustains 30 fps at 1080p.\n")


def explore_bitwidth() -> None:
    print("=" * 72)
    print("Step 2 — datapath width (Section 6.1's cost side)")
    rows = []
    for report in sweep_datapath_widths([6, 7, 8, 10, 12]):
        rows.append(
            [f"{report.config.bits}-bit", f"{report.area_mm2:.4f}",
             f"{report.power_mw:.1f}", f"{report.energy_per_frame_mj:.2f}"]
        )
    print(render_table(["datapath", "area mm2", "power mW", "mJ/frame"], rows))
    print("-> 8 bits: the quality experiment (bench_sec61) shows the error "
          "knee sits below 8 bits, so the narrowest near-lossless width wins.\n")


def explore_buffers() -> None:
    print("=" * 72)
    print("Step 3 — scratchpad buffer size (Fig 6)")
    rows = []
    for report in sweep_buffer_sizes([1, 2, 4, 8, 16, 64]):
        rows.append(
            [f"{report.config.buffer_kb_per_channel:.0f} kB",
             f"{report.latency_ms:.2f}", f"{report.fps:.1f}",
             f"{report.area_mm2:.3f}",
             "yes" if report.real_time else "no"]
        )
    print(render_table(
        ["buffer/ch", "ms/frame", "fps", "area mm2", "real-time"], rows,
        title=f"(real-time budget: {REAL_TIME_MS:.1f} ms)",
    ))
    print("-> 4 kB: the smallest buffer that crosses 30 fps; bigger buffers "
          "buy <1 ms for measurable area.\n")


def explore_cores() -> None:
    print("=" * 72)
    print("Step 4 — multi-core scaling (extension)")
    rows = []
    for report in sweep_cores([1, 2, 4, 8]):
        rows.append(
            [report.config.n_cores, f"{report.latency_ms:.1f}",
             f"{report.fps:.1f}", f"{report.area_mm2:.3f}",
             f"{report.energy_per_frame_mj:.2f}"]
        )
    print(render_table(["cores", "ms/frame", "fps", "area mm2", "mJ/frame"], rows))
    print("-> one core suffices: the shared DRAM interface and the "
          "per-superpixel center update bound the speedup (Amdahl), so "
          "extra cores buy little at real area cost.\n")


def main() -> None:
    explore_parallelism()
    explore_bitwidth()
    explore_buffers()
    explore_cores()

    print("=" * 72)
    print("Chosen design (= the paper's Table 4, 1080p column):")
    report = AcceleratorModel(table4_configs()["1920x1080"]).report()
    print(f"  9-9-6 ways, 8-bit datapath, 4 kB buffers, 1 core")
    print(f"  {report.latency_ms:.1f} ms/frame ({report.fps:.1f} fps), "
          f"{report.power_mw:.0f} mW, {report.energy_per_frame_mj:.2f} mJ/frame, "
          f"{report.area_mm2:.3f} mm^2")


if __name__ == "__main__":
    main()
