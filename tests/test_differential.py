"""Differential tests: the assignment kernels vs. independent references.

Three layers of cross-checking, per the ISSUE-2 test harness:

1. **PPA vs. a naive per-pixel reference** — ``assign_ppa`` (vectorized,
   chunked) must be *bit-identical* to a transparent double-loop argmin
   over the same 9-candidate sets, including the tie rule (lowest
   candidate slot wins, like the hardware 9:1 minimum tree).
2. **CPA center-perspective vs. pixel-perspective** — ``assign_cpa``
   scans a +/-ceil(S) window per center keeping running minima; the
   reference recomputes the same assignment from the pixel's perspective
   (masked argmin over every center whose window covers the pixel).
   Identical output proves the window bookkeeping and the strict-<
   running-minimum tie rule.
3. **PPA vs. CPA in float64** — wherever both architectures can see the
   winning center (PPA's winner inside CPA's coverage and vice versa),
   the two assignment orders must agree exactly; the paper's claim that
   the PPA reorders, but does not change, the algorithm.

The quantized datapath is *not* bit-identical to the reference — that is
the point of the bit-width study — so it gets a documented tolerance
instead (see ``TestQuantizedTolerance``).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.color import rgb_to_lab
from repro.core import (
    FixedDatapath,
    candidate_map,
    grid_geometry,
    initial_centers,
    spatial_weight,
    tile_map,
)
from repro.core.assignment import PixelArrays, assign_cpa, assign_ppa
from repro.core.connectivity import ConnectivityState, enforce_connectivity
from repro.core.subsampling import make_schedule
from repro.data import SceneConfig, generate_scene
from repro.kernels import available_backends, get_backend
from repro.kernels import reference as reference_kernels

H, W = 48, 64


@pytest.fixture(scope="module", params=["core", "native-mt"])
def kernel_impl(request):
    """The ``(ppa, cpa)`` implementation pair under differential test.

    ``core`` is the in-tree vectorized path the suite was written
    against; ``native-mt`` routes the same calls through the threaded C
    backend at 3 threads (an odd count, so remainder tiles are always in
    play), proving the threaded path against the naive references
    without duplicating test bodies. Module-scoped so hypothesis reuses
    it across examples.
    """
    if request.param == "core":
        return assign_ppa, assign_cpa
    if "native-mt" not in available_backends():
        pytest.skip("backend 'native-mt' unavailable")
    from repro.kernels import native_mt

    def ppa(*args, **kwargs):
        return native_mt.ppa_assign(*args, n_threads=3, **kwargs)

    def cpa(*args, **kwargs):
        return native_mt.cpa_assign(*args, n_threads=3, **kwargs)

    return ppa, cpa


def _setup(seed, k, m):
    """Random image + grid-initialized centers and PPA structures."""
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 256, size=(H, W, 3), dtype=np.uint8)
    lab = rgb_to_lab(image)
    centers = initial_centers(lab, k)
    gh, gw, _, _ = grid_geometry((H, W), k)
    tiles = tile_map((H, W), gh, gw)
    cands = candidate_map(gh, gw)
    s = float(np.sqrt(H * W / len(centers)))
    weight = spatial_weight(m, s)
    return lab, centers, tiles, cands, s, weight


def naive_ppa(lab, tiles, cands, centers, weight, idx):
    """Transparent double-loop PPA: argmin over the 9 candidates."""
    lab_flat = lab.reshape(-1, 3)
    tile_flat = tiles.ravel()
    out = np.empty(len(idx), dtype=np.int32)
    for j, i in enumerate(idx):
        y, x = divmod(int(i), lab.shape[1])
        best_d, best_k = np.inf, -1
        for c in cands[tile_flat[i]]:
            d = float(((lab_flat[i] - centers[c, 0:3]) ** 2).sum()) + weight * (
                (x - centers[c, 3]) ** 2 + (y - centers[c, 4]) ** 2
            )
            if d < best_d:  # strict: first minimum (lowest slot) wins
                best_d, best_k = d, c
        out[j] = best_k
    return out


def naive_cpa(lab, centers, weight, s, cluster_indices=None):
    """Pixel-perspective CPA: masked argmin over covering centers.

    Returns ``(labels, dist)``; pixels no window covers have ``inf``
    dist and a meaningless label (``assign_cpa`` leaves those at their
    initial value, so callers compare on the finite mask).
    """
    h, w = lab.shape[:2]
    half = int(np.ceil(s))  # the paper's 2S x 2S window
    ks = (
        np.arange(len(centers))
        if cluster_indices is None
        else np.asarray(cluster_indices)
    )
    yy, xx = np.mgrid[0:h, 0:w]
    d2 = np.full((len(ks), h, w), np.inf)
    for j, k in enumerate(ks):
        cx, cy = centers[k, 3], centers[k, 4]
        covered = (np.abs(xx - int(np.floor(cx))) <= half) & (
            np.abs(yy - int(np.floor(cy))) <= half
        )
        dc2 = ((lab - centers[k, 0:3]) ** 2).sum(axis=-1)
        ds2 = (xx - cx) ** 2 + (yy - cy) ** 2
        d2[j] = np.where(covered, dc2 + weight * ds2, np.inf)
    # argmin returns the first minimum: ascending scan order, matching
    # the running-minimum's strict <.
    best = np.argmin(d2, axis=0)
    return ks[best].astype(np.int32), np.min(d2, axis=0)


class TestPpaVsNaive:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(8, 48),
        m=st.floats(1.0, 40.0),
        n_subsets=st.sampled_from([1, 2, 4]),
    )
    def test_identical_assignments_float64(
        self, kernel_impl, seed, k, m, n_subsets
    ):
        ppa_fn, _ = kernel_impl
        lab, centers, tiles, cands, s, weight = _setup(seed, k, m)
        pixels = PixelArrays(lab, tiles)
        schedule = make_schedule((H, W), 1.0 / n_subsets, "strided", seed)
        for sub in range(n_subsets):
            idx = schedule.subset(sub)
            got = ppa_fn(pixels, idx, cands, centers, weight)
            want = naive_ppa(lab, tiles, cands, centers, weight, idx)
            assert np.array_equal(got, want)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(8, 48))
    def test_identical_after_center_update(self, kernel_impl, seed, k):
        """Still exact once centers have moved off the initial grid."""
        ppa_fn, _ = kernel_impl
        lab, centers, tiles, cands, s, weight = _setup(seed, k, 10.0)
        pixels = PixelArrays(lab, tiles)
        idx = np.arange(pixels.n_pixels)
        first = ppa_fn(pixels, idx, cands, centers, weight)
        # one crude center update: mean of assigned pixels
        moved = centers.copy()
        for c in range(len(centers)):
            mask = first == c
            if mask.any():
                moved[c] = pixels.values5(idx[mask]).mean(axis=0)
        got = ppa_fn(pixels, idx, cands, moved, weight)
        want = naive_ppa(lab, tiles, cands, moved, weight, idx)
        assert np.array_equal(got, want)


class TestCpaVsNaive:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(8, 48),
        m=st.floats(1.0, 40.0),
        n_subsets=st.sampled_from([1, 2, 4]),
    )
    def test_identical_assignments_float64(
        self, kernel_impl, seed, k, m, n_subsets
    ):
        _, cpa_fn = kernel_impl
        lab, centers, tiles, cands, s, weight = _setup(seed, k, m)
        # center subsets: the CPA flavour of S-SLIC scans K/n centers.
        subset = np.arange(len(centers))[::n_subsets]
        dist = np.full((H, W), np.inf)
        labels = np.full((H, W), -1, dtype=np.int32)
        cpa_fn(lab, centers, weight, s, dist, labels, cluster_indices=subset)
        want_labels, want_dist = naive_cpa(lab, centers, weight, s, subset)
        finite = np.isfinite(want_dist)
        assert np.array_equal(finite, np.isfinite(dist))
        assert np.array_equal(labels[finite], want_labels[finite])
        np.testing.assert_allclose(dist[finite], want_dist[finite], rtol=1e-12)


class TestPpaVsCpa:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(8, 48),
        m=st.floats(1.0, 40.0),
    )
    def test_agree_where_both_see_the_winner(self, kernel_impl, seed, k, m):
        """Float64 PPA and CPA are the same argmin over different
        candidate enumerations; restricted to pixels where each order's
        winner is inside the other's candidate set, they must match."""
        ppa_fn, cpa_fn = kernel_impl
        lab, centers, tiles, cands, s, weight = _setup(seed, k, m)
        pixels = PixelArrays(lab, tiles)
        idx = np.arange(pixels.n_pixels)
        ppa = ppa_fn(pixels, idx, cands, centers, weight).reshape(H, W)
        dist = np.full((H, W), np.inf)
        cpa = np.full((H, W), -1, dtype=np.int32)
        cpa_fn(lab, centers, weight, s, dist, cpa, cluster_indices=None)

        half = int(np.ceil(s))  # the paper's 2S x 2S window
        yy, xx = np.mgrid[0:H, 0:W]
        fx = np.floor(centers[:, 3]).astype(int)
        fy = np.floor(centers[:, 4]).astype(int)
        # CPA covers (pixel, k) iff the pixel is inside center k's window.
        ppa_winner_covered = (np.abs(xx - fx[ppa]) <= half) & (
            np.abs(yy - fy[ppa]) <= half
        )
        # PPA sees (pixel, k) iff k is among the pixel's 9 candidates.
        cand_sets = cands[pixels.tile_flat].reshape(H, W, -1)
        cpa_winner_in_cands = (cand_sets == cpa[..., None]).any(axis=-1)
        both = ppa_winner_covered & cpa_winner_in_cands & np.isfinite(dist)
        # Discard draws where the restriction is vacuous (small K makes
        # the CPA windows sparse); the property needs a representative
        # pixel population, not any particular coverage level.
        assume(both.mean() > 0.5)
        disagree = both & (ppa != cpa)
        if disagree.any():
            # Only exact distance ties may disagree (argmin slot order
            # differs between the enumerations).
            ys, xs = np.nonzero(disagree)
            for y, x in zip(ys, xs):
                da = _point_d2(lab, centers, weight, ppa[y, x], x, y)
                db = _point_d2(lab, centers, weight, cpa[y, x], x, y)
                assert da == pytest.approx(db, rel=0, abs=1e-9)


def _random_labels(seed, h, w, k):
    rng = np.random.default_rng(seed)
    return rng.integers(0, k, (h, w)).astype(np.int32)


class TestCclDifferential:
    """The two-pass union-find CCL kernel vs the reference labeling.

    Every backend — including the tiled native-mt variant at 1/2/4/7
    threads, so band seams land everywhere — must reproduce the
    reference's component map *bit for bit*: same dense ids, same
    first-appearance (row-major) numbering.
    """

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        h=st.integers(1, 24),
        w=st.integers(1, 24),
        k=st.integers(1, 6),
    )
    def test_all_backends_bit_identical(self, seed, h, w, k):
        labels = _random_labels(seed, h, w, k)
        want, want_n = reference_kernels.connected_components(labels)
        for name in available_backends():
            got, got_n = get_backend(name).connected_components(labels)
            assert got_n == want_n, name
            assert np.array_equal(got, want), name

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        h=st.integers(1, 40),
        w=st.integers(1, 24),
        k=st.integers(1, 6),
        n_threads=st.sampled_from([1, 2, 4, 7]),
    )
    def test_native_mt_identical_at_any_thread_count(
        self, seed, h, w, k, n_threads
    ):
        if "native-mt" not in available_backends():
            pytest.skip("backend 'native-mt' unavailable")
        from repro.kernels import native_mt

        labels = _random_labels(seed, h, w, k)
        want, want_n = reference_kernels.connected_components(labels)
        got, got_n = native_mt.connected_components(
            labels, n_threads=n_threads
        )
        assert got_n == want_n
        assert np.array_equal(got, want)


@pytest.mark.parametrize("backend", available_backends())
class TestMergeChainSemantics:
    """Chain semantics of the small-component merge walk, per backend.

    The walk processes components in ascending size order and re-reads
    merged sizes, so absorptions *chain*: a small fragment can ride its
    neighbor into a third region. These shapes lock the three rules the
    hardware walk defines — chaining, equal-border tie to the lowest
    component id, and isolated components surviving untouched.
    """

    def test_small_into_small_into_large_chains(self, backend):
        # A 4-px corner fragment of label 1 whose *only* neighbor is the
        # 12-px L of label 2; 1 merges into 2 (16 px, still < 20), and
        # the combined piece must then ride into the large region — the
        # walk re-reads merged sizes, so everything lands on label 0.
        labels = np.zeros((6, 12), dtype=np.int32)
        labels[0:2, 10:12] = 1
        labels[0:4, 8:10] = 2
        labels[2:4, 10:12] = 2
        out = enforce_connectivity(labels, 20, backend=backend)
        assert np.array_equal(out, np.zeros_like(labels))

    def test_equal_border_tie_takes_lowest_component_id(self, backend):
        # Only the center stripe (10 px) is small; it borders component
        # 0 (left) and component 2 (right) with identical border length
        # (5 px each), so the tie must resolve to the lower component
        # id — the left region's label.
        labels = np.zeros((5, 10), dtype=np.int32)
        labels[:, 4:6] = 1
        labels[:, 6:] = 2
        out = enforce_connectivity(labels, 12, backend=backend)
        want = labels.copy()
        want[:, 4:6] = 0
        assert np.array_equal(out, want)

    def test_isolated_component_survives_any_min_size(self, backend):
        # A component with no neighbors (the whole image) can never be
        # merged, whatever min_size says.
        labels = np.full((4, 6), 9, dtype=np.int32)
        out = enforce_connectivity(labels, 10_000, backend=backend)
        assert np.array_equal(out, labels)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(2, 7),
        min_size=st.integers(2, 40),
    )
    def test_enforce_matches_reference_backend(self, backend, seed, k, min_size):
        labels = _random_labels(seed, 18, 22, k)
        got = enforce_connectivity(labels, min_size, backend=backend)
        want = enforce_connectivity(labels, min_size, backend="reference")
        assert np.array_equal(got, want)


class TestIncrementalConnectivityDifferential:
    """The warm-started incremental path vs the stateless resolve."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(2, 6),
        min_size=st.integers(2, 24),
        py=st.integers(0, 28),
        px=st.integers(0, 18),
    )
    def test_patched_frame_sequence_bit_identical(
        self, seed, k, min_size, py, px
    ):
        base = _random_labels(seed, 36, 24, k)
        moved = base.copy()
        moved[py:py + 5, px:px + 4] = (seed + 1) % k
        for name in available_backends():
            state = ConnectivityState(band_rows=8)
            for frame in (base, moved, moved, base):
                got = enforce_connectivity(
                    frame, min_size, backend=name, state=state
                )
                want = enforce_connectivity(frame, min_size, backend=name)
                assert np.array_equal(got, want), name


def _point_d2(lab, centers, weight, k, x, y):
    return float(((lab[y, x] - centers[k, 0:3]) ** 2).sum()) + weight * (
        (x - centers[k, 3]) ** 2 + (y - centers[k, 4]) ** 2
    )


class TestQuantizedTolerance:
    """The 8-bit datapath vs. the float64 reference.

    Documented tolerance (calibrated over the synthetic corpus, seeds
    0-7, K in {12..40}, compactness in the paper's operating range
    [5, 40]):

    * ``quantize_distance=False`` (full-precision compare of quantized
      inputs): >= 95% identical assignments;
    * ``quantize_distance=True`` (hardware-faithful saturating distance
      codes): >= 90% identical assignments.

    Below compactness ~5 the 8-bit datapath degrades further (distance
    codes can no longer resolve color-dominated differences) — outside
    the tolerance contract, consistent with the paper operating at m=10.
    """

    FLOORS = {False: 0.95, True: 0.90}

    @pytest.mark.parametrize("quantize_distance", [False, True])
    @pytest.mark.parametrize(
        "seed,k,m", [(0, 12, 5.0), (3, 24, 10.0), (5, 40, 25.0), (7, 16, 40.0)]
    )
    def test_assignment_agreement_floor(
        self, kernel_impl, quantize_distance, seed, k, m
    ):
        ppa_fn, _ = kernel_impl
        image = generate_scene(SceneConfig(height=H, width=W), seed=seed).image
        lab = rgb_to_lab(image)
        centers = initial_centers(lab, k)
        gh, gw, _, _ = grid_geometry((H, W), k)
        tiles = tile_map((H, W), gh, gw)
        cands = candidate_map(gh, gw)
        s = float(np.sqrt(H * W / len(centers)))
        weight = spatial_weight(m, s)
        ref_pixels = PixelArrays(lab, tiles)
        idx = np.arange(ref_pixels.n_pixels)
        ref = ppa_fn(ref_pixels, idx, cands, centers, weight)
        dp = FixedDatapath(bits=8, quantize_distance=quantize_distance)
        q_pixels = PixelArrays(lab, tiles, datapath=dp)
        got = ppa_fn(
            q_pixels, idx, cands, centers, weight, compactness=m, grid_s=s
        )
        agreement = (ref == got).mean()
        assert agreement >= self.FLOORS[quantize_distance], (
            f"8-bit datapath agreement {agreement:.4f} below documented "
            f"floor {self.FLOORS[quantize_distance]} "
            f"(quantize_distance={quantize_distance}, seed={seed}, K={k}, m={m})"
        )
