"""Tests for repro.obs.regress and the ``repro regress`` CLI gate."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.obs import check_regressions, compare_metrics, flatten_bench_metrics
from repro.obs.regress import load_bench_file, metric_direction


def bench_payload(fps=3.0, elapsed=2.0, cores=8, gate=None):
    return {
        "bench": "bench_demo",
        "schema": 2,
        "trace": "deadbeefdeadbeef",
        "cores": cores,
        **({"gate": gate} if gate is not None else {}),
        "platform": "Linux",
        "python": "3.11.7",
        "rows": [
            {
                "resolution": "vga",
                "config": "serial",
                "width": 640,
                "height": 480,
                "frames": 4,
                "fps": fps,
                "elapsed_s": elapsed,
                "ok": True,
            }
        ],
        "profiling": {"overhead_pct": 1.5},
    }


class TestDirection:
    @pytest.mark.parametrize(
        "name,expect",
        [
            ("bench/vga/serial/fps", +1),
            ("bench/vga/throughput_fps", +1),
            ("bench/shm-4w/speedup_over_pickle", +1),
            ("bench/boundary_recall", +1),
            ("bench/vga/serial/elapsed_s", -1),
            ("bench/phase_seconds/connectivity", -1),
            ("bench/latency_ms", -1),
            ("bench/profiling/overhead_pct", -1),
            ("bench/vga/serial/iterations", 0),
        ],
    )
    def test_inference(self, name, expect):
        assert metric_direction(name) == expect

    def test_matched_on_last_recognizable_component(self):
        # "fps" appears mid-path; the leaf "elapsed_s" wins.
        assert metric_direction("bench/fps_sweep/elapsed_s") == -1


class TestFlatten:
    def test_rows_keyed_by_identity_fields(self):
        flat = flatten_bench_metrics(bench_payload())
        assert flat["bench_demo/vga/serial/fps"] == 3.0
        assert flat["bench_demo/vga/serial/elapsed_s"] == 2.0
        assert flat["bench_demo/profiling/overhead_pct"] == 1.5

    def test_identity_and_geometry_skipped(self):
        flat = flatten_bench_metrics(bench_payload())
        joined = " ".join(flat)
        for absent in ("schema", "trace", "width", "height", "frames", "/ok"):
            assert absent not in joined

    def test_schema_v1_files_parse_identically(self):
        v1 = bench_payload()
        del v1["schema"], v1["trace"]
        assert flatten_bench_metrics(v1) == flatten_bench_metrics(bench_payload())


class TestGateFlatten:
    """Gate blocks: pass/fail verdicts gate their numbers, skipped is
    neutral (a gate skipped on a small host must never become a baseline
    a bigger host can "regress" against)."""

    def test_passing_gate_metrics_flattened(self):
        flat = flatten_bench_metrics(bench_payload(gate={
            "rule": "shm >= 1.3x pickle",
            "cores": 8,
            "shm_over_pickle": 1.5,
            "result": "pass",
        }))
        assert flat["bench_demo/gate/shm_over_pickle"] == 1.5

    def test_failing_gate_metrics_flattened(self):
        # fail still records the number: a later pass must be comparable.
        flat = flatten_bench_metrics(bench_payload(gate={
            "shm_over_pickle": 0.9, "result": "fail",
        }))
        assert flat["bench_demo/gate/shm_over_pickle"] == 0.9

    def test_skipped_gate_is_neutral(self):
        flat = flatten_bench_metrics(bench_payload(gate={
            "rule": "shm >= 1.3x pickle",
            "cores": 1,
            "shm_over_pickle": 1.04,
            "result": "skipped: 1 core(s) < 4",
        }))
        assert not any(name.startswith("bench_demo/gate") for name in flat)

    def test_cores_stamps_are_identity_not_metrics(self):
        flat = flatten_bench_metrics(bench_payload(gate={
            "cores": 8, "baseline_cores": 8, "ratio_fps": 2.2,
            "result": "pass",
        }))
        assert "bench_demo/gate/cores" not in flat
        assert "bench_demo/gate/baseline_cores" not in flat
        assert flat["bench_demo/gate/ratio_fps"] == 2.2

    def test_nested_blocks_judged_independently(self):
        flat = flatten_bench_metrics(bench_payload(gate={
            "shm_over_pickle": 1.04,
            "result": "skipped: 1 core(s) < 4",
            "native_mt": {"mt_over_serial": 1.4, "result": "pass"},
        }))
        assert "bench_demo/gate/shm_over_pickle" not in flat
        assert flat["bench_demo/gate/native_mt/mt_over_serial"] == 1.4

    def test_gate_ratio_names_are_higher_better(self):
        for name in ("g/gate/shm_over_pickle", "g/gate/mt_over_serial",
                     "g/gate/fps_over_baseline"):
            assert metric_direction(name) == +1

    def test_committed_artifact_gate_skips_stay_neutral(self):
        # The committed baseline was produced on a 1-core host: its gate
        # blocks are all skipped and must contribute no metrics.
        flat = flatten_bench_metrics(load_bench_file("BENCH_e2e.json"))
        gate_metrics = [n for n in flat if "/gate" in n]
        committed = load_bench_file("BENCH_e2e.json")["gate"]

        def any_verdict(block):
            result = block.get("result", "")
            if result.startswith(("pass", "fail")):
                return True
            return any(any_verdict(v) for v in block.values()
                       if isinstance(v, dict))

        if not any_verdict(committed):
            assert gate_metrics == []


class TestCompare:
    def test_within_tolerance_ok(self):
        base = flatten_bench_metrics(bench_payload(fps=3.0))
        cur = flatten_bench_metrics(bench_payload(fps=2.5))
        report = compare_metrics(base, cur, tolerance=0.25)
        assert report.ok

    def test_fps_drop_regresses(self):
        base = flatten_bench_metrics(bench_payload(fps=3.0))
        cur = flatten_bench_metrics(bench_payload(fps=1.0))
        report = compare_metrics(base, cur, tolerance=0.25)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.name.endswith("/fps")
        assert delta.direction == +1

    def test_elapsed_growth_regresses_but_drop_does_not(self):
        base = flatten_bench_metrics(bench_payload(elapsed=2.0))
        assert compare_metrics(
            base, flatten_bench_metrics(bench_payload(elapsed=10.0))
        ).regressions
        assert compare_metrics(
            base, flatten_bench_metrics(bench_payload(elapsed=0.5))
        ).ok

    def test_fps_improvement_is_not_a_regression(self):
        base = flatten_bench_metrics(bench_payload(fps=3.0))
        cur = flatten_bench_metrics(bench_payload(fps=30.0))
        assert compare_metrics(base, cur).ok

    def test_unknown_direction_ignored_not_gated(self):
        report = compare_metrics({"b/iterations": 10.0}, {"b/iterations": 99.0})
        assert report.ok
        assert report.ignored == ["b/iterations"]

    def test_missing_and_added_tracked(self):
        report = compare_metrics({"b/fps": 1.0}, {"b/new_fps": 1.0})
        assert report.missing == ["b/fps"]
        assert report.added == ["b/new_fps"]
        assert report.ok  # absence is reported, not gated

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_metrics({}, {}, tolerance=-0.1)


class TestCheckRegressions:
    def test_baseline_against_itself_passes(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(bench_payload()))
        report = check_regressions([path])
        assert report.ok and report.deltas

    def test_detects_file_level_regression(self, tmp_path):
        base = tmp_path / "BENCH_base.json"
        cur = tmp_path / "BENCH_cur.json"
        base.write_text(json.dumps(bench_payload(fps=4.0)))
        cur.write_text(json.dumps(bench_payload(fps=1.0)))
        report = check_regressions([base], [cur])
        assert not report.ok

    def test_malformed_artifact_is_loud(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            check_regressions([bad])

    def test_non_object_artifact_is_loud(self, tmp_path):
        bad = tmp_path / "BENCH_list.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ConfigurationError):
            check_regressions([bad])

    def test_report_round_trips_to_json(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(bench_payload()))
        blob = json.dumps(check_regressions([path]).as_dict())
        parsed = json.loads(blob)
        assert parsed["ok"] is True
        assert parsed["n_compared"] > 0

    def test_load_bench_file_reads_committed_history(self):
        # The repo's own committed artifact must stay parseable.
        payload = load_bench_file("BENCH_e2e.json")
        assert flatten_bench_metrics(payload)

    def test_cross_core_comparison_refused(self, tmp_path):
        base = tmp_path / "BENCH_base.json"
        cur = tmp_path / "BENCH_cur.json"
        base.write_text(json.dumps(bench_payload(cores=8)))
        cur.write_text(json.dumps(bench_payload(cores=1)))
        with pytest.raises(ConfigurationError, match="cross-core-count"):
            check_regressions([base], [cur])

    def test_same_core_count_compares_normally(self, tmp_path):
        base = tmp_path / "BENCH_base.json"
        cur = tmp_path / "BENCH_cur.json"
        base.write_text(json.dumps(bench_payload(cores=4, fps=3.0)))
        cur.write_text(json.dumps(bench_payload(cores=4, fps=2.9)))
        assert check_regressions([base], [cur]).ok

    def test_unstamped_artifacts_are_not_refused(self, tmp_path):
        # Pre-stamp (v1-era) artifacts carry no cores field: compare as
        # before rather than refusing history we can no longer annotate.
        base_payload = bench_payload(cores=8)
        del base_payload["cores"]
        base = tmp_path / "BENCH_base.json"
        cur = tmp_path / "BENCH_cur.json"
        base.write_text(json.dumps(base_payload))
        cur.write_text(json.dumps(bench_payload(cores=1)))
        assert check_regressions([base], [cur]).ok


class TestRegressCli:
    def test_self_comparison_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(bench_payload()))
        rc = main(["regress", "--baseline", str(path)])
        assert rc == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        base = tmp_path / "BENCH_base.json"
        cur = tmp_path / "BENCH_cur.json"
        base.write_text(json.dumps(bench_payload(fps=4.0)))
        cur.write_text(json.dumps(bench_payload(fps=1.0)))
        rc = main(
            ["regress", "--baseline", str(base), "--current", str(cur)]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_flag_loosens_the_gate(self, tmp_path):
        base = tmp_path / "BENCH_base.json"
        cur = tmp_path / "BENCH_cur.json"
        base.write_text(json.dumps(bench_payload(fps=4.0)))
        cur.write_text(json.dumps(bench_payload(fps=1.0)))
        rc = main(
            ["regress", "--baseline", str(base), "--current", str(cur),
             "--tolerance", "0.9"]
        )
        assert rc == 0

    def test_no_matching_baseline_exits_two(self, tmp_path, capsys):
        rc = main(["regress", "--baseline", str(tmp_path / "nope_*.json")])
        assert rc == 2
        assert "no baseline" in capsys.readouterr().err

    def test_malformed_artifact_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{broken")
        rc = main(["regress", "--baseline", str(bad)])
        assert rc == 2

    def test_cross_core_refusal_exits_two(self, tmp_path, capsys):
        base = tmp_path / "BENCH_base.json"
        cur = tmp_path / "BENCH_cur.json"
        base.write_text(json.dumps(bench_payload(cores=8)))
        cur.write_text(json.dumps(bench_payload(cores=2)))
        rc = main(
            ["regress", "--baseline", str(base), "--current", str(cur)]
        )
        assert rc == 2
        assert "cross-core-count" in capsys.readouterr().err

    def test_writes_json_report(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        out = tmp_path / "report.json"
        path.write_text(json.dumps(bench_payload()))
        rc = main(
            ["regress", "--baseline", str(path), "--report", str(out)]
        )
        assert rc == 0
        assert json.loads(out.read_text())["ok"] is True
