"""Tests for the chamfer distance transform and Euclidean-tolerance
boundary metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import MetricError
from repro.metrics import boundary_recall, chamfer_distance


def _brute_force(mask):
    ys, xs = np.nonzero(mask)
    pts = np.stack([ys, xs], axis=1)
    h, w = mask.shape
    yy, xx = np.mgrid[0:h, 0:w]
    return np.sqrt(
        ((yy[..., None] - pts[:, 0]) ** 2 + (xx[..., None] - pts[:, 1]) ** 2)
    ).min(axis=-1)


class TestChamfer:
    def test_zero_on_mask(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[3, 7] = True
        d = chamfer_distance(mask)
        assert d[3, 7] == 0.0

    def test_axial_distances_exact(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        d = chamfer_distance(mask)
        assert d[4, 0] == pytest.approx(4.0)
        assert d[0, 4] == pytest.approx(4.0)
        assert d[8, 4] == pytest.approx(4.0)

    def test_diagonal_uses_3_4_weights(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        d = chamfer_distance(mask)
        # One diagonal step: 4/3 ~ 1.333 (vs exact sqrt(2) ~ 1.414).
        assert d[5, 5] == pytest.approx(4 / 3)

    def test_empty_mask_is_inf(self):
        assert np.isinf(chamfer_distance(np.zeros((4, 6), dtype=bool))).all()

    def test_full_mask_is_zero(self):
        assert (chamfer_distance(np.ones((4, 6), dtype=bool)) == 0).all()

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            chamfer_distance(np.zeros((2, 2, 2), dtype=bool))

    def test_within_8pct_of_euclidean(self, rng):
        mask = rng.random((30, 42)) < 0.03
        mask[0, 0] = True  # guarantee non-empty
        d = chamfer_distance(mask)
        exact = _brute_force(mask)
        rel = np.abs(d - exact) / np.maximum(exact, 1.0)
        assert rel.max() < 0.081


masks = hnp.arrays(
    dtype=bool,
    shape=st.tuples(st.integers(2, 16), st.integers(2, 16)),
    elements=st.booleans(),
)


@given(mask=masks)
@settings(max_examples=60)
def test_chamfer_properties(mask):
    d = chamfer_distance(mask)
    if not mask.any():
        assert np.isinf(d).all()
        return
    # Zero exactly on the mask, positive elsewhere.
    assert (d[mask] == 0).all()
    assert (d[~mask] > 0).all()
    # 1-Lipschitz up to the chamfer diagonal weight (4/3 per step).
    assert np.abs(np.diff(d, axis=0)).max() <= 4 / 3 + 1e-9
    assert np.abs(np.diff(d, axis=1)).max() <= 4 / 3 + 1e-9


class TestEuclideanRecall:
    def _shifted(self, offset, w=20):
        gt = np.zeros((12, w), dtype=np.int32)
        gt[:, w // 2:] = 1
        lab = np.zeros_like(gt)
        lab[:, w // 2 + offset:] = 1
        return lab, gt

    def test_exact_match_full_recall(self):
        lab, gt = self._shifted(0)
        assert boundary_recall(lab, gt, tolerance=0, distance="euclidean") == 1.0

    def test_tolerance_semantics(self):
        lab, gt = self._shifted(3)
        # GT edge columns are 2 and 3 px from the shifted boundary.
        assert boundary_recall(lab, gt, tolerance=3, distance="euclidean") == 1.0
        assert boundary_recall(lab, gt, tolerance=2, distance="euclidean") == 0.5
        assert boundary_recall(lab, gt, tolerance=1, distance="euclidean") == 0.0

    def test_euclidean_stricter_than_chebyshev(self, hard_scene):
        from repro.core import sslic

        r = sslic(hard_scene.image, n_superpixels=48, max_iterations=3)
        che = boundary_recall(r.labels, hard_scene.gt_labels, tolerance=2,
                              distance="chebyshev")
        euc = boundary_recall(r.labels, hard_scene.gt_labels, tolerance=2,
                              distance="euclidean")
        assert euc <= che + 1e-9

    def test_unknown_distance_rejected(self):
        lab, gt = self._shifted(1)
        with pytest.raises(MetricError):
            boundary_recall(lab, gt, distance="manhattan")
