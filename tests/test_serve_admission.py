"""Fake-clock tests for repro.serve.admission: shed, deadlines, breaker.

Every decision in the admission layer is a pure function of injected
state — these tests never sleep and never touch a wall clock.
"""

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    AdmissionController,
    CircuitBreaker,
    ServiceTimeTracker,
)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestServiceTimeTracker:
    def test_prior_before_first_observation(self):
        tracker = ServiceTimeTracker(prior_s=0.07)
        assert tracker.estimate() == pytest.approx(0.07)

    def test_estimate_tracks_observations(self):
        tracker = ServiceTimeTracker(prior_s=0.05, alpha=0.5)
        tracker.observe(0.1)
        assert tracker.estimate() == pytest.approx(0.1)

    def test_recent_worst_case_dominates(self):
        tracker = ServiceTimeTracker(alpha=0.1, window=8)
        for _ in range(8):
            tracker.observe(0.01)
        tracker.observe(0.5)  # one slow frame
        # The EWMA barely moved, but the estimate must already warn.
        assert tracker.estimate() == pytest.approx(0.5)

    def test_burst_ages_out_of_window(self):
        tracker = ServiceTimeTracker(alpha=0.5, window=4)
        tracker.observe(0.5)
        for _ in range(4):
            tracker.observe(0.01)
        assert tracker.estimate() < 0.1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceTimeTracker(prior_s=0.0)
        with pytest.raises(ConfigurationError):
            ServiceTimeTracker(alpha=0.0)


class TestAdmissionController:
    def make(self, max_queue=2, n_workers=1, prior=0.1):
        clock = FakeClock()
        ctrl = AdmissionController(
            max_queue=max_queue, n_workers=n_workers,
            tracker=ServiceTimeTracker(prior_s=prior), clock=clock,
        )
        return ctrl, clock

    def test_admits_until_queue_full_then_sheds(self):
        ctrl, _ = self.make(max_queue=2)
        assert ctrl.try_admit().admitted
        assert ctrl.try_admit().admitted
        decision = ctrl.try_admit()
        assert not decision.admitted
        assert decision.reason == "queue_full"
        assert ctrl.shed_total == 1
        assert ctrl.outstanding == 2  # the shed held no slot

    def test_release_frees_a_slot(self):
        ctrl, _ = self.make(max_queue=1)
        assert ctrl.try_admit().admitted
        assert not ctrl.try_admit().admitted
        ctrl.release(service_s=0.05)
        assert ctrl.try_admit().admitted

    def test_retry_after_scales_with_service_time(self):
        ctrl, _ = self.make(max_queue=1, prior=0.1)
        ctrl.try_admit()
        slow = ctrl.try_admit()
        assert not slow.admitted
        assert slow.retry_after_s >= 0.1
        # Feed a 10x slower observed service time: the hint follows.
        ctrl.release(service_s=1.0)
        ctrl.try_admit()
        slower = ctrl.try_admit()
        assert slower.retry_after_s >= 1.0

    def test_infeasible_deadline_rejected_at_admission(self):
        ctrl, _ = self.make(max_queue=4, prior=0.1)
        ctrl.try_admit()
        ctrl.try_admit()
        # Two outstanding at ~0.1 s each: a 50 ms budget cannot make it.
        decision = ctrl.try_admit(deadline_s=0.05)
        assert not decision.admitted
        assert decision.reason == "deadline_infeasible"
        assert ctrl.deadline_rejected_total == 1
        assert ctrl.outstanding == 2

    def test_feasible_deadline_admitted(self):
        ctrl, _ = self.make(max_queue=4, prior=0.1)
        decision = ctrl.try_admit(deadline_s=1.0)
        assert decision.admitted
        assert decision.reason == "ok"

    def test_deadline_check_uses_predicted_wait(self):
        ctrl, _ = self.make(max_queue=8, prior=0.1)
        # Empty queue: 150 ms budget covers one 100 ms service.
        assert ctrl.try_admit(deadline_s=0.15).admitted
        # One outstanding: predicted wait 100 ms + service 100 ms > 150 ms.
        assert not ctrl.try_admit(deadline_s=0.15).admitted

    def test_queue_ratio(self):
        ctrl, _ = self.make(max_queue=4)
        assert ctrl.queue_ratio == 0.0
        ctrl.try_admit()
        assert ctrl.queue_ratio == pytest.approx(0.25)

    def test_unmatched_release_raises(self):
        ctrl, _ = self.make()
        with pytest.raises(ConfigurationError):
            ctrl.release()

    def test_peak_outstanding(self):
        ctrl, _ = self.make(max_queue=4)
        ctrl.try_admit()
        ctrl.try_admit()
        ctrl.release()
        assert ctrl.peak_outstanding == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(n_workers=0)


class TestCircuitBreaker:
    def make(self, threshold=3, reset=10.0):
        clock = FakeClock()
        return CircuitBreaker(
            threshold=threshold, reset_after_s=reset, clock=clock
        ), clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.opened_total == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_reset_window(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        assert breaker.retry_after_s() == pytest.approx(10.0)
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.retry_after_s() == 0.0

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.make(threshold=1)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # concurrent request during probe

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_full_window(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.retry_after_s() == pytest.approx(10.0)
        assert breaker.opened_total == 2

    def test_abort_probe_releases_the_slot_without_judging(self):
        # A probe that never exercised the backend (shed at admission,
        # bad request) must not wedge the breaker half-open forever.
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()                       # claim the probe
        assert not breaker.allow()
        breaker.abort_probe()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()                       # next probe may run
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.opened_total == 1

    def test_abort_probe_is_a_noop_after_the_outcome(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()                     # probe failed: open
        breaker.abort_probe()                        # late abort: no-op
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.retry_after_s() == pytest.approx(10.0)
        breaker2, clock2 = self.make(threshold=1, reset=10.0)
        breaker2.record_failure()
        clock2.advance(11.0)
        assert breaker2.allow()
        breaker2.record_success()                    # probe passed: closed
        breaker2.abort_probe()
        assert breaker2.state == CircuitBreaker.CLOSED
        assert breaker2.allow()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_after_s=0)
