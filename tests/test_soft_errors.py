"""Soft-error model: scratchpad upsets, parity coverage, quality deltas."""

import numpy as np
import pytest

from repro.errors import HardwareModelError, ResilienceError
from repro.hw import AcceleratorSim, SoftErrorModel, SoftErrorReport
from repro.hw.config import AcceleratorConfig
from repro.resilience import flip_bits, soft_error_quality_delta
from repro.types import Resolution

VGA_CFG = AcceleratorConfig(
    resolution=Resolution(640, 480), n_superpixels=1200
)


class TestSoftErrorModel:
    def test_sampling_is_deterministic(self):
        model = SoftErrorModel(bit_error_rate=1e-5, seed=11)
        a = model.sample_frame(10_000_000, frame_index=0)
        b = model.sample_frame(10_000_000, frame_index=0)
        assert a == b
        assert a.n_flips > 0

    def test_frames_draw_distinct_streams(self):
        model = SoftErrorModel(bit_error_rate=1e-6, seed=11)
        reports = [model.sample_frame(10_000_000, i) for i in range(4)]
        assert len({r.n_flips for r in reports}) > 1

    def test_parity_accounting(self):
        # At a rate high enough for multi-flip words, parity must split
        # corrupted words into detected (odd flips) and silent (even).
        model = SoftErrorModel(bit_error_rate=1e-3, seed=3)
        report = model.sample_frame(3_200_000)
        assert report.n_flips > 500
        assert report.detected_words + report.silent_words == report.corrupted_words
        assert report.detected_words > 0
        assert report.silent_words > 0  # collisions exist at this rate
        assert 0.0 < report.detection_coverage < 1.0

    def test_no_parity_means_everything_silent(self):
        model = SoftErrorModel(bit_error_rate=1e-6, seed=3, parity=False)
        report = model.sample_frame(10_000_000)
        assert report.detected_words == 0
        assert report.silent_words == report.corrupted_words

    def test_zero_rate_is_clean(self):
        report = SoftErrorModel(bit_error_rate=0.0).sample_frame(10**9)
        assert report.n_flips == 0
        assert report.detection_coverage == 1.0

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            SoftErrorModel(bit_error_rate=2.0)
        with pytest.raises(HardwareModelError):
            SoftErrorModel().sample_frame(-1)
        with pytest.raises(HardwareModelError, match="beyond the per-flip"):
            SoftErrorModel(bit_error_rate=0.5).sample_frame(10**9)


class TestSimIntegration:
    def test_frame_trace_carries_report(self):
        sim = AcceleratorSim(
            config=VGA_CFG, soft_errors=SoftErrorModel(bit_error_rate=1e-8, seed=5)
        )
        trace = sim.run_frame()
        assert isinstance(trace.soft_errors, SoftErrorReport)
        assert trace.soft_errors.bits_read > 0
        # Without a model the field stays None (seed behavior).
        assert AcceleratorSim(config=VGA_CFG).run_frame().soft_errors is None

    def test_consecutive_frames_vary_but_reruns_match(self):
        mk = lambda: AcceleratorSim(
            config=VGA_CFG, soft_errors=SoftErrorModel(bit_error_rate=1e-7, seed=5)
        )
        sim = mk()
        first, second = sim.run_frame(), sim.run_frame()
        assert first.soft_errors != second.soft_errors
        again = mk()
        assert again.run_frame().soft_errors == first.soft_errors

    def test_rejects_non_model(self):
        with pytest.raises(HardwareModelError):
            AcceleratorSim(soft_errors="1e-9")


class TestDatapathInjection:
    def test_flip_bits_flips_exactly_the_sampled_count(self):
        data = np.zeros(4096, dtype=np.uint8)
        flipped, n = flip_bits(data, 1e-3, seed=9)
        assert n > 0
        assert int(np.unpackbits(flipped).sum()) == n  # distinct positions
        again, n2 = flip_bits(data, 1e-3, seed=9)
        assert n2 == n and np.array_equal(flipped, again)

    def test_flip_bits_requires_uint8(self):
        with pytest.raises(ResilienceError):
            flip_bits(np.zeros(8, dtype=np.float64), 1e-3, seed=0)

    def test_quality_delta_is_deterministic(self):
        a = soft_error_quality_delta(2e-4, seed=3, height=60, width=80)
        b = soft_error_quality_delta(2e-4, seed=3, height=60, width=80)
        assert a == b
        assert a.n_bits_flipped > 0
        assert 0.0 <= a.boundary_recall_clean <= 1.0
        assert a.undersegmentation_clean >= 0.0

    def test_zero_ber_has_zero_delta(self):
        q = soft_error_quality_delta(0.0, seed=3, height=60, width=80)
        assert q.n_bits_flipped == 0
        assert q.boundary_recall_delta == 0.0
        assert q.undersegmentation_delta == 0.0
