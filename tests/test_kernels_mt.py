"""The ``native-mt`` backend: differential identity and thread safety.

The contract under test is stronger than "fast": every threaded kernel
must be **bit-identical** to the reference loops at *any* thread count.
The differential harness here runs each kernel at 1, 2, 4 and 7 threads
(odd counts catch remainder-tile bugs in the ownership partition),
including degenerate shapes where the frame is thinner or smaller than
one tile. The concurrency half asserts that two engines segmenting at
the same time in one process — each with its own ambient thread count —
cannot corrupt each other, and that the supervisor's first-dispatch
memo is race-free.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.color import rgb_to_lab
from repro.color.hw_convert import HwColorConverter, LabEncoding
from repro.color.lut import reset_lut_caches
from repro.core import (
    FixedDatapath,
    candidate_map,
    grid_geometry,
    initial_centers,
    slic,
    spatial_weight,
    tile_map,
)
from repro.core.assignment import PixelArrays
from repro.kernels import available_backends, reference, supervisor
from repro.kernels import native_mt
from repro.kernels.native_mt import resolve_threads, thread_context

pytestmark = pytest.mark.skipif(
    "native-mt" not in available_backends(),
    reason="no C compiler in environment",
)

#: Odd counts (7) exercise uneven remainder tiles; 1 exercises the
#: pool's clamp-to-serial path; 2 and 4 are the common mobile widths.
THREADS = [1, 2, 4, 7]

H, W = 37, 53


def _setup(seed, k, m, fixed=False, h=H, w=W):
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
    lab = rgb_to_lab(image)
    centers = initial_centers(lab, k).copy()
    centers[:, 3] += rng.uniform(-2, 2, len(centers))
    centers[:, 4] += rng.uniform(-2, 2, len(centers))
    gh, gw, _, _ = grid_geometry((h, w), k)
    tiles = tile_map((h, w), gh, gw)
    cands = candidate_map(gh, gw)
    s = float(np.sqrt(h * w / len(centers)))
    weight = spatial_weight(m, s)
    dp = FixedDatapath(bits=8) if fixed else None
    codes = dp.encode_image(lab) if fixed else None
    return lab, centers, tiles, cands, s, weight, dp, codes


def _cpa_buffers(h, w):
    return (
        np.full((h, w), np.inf),
        np.full((h, w), -1, dtype=np.int32),
    )


@pytest.mark.parametrize("nt", THREADS)
class TestCpaDifferential:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(8, 40),
           m=st.floats(1.0, 40.0))
    def test_float64(self, nt, seed, k, m):
        lab, centers, _, _, s, weight, _, _ = _setup(seed, k, m)
        d_r, l_r = _cpa_buffers(H, W)
        d_m, l_m = _cpa_buffers(H, W)
        n_r = reference.cpa_assign(lab, centers, weight, s, d_r, l_r)
        n_m = native_mt.cpa_assign(
            lab, centers, weight, s, d_m, l_m, n_threads=nt
        )
        assert n_r == n_m
        assert np.array_equal(l_r, l_m)
        assert np.array_equal(d_r, d_m)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(8, 32))
    def test_fixed_datapath(self, nt, seed, k):
        lab, centers, _, _, s, weight, dp, codes = _setup(
            seed, k, 10.0, fixed=True
        )
        kw = dict(datapath=dp, compactness=10.0, codes=codes)
        d_r, l_r = _cpa_buffers(H, W)
        d_m, l_m = _cpa_buffers(H, W)
        reference.cpa_assign(lab, centers, weight, s, d_r, l_r, **kw)
        native_mt.cpa_assign(
            lab, centers, weight, s, d_m, l_m, n_threads=nt, **kw
        )
        assert np.array_equal(l_r, l_m)
        assert np.array_equal(d_r, d_m)

    def test_center_subset(self, nt):
        lab, centers, _, _, s, weight, _, _ = _setup(7, 24, 12.0)
        subset = np.arange(len(centers))[::3]
        d_r, l_r = _cpa_buffers(H, W)
        d_m, l_m = _cpa_buffers(H, W)
        reference.cpa_assign(
            lab, centers, weight, s, d_r, l_r, cluster_indices=subset
        )
        native_mt.cpa_assign(
            lab, centers, weight, s, d_m, l_m,
            cluster_indices=subset, n_threads=nt,
        )
        assert np.array_equal(l_r, l_m)
        assert np.array_equal(d_r, d_m)


@pytest.mark.parametrize("nt", THREADS)
class TestPpaDifferential:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(8, 40),
           m=st.floats(1.0, 40.0), stride=st.sampled_from([1, 2, 5]))
    def test_float64(self, nt, seed, k, m, stride):
        lab, centers, tiles, cands, s, weight, _, _ = _setup(seed, k, m)
        pixels = PixelArrays(lab, tiles)
        idx = np.arange(pixels.n_pixels)[::stride]
        ref = reference.ppa_assign(pixels, idx, cands, centers, weight)
        got = native_mt.ppa_assign(
            pixels, idx, cands, centers, weight, n_threads=nt
        )
        assert np.array_equal(ref, got)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(8, 32))
    def test_fixed_datapath(self, nt, seed, k):
        lab, centers, tiles, cands, s, weight, dp, codes = _setup(
            seed, k, 10.0, fixed=True
        )
        pixels = PixelArrays(lab, tiles, datapath=dp, codes=codes)
        idx = np.arange(pixels.n_pixels)
        kw = dict(compactness=10.0, grid_s=s)
        ref = reference.ppa_assign(pixels, idx, cands, centers, weight, **kw)
        got = native_mt.ppa_assign(
            pixels, idx, cands, centers, weight, n_threads=nt, **kw
        )
        assert np.array_equal(ref, got)

    def test_subset_smaller_than_thread_count(self, nt):
        """Fewer pixels than threads: trailing chunks must be empty,
        not out of bounds."""
        lab, centers, tiles, cands, s, weight, _, _ = _setup(3, 12, 10.0)
        pixels = PixelArrays(lab, tiles)
        for n in (0, 1, 3):
            idx = np.arange(pixels.n_pixels)[:n]
            ref = reference.ppa_assign(pixels, idx, cands, centers, weight)
            got = native_mt.ppa_assign(
                pixels, idx, cands, centers, weight, n_threads=nt
            )
            assert np.array_equal(ref, got)


@pytest.mark.parametrize("nt", THREADS)
class TestLabCodesDifferential:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000),
           bits=st.sampled_from([8, 10]), uniform=st.booleans())
    def test_random_images(self, nt, seed, bits, uniform):
        rng = np.random.default_rng(seed)
        rgb = rng.integers(0, 256, size=(H, W, 3), dtype=np.uint8)
        conv = HwColorConverter(encoding=LabEncoding(bits, uniform=uniform))
        want = reference.lab_codes(conv, rgb)
        got = native_mt.lab_codes(conv, rgb, n_threads=nt)
        assert np.array_equal(got, want)


@pytest.mark.parametrize("nt", THREADS)
class TestLabFromCodesDifferential:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000),
           bits=st.sampled_from([8, 10]), uniform=st.booleans())
    def test_random_images(self, nt, seed, bits, uniform):
        rng = np.random.default_rng(seed)
        rgb = rng.integers(0, 256, size=(H, W, 3), dtype=np.uint8)
        conv = HwColorConverter(encoding=LabEncoding(bits, uniform=uniform))
        want_lab, want_codes = reference.lab_from_codes(conv, rgb)
        got_lab, got_codes = native_mt.lab_from_codes(conv, rgb, n_threads=nt)
        assert np.array_equal(got_lab, want_lab)
        assert np.array_equal(got_codes, want_codes)


@pytest.mark.parametrize("nt", THREADS)
class TestSigmaAccumulateDifferential:
    """Cluster-ownership partitioning: bit-identical at any width."""

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 40),
           stride=st.sampled_from([0, 1, 3]))
    def test_float_rows(self, nt, seed, k, stride):
        rng = np.random.default_rng(seed)
        lab_flat = rng.standard_normal((H * W, 3)) * 40.0
        if stride == 0:
            idx, m = None, H * W
        else:
            idx = np.arange(0, H * W, stride, dtype=np.int64)
            m = len(idx)
        labels = rng.integers(0, k, size=m).astype(np.int32)
        want_s, want_c = reference.sigma_accumulate(
            labels, k, W, lab_flat=lab_flat, idx=idx
        )
        got_s, got_c = native_mt.sigma_accumulate(
            labels, k, W, lab_flat=lab_flat, idx=idx, n_threads=nt
        )
        assert np.array_equal(got_s, want_s)
        assert np.array_equal(got_c, want_c)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 24),
           bits=st.sampled_from([8, 10]))
    def test_fixed_codes(self, nt, seed, k, bits):
        rng = np.random.default_rng(seed)
        enc = LabEncoding(bits)
        codes_flat = rng.integers(
            0, enc.code_max + 1, size=(H * W, 3)
        ).astype(np.int64)
        idx = rng.permutation(H * W)[: H * W // 2].astype(np.int64)
        labels = rng.integers(0, k, size=len(idx)).astype(np.int32)
        want_s, want_c = reference.sigma_accumulate(
            labels, k, W, codes_flat=codes_flat, encoding=enc, idx=idx
        )
        got_s, got_c = native_mt.sigma_accumulate(
            labels, k, W, codes_flat=codes_flat, encoding=enc, idx=idx,
            n_threads=nt,
        )
        assert np.array_equal(got_s, want_s)
        assert np.array_equal(got_c, want_c)

    def test_fewer_clusters_than_threads(self, nt):
        """K < width: trailing ownership bands are empty, not OOB."""
        rng = np.random.default_rng(5)
        lab_flat = rng.standard_normal((60, 3))
        labels = rng.integers(0, 2, size=60).astype(np.int32)
        want = reference.sigma_accumulate(labels, 2, 6, lab_flat=lab_flat)
        got = native_mt.sigma_accumulate(
            labels, 2, 6, lab_flat=lab_flat, n_threads=nt
        )
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])


@pytest.mark.parametrize("nt", THREADS)
class TestContingencyDifferential:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000), n_a=st.integers(1, 12),
           n_b=st.integers(1, 9), n=st.sampled_from([0, 3, 101, 4097]))
    def test_random_labelings(self, nt, seed, n_a, n_b, n):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, n_a, size=n).astype(np.int64)
        b = rng.integers(0, n_b, size=n).astype(np.int64)
        want = reference.contingency_table(a, b, n_a, n_b)
        got = native_mt.contingency_table(a, b, n_a, n_b, n_threads=nt)
        assert np.array_equal(got, want)
        assert got.sum() == n


class TestDegenerateShapes:
    """Frames thinner or smaller than one tile, at 7 threads."""

    SHAPES = [(1, 40), (40, 1), (2, 3), (3, 2), (1, 1), (5, 5)]

    @pytest.mark.parametrize("h,w", SHAPES)
    def test_cpa(self, h, w):
        rng = np.random.default_rng(h * 100 + w)
        lab = rgb_to_lab(
            rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
        )
        n_centers = 2
        centers = np.stack(
            [
                rng.uniform(0, 100, n_centers),
                rng.uniform(-40, 40, n_centers),
                rng.uniform(-40, 40, n_centers),
                rng.uniform(0, max(w - 1, 1), n_centers),
                rng.uniform(0, max(h - 1, 1), n_centers),
            ],
            axis=1,
        )
        s = max(float(np.sqrt(h * w / n_centers)), 1.0)
        weight = spatial_weight(10.0, s)
        d_r, l_r = _cpa_buffers(h, w)
        d_m, l_m = _cpa_buffers(h, w)
        n_r = reference.cpa_assign(lab, centers, weight, s, d_r, l_r)
        n_m = native_mt.cpa_assign(
            lab, centers, weight, s, d_m, l_m, n_threads=7
        )
        assert n_r == n_m
        assert np.array_equal(l_r, l_m)
        assert np.array_equal(d_r, d_m)

    @pytest.mark.parametrize("h,w", SHAPES)
    def test_lab_codes(self, h, w):
        rng = np.random.default_rng(h * 10 + w)
        rgb = rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
        conv = HwColorConverter()
        want = reference.lab_codes(conv, rgb)
        got = native_mt.lab_codes(conv, rgb, n_threads=7)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("h,w", SHAPES)
    def test_lab_from_codes(self, h, w):
        rng = np.random.default_rng(h * 10 + w + 1)
        rgb = rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
        conv = HwColorConverter()
        want_lab, want_codes = reference.lab_from_codes(conv, rgb)
        got_lab, got_codes = native_mt.lab_from_codes(conv, rgb, n_threads=7)
        assert np.array_equal(got_lab, want_lab)
        assert np.array_equal(got_codes, want_codes)

    @pytest.mark.parametrize("h,w", SHAPES)
    def test_sigma_accumulate(self, h, w):
        rng = np.random.default_rng(h * 10 + w + 2)
        lab_flat = rng.standard_normal((h * w, 3))
        labels = rng.integers(0, 3, size=h * w).astype(np.int32)
        want = reference.sigma_accumulate(labels, 3, w, lab_flat=lab_flat)
        got = native_mt.sigma_accumulate(
            labels, 3, w, lab_flat=lab_flat, n_threads=7
        )
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])

    def test_serial_delegates_unaffected_by_ambient_threads(self):
        """merge_small / chamfer / CC delegate to serial code; a pinned
        ambient thread count must not change their output."""
        rng = np.random.default_rng(4)
        labels = rng.integers(0, 6, size=(20, 24)).astype(np.int32)
        mask = rng.random((20, 24)) < 0.1
        want_cc = reference.connected_components(labels)
        want_ch = reference.chamfer_distance(mask)
        with thread_context(7):
            got_cc = native_mt.connected_components(labels)
            got_ch = native_mt.chamfer_distance(mask)
        assert want_cc[1] == got_cc[1]
        assert np.array_equal(want_cc[0], got_cc[0])
        assert np.array_equal(want_ch, got_ch)


class TestThreadResolution:
    def test_explicit_kwarg_wins(self):
        with thread_context(5):
            assert resolve_threads(2) == 2

    def test_ambient_beats_env(self, monkeypatch):
        monkeypatch.setenv(native_mt.ENV_THREADS, "3")
        assert resolve_threads() == 3
        with thread_context(5):
            assert resolve_threads() == 5
        assert resolve_threads() == 3

    def test_env_garbage_falls_through(self, monkeypatch):
        monkeypatch.setenv(native_mt.ENV_THREADS, "not-a-number")
        assert resolve_threads() >= 1

    def test_clamped_to_valid_range(self):
        assert resolve_threads(0) == 1
        assert resolve_threads(-4) == 1
        assert resolve_threads(10_000) == native_mt.MAX_THREADS

    def test_context_is_thread_local(self):
        """Two threads pin different ambient counts without interfering."""
        seen = {}
        barrier_a, barrier_b = [], []

        def pin(name, n, other):
            with thread_context(n):
                other.append(1)  # signal: my context is active
                deadline = time.monotonic() + 5.0
                while not barrier_a or not barrier_b:
                    if time.monotonic() > deadline:  # pragma: no cover
                        break
                    time.sleep(0.001)
                seen[name] = resolve_threads()

        with ThreadPoolExecutor(2) as ex:
            fa = ex.submit(pin, "a", 2, barrier_a)
            fb = ex.submit(pin, "b", 7, barrier_b)
            fa.result()
            fb.result()
        assert seen == {"a": 2, "b": 7}


class TestConcurrentEngines:
    """Two segmentations running at once in one process must be
    bit-identical to their serial runs — no scratch-buffer or LUT-cache
    corruption."""

    @pytest.fixture(autouse=True)
    def _fresh_luts(self):
        reset_lut_caches()
        yield
        reset_lut_caches()

    def _image(self, seed, h=40, w=56):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)

    def test_float_engines_concurrently(self):
        img_a = self._image(21)
        img_b = self._image(22, 48, 40)

        def run_a():
            return slic(
                img_a, n_superpixels=24,
                kernel_backend="native-mt", n_threads=2,
            ).labels

        def run_b():
            return slic(
                img_b, n_superpixels=18,
                kernel_backend="native-mt", n_threads=3,
            ).labels

        base_a, base_b = run_a(), run_b()
        with ThreadPoolExecutor(2) as ex:
            for _ in range(3):
                fa, fb = ex.submit(run_a), ex.submit(run_b)
                assert np.array_equal(fa.result(), base_a)
                assert np.array_equal(fb.result(), base_b)

    def test_fixed_datapath_engines_share_lut_caches(self):
        """The fixed path hits the shared color LUT caches from both
        engine threads at once."""
        img_a = self._image(31)
        img_b = self._image(32, 36, 44)

        def run(img, k, nt):
            return slic(
                img, n_superpixels=k, architecture="cpa",
                datapath=FixedDatapath(bits=8),
                kernel_backend="native-mt", n_threads=nt,
            ).labels

        base_a = run(img_a, 20, 2)
        base_b = run(img_b, 12, 7)
        reset_lut_caches()  # concurrent runs rebuild the caches racing
        with ThreadPoolExecutor(2) as ex:
            fa = ex.submit(run, img_a, 20, 2)
            fb = ex.submit(run, img_b, 12, 7)
            assert np.array_equal(fa.result(), base_a)
            assert np.array_equal(fb.result(), base_b)

    def test_ambient_context_matches_explicit_param(self):
        img = self._image(41)
        explicit = slic(
            img, n_superpixels=20, kernel_backend="native-mt", n_threads=3
        ).labels
        with thread_context(3):
            ambient = slic(
                img, n_superpixels=20, kernel_backend="native-mt"
            ).labels
        assert np.array_equal(explicit, ambient)


class TestSupervisorMemoRace:
    @pytest.fixture(autouse=True)
    def _fresh_supervision(self):
        supervisor.reset_supervision()
        yield
        supervisor.reset_supervision()

    def test_concurrent_first_dispatch_runs_self_test_once(
        self, monkeypatch
    ):
        calls = []
        orig = supervisor.self_test

        def slow_self_test(name):
            calls.append(name)
            time.sleep(0.05)  # widen the race window
            return orig(name)

        monkeypatch.setattr(supervisor, "self_test", slow_self_test)
        with ThreadPoolExecutor(8) as ex:
            verdicts = list(
                ex.map(
                    lambda _: supervisor.supervised_resolve("native-mt"),
                    range(8),
                )
            )
        # One self-test, one shared verdict object — no torn memo.
        assert calls == ["native-mt"]
        assert len({id(v) for v in verdicts}) == 1
        assert all(v.name == "native-mt" for v in verdicts)
        assert all(not v.demoted for v in verdicts)
