"""Tests for the repro.parallel batch/video execution engine.

The load-bearing invariant: parallel output is **bit-identical** to
serial output for the same inputs, seeds, and params — scheduling must
never leak into results. Multi-process tests keep frames tiny so they
stay fast even on a single-core CI box.
"""

import os

import numpy as np
import pytest

from repro.core import SlicParams, StreamSegmenter
from repro.data import SceneConfig, VideoSequence
from repro.errors import ConfigurationError, DatasetError
from repro.obs import MemorySink, Tracer
from repro.parallel import (
    BatchResult,
    FrameRecord,
    ParallelRunner,
    load_image_batch,
    run_frame,
    synthetic_batch,
    synthetic_streams,
)
from repro.parallel.worker import CRASH_ENV

PARAMS = SlicParams(
    n_superpixels=40,
    max_iterations=4,
    subsample_ratio=0.5,
    convergence_threshold=0.3,
)


def _tiny_batch(n=3, seed=2):
    return synthetic_batch(n, height=50, width=70, seed=seed)


class TestSerialRunner:
    def test_batch_of_images(self):
        batch = ParallelRunner(PARAMS).run_batch(_tiny_batch(3))
        assert batch.n_frames == 3
        assert batch.n_ok == 3
        assert batch.n_failed == 0
        assert [r.key for r in batch.records] == [(0, 0), (1, 0), (2, 0)]
        for r in batch.records:
            assert r.result.labels.shape == (50, 70)
            assert not r.warm_started
            assert r.worker_pid == os.getpid()

    def test_run_dispatches_on_input_shape(self):
        runner = ParallelRunner(PARAMS)
        images = _tiny_batch(2)
        assert runner.run(images).n_frames == 2
        assert runner.run([[images[0]], [images[1]]]).n_frames == 2

    def test_stream_frames_warm_start_in_order(self):
        streams = synthetic_streams(2, 3, height=50, width=70, seed=1)
        batch = ParallelRunner(PARAMS).run_streams(streams)
        assert [r.key for r in batch.records] == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)
        ]
        for r in batch.records:
            assert r.warm_started == (r.frame_index > 0)

    def test_matches_stream_segmenter_exactly(self):
        """The runner's warm chain is the StreamSegmenter's warm chain."""
        cfg = SceneConfig(height=50, width=70, noise=0.0)
        seq = VideoSequence(3, config=cfg, motion="shake", seed=1)
        batch = ParallelRunner(PARAMS).run_streams(
            [[f.image for f in seq]]
        )
        seg = StreamSegmenter(PARAMS)
        for i, frame in enumerate(seq):
            ref = seg.process(frame.image)
            rec = batch.records[i]
            assert np.array_equal(ref.labels, rec.result.labels)
            assert np.array_equal(ref.centers, rec.result.centers)

    def test_failed_frame_breaks_warm_chain(self):
        good = _tiny_batch(1)[0]
        # Same H, W (so the strict shape check passes) but not RGB: the
        # failure comes back from the *worker*, not the planner.
        bad = np.zeros((50, 70, 4))
        batch = ParallelRunner(PARAMS).run_streams([[good, bad, good]])
        assert [r.ok for r in batch.records] == [True, False, True]
        assert batch.records[1].error_type == "ImageError"
        # The frame after the failure cold-starts.
        assert not batch.records[2].warm_started

    def test_mixed_resolution_stream_fails_loudly(self):
        frames = [_tiny_batch(1)[0], synthetic_batch(1, height=40, width=60)[0]]
        batch = ParallelRunner(PARAMS).run_streams([frames])
        rec = batch.records[1]
        assert not rec.ok
        assert rec.error_type == "StreamError"
        assert "resolution" in rec.error

    def test_mixed_resolution_allowed_when_not_strict(self):
        frames = [_tiny_batch(1)[0], synthetic_batch(1, height=40, width=60)[0]]
        batch = ParallelRunner(PARAMS, strict_shape=False).run_streams([frames])
        assert batch.n_ok == 2
        assert not batch.records[1].warm_started  # re-anchored instead

    def test_backpressure_cap_respected(self):
        batch = ParallelRunner(PARAMS, max_pending=2).run_batch(_tiny_batch(5))
        assert batch.n_ok == 5
        assert batch.max_in_flight <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner("nope")
        with pytest.raises(ConfigurationError):
            ParallelRunner(PARAMS, n_workers=0)
        with pytest.raises(ConfigurationError):
            ParallelRunner(PARAMS, max_pending=0)
        with pytest.raises(ConfigurationError):
            ParallelRunner(PARAMS, max_pool_restarts=-1)

    def test_batch_result_accessors(self):
        batch = ParallelRunner(PARAMS).run_batch(_tiny_batch(2))
        assert len(batch.results) == 2
        assert batch.failures == []
        assert len(batch.stream(1)) == 1
        assert batch.throughput_fps > 0
        assert "BatchResult" in repr(batch)
        empty = BatchResult(records=[], n_workers=1, elapsed_s=0.0)
        assert empty.throughput_fps == 0.0


class TestWorkerFunction:
    def test_run_frame_success_and_failure(self):
        from repro.parallel import FrameTask

        image = _tiny_batch(1)[0]
        ok = run_frame(FrameTask(0, 0, image, PARAMS))
        assert ok.ok and ok.result is not None and ok.elapsed_s > 0
        bad = run_frame(FrameTask(0, 1, np.zeros((4, 4)), PARAMS))
        assert not bad.ok and bad.error_type == "ImageError"
        assert bad.result is None

    def test_run_frame_collects_trace(self):
        from repro.parallel import FrameTask

        image = _tiny_batch(1)[0]
        rec = run_frame(FrameTask(0, 0, image, PARAMS, collect_trace=True))
        assert rec.ok
        span_names = {e["name"] for e in rec.trace_events
                      if e.get("ev") == "span"}
        assert "segmentation" in span_names


class TestParallelExecution:
    """Multi-process paths (2 workers; fine on one core, just slower)."""

    def test_bit_identical_to_serial(self):
        images = _tiny_batch(4)
        serial = ParallelRunner(PARAMS, n_workers=1).run_batch(images)
        parallel = ParallelRunner(PARAMS, n_workers=2).run_batch(images)
        assert serial.n_ok == parallel.n_ok == 4
        for a, b in zip(serial.records, parallel.records):
            assert a.key == b.key
            assert np.array_equal(a.result.labels, b.result.labels)
            assert np.array_equal(a.result.centers, b.result.centers)

    def test_streams_bit_identical_to_serial(self):
        mk = lambda: synthetic_streams(2, 2, height=50, width=70, seed=4)
        serial = ParallelRunner(PARAMS, n_workers=1).run_streams(mk())
        parallel = ParallelRunner(PARAMS, n_workers=2).run_streams(mk())
        for a, b in zip(serial.records, parallel.records):
            assert a.key == b.key
            assert np.array_equal(a.result.labels, b.result.labels)

    def test_bad_frame_does_not_poison_pool(self):
        images = _tiny_batch(3)
        images[1] = np.zeros((8, 8))
        batch = ParallelRunner(PARAMS, n_workers=2).run_batch(images)
        assert batch.n_failed == 1
        assert batch.records[1].error_type == "ImageError"
        assert batch.records[0].ok and batch.records[2].ok

    def test_worker_crash_returns_error_record(self, monkeypatch):
        """A worker that dies mid-frame must not hang the pool.

        The pending cap keeps most of the batch out of the doomed pool,
        so the restart has work left to prove recovery with.
        """
        monkeypatch.setenv(CRASH_ENV, "1:0")
        batch = ParallelRunner(PARAMS, n_workers=2, max_pending=2).run_batch(
            _tiny_batch(6)
        )
        assert batch.n_frames == 6
        crashed = [r for r in batch.failures if r.error_type == "WorkerCrash"]
        assert crashed, "expected at least the injected crash"
        assert any(r.stream_id == 1 for r in crashed)
        # At most the pending window died with the pool; the rebuilt pool
        # ran everything that was not in flight.
        assert len(crashed) <= 2
        assert batch.n_ok >= 4
        assert batch.pool_restarts >= 1

    def test_trace_merge_has_resolvable_parents(self):
        sink = MemorySink()
        with Tracer(sink) as tracer:
            ParallelRunner(
                PARAMS, n_workers=2, tracer=tracer,
                collect_worker_traces=True,
            ).run_batch(_tiny_batch(2))
        spans = sink.by_type("span")
        names = [s["name"] for s in spans]
        assert names.count("frame") == 2
        assert names.count("batch") == 1
        assert names.count("segmentation") == 2
        ids = {s["id"] for s in spans}
        for s in spans:
            if s["parent"] is not None:
                assert s["parent"] in ids
        counters = {e["name"]: e["value"] for e in sink.by_type("counter")}
        assert counters["parallel.frames_completed"] == 2
        assert counters["worker.engine.sweeps"] >= 2
        gauges = {e["name"] for e in sink.by_type("gauge")}
        assert "parallel.throughput_fps" in gauges

    @pytest.mark.slow
    def test_stress_many_streams(self):
        """Stress: more streams than workers, mixed lengths, with failures."""
        params = PARAMS.with_(n_superpixels=25, max_iterations=2)
        streams = synthetic_streams(6, 3, height=40, width=56, seed=9)
        # Poison one stream's middle frame.
        poisoned = [
            synthetic_batch(1, height=40, width=56, seed=99)[0],
            np.zeros((3, 3)),
            synthetic_batch(1, height=40, width=56, seed=100)[0],
        ]
        batch = ParallelRunner(
            params, n_workers=4, max_pending=5
        ).run_streams(list(streams) + [poisoned])
        assert batch.n_frames == 6 * 3 + 3
        assert batch.n_failed == 1
        assert batch.max_in_flight <= 5
        serial = ParallelRunner(params, max_pending=5).run_streams(
            list(synthetic_streams(6, 3, height=40, width=56, seed=9))
            + [poisoned]
        )
        for a, b in zip(serial.records, batch.records):
            assert a.key == b.key and a.ok == b.ok
            if a.ok:
                assert np.array_equal(a.result.labels, b.result.labels)


class TestBatchHelpers:
    def test_synthetic_batch_distinct_and_deterministic(self):
        a = synthetic_batch(3, height=40, width=50, seed=7)
        b = synthetic_batch(3, height=40, width=50, seed=7)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        assert not np.array_equal(a[0], a[1])

    def test_synthetic_batch_validation(self):
        with pytest.raises(DatasetError):
            synthetic_batch(0)
        with pytest.raises(DatasetError):
            synthetic_streams(0, 2)

    def test_load_image_batch_roundtrip(self, tmp_path):
        from repro.data import write_ppm

        images = _tiny_batch(2)
        write_ppm(tmp_path / "b.ppm", images[1])
        write_ppm(tmp_path / "a.ppm", images[0])
        loaded = load_image_batch(tmp_path)
        assert len(loaded) == 2
        assert np.array_equal(loaded[0], images[0])  # sorted by name
        glob_loaded = load_image_batch(str(tmp_path / "*.ppm"))
        assert len(glob_loaded) == 2

    def test_load_image_batch_empty_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_image_batch(tmp_path)


def test_frame_record_key():
    rec = FrameRecord(stream_id=2, frame_index=5, ok=False, error="x")
    assert rec.key == (2, 5)
