"""Tests for corpus statistics — the dataset-substitution evidence."""

import numpy as np
import pytest

from repro.analysis import eval_dataset
from repro.data import (
    SceneConfig,
    corpus_statistics,
    generate_scene,
    scene_statistics,
)
from repro.data.synthetic import Scene
from repro.errors import DatasetError


def _noise_scene(seed=0):
    rng = np.random.default_rng(seed)
    return Scene(
        image=rng.integers(0, 256, (64, 96, 3), dtype=np.uint8),
        gt_labels=np.zeros((64, 96), dtype=np.int32),
        config=SceneConfig(),
        seed=seed,
    )


class TestSceneStatistics:
    def test_fields_populated(self, small_scene):
        stats = scene_statistics(small_scene)
        assert stats.n_segments == small_scene.n_gt_regions
        assert stats.mean_segment_area > 0
        assert all(s > 0 for s in stats.lab_std)

    def test_synthetic_gradients_heavier_tailed_than_noise(self, small_scene):
        """The substitution criterion: scene gradients are leptokurtic
        (flat regions + rare strong edges), unlike white noise."""
        scene_k = scene_statistics(small_scene).gradient_kurtosis
        noise_k = scene_statistics(_noise_scene()).gradient_kurtosis
        assert scene_k > 0.0
        assert scene_k > noise_k + 0.5

    def test_boundary_sparsity(self, small_scene):
        stats = scene_statistics(small_scene)
        assert 0.0 < stats.boundary_fraction < 0.15

    def test_constant_image_zero_kurtosis(self):
        flat = Scene(
            image=np.full((32, 32, 3), 128, dtype=np.uint8),
            gt_labels=np.zeros((32, 32), dtype=np.int32),
            config=SceneConfig(),
            seed=0,
        )
        assert scene_statistics(flat).gradient_kurtosis == 0.0


class TestCorpusStatistics:
    def test_eval_corpus_is_in_the_bsds_regime(self):
        """The Fig 2 corpus must sit in the paper's operating regime:
        ground-truth segments much larger than superpixels, sparse
        boundaries, chromatic content in all channels."""
        dataset = eval_dataset("quick")
        stats = corpus_statistics(list(dataset))
        # Segments ~8x a superpixel (K=160 on 128x192 -> ~154 px/SP).
        assert stats["mean_segment_area"] > 4 * 154
        assert stats["boundary_fraction_mean"] < 0.1
        assert stats["gradient_kurtosis_mean"] > 0.0
        assert min(stats["lab_std_mean"]) > 5.0

    def test_empty_corpus_rejected(self):
        with pytest.raises(DatasetError):
            corpus_statistics([])

    def test_generator_knobs_move_statistics(self):
        plain = generate_scene(
            SceneConfig(height=64, width=96, n_regions=8, texture=0.0, noise=0.0),
            seed=4,
        )
        noisy = generate_scene(
            SceneConfig(height=64, width=96, n_regions=8, texture=0.0, noise=6.0),
            seed=4,
        )
        k_plain = scene_statistics(plain).gradient_kurtosis
        k_noisy = scene_statistics(noisy).gradient_kurtosis
        # Heavy per-pixel noise gaussianizes the gradients.
        assert k_noisy < k_plain
