"""Cross-process trace stitching: one trace, resolvable parents.

The acceptance contract of the telemetry PR: a multi-worker run — under
the pickle AND the shm transport — produces a *single* stitched trace.
Every worker-side span carries the parent's ``trace`` id, every parent
id resolves inside the merged event set, worker roots hang off the
parent-side ``frame`` span, and retried executions stay distinguishable
via the attempt tag baked into the span-id prefix.
"""

import re

import numpy as np
import pytest

from repro.core import SlicParams
from repro.obs import MemorySink, Tracer
from repro.parallel import ParallelRunner, run_frame, synthetic_batch
from repro.parallel.records import FrameTask
from repro.parallel.shm import shm_available

PARAMS = SlicParams(
    n_superpixels=30,
    max_iterations=3,
    subsample_ratio=0.5,
    convergence_threshold=0.3,
)

WORKER_ID_RE = re.compile(r"^s(\d+)f(\d+)a(\d+)\.")


def _run_traced(transport, n_workers=4, n_frames=6, retry=None, faults=None):
    sink = MemorySink()
    with Tracer(sink) as tracer:
        batch = ParallelRunner(
            PARAMS,
            n_workers=n_workers,
            tracer=tracer,
            collect_worker_traces=True,
            transport=transport,
            retry=retry,
            faults=faults,
        ).run_batch(synthetic_batch(n_frames, height=48, width=64, seed=3))
    return batch, sink, tracer


def assert_single_stitched_trace(sink, tracer, n_frames):
    spans = sink.by_type("span")
    by_id = {s["id"]: s for s in spans}

    # One trace id, everywhere: batch span, frame spans, worker spans.
    traces = {s.get("trace") for s in spans}
    assert traces == {tracer.trace_id}

    # Every parent resolves inside the merged set — no orphans.
    for s in spans:
        if s["parent"] is not None:
            assert s["parent"] in by_id, (
                f"span {s['id']} ({s['name']}) has unresolvable parent "
                f"{s['parent']}"
            )

    # Worker spans are recognizable by their attempt-tagged prefix, and
    # each worker root hangs off its parent-side frame span.
    worker_spans = [s for s in spans if WORKER_ID_RE.match(s["id"])]
    assert worker_spans, "no worker spans were merged"
    frame_spans = {s["id"]: s for s in spans if s["name"] == "frame"}
    assert len(frame_spans) == n_frames
    worker_roots = [
        s for s in worker_spans if not WORKER_ID_RE.match(s["parent"] or "")
    ]
    for root in worker_roots:
        assert root["parent"] in frame_spans, (
            f"worker root {root['id']} not parented at a frame span"
        )
    return spans, worker_spans


class TestStitchedTracePickle:
    def test_four_workers_single_trace(self):
        n = 6
        batch, sink, tracer = _run_traced("pickle", n_workers=4, n_frames=n)
        assert batch.n_ok == n
        spans, worker_spans = assert_single_stitched_trace(sink, tracer, n)
        # Real multi-process run: worker spans came from other pids.
        pids = {
            s["attrs"].get("worker_pid")
            for s in spans
            if s["name"] == "frame"
        }
        assert pids  # recorded at all

    def test_serial_runner_also_stitches(self):
        n = 3
        batch, sink, tracer = _run_traced("pickle", n_workers=1, n_frames=n)
        assert batch.n_ok == n
        assert_single_stitched_trace(sink, tracer, n)


@pytest.mark.skipif(not shm_available(), reason="shm transport unavailable")
class TestStitchedTraceShm:
    def test_four_workers_single_trace(self):
        n = 6
        batch, sink, tracer = _run_traced("shm", n_workers=4, n_frames=n)
        assert batch.n_ok == n
        assert batch.transport == "shm"
        assert_single_stitched_trace(sink, tracer, n)

    def test_slab_header_carries_trace_tag(self):
        from repro.parallel.shm import ShmTransport, slab_trace_id

        transport = ShmTransport()
        try:
            image = synthetic_batch(1, height=32, width=40, seed=5)[0]
            task = FrameTask(
                stream_id=0,
                frame_index=0,
                image=image,
                params=PARAMS,
                trace_id="c0ffee0123456789",
            )
            encoded = transport.encode_task(task)
            assert slab_trace_id(encoded.shm_image.name) == "c0ffee0123456789"
            assert slab_trace_id(encoded.shm_result.name) == "c0ffee0123456789"
        finally:
            transport.close()


class TestRetryAttemptTags:
    def test_retried_frames_keep_attempts_distinguishable(self):
        from repro.resilience import FaultPlan, RetryPolicy

        n = 4
        sink = MemorySink()
        with Tracer(sink) as tracer:
            batch = ParallelRunner(
                PARAMS,
                n_workers=2,
                tracer=tracer,
                collect_worker_traces=True,
                retry=RetryPolicy(retries=2, backoff_s=0.0),
                faults=FaultPlan.parse("error@0:1"),
            ).run_streams([synthetic_batch(n, height=48, width=64, seed=7)])
        assert batch.n_ok == n
        assert batch.retries_used >= 1
        assert_single_stitched_trace(sink, tracer, n)
        attempts = {
            m.group(3)
            for m in (
                WORKER_ID_RE.match(s["id"]) for s in sink.by_type("span")
            )
            if m
        }
        # The retried execution ran under attempt tag a1 (or later),
        # alongside the first attempts' a0 — ids never collided.
        assert "0" in attempts
        assert attempts - {"0"}, "no retried worker spans were merged"

    def test_worker_task_trace_fields_survive_pickle_roundtrip(self):
        import pickle

        image = synthetic_batch(1, height=32, width=40, seed=5)[0]
        task = FrameTask(
            stream_id=2,
            frame_index=5,
            image=image,
            params=PARAMS,
            collect_trace=True,
            attempt=1,
            trace_id="feedface01234567",
            parent_span_id="b.s2f5",
        )
        task = pickle.loads(pickle.dumps(task))
        record = run_frame(task, in_worker=False)
        assert record.ok
        assert record.trace_events
        span_events = [e for e in record.trace_events if e["ev"] == "span"]
        for ev in span_events:
            assert ev["trace"] == "feedface01234567"
            assert ev["id"].startswith("s2f5a1.")
        roots = [e for e in span_events if not str(
            e["parent"] or ""
        ).startswith("s2f5a1.")]
        assert roots
        assert all(e["parent"] == "b.s2f5" for e in roots)
