"""Tests for the downstream applications (RAG merging, compression)."""

import numpy as np
import pytest

from repro.apps import (
    RegionAdjacencyGraph,
    SuperpixelCodec,
    merge_regions,
    psnr,
)
from repro.core import sslic
from repro.errors import ConfigurationError
from repro.metrics import achievable_segmentation_accuracy


@pytest.fixture(scope="module")
def segmented(small_scene):
    result = sslic(small_scene.image, n_superpixels=32, max_iterations=5)
    return small_scene, result


class TestRag:
    def test_graph_structure(self, segmented):
        scene, result = segmented
        rag = RegionAdjacencyGraph(result.labels, scene.image)
        assert rag.n_nodes == int(result.labels.max()) + 1
        # Every present node with area has neighbors (connected image).
        for node, neighbors in rag.adjacency.items():
            assert node not in neighbors
            assert len(neighbors) >= 1

    def test_adjacency_symmetric(self, segmented):
        scene, result = segmented
        rag = RegionAdjacencyGraph(result.labels, scene.image)
        for a, neighbors in rag.adjacency.items():
            for b in neighbors:
                assert a in rag.adjacency[b]

    def test_edge_weight_is_lab_distance(self, segmented):
        scene, result = segmented
        rag = RegionAdjacencyGraph(result.labels, scene.image)
        a, b = 0, next(iter(rag.adjacency[0]))
        assert rag.edge_weight(a, b) == pytest.approx(
            np.linalg.norm(rag.means[a] - rag.means[b])
        )

    def test_shape_mismatch_rejected(self, segmented):
        scene, result = segmented
        with pytest.raises(ConfigurationError):
            RegionAdjacencyGraph(result.labels[:-1], scene.image)


class TestMergeRegions:
    def test_reaches_target_count(self, segmented):
        scene, result = segmented
        merged = merge_regions(result.labels, scene.image, n_regions=8)
        assert merged.n_regions == 8
        assert len(np.unique(merged.labels)) == 8

    def test_merging_preserves_partition_refinement(self, segmented):
        """Merged regions are unions of superpixels: every superpixel maps
        into exactly one region."""
        scene, result = segmented
        merged = merge_regions(result.labels, scene.image, n_regions=8)
        for sp in np.unique(result.labels):
            regions = np.unique(merged.labels[result.labels == sp])
            assert len(regions) == 1

    def test_recovers_ground_truth_regions(self, segmented):
        """Merging down to the GT region count keeps high achievable
        accuracy — the downstream win superpixels promise."""
        scene, result = segmented
        merged = merge_regions(
            result.labels, scene.image, n_regions=scene.n_gt_regions
        )
        asa = achievable_segmentation_accuracy(merged.labels, scene.gt_labels)
        assert asa > 0.85

    def test_threshold_stop(self, segmented):
        scene, result = segmented
        merged = merge_regions(result.labels, scene.image, max_color_distance=5.0)
        # Similar-color neighbors merged; strong boundaries survive.
        assert 1 < merged.n_regions <= result.n_superpixels

    def test_needs_a_stop_criterion(self, segmented):
        scene, result = segmented
        with pytest.raises(ConfigurationError):
            merge_regions(result.labels, scene.image)

    def test_merge_count_consistent(self, segmented):
        scene, result = segmented
        n0 = int(result.labels.max()) + 1
        merged = merge_regions(result.labels, scene.image, n_regions=10)
        assert merged.merge_count == n0 - merged.n_regions


class TestCodec:
    def test_roundtrip_shape_and_dtype(self, segmented):
        scene, result = segmented
        codec = SuperpixelCodec()
        code = codec.encode(scene.image, result.labels)
        recon = codec.decode(code)
        assert recon.shape == scene.image.shape
        assert recon.dtype == np.uint8

    def test_reconstruction_is_piecewise_constant(self, segmented):
        scene, result = segmented
        codec = SuperpixelCodec()
        recon = codec.decode(codec.encode(scene.image, result.labels))
        for k in np.unique(result.labels)[:5]:
            region = recon[result.labels == k]
            assert (region == region[0]).all()

    def test_rate_distortion_tradeoff(self, segmented):
        """More superpixels -> more bits and higher PSNR."""
        scene, _ = segmented
        codec = SuperpixelCodec()
        coarse = sslic(scene.image, n_superpixels=12, max_iterations=4)
        fine = sslic(scene.image, n_superpixels=64, max_iterations=4)
        rd_coarse = codec.rate_distortion(scene.image, coarse.labels)
        rd_fine = codec.rate_distortion(scene.image, fine.labels)
        assert rd_fine["bits_per_pixel"] > rd_coarse["bits_per_pixel"]
        assert rd_fine["psnr_db"] > rd_coarse["psnr_db"]

    def test_compresses_below_raw(self, segmented):
        scene, result = segmented
        rd = SuperpixelCodec().rate_distortion(scene.image, result.labels)
        assert rd["bits_per_pixel"] < 24.0
        assert rd["compression_ratio"] > 1.0
        assert rd["psnr_db"] > 20.0

    def test_psnr_identity_infinite(self, small_scene):
        assert psnr(small_scene.image, small_scene.image) == float("inf")

    def test_psnr_shape_mismatch(self, small_scene):
        with pytest.raises(ConfigurationError):
            psnr(small_scene.image, small_scene.image[:-1])
