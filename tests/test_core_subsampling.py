"""Unit tests for the S-SLIC subset schedules."""

import numpy as np
import pytest

from repro.core import SubsetSchedule, center_subsets, make_schedule
from repro.errors import ConfigurationError

STRATEGIES = ("strided", "checkerboard", "rows", "blocks", "random")


class TestPartitionInvariants:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("n_subsets", [1, 2, 4])
    def test_subsets_partition_all_pixels(self, strategy, n_subsets):
        sched = SubsetSchedule((24, 36), n_subsets, strategy=strategy)
        seen = np.concatenate([sched.subset(p) for p in range(n_subsets)])
        assert len(seen) == 24 * 36
        assert len(np.unique(seen)) == 24 * 36

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_subsets_balanced(self, strategy):
        sched = SubsetSchedule((25, 37), 4, strategy=strategy)
        sizes = sched.sizes
        assert max(sizes) - min(sizes) <= 37  # blocks: at most one row band off

    @pytest.mark.parametrize("strategy", ("strided", "checkerboard", "rows", "random"))
    def test_interleaved_strategies_tightly_balanced(self, strategy):
        # Odd dimensions: row/parity schemes can differ by up to one row
        # (or one odd-parity line) of pixels, never more.
        sched = SubsetSchedule((25, 37), 4, strategy=strategy)
        sizes = sched.sizes
        assert max(sizes) - min(sizes) <= 37

    def test_round_robin_wraps(self):
        sched = SubsetSchedule((10, 10), 2)
        assert np.array_equal(sched.subset(0), sched.subset(2))
        assert np.array_equal(sched.subset(1), sched.subset(3))

    def test_single_subset_is_everything(self):
        sched = SubsetSchedule((8, 8), 1)
        assert len(sched.subset(0)) == 64


class TestSpatialStructure:
    def test_checkerboard_2_is_parity(self):
        sched = SubsetSchedule((8, 8), 2, strategy="checkerboard")
        mask = sched.subset_mask(0)
        yy, xx = np.mgrid[0:8, 0:8]
        assert np.array_equal(mask, (yy + xx) % 2 == 0)

    def test_rows_strategy(self):
        sched = SubsetSchedule((8, 8), 2, strategy="rows")
        mask = sched.subset_mask(1)
        assert mask[1].all()
        assert not mask[0].any()

    def test_blocks_are_contiguous_bands(self):
        sched = SubsetSchedule((16, 8), 4, strategy="blocks")
        mask = sched.subset_mask(0)
        rows_with = np.flatnonzero(mask.any(axis=1))
        assert np.array_equal(rows_with, np.arange(rows_with[0], rows_with[-1] + 1))

    def test_strided_subset_spatially_uniform(self):
        """Every superpixel-sized patch must contain subset pixels — the
        property that keeps the OS-EM update unbiased."""
        sched = SubsetSchedule((32, 32), 4, strategy="strided")
        mask = sched.subset_mask(0)
        for y0 in range(0, 32, 8):
            for x0 in range(0, 32, 8):
                assert mask[y0 : y0 + 8, x0 : x0 + 8].sum() >= 8

    def test_blocks_starve_patches(self):
        """The pathological schedule leaves whole patches empty (why it is
        the ablation's bad example)."""
        sched = SubsetSchedule((32, 32), 4, strategy="blocks")
        mask = sched.subset_mask(0)
        assert mask[24:, :].sum() == 0

    def test_random_deterministic_by_seed(self):
        a = SubsetSchedule((12, 12), 3, strategy="random", seed=5)
        b = SubsetSchedule((12, 12), 3, strategy="random", seed=5)
        c = SubsetSchedule((12, 12), 3, strategy="random", seed=6)
        assert np.array_equal(a.subset(0), b.subset(0))
        assert not np.array_equal(a.subset(0), c.subset(0))


class TestMakeSchedule:
    def test_ratio_one(self):
        assert make_schedule((8, 8), 1.0, "strided").n_subsets == 1

    def test_ratio_quarter(self):
        assert make_schedule((8, 8), 0.25, "strided").n_subsets == 4

    def test_rejects_non_unit_fraction(self):
        with pytest.raises(ConfigurationError):
            make_schedule((8, 8), 0.3, "strided")


class TestValidation:
    def test_rejects_zero_subsets(self):
        with pytest.raises(ConfigurationError):
            SubsetSchedule((8, 8), 0)

    def test_rejects_more_subsets_than_pixels(self):
        with pytest.raises(ConfigurationError):
            SubsetSchedule((2, 2), 100)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            SubsetSchedule((8, 8), 2, strategy="hilbert")


class TestCenterSubsets:
    def test_partition(self):
        subs = center_subsets(10, 3)
        seen = np.concatenate(subs)
        assert sorted(seen) == list(range(10))

    def test_interleaved(self):
        subs = center_subsets(9, 3)
        assert list(subs[0]) == [0, 3, 6]

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            center_subsets(5, 0)
