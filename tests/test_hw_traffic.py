"""Unit tests for the CPA/PPA analysis (Table 2, Section 4.2)."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import (
    OPS_PER_DISTANCE,
    compare_architectures,
    cpa_profile,
    ppa_profile,
    PAPER_TABLE2,
    TECH_16NM,
)


class TestTable2:
    def test_ppa_traffic_matches_paper(self):
        p = ppa_profile()
        assert p.memory_mb_per_iteration == pytest.approx(
            PAPER_TABLE2["PPA"]["memory_mb"], rel=0.01
        )

    def test_cpa_traffic_matches_paper(self):
        p = cpa_profile()
        assert p.memory_mb_per_iteration == pytest.approx(
            PAPER_TABLE2["CPA"]["memory_mb"], rel=0.04
        )

    def test_ppa_ops_match_paper(self):
        p = ppa_profile()
        assert p.ops_per_iteration / 1e6 == pytest.approx(
            PAPER_TABLE2["PPA"]["ops_m"], rel=0.01
        )

    def test_cpa_ops_match_paper(self):
        p = cpa_profile()
        assert p.ops_per_iteration / 1e6 == pytest.approx(
            PAPER_TABLE2["CPA"]["ops_m"], rel=0.03
        )

    def test_headline_ratios(self):
        """Paper: PPA needs ~3x less bandwidth, ~2.25x more ops."""
        cmp = compare_architectures()
        assert cmp["bandwidth_ratio_cpa_over_ppa"] == pytest.approx(3.18, rel=0.05)
        assert cmp["ops_ratio_ppa_over_cpa"] == pytest.approx(2.25, rel=0.05)

    def test_ppa_ops_formula(self):
        n = 1000
        p = ppa_profile(n_pixels=n, n_superpixels=10)
        assert p.ops_per_iteration == 9 * OPS_PER_DISTANCE * n


class TestEnergyDecision:
    def test_dram_dominates_energy(self):
        """The Section 4.2 premise: with DRAM at 2500x an add, traffic
        dwarfs arithmetic for both architectures."""
        for profile in (cpa_profile(), ppa_profile()):
            dram = profile.memory_bytes_per_iteration * TECH_16NM.e_dram_byte
            ops = profile.ops_per_iteration * TECH_16NM.e_add8
            assert dram > 10 * ops

    def test_ppa_selected(self):
        assert compare_architectures()["selected"] == "PPA"

    def test_ppa_energy_lower_despite_more_ops(self):
        cmp = compare_architectures()
        assert cmp["energy_ppa_pj"] < cmp["energy_cpa_pj"]
        assert cmp["ppa"].ops_per_iteration > cmp["cpa"].ops_per_iteration


class TestScaling:
    def test_traffic_scales_linearly_with_pixels(self):
        small = ppa_profile(n_pixels=100_000, n_superpixels=500)
        large = ppa_profile(n_pixels=200_000, n_superpixels=500)
        assert large.memory_bytes_per_iteration == pytest.approx(
            2 * small.memory_bytes_per_iteration
        )

    def test_accelerator_caching_removes_center_traffic(self):
        cached = ppa_profile(centers_cached=True)
        uncached = ppa_profile(centers_cached=False)
        assert cached.memory_bytes_per_iteration < uncached.memory_bytes_per_iteration / 10

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            cpa_profile(n_pixels=10, n_superpixels=100)
        with pytest.raises(HardwareModelError):
            ppa_profile(n_pixels=0)
