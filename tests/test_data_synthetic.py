"""Unit tests for the synthetic scene generator and dataset."""

import numpy as np
import pytest

from repro.color import rgb_to_lab
from repro.data import Scene, SceneConfig, SyntheticDataset, generate_scene
from repro.errors import DatasetError
from repro.metrics import boundary_map


class TestSceneConfigValidation:
    def test_default_valid(self):
        SceneConfig()

    def test_rejects_tiny_image(self):
        with pytest.raises(DatasetError):
            SceneConfig(height=4, width=100)

    def test_rejects_unknown_layout(self):
        with pytest.raises(DatasetError):
            SceneConfig(layout="spiral")

    def test_rejects_negative_noise(self):
        with pytest.raises(DatasetError):
            SceneConfig(noise=-1.0)

    def test_rejects_bad_camouflage(self):
        with pytest.raises(DatasetError):
            SceneConfig(camouflage=1.5)

    def test_rejects_negative_blur(self):
        with pytest.raises(DatasetError):
            SceneConfig(blur_sigma=-0.1)


class TestGenerateScene:
    def test_image_and_labels_consistent(self, small_scene):
        assert small_scene.image.shape[:2] == small_scene.gt_labels.shape
        assert small_scene.image.dtype == np.uint8
        assert small_scene.gt_labels.dtype == np.int32

    def test_labels_dense_from_zero(self, small_scene):
        uniq = np.unique(small_scene.gt_labels)
        assert uniq[0] == 0
        assert np.array_equal(uniq, np.arange(len(uniq)))

    def test_deterministic(self):
        cfg = SceneConfig(height=32, width=48, n_regions=5)
        a = generate_scene(cfg, seed=9)
        b = generate_scene(cfg, seed=9)
        assert np.array_equal(a.image, b.image)
        assert np.array_equal(a.gt_labels, b.gt_labels)

    def test_different_seeds_differ(self):
        cfg = SceneConfig(height=32, width=48, n_regions=5)
        a = generate_scene(cfg, seed=1)
        b = generate_scene(cfg, seed=2)
        assert not np.array_equal(a.image, b.image)

    def test_regions_have_distinct_colors(self):
        cfg = SceneConfig(
            height=48, width=64, n_regions=6, n_disks=0,
            texture=0.0, noise=0.0, shading=0.0, min_color_separation=15.0,
        )
        scene = generate_scene(cfg, seed=3)
        lab = rgb_to_lab(scene.image)
        means = []
        for r in range(scene.n_gt_regions):
            means.append(lab[scene.gt_labels == r].mean(axis=0))
        means = np.asarray(means)
        d = np.linalg.norm(means[:, None] - means[None, :], axis=2)
        np.fill_diagonal(d, np.inf)
        # Rendering clips to gamut, so allow some shrink from the nominal
        # separation; colors must still be clearly apart.
        assert d.min() > 6.0

    def test_camouflage_reduces_boundary_contrast(self):
        base = SceneConfig(height=64, width=96, n_regions=10, n_disks=0,
                           texture=0.0, noise=0.0, shading=0.0)
        plain = generate_scene(base, seed=5)
        camo = generate_scene(
            SceneConfig(**{**base.__dict__, "camouflage": 0.5}), seed=5
        )
        def boundary_contrast(scene):
            lab = rgb_to_lab(scene.image)
            edges = boundary_map(scene.gt_labels)
            gx = np.abs(np.diff(lab, axis=1)).sum(axis=-1)
            return gx[edges[:, 1:]].mean()
        assert boundary_contrast(camo) < boundary_contrast(plain)

    def test_stripes_layout(self):
        scene = generate_scene(
            SceneConfig(height=32, width=48, n_regions=5, n_disks=0, layout="stripes"),
            seed=2,
        )
        assert scene.n_gt_regions >= 4

    def test_blur_softens_edges(self):
        base = dict(height=48, width=64, n_regions=6, n_disks=0,
                    texture=0.0, noise=0.0, shading=0.0)
        sharp = generate_scene(SceneConfig(**base), seed=4)
        soft = generate_scene(SceneConfig(**base, blur_sigma=2.0), seed=4)
        g = lambda im: np.abs(np.diff(im.astype(float), axis=1)).max()
        assert g(soft.image) < g(sharp.image)


class TestSyntheticDataset:
    def test_len_and_iteration(self):
        ds = SyntheticDataset(4, config=SceneConfig(height=24, width=32, n_regions=4))
        scenes = list(ds)
        assert len(ds) == 4
        assert len(scenes) == 4
        assert all(isinstance(s, Scene) for s in scenes)

    def test_indexing_matches_iteration(self):
        ds = SyntheticDataset(3, config=SceneConfig(height=24, width=32, n_regions=4))
        assert np.array_equal(ds[1].image, list(ds)[1].image)

    def test_out_of_range_index(self):
        ds = SyntheticDataset(2)
        with pytest.raises(IndexError):
            ds[2]

    def test_layout_cycling(self):
        ds = SyntheticDataset(5, config=SceneConfig(height=24, width=32, n_regions=4))
        layouts = [ds.scene_config(i).layout for i in range(5)]
        assert "voronoi" in layouts
        assert "stripes" in layouts

    def test_no_layout_variation_when_disabled(self):
        ds = SyntheticDataset(
            5, config=SceneConfig(height=24, width=32, n_regions=4), vary_layout=False
        )
        assert all(ds.scene_config(i).layout == "warped" for i in range(5))

    def test_different_corpus_seeds_differ(self):
        cfg = SceneConfig(height=24, width=32, n_regions=4)
        a = SyntheticDataset(1, config=cfg, seed=1)[0]
        b = SyntheticDataset(1, config=cfg, seed=2)[0]
        assert not np.array_equal(a.image, b.image)

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            SyntheticDataset(0)
