"""Tests for repro.obs.profile: per-span resource sampling."""

import gc

from repro.obs import MemorySink, ResourceProfiler, Tracer

PROFILE_KEYS = {"cpu_user_s", "cpu_sys_s", "rss_peak_kb", "gc_collections"}


class TestResourceProfiler:
    def test_delta_shape_and_sanity(self):
        prof = ResourceProfiler()
        snap = prof.snapshot()
        attrs = prof.delta(snap)
        assert set(attrs) == PROFILE_KEYS
        assert attrs["cpu_user_s"] >= 0.0
        assert attrs["cpu_sys_s"] >= 0.0
        assert attrs["rss_peak_kb"] > 0  # POSIX: a live process has RSS
        assert attrs["gc_collections"] >= 0
        assert prof.samples == 1

    def test_counts_gc_collections_inside_window(self):
        prof = ResourceProfiler()
        snap = prof.snapshot()
        gc.collect()
        gc.collect()
        assert prof.delta(snap)["gc_collections"] >= 2

    def test_cpu_attribution(self):
        import time

        prof = ResourceProfiler()
        snap = prof.snapshot()
        # burn enough CPU to cross several OS clock ticks (~10 ms each)
        deadline = time.perf_counter() + 0.1
        acc = 0
        while time.perf_counter() < deadline:
            acc += sum(range(1000))
        assert prof.delta(snap)["cpu_user_s"] > 0.0


class TestTracerProfiling:
    def test_spans_carry_profile_attrs_when_enabled(self):
        sink = MemorySink()
        tracer = Tracer(sink, profile=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = sink.by_type("span")
        assert len(spans) == 2
        for ev in spans:
            assert PROFILE_KEYS <= set(ev["attrs"]), ev

    def test_disabled_by_default(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("s"):
            pass
        (ev,) = sink.by_type("span")
        assert not (PROFILE_KEYS & set(ev["attrs"]))

    def test_enable_profiling_is_lazy_and_chainable(self):
        tracer = Tracer(MemorySink())
        assert tracer.profiler is None
        assert tracer.enable_profiling() is tracer
        assert tracer.profiler is not None
        with tracer.span("s"):
            pass
        (ev,) = tracer.sink.by_type("span")
        assert PROFILE_KEYS <= set(ev["attrs"])

    def test_enable_on_disabled_tracer_is_noop(self):
        tracer = Tracer()  # NullSink -> disabled
        tracer.enable_profiling()
        assert tracer.profiler is None

    def test_profile_attrs_do_not_clobber_user_attrs(self):
        sink = MemorySink()
        tracer = Tracer(sink, profile=True)
        with tracer.span("s", stage="demo") as span:
            span.set(frames=3)
        (ev,) = sink.by_type("span")
        assert ev["attrs"]["stage"] == "demo"
        assert ev["attrs"]["frames"] == 3
        assert "cpu_user_s" in ev["attrs"]
