"""The zero-copy shared-memory frame transport (repro.parallel.shm).

The load-bearing invariant mirrors the rest of the parallel suite:
``transport="shm"`` must be **bit-identical** to pickle and to serial on
the same inputs — moving frames through slabs instead of pipes can never
leak into results, including through the retry/watchdog/crash recovery
paths that re-ship slab refs. Multi-process tests keep frames tiny.
"""

import numpy as np
import pytest

from repro.core import SlicParams
from repro.errors import ConfigurationError, TransportError
from repro.obs import MemorySink, Tracer
from repro.parallel import (
    ParallelRunner,
    ShmTransport,
    SlabPool,
    SlabRef,
    shm_available,
    synthetic_batch,
    synthetic_streams,
)
from repro.parallel.records import FrameTask
from repro.parallel.shm import (
    HEADER_BYTES,
    decode_task,
    detach_all,
    ref_to_array,
)
from repro.resilience import FaultPlan, RetryPolicy, record_from_json, record_to_json

PARAMS = SlicParams(
    n_superpixels=40,
    max_iterations=4,
    subsample_ratio=0.5,
    convergence_threshold=0.3,
)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this platform"
)


def _tiny_streams(n_streams=2, n_frames=3, seed=1):
    return synthetic_streams(n_streams, n_frames, height=50, width=70, seed=seed)


def _assert_bit_identical(a, b):
    assert a.key == b.key
    assert a.ok and b.ok
    assert np.array_equal(a.result.labels, b.result.labels)
    assert np.array_equal(a.result.centers, b.result.centers)


# ---------------------------------------------------------------------------
# Slab pool mechanics
# ---------------------------------------------------------------------------
@needs_shm
class TestSlabPool:
    def test_acquire_release_reuses_slabs(self):
        pool = SlabPool()
        try:
            a = pool.acquire(1000)
            pool.release(a)
            b = pool.acquire(500)  # fits in the released slab
            assert b is a
            assert pool.created == 1
            assert pool.reused == 1
        finally:
            pool.close()

    def test_best_fit_prefers_smallest_adequate_slab(self):
        pool = SlabPool()
        try:
            small = pool.acquire(100)
            big = pool.acquire(100_000)
            pool.release(big)
            pool.release(small)
            got = pool.acquire(50)
            assert got is small  # not the oversized one
        finally:
            pool.close()

    def test_generation_bumps_on_every_acquire(self):
        pool = SlabPool()
        try:
            slab = pool.acquire(64)
            g1 = slab.generation
            pool.release(slab)
            slab2 = pool.acquire(64)
            assert slab2 is slab
            assert slab2.generation == g1 + 1
        finally:
            pool.close()

    def test_stale_ref_rejected_by_generation_tag(self):
        pool = SlabPool()
        try:
            slab = pool.acquire(256)
            ref = SlabRef(
                name=slab.shm.name,
                generation=slab.generation,
                offset=0,
                shape=(4, 4),
                dtype="int32",
            )
            slab.view(ref)[...] = 7
            assert np.array_equal(ref_to_array(ref), np.full((4, 4), 7))
            pool.release(slab)
            pool.acquire(256)  # recycles the slab, bumping the tag
            with pytest.raises(TransportError, match="stale slab ref"):
                ref_to_array(ref)
        finally:
            detach_all()
            pool.close()

    def test_overrun_ref_rejected(self):
        pool = SlabPool()
        try:
            slab = pool.acquire(64)
            ref = SlabRef(
                name=slab.shm.name,
                generation=slab.generation,
                offset=0,
                shape=(1 << 20,),
                dtype="int64",
            )
            with pytest.raises(TransportError, match="overruns"):
                ref_to_array(ref)
        finally:
            detach_all()
            pool.close()


# ---------------------------------------------------------------------------
# Transport encode/decode round trip (no pool, no workers)
# ---------------------------------------------------------------------------
@needs_shm
class TestShmTransportRoundTrip:
    def test_encode_decode_round_trips_image_and_warm_labels(self):
        t = ShmTransport()
        try:
            rng = np.random.default_rng(0)
            image = rng.integers(0, 256, size=(20, 30, 3), dtype=np.uint8)
            warm = rng.integers(0, 5, size=(20, 30)).astype(np.int32)
            task = FrameTask(
                stream_id=0,
                frame_index=0,
                image=image,
                params=PARAMS,
                warm_labels=warm,
            )
            slim = t.encode_task(task)
            assert slim.image is None
            assert slim.shm_image is not None
            assert slim.shm_warm_labels is not None
            assert slim.shm_result.shape == (20, 30)
            decoded = decode_task(slim)
            assert np.array_equal(decoded.image, image)
            assert np.array_equal(decoded.warm_labels, warm)
            assert not decoded.image.flags.writeable
            assert t.outstanding == 1
        finally:
            detach_all()
            t.close()

    def test_encode_is_idempotent_for_retries(self):
        t = ShmTransport()
        try:
            image = np.zeros((10, 10, 3), dtype=np.uint8)
            task = FrameTask(
                stream_id=0, frame_index=0, image=image, params=PARAMS
            )
            once = t.encode_task(task)
            twice = t.encode_task(once)  # a resubmitted watchdog victim
            assert twice is once
            assert t.frames_encoded == 1
            assert t.outstanding == 1
        finally:
            detach_all()
            t.close()

    def test_payloads_start_header_aligned(self):
        t = ShmTransport()
        try:
            image = np.zeros((8, 8, 3), dtype=np.uint8)
            task = t.encode_task(
                FrameTask(stream_id=0, frame_index=0, image=image, params=PARAMS)
            )
            assert HEADER_BYTES == 64
            assert task.shm_image.offset == 0
        finally:
            detach_all()
            t.close()


# ---------------------------------------------------------------------------
# Bit-identity: shm vs pickle vs serial
# ---------------------------------------------------------------------------
@needs_shm
class TestShmBitIdentity:
    def test_shm_matches_pickle_and_serial_on_warm_video(self):
        serial = ParallelRunner(PARAMS).run_streams(_tiny_streams())
        pickle = ParallelRunner(PARAMS, n_workers=2).run_streams(
            _tiny_streams()
        )
        shm = ParallelRunner(
            PARAMS, n_workers=2, transport="shm"
        ).run_streams(_tiny_streams())
        assert shm.transport == "shm"
        assert pickle.transport == "pickle"
        assert serial.n_ok == pickle.n_ok == shm.n_ok == 6
        for a, b, c in zip(serial.records, pickle.records, shm.records):
            _assert_bit_identical(a, b)
            _assert_bit_identical(a, c)
        # Warm chains rode through the slabs.
        for rec in shm.records:
            assert rec.warm_started == (rec.frame_index > 0)
            assert rec.transport == "shm"

    def test_worker_crash_resubmit_stays_bit_identical(self):
        """A crash mid-batch re-ships the same slab refs on retry; the
        recovered run must still match serial bit for bit."""
        serial = ParallelRunner(PARAMS).run_streams(_tiny_streams())
        chaos = ParallelRunner(
            PARAMS,
            n_workers=2,
            transport="shm",
            retry=RetryPolicy(retries=2, backoff_s=0.01),
            faults=FaultPlan.parse("crash@0:1"),
        ).run_streams(_tiny_streams())
        assert chaos.n_ok == 6
        assert chaos.retries_used >= 1
        for a, b in zip(serial.records, chaos.records):
            _assert_bit_identical(a, b)

    def test_transport_survives_checkpoint_round_trip(self):
        shm = ParallelRunner(
            PARAMS, n_workers=2, transport="shm"
        ).run_streams(_tiny_streams(1, 2))
        rec = shm.records[0]
        back = record_from_json(record_to_json(rec), params=PARAMS)
        assert back.transport == rec.transport == "shm"
        assert np.array_equal(back.result.labels, rec.result.labels)


# ---------------------------------------------------------------------------
# Selection, fallback, telemetry
# ---------------------------------------------------------------------------
class TestTransportSelection:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError, match="transport"):
            ParallelRunner(PARAMS, transport="carrier-pigeon")

    def test_serial_run_uses_no_transport(self):
        res = ParallelRunner(PARAMS, transport="shm").run_batch(
            synthetic_batch(2, height=50, width=70)
        )
        assert res.n_ok == 2
        assert res.transport == "pickle"  # n_workers=1: nothing to ship

    @needs_shm
    def test_auto_selects_shm_when_available(self):
        res = ParallelRunner(
            PARAMS, n_workers=2, transport="auto"
        ).run_streams(_tiny_streams(1, 2))
        assert res.transport == "shm"

    def test_probe_failure_falls_back_to_pickle_with_telemetry(
        self, monkeypatch
    ):
        # The runner imports shm_available from repro.parallel.shm at
        # call time, so patch it at the source module.
        import repro.parallel.shm as shm_mod

        monkeypatch.setattr(shm_mod, "shm_available", lambda: False)
        sink = MemorySink()
        res = ParallelRunner(
            PARAMS, n_workers=2, transport="shm", tracer=Tracer(sink=sink)
        ).run_streams(_tiny_streams(1, 2))
        assert res.n_ok == 2
        assert res.transport == "pickle"
        events = [e for e in sink.events if e.get("ev") == "event"]
        assert any(e.get("name") == "transport_fallback" for e in events)
