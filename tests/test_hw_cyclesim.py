"""Tests for the cycle-level simulator and its cross-validation against
the analytical model."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import (
    AcceleratorModel,
    AcceleratorSim,
    ClusterUnitSim,
    ClusterWays,
    TABLE3_WAYS,
    schedule_cluster_unit,
    table4_configs,
)


class TestClusterUnitSim:
    @pytest.mark.parametrize("ways", TABLE3_WAYS, ids=lambda w: w.label)
    def test_matches_analytical_schedule(self, ways):
        """The simulated pipeline and the closed-form schedule must agree:
        first-result latency exactly, total cycles within one pipeline
        drain (the formula counts II*N + latency; the simulation finishes
        the last pixel at II*(N-1) + latency)."""
        n = 2000
        trace = ClusterUnitSim(ways).run(n)
        sched = schedule_cluster_unit(ways)
        assert trace.first_result_cycle == sched.latency
        expected_total = sched.initiation_interval * (n - 1) + sched.latency
        assert trace.total_cycles == expected_total

    def test_throughput_996_is_one_pixel_per_cycle(self):
        trace = ClusterUnitSim(ClusterWays(9, 9, 6)).run(5000)
        assert trace.pixels_per_cycle == pytest.approx(1.0, rel=0.01)

    def test_utilization_identifies_bottleneck(self):
        """In the 9-1-1 config the parallel distance hardware idles while
        the iterative minimum binds — exactly the imbalance Table 3 calls
        impractical."""
        trace = ClusterUnitSim(ClusterWays(9, 1, 1)).run(1000)
        assert trace.utilization["minimum"] > 0.95
        assert trace.utilization["distance"] < 0.2

    def test_balanced_config_fully_utilized(self):
        trace = ClusterUnitSim(ClusterWays(9, 9, 6)).run(1000)
        assert min(trace.utilization.values()) > 0.95

    def test_zero_pixels(self):
        trace = ClusterUnitSim().run(0)
        assert trace.total_cycles == 0
        assert trace.pixels_per_cycle == 0.0

    def test_negative_rejected(self):
        with pytest.raises(HardwareModelError):
            ClusterUnitSim().run(-1)


class TestAcceleratorSim:
    @pytest.mark.parametrize("name", ["1920x1080", "1280x768", "640x480"])
    def test_serial_sim_cross_validates_analytical_model(self, name):
        """The independent discrete simulation of the serial FSM must land
        within 2% of the calibrated analytical latency."""
        cfg = table4_configs()[name]
        sim_ms = AcceleratorSim(cfg).run_frame().total_ms()
        model_ms = AcceleratorModel(cfg).report().latency_ms
        assert sim_ms == pytest.approx(model_ms, rel=0.02)

    def test_prefetch_what_if_is_faster(self):
        cfg = table4_configs()["1920x1080"]
        serial = AcceleratorSim(cfg).run_frame()
        prefetch = AcceleratorSim(cfg, prefetch=True).run_frame()
        assert prefetch.total_ms() < serial.total_ms()
        # Double buffering hides most per-tile stalls at 4 kB buffers.
        assert prefetch.exposed_stall_cycles < 0.2 * serial.exposed_stall_cycles

    def test_prefetch_bounded_by_compute(self):
        """With prefetch, the frame cannot be faster than pure compute +
        color + center update."""
        cfg = table4_configs()["1920x1080"]
        trace = AcceleratorSim(cfg, prefetch=True).run_frame()
        floor = trace.color_cycles + trace.compute_cycles + trace.center_cycles
        assert trace.total_cycles >= floor * 0.999

    def test_serial_exposes_all_fetch_cycles(self):
        cfg = table4_configs()["640x480"]
        trace = AcceleratorSim(cfg).run_frame()
        assert trace.exposed_stall_cycles == pytest.approx(trace.dram_busy_cycles)

    def test_tile_count(self):
        cfg = table4_configs()["1920x1080"]
        trace = AcceleratorSim(cfg).run_frame()
        assert trace.n_tiles == cfg.n_superpixels
        assert trace.iterations == cfg.iterations
